//! Lock-table collision paths: with a tiny table (4 locks), many
//! addresses share each lock, exercising the engine's shared-lock code —
//! hardware transactions re-using an already-held lock, software commits
//! acquiring one lock for several write-set entries, and the
//! encounter-value consistency check across entries that share a lock.

use nvhalt::{LockStrategy, NvHalt, NvHaltConfig, Progress};
use tm::policy::HybridPolicy;
use tm::stats::Counter;
use tm::{txn, Addr, Tm};

fn tiny_table(progress: Progress) -> NvHalt {
    let mut cfg = NvHaltConfig::test(1 << 10, 4);
    cfg.locks = LockStrategy::Table { locks_log2: 2 }; // four locks!
    cfg.progress = progress;
    cfg.policy.hw_attempts = 10;
    NvHalt::new(cfg)
}

#[test]
fn hw_txn_reuses_shared_locks_across_addresses() {
    let tmem = tiny_table(Progress::Weak);
    // Addresses 1, 5, 9, ... share lock (1 & 3); write many of them in
    // one hardware transaction: the lock is acquired once, every address
    // is logged, all persist.
    txn(&tmem, 0, |tx| {
        for i in 0..16u64 {
            tx.write(Addr(1 + i * 4), 100 + i)?;
        }
        Ok(())
    })
    .unwrap();
    for i in 0..16u64 {
        assert_eq!(tmem.read_raw(Addr(1 + i * 4)), 100 + i);
    }
    assert_eq!(tmem.stats().get(Counter::HwCommit), 1);
    // Durability of every shared-lock address.
    let cfg = {
        let mut c = NvHaltConfig::test(1 << 10, 4);
        c.locks = LockStrategy::Table { locks_log2: 2 };
        c
    };
    tmem.crash();
    let rec = NvHalt::recover(cfg, &tmem.crash_image(), []);
    for i in 0..16u64 {
        assert_eq!(rec.read_raw(Addr(1 + i * 4)), 100 + i, "addr {}", 1 + i * 4);
    }
}

#[test]
fn sw_commit_acquires_each_shared_lock_once() {
    let mut cfg = NvHaltConfig::test(1 << 10, 2);
    cfg.locks = LockStrategy::Table { locks_log2: 2 };
    cfg.policy = HybridPolicy::stm_only();
    let tmem = NvHalt::new(cfg);
    txn(&tmem, 0, |tx| {
        for i in 0..32u64 {
            tx.write(Addr(1 + i), i)?;
        }
        Ok(())
    })
    .unwrap();
    for i in 0..32u64 {
        assert_eq!(tmem.read_raw(Addr(1 + i)), i);
    }
    assert_eq!(tmem.stats().get(Counter::SwCommit), 1);
}

#[test]
fn heavy_contention_on_four_locks_stays_exact() {
    for progress in [Progress::Weak, Progress::Strong] {
        let tmem = tiny_table(progress);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let tmem = &tmem;
                s.spawn(move || {
                    for _ in 0..2_000 {
                        // Every thread's counter shares locks with the
                        // others (4 locks, 4 counters + churn writes).
                        txn(tmem, t, |tx| {
                            let a = Addr(1 + t as u64);
                            let v = tx.read(a)?;
                            tx.write(a, v + 1)?;
                            tx.write(Addr(10 + t as u64), v)
                        })
                        .unwrap();
                    }
                });
            }
        });
        for t in 0..4u64 {
            assert_eq!(tmem.read_raw(Addr(1 + t)), 2_000, "{progress:?} t{t}");
        }
    }
}

#[test]
fn read_write_mix_on_shared_locks_is_opaque() {
    // Writers keep pairs equal; readers check. The pairs intentionally
    // share locks with unrelated churn addresses.
    let tmem = tiny_table(Progress::Strong);
    std::thread::scope(|s| {
        for t in 0..2usize {
            let tmem = &tmem;
            s.spawn(move || {
                for i in 1..2_000u64 {
                    txn(tmem, t, |tx| {
                        tx.write(Addr(20 + t as u64 * 2), i)?;
                        tx.write(Addr(21 + t as u64 * 2), i)
                    })
                    .unwrap();
                }
            });
        }
        for t in 2..4usize {
            let tmem = &tmem;
            s.spawn(move || {
                for _ in 0..2_000 {
                    let (a, b) = txn(tmem, t, |tx| {
                        let w = 20 + (t as u64 - 2) * 2;
                        Ok((tx.read(Addr(w))?, tx.read(Addr(w + 1))?))
                    })
                    .unwrap();
                    assert_eq!(a, b, "torn pair under shared locks");
                }
            });
        }
    });
}

#[test]
fn colocated_mode_never_shares() {
    let mut cfg = NvHaltConfig::test(64, 1);
    cfg.locks = LockStrategy::Colocated;
    let tmem = NvHalt::new(cfg);
    // One big transaction across the whole heap: every address has its
    // own lock; all acquired, persisted, released.
    txn(&tmem, 0, |tx| {
        for a in 1..48u64 {
            tx.write(Addr(a), a * 2)?;
        }
        Ok(())
    })
    .unwrap();
    for a in 1..48u64 {
        assert_eq!(tmem.read_raw(Addr(a)), a * 2);
    }
}
