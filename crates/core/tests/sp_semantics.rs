//! Targeted tests of the strongly progressive commit protocol (Figure 7):
//! the global-clock validation skip, the `hver` hardware-conflict check,
//! and the C-abortable fallback machinery (capacity overflow, heavy
//! spurious aborts).

use nvhalt::{LockStrategy, NvHalt, NvHaltConfig, Progress};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use tm::policy::HybridPolicy;
use tm::stats::Counter;
use tm::{txn, Abort, Addr, Tm};

fn sp_config() -> NvHaltConfig {
    let mut cfg = NvHaltConfig::test(1 << 12, 2);
    cfg.progress = Progress::Strong;
    cfg
}

/// A software committer whose read was invalidated by a concurrent
/// *hardware* transaction must abort: the global-clock CAS succeeds (no
/// software writer committed), so only the `hver` check can catch it.
#[test]
fn sp_detects_hardware_conflict_via_hver() {
    let mut cfg = sp_config();
    cfg.policy = HybridPolicy::stm_only(); // thread 0 stays on software
    let tmem = NvHalt::new(cfg);
    // Thread 1 keeps its default hybrid policy? Same TM instance, same
    // policy — run its conflicting write on the hardware path by using a
    // second TM handle is impossible; instead flip the policy per call is
    // not supported. So: build the TM with the hybrid default and force
    // thread 0's transaction onto the software path by overflowing the
    // hardware attempts with user retries on hardware attempts.
    drop(tmem);

    let cfg = sp_config(); // default policy: 10 hardware attempts
    let tmem = NvHalt::new(cfg);
    let x = Addr(1);
    let y = Addr(2);
    let start = Barrier::new(2);
    let read_done = AtomicBool::new(false);
    let hw_done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Thread 0: software transaction reading X then writing Y.
        let t0 = s.spawn(|| {
            start.wait();
            let mut sw_attempts = 0u32;
            txn(&tmem, 0, |tx| {
                if tx.is_hw() {
                    // Push ourselves onto the software path.
                    return Err(Abort::CONFLICT);
                }
                sw_attempts += 1;
                let _ = tx.read(x)?;
                if sw_attempts == 1 {
                    // First software attempt: let the hardware writer hit
                    // X between our read and our commit.
                    read_done.store(true, Ordering::Release);
                    while !hw_done.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                }
                tx.write(y, 1)?;
                Ok(())
            })
            .unwrap();
            sw_attempts
        });
        // Thread 1: hardware transaction writing X.
        let t1 = s.spawn(|| {
            start.wait();
            while !read_done.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            txn(&tmem, 1, |tx| tx.write(x, 99)).unwrap();
            hw_done.store(true, Ordering::Release);
        });
        t1.join().unwrap();
        let sw_attempts = t0.join().unwrap();
        assert!(
            sw_attempts >= 2,
            "the first software attempt must have failed hver validation \
             (got {sw_attempts} attempts)"
        );
    });
    assert_eq!(tmem.read_raw(x), 99);
    assert_eq!(tmem.read_raw(y), 1);
    let stats = tmem.stats();
    assert!(stats.get(Counter::SwAbort) >= 1, "{stats}");
    assert!(stats.get(Counter::HwCommit) >= 1, "{stats}");
}

/// Disjoint software writers do not abort each other: the loser of the
/// clock CAS falls back to full validation, which passes.
#[test]
fn sp_disjoint_software_writers_both_commit() {
    let mut cfg = sp_config();
    cfg.policy = HybridPolicy {
        hw_attempts: 0,
        max_backoff_spins: 0,
        ..HybridPolicy::default()
    };
    let tmem = NvHalt::new(cfg);
    std::thread::scope(|s| {
        for t in 0..2usize {
            let tmem = &tmem;
            s.spawn(move || {
                for i in 0..3_000u64 {
                    // Fully disjoint address sets.
                    txn(tmem, t, |tx| {
                        let a = Addr(10 + t as u64 * 8);
                        let v = tx.read(a)?;
                        tx.write(a, v + 1)?;
                        let _ = i;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    assert_eq!(tmem.read_raw(Addr(10)), 3_000);
    assert_eq!(tmem.read_raw(Addr(18)), 3_000);
    let stats = tmem.stats();
    assert_eq!(
        stats.get(Counter::SwAbort),
        0,
        "disjoint writers never conflict under SP: {stats}"
    );
}

/// A transaction whose write set overflows the HTM capacity falls back
/// to the software path and still commits (C-abortable progress with a
/// capacity-triggered fallback).
#[test]
fn capacity_overflow_falls_back_to_software() {
    let mut cfg = NvHaltConfig::test(1 << 14, 1);
    cfg.htm.max_write_entries = 32;
    let tmem = NvHalt::new(cfg);
    txn(&tmem, 0, |tx| {
        for a in 1..=2_000u64 {
            tx.write(Addr(a), a)?;
        }
        Ok(())
    })
    .unwrap();
    for a in 1..=2_000u64 {
        assert_eq!(tmem.read_raw(Addr(a)), a);
    }
    let stats = tmem.stats();
    assert_eq!(stats.get(Counter::HwCapacity), 1, "{stats}");
    assert_eq!(stats.get(Counter::SwCommit), 1, "{stats}");
}

/// Heavy spurious aborts cannot affect correctness, only the path mix.
#[test]
fn heavy_spurious_aborts_preserve_exactness() {
    let mut cfg = NvHaltConfig::test(1 << 12, 2);
    cfg.htm.spurious_log2 = 6; // ~1.6% per access
    cfg.policy = HybridPolicy {
        hw_attempts: 1, // a single spurious abort sends us to software
        ..HybridPolicy::default()
    };
    let tmem = NvHalt::new(cfg);
    std::thread::scope(|s| {
        for t in 0..2usize {
            let tmem = &tmem;
            s.spawn(move || {
                for _ in 0..2_000 {
                    txn(tmem, t, |tx| {
                        let v = tx.read(Addr(1))?;
                        tx.write(Addr(1), v + 1)
                    })
                    .unwrap();
                }
            });
        }
    });
    assert_eq!(tmem.read_raw(Addr(1)), 4_000);
    let stats = tmem.stats();
    assert!(stats.get(Counter::HwSpurious) > 0, "{stats}");
    assert!(
        stats.get(Counter::SwCommit) > 0,
        "fallback engaged: {stats}"
    );
}

/// The NO-PERSISTENT-HTX ablation really removes hardware-transaction
/// persistence: committed hardware writes are volatile-only.
#[test]
fn ablation_no_persist_htx_loses_hw_writes_on_crash() {
    let mut cfg = NvHaltConfig::test(1 << 10, 1);
    cfg.persist_hw = false;
    let tmem = NvHalt::new(cfg.clone());
    txn(&tmem, 0, |tx| tx.write(Addr(3), 7)).unwrap();
    assert_eq!(tmem.read_raw(Addr(3)), 7, "volatile commit intact");
    assert_eq!(tmem.stats().get(Counter::HwCommit), 1);
    tmem.crash();
    let rec = NvHalt::recover(cfg, &tmem.crash_image(), []);
    assert_eq!(
        rec.read_raw(Addr(3)),
        0,
        "without hardware-path persistence the write must not survive"
    );
}

/// Colocated and table lock strategies agree on semantics under the SP
/// protocol (cross-variant differential smoke).
#[test]
fn sp_semantics_identical_across_lock_strategies() {
    for locks in [
        LockStrategy::Table { locks_log2: 8 },
        LockStrategy::Colocated,
    ] {
        let mut cfg = sp_config();
        cfg.locks = locks;
        let tmem = NvHalt::new(cfg);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let tmem = &tmem;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        txn(tmem, t, |tx| {
                            let v = tx.read(Addr(1))?;
                            tx.write(Addr(1), v + 1)?;
                            tx.write(Addr(2 + (i % 64)), v)
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(tmem.read_raw(Addr(1)), 4_000, "{:?}", locks);
    }
}
