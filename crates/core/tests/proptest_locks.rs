//! Property-based tests of the dual-version lock word: any sequence of
//! acquire/release cycles preserves the packing invariants, and
//! validation accepts exactly the states it should.

use nvhalt::LockWord;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Cycle {
    Sw(usize),
    Hw(usize),
}

fn cycle_strategy() -> impl Strategy<Value = Cycle> {
    prop_oneof![
        (0usize..256).prop_map(Cycle::Sw),
        (0usize..256).prop_map(Cycle::Hw),
    ]
}

proptest! {
    /// Acquire/release cycles keep sver even when free, track owners
    /// while held, and bump hver exactly on hardware acquisitions.
    #[test]
    fn cycles_preserve_invariants(cycles in proptest::collection::vec(cycle_strategy(), 1..200)) {
        let mut lock = LockWord::INIT;
        let mut expected_sver = 0u64;
        let mut expected_hver = 0u64;
        for c in &cycles {
            prop_assert!(!lock.is_locked());
            let held = match *c {
                Cycle::Sw(tid) => {
                    let h = lock.sw_acquired(tid);
                    prop_assert!(h.is_locked_by(tid));
                    h
                }
                Cycle::Hw(tid) => {
                    expected_hver = (expected_hver + 1) & 0xffff;
                    let h = lock.hw_acquired(tid);
                    prop_assert!(h.is_locked_by(tid));
                    h
                }
            };
            expected_sver = (expected_sver + 2) & ((1 << 40) - 1);
            prop_assert_eq!(held.hver(), expected_hver);
            lock = held.released();
            prop_assert_eq!(lock.sver(), expected_sver);
            prop_assert_eq!(lock.hver(), expected_hver);
            prop_assert_eq!(lock.owner(), 0);
        }
    }

    /// Validation: unchanged words validate for everyone; a self-held
    /// lock validates only for its holder; any completed write cycle
    /// invalidates.
    #[test]
    fn validation_is_precise(
        pre_cycles in 0usize..50,
        tid in 0usize..256,
        other in 0usize..256,
    ) {
        let mut enc = LockWord::INIT;
        for i in 0..pre_cycles {
            enc = if i % 2 == 0 {
                enc.sw_acquired(i % 7).released()
            } else {
                enc.hw_acquired(i % 7).released()
            };
        }
        // Unchanged: validates for any tid.
        prop_assert!(LockWord::validates_against(enc, enc, tid));
        // Self-locked: validates only for the holder.
        let held = enc.sw_acquired(tid);
        prop_assert!(LockWord::validates_against(held, enc, tid));
        if other != tid {
            prop_assert!(!LockWord::validates_against(held, enc, other));
        }
        // A completed software cycle invalidates for everyone.
        let cycled = enc.sw_acquired(other).released();
        prop_assert!(!LockWord::validates_against(cycled, enc, tid));
        // A completed hardware cycle invalidates too (sver moved).
        let hw_cycled = enc.hw_acquired(other).released();
        prop_assert!(!LockWord::validates_against(hw_cycled, enc, tid));
    }
}
