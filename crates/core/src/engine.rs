//! The NV-HALT transactional memory engine: hardware fast path with
//! hardware-assisted locking (Figure 5), TL2-style software fallback with
//! Trinity persistence (Figure 1), and the strongly progressive commit
//! protocol (Figure 7).
//!
//! # Protocol summary
//!
//! Every transactional address is protected by a versioned lock
//! ([`crate::lock::LockWord`]). The locks serve a dual purpose (§3.1):
//! they guarantee consistency (threads synchronize on them before reading
//! or modifying an address) *and* they enable durability (an address can
//! be non-durable only while its lock is held).
//!
//! **Software path** (Figure 1): reads record the encounter-time lock word
//! and revalidate the whole read set on every read; writes are buffered.
//! At commit the write-set locks are acquired by CAS from the encounter
//! value, the read set is validated, each write is persisted with the
//! Trinity undo layout and written in place, the thread's persistent
//! version number is bumped and persisted, and only then are the locks
//! released — so no thread can ever read non-durable data (it would have
//! to ignore a held lock to do so).
//!
//! **Hardware path** (Figure 5): reads check that the address's lock is
//! free (or ours); writes *acquire* the lock inside the hardware
//! transaction and log the old value in a thread-local append-only log.
//! Because the transaction only ever acquires locks, the addresses remain
//! locked after `xend` — which is the whole trick: flushes would abort the
//! hardware transaction, so the write set is persisted *after* it
//! completes, under the protection of locks that outlive it.
//!
//! **Strong progress** (Figure 7): commit of a software writer advances a
//! global clock; if the CAS from the start-time value succeeds, no
//! concurrent software writer committed in the interim and full validation
//! can be replaced by a check that no *hardware* transaction bumped any
//! read lock's `hver`.

use crate::config::{NvHaltConfig, Progress};
use crate::heap::Heap;
use crate::lock::{LockWord, MAX_LOCK_THREADS};
use crossbeam::utils::CachePadded;
use htm::{Htm, HtmThread, HtmTxn, Xabort};
use parking_lot::Mutex;
use pmem::annot::{AnnotLayout, PVER_COUNT_TRUSTED};
use pmem::{AnnotPmem, Meta};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm::policy::PathChoice;
use tm::stats::{Counter, StatsSnapshot, TmStats};
use tm::{Abort, AbortKind, Addr, Cancelled, Tm, TmPrepare, TxResult, Txn, Word};
use txalloc::{AllocConfig, TxAlloc, TxnLog};

/// xabort code: observed a lock held by another thread.
pub const CODE_LOCKED: u32 = 1;
/// xabort code: the transaction body requested a retry.
pub const CODE_USER_RETRY: u32 = 2;
/// xabort code: the transaction body cancelled.
pub const CODE_CANCEL: u32 = 3;

struct RsEntry {
    addr: u64,
    enc: LockWord,
}

struct WsEntry {
    addr: u64,
    enc: LockWord,
    val: u64,
}

pub(crate) struct ThreadState {
    htm_th: HtmThread,
    rset: Vec<RsEntry>,
    wset: Vec<WsEntry>,
    acquired: Vec<(u64, LockWord)>,
    hlog: Vec<(u64, u64)>,
    hlocks: Vec<u64>,
    alloc_log: TxnLog,
    pub(crate) pver: u64,
    seed: u64,
    /// True between a successful `prepare` and its commit/abort decision.
    prepared: bool,
    /// Undo list of a prepared transaction: `(addr, old value)` per write,
    /// kept so `abort_prepared` can restore both volatile and durable state.
    pundo: Vec<(u64, u64)>,
    /// Scratch for the group-commit flush pass: distinct entry lines of the
    /// write set, flushed once each instead of once per entry.
    flush_lines: Vec<usize>,
}

/// The NV-HALT persistent hybrid transactional memory.
pub struct NvHalt {
    cfg: NvHaltConfig,
    pub(crate) heap: Heap,
    pub(crate) pmem: AnnotPmem,
    htm: Htm,
    pub(crate) alloc: TxAlloc,
    gclock: AtomicU64,
    stats: Arc<TmStats>,
    pub(crate) threads: Vec<CachePadded<Mutex<ThreadState>>>,
}

enum Outcome<R> {
    Committed(R),
    Aborted(AbortKind),
    Cancelled,
}

impl NvHalt {
    /// Create a fresh NV-HALT instance.
    pub fn new(cfg: NvHaltConfig) -> Self {
        assert!(cfg.max_threads >= 1 && cfg.max_threads <= MAX_LOCK_THREADS);
        assert!(cfg.heap_words >= 16);
        let stats = Arc::new(TmStats::new(cfg.max_threads));
        let layout = AnnotLayout {
            heap_words: cfg.heap_words,
            max_threads: cfg.max_threads,
        };
        let pmem = AnnotPmem::new(layout, &cfg.pm, Some(stats.clone()));
        let htm = Htm::new(cfg.htm);
        let heap = Heap::new(cfg.heap_words, cfg.locks);
        let alloc = TxAlloc::new(AllocConfig::new(cfg.heap_words, cfg.max_threads));
        let threads = Self::make_threads(&cfg, &htm, |_| 0);
        NvHalt {
            cfg,
            heap,
            pmem,
            htm,
            alloc,
            gclock: AtomicU64::new(0),
            stats,
            threads,
        }
    }

    pub(crate) fn make_threads(
        cfg: &NvHaltConfig,
        htm: &Htm,
        pver: impl Fn(usize) -> u64,
    ) -> Vec<CachePadded<Mutex<ThreadState>>> {
        (0..cfg.max_threads)
            .map(|t| {
                let cell = CachePadded::new(Mutex::new(ThreadState {
                    htm_th: HtmThread::new(htm, t),
                    rset: Vec::with_capacity(256),
                    wset: Vec::with_capacity(64),
                    acquired: Vec::with_capacity(64),
                    hlog: Vec::with_capacity(64),
                    hlocks: Vec::with_capacity(64),
                    alloc_log: TxnLog::new(),
                    pver: pver(t),
                    seed: 0xb0ff_0000 ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    prepared: false,
                    pundo: Vec::with_capacity(64),
                    flush_lines: Vec::with_capacity(64),
                }));
                // Commit persists the wset while this cell is held — by
                // design (the cell *is* the transaction), so exempt it
                // from the lock-across-persist rule.
                cell.locksan_label("nvhalt::thread_state", true);
                cell
            })
            .collect()
    }

    pub(crate) fn from_parts(
        cfg: NvHaltConfig,
        heap: Heap,
        pmem: AnnotPmem,
        alloc: TxAlloc,
        stats: Arc<TmStats>,
        pvers: &[u64],
    ) -> Self {
        let htm = Htm::new(cfg.htm);
        let threads = Self::make_threads(&cfg, &htm, |t| pvers[t]);
        NvHalt {
            cfg,
            heap,
            pmem,
            htm,
            alloc,
            gclock: AtomicU64::new(0),
            stats,
            threads,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NvHaltConfig {
        &self.cfg
    }

    /// Access to the persistent pool (crash control, snapshots).
    pub fn pmem(&self) -> &AnnotPmem {
        &self.pmem
    }

    /// Simulate a power failure.
    pub fn crash(&self) {
        self.pmem.pool().crash();
    }

    /// Per-thread allocation outside transactions (setup code): allocate
    /// and immediately commit.
    pub fn alloc_raw(&self, tid: usize, words: usize) -> Addr {
        let mut log = TxnLog::new();
        let a = self
            .alloc
            .alloc(tid, words, &mut log)
            .expect("transactional heap exhausted");
        self.alloc.commit(tid, &mut log);
        Addr(a)
    }

    #[inline]
    fn check_addr(&self, a: Addr) -> Result<usize, Abort> {
        // Out-of-range addresses can legitimately occur in doomed
        // (zombie) hardware attempts; they surface as retries, matching
        // real HTM's eager abort.
        let idx = a.index();
        if idx == 0 || !self.heap.in_range(idx) {
            return Err(Abort::CONFLICT);
        }
        Ok(idx)
    }

    // ------------------------------------------------------------------
    // Hardware path (Figure 5)
    // ------------------------------------------------------------------

    fn attempt_hw<R>(
        &self,
        ts: &mut ThreadState,
        tid: usize,
        attempt: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> Outcome<R> {
        ts.hlog.clear();
        ts.hlocks.clear();
        debug_assert!(ts.alloc_log.is_empty());
        let mut cancelled = false;
        let mut oom = false;
        let res = {
            let hlog = &mut ts.hlog;
            let hlocks = &mut ts.hlocks;
            let alloc_log = &mut ts.alloc_log;
            let htm_th = &mut ts.htm_th;
            let oom = &mut oom;
            let cancelled = &mut cancelled;
            self.htm.execute(htm_th, |htx| {
                let mut tx = HwTxn {
                    tm: self,
                    tid,
                    attempt,
                    htx,
                    hlog,
                    hlocks,
                    alloc_log,
                    oom,
                    htm_aborted: false,
                };
                match body(&mut tx) {
                    Ok(r) => Ok(r),
                    Err(Abort::Retry(_)) if tx.htm_aborted => Err(Xabort),
                    Err(Abort::Retry(_)) => Err(tx.htx.xabort(CODE_USER_RETRY)),
                    Err(Abort::Cancel) => {
                        *cancelled = true;
                        Err(tx.htx.xabort(CODE_CANCEL))
                    }
                }
            })
        };
        match res {
            Ok(r) => {
                // Committed in volatile memory; the written addresses are
                // still locked (hardware-assisted locking), so persist
                // them now and only then release (§3.4).
                if self.cfg.persist_hw && !ts.hlog.is_empty() {
                    self.persist_hw_commit(tid, ts);
                }
                self.alloc.commit(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::HwCommit);
                Outcome::Committed(r)
            }
            Err(kind) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                if oom {
                    panic!("transactional heap exhausted (hardware path)");
                }
                if cancelled {
                    self.stats.bump(tid, Counter::Cancelled);
                    return Outcome::Cancelled;
                }
                let counter = match kind {
                    AbortKind::Conflict => Counter::HwConflict,
                    AbortKind::Capacity => Counter::HwCapacity,
                    AbortKind::Spurious => Counter::HwSpurious,
                    // Lock-observed and user-requested aborts are
                    // conflict-justified in the paper's progress terms.
                    AbortKind::Explicit(CODE_LOCKED | CODE_USER_RETRY) => Counter::HwConflict,
                    AbortKind::Explicit(_) => Counter::HwExplicit,
                };
                self.stats.bump(tid, counter);
                Outcome::Aborted(kind)
            }
        }
    }

    /// Persist a completed hardware transaction's write set, bump and
    /// persist the thread's pver, then release the locks (Figure 5,
    /// commit epilogue) — as a one-fence group commit: all entries are
    /// staged, each distinct entry line is flushed once, a *counted*
    /// commit marker is written, and a single fence drains the lot.
    fn persist_hw_commit(&self, tid: usize, ts: &mut ThreadState) {
        let _psan = self.pmem.pool().psan_scope(tid, "nvhalt::hw_commit");
        self.pmem
            .preserve_witnesses(tid, ts.hlog.iter().map(|&(a, _)| a as usize));
        let meta = Meta::pack(tid, ts.pver);
        ts.flush_lines.clear();
        for &(a, old) in &ts.hlog {
            // Stable: the address is locked by us until release below.
            let new = self.heap.data_cell(a as usize).load(Ordering::Acquire);
            self.pmem.stage_entry(tid, a as usize, old, new, meta);
            ts.flush_lines.push(self.pmem.entry_line(a as usize));
        }
        self.pmem.flush_lines(tid, &mut ts.flush_lines);
        ts.pver += 1;
        self.persist_commit_marker(tid, ts.pver, ts.hlog.len() as u64, meta);
        for &a in &ts.hlocks {
            let cell = self.heap.lock_cell(a as usize);
            let cur = LockWord(self.htm.nt_load(cell));
            debug_assert!(cur.is_locked_by(tid), "releasing a lock we do not hold");
            self.htm.nt_store(cell, cur.released().0);
        }
    }

    /// Make the commit of an already-staged-and-flushed (but unfenced)
    /// generation durable. Normally a *counted* marker plus ONE fence:
    /// entries and marker drain together, and recovery tells a torn
    /// commit from a complete one by counting the generation's durable
    /// pad witnesses. Falls back to the legacy two-fence order when the
    /// generation stamp packs to zero (thread 0's first commit — its
    /// entries are indistinguishable from fresh zeroed ones) or the
    /// write set overflows the marker's count field.
    fn persist_commit_marker(&self, tid: usize, pver: u64, count: u64, gen: Meta) {
        debug_assert!(count > 0);
        if gen.0 != 0 && count < PVER_COUNT_TRUSTED {
            self.pmem.persist_pver_counted(tid, pver, count);
            self.pmem.sfence(tid);
            self.pmem
                .pool()
                .durability_point(tid, "nvhalt::commit_durable");
        } else {
            self.pmem.sfence(tid);
            self.pmem.persist_pver(tid, pver);
            self.pmem.sfence(tid);
        }
    }

    // ------------------------------------------------------------------
    // Software path (Figures 1 and 7)
    // ------------------------------------------------------------------

    fn attempt_sw<R>(
        &self,
        ts: &mut ThreadState,
        tid: usize,
        attempt: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> Outcome<R> {
        ts.rset.clear();
        ts.wset.clear();
        debug_assert!(ts.alloc_log.is_empty());
        let rv = match self.cfg.progress {
            Progress::Strong => self.gclock.load(Ordering::Acquire),
            Progress::Weak => 0,
        };
        let mut oom = false;
        let body_res = {
            let mut tx = SwTxn {
                tm: self,
                tid,
                attempt,
                rset: &mut ts.rset,
                wset: &mut ts.wset,
                alloc_log: &mut ts.alloc_log,
                oom: &mut oom,
            };
            body(&mut tx)
        };
        if oom {
            self.alloc.abort(tid, &mut ts.alloc_log);
            panic!("transactional heap exhausted (software path)");
        }
        match body_res {
            Ok(r) => match self.sw_commit(tid, ts, rv) {
                Ok(()) => {
                    self.alloc.commit(tid, &mut ts.alloc_log);
                    self.stats.bump(tid, Counter::SwCommit);
                    Outcome::Committed(r)
                }
                Err(()) => {
                    self.alloc.abort(tid, &mut ts.alloc_log);
                    self.stats.bump(tid, Counter::SwAbort);
                    Outcome::Aborted(AbortKind::Conflict)
                }
            },
            Err(Abort::Retry(kind)) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::SwAbort);
                Outcome::Aborted(kind)
            }
            Err(Abort::Cancel) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::Cancelled);
                Outcome::Cancelled
            }
        }
    }

    /// Figure 1 TxCommit (plus the Figure 7 changes under `Strong`).
    fn sw_commit(&self, tid: usize, ts: &mut ThreadState, rv: u64) -> Result<(), ()> {
        if ts.wset.is_empty() {
            // Read-only: incremental validation already established a
            // consistent snapshot at the last read (Figure 1 line 12).
            return Ok(());
        }
        if self.cfg.progress == Progress::Strong {
            // Fixed acquisition order avoids write-write livelock (§3.6).
            let heap = &self.heap;
            ts.wset.sort_by_key(|e| {
                (
                    heap.lock_cell(e.addr as usize) as *const AtomicU64 as usize,
                    e.addr,
                )
            });
        }

        // Acquire write-set locks by CAS from the encounter value.
        ts.acquired.clear();
        // A fresh acquisition sequence: clears any stale stripe state a
        // crash unwind left behind mid-commit.
        #[cfg(feature = "locksan")]
        locksan::on_stripe_release_all();
        for e in &ts.wset {
            let cell = self.heap.lock_cell(e.addr as usize);
            if let Some(&(_, pre)) = ts
                .acquired
                .iter()
                .find(|(a, _)| std::ptr::eq(self.heap.lock_cell(*a as usize), cell))
            {
                // Another address sharing this (table-mapped) lock: the
                // encounter values must agree, else the lock cycled
                // between the two encounters.
                if pre != e.enc {
                    self.sw_release(ts, false);
                    return Err(());
                }
                continue;
            }
            match self.htm.nt_cas(cell, e.enc.0, e.enc.sw_acquired(tid).0) {
                Ok(_) => {
                    // Strong sorts the wset by the canonical key, so the
                    // distinct cells acquired here must rank upward; Weak
                    // try-locks unordered and claims nothing.
                    #[cfg(feature = "locksan")]
                    locksan::on_stripe_acquire(
                        cell as *const AtomicU64 as usize as u64,
                        self.cfg.progress == Progress::Strong,
                        "nvhalt::sw_commit",
                    );
                    ts.acquired.push((e.addr, e.enc))
                }
                Err(_) => {
                    self.stats.bump(tid, Counter::StripeContended);
                    self.sw_release(ts, false);
                    return Err(());
                }
            }
        }

        // Validate the read set — skippable under Strong when the global
        // clock CAS shows no concurrent software writer committed, in
        // which case only hardware-version checks are needed (Figure 7).
        let mut skip_validation = false;
        if self.cfg.progress == Progress::Strong {
            pmem::latency::spin_ns(self.cfg.clock_ns);
        }
        if self.cfg.progress == Progress::Strong
            && self
                .gclock
                .compare_exchange(rv, rv + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            skip_validation = true;
            for r in &ts.rset {
                let cur = LockWord(self.htm.nt_load(self.heap.lock_cell(r.addr as usize)));
                // A foreign-held lock (a software writer or a prepared
                // transaction mid-decision) may release with an unchanged
                // hver, so the hver check alone cannot clear it.
                if cur.hver() != r.enc.hver() || (cur.is_locked() && cur.owner() != tid) {
                    self.sw_release(ts, false);
                    return Err(());
                }
            }
        }
        if !skip_validation {
            for r in &ts.rset {
                let cur = LockWord(self.htm.nt_load(self.heap.lock_cell(r.addr as usize)));
                if !LockWord::validates_against(cur, r.enc, tid) {
                    self.sw_release(ts, false);
                    return Err(());
                }
            }
            if self.cfg.progress == Progress::Strong {
                // Every committing software writer must advance the clock
                // *before* its writes become visible: a reader that later
                // wins the CAS from its own start value may then trust
                // that no software writer committed inside its window.
                self.gclock.fetch_add(1, Ordering::AcqRel);
            }
        }

        // Guaranteed to commit: persist and apply the write set while the
        // locks are held (Figure 1 lines 16–21), as a one-fence group
        // commit over the whole write set.
        let _psan = self.pmem.pool().psan_scope(tid, "nvhalt::sw_commit");
        self.pmem
            .preserve_witnesses(tid, ts.wset.iter().map(|e| e.addr as usize));
        let meta = Meta::pack(tid, ts.pver);
        ts.flush_lines.clear();
        for e in &ts.wset {
            let data = self.heap.data_cell(e.addr as usize);
            let old = data.load(Ordering::Acquire);
            self.pmem
                .stage_entry(tid, e.addr as usize, old, e.val, meta);
            ts.flush_lines.push(self.pmem.entry_line(e.addr as usize));
            data.store(e.val, Ordering::Release);
        }
        self.pmem.flush_lines(tid, &mut ts.flush_lines);
        ts.pver += 1;
        self.persist_commit_marker(tid, ts.pver, ts.wset.len() as u64, meta);
        self.sw_release(ts, true);
        Ok(())
    }

    /// Release commit-time locks: on commit bump to the next even version;
    /// on abort restore the pre-acquire word (nothing was written).
    fn sw_release(&self, ts: &mut ThreadState, commit: bool) {
        for &(a, pre) in &ts.acquired {
            let cell = self.heap.lock_cell(a as usize);
            let word = if commit {
                // held = pre.sw_acquired(tid); released bumps sver again.
                LockWord(self.htm.nt_load(cell)).released()
            } else {
                pre
            };
            self.htm.nt_store(cell, word.0);
        }
        ts.acquired.clear();
        #[cfg(feature = "locksan")]
        locksan::on_stripe_release_all();
    }

    // ------------------------------------------------------------------
    // Prepared transactions (two-phase commit participant)
    // ------------------------------------------------------------------

    fn attempt_prepare<R>(
        &self,
        ts: &mut ThreadState,
        tid: usize,
        attempt: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> Outcome<R> {
        ts.rset.clear();
        ts.wset.clear();
        debug_assert!(ts.alloc_log.is_empty());
        let rv = match self.cfg.progress {
            Progress::Strong => self.gclock.load(Ordering::Acquire),
            Progress::Weak => 0,
        };
        let mut oom = false;
        let body_res = {
            let mut tx = SwTxn {
                tm: self,
                tid,
                attempt,
                rset: &mut ts.rset,
                wset: &mut ts.wset,
                alloc_log: &mut ts.alloc_log,
                oom: &mut oom,
            };
            body(&mut tx)
        };
        if oom {
            self.alloc.abort(tid, &mut ts.alloc_log);
            panic!("transactional heap exhausted (prepare)");
        }
        match body_res {
            Ok(r) => match self.sw_prepare(tid, ts, rv) {
                Ok(()) => {
                    // The allocation log stays pending (and the SwCommit /
                    // Cancelled stat unbumped) until the decision.
                    ts.prepared = true;
                    Outcome::Committed(r)
                }
                Err(()) => {
                    self.alloc.abort(tid, &mut ts.alloc_log);
                    self.stats.bump(tid, Counter::SwAbort);
                    Outcome::Aborted(AbortKind::Conflict)
                }
            },
            Err(Abort::Retry(kind)) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::SwAbort);
                Outcome::Aborted(kind)
            }
            Err(Abort::Cancel) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::Cancelled);
                Outcome::Cancelled
            }
        }
    }

    /// The Figure 1 commit protocol stopped at the point of no return:
    /// locks over the write set **and** the read set are acquired, the
    /// write set is persisted and applied in place, but the thread's
    /// persistent version is not advanced and nothing is released.
    ///
    /// Because every staged entry is stamped with the *current* pver, a
    /// crash in this state rolls the writes back (recovery sees
    /// `ver >= durable_pver`); because the locks stay held, no other
    /// transaction can observe them. Read locks are taken too so the
    /// prepared snapshot stays pinned until the coordinator's decision.
    fn sw_prepare(&self, tid: usize, ts: &mut ThreadState, rv: u64) -> Result<(), ()> {
        let heap = &self.heap;
        // Acquisition plan over wset ∪ rset, deduplicated by lock cell.
        // Fixed (cell, addr) order avoids livelock between preparers.
        let mut plan: Vec<(usize, u64, LockWord)> = ts
            .wset
            .iter()
            .map(|e| (e.addr, e.enc))
            .chain(ts.rset.iter().map(|r| (r.addr, r.enc)))
            .map(|(a, enc)| {
                (
                    heap.lock_cell(a as usize) as *const AtomicU64 as usize,
                    a,
                    enc,
                )
            })
            .collect();
        plan.sort_unstable_by_key(|&(cell, addr, _)| (cell, addr));
        ts.acquired.clear();
        #[cfg(feature = "locksan")]
        locksan::on_stripe_release_all();
        let mut last_cell: Option<(usize, LockWord)> = None;
        for &(cell_id, addr, enc) in &plan {
            if let Some((lc, lenc)) = last_cell {
                if lc == cell_id {
                    // Another address sharing this (table-mapped) lock:
                    // the encounter values must agree, else the lock
                    // cycled between the two encounters.
                    if lenc != enc {
                        self.sw_release(ts, false);
                        return Err(());
                    }
                    continue;
                }
            }
            last_cell = Some((cell_id, enc));
            let cell = heap.lock_cell(addr as usize);
            match self.htm.nt_cas(cell, enc.0, enc.sw_acquired(tid).0) {
                Ok(_) => {
                    // The plan is always (cell, addr)-sorted: preparers
                    // claim canonical order regardless of progress mode.
                    #[cfg(feature = "locksan")]
                    locksan::on_stripe_acquire(cell_id as u64, true, "nvhalt::sw_prepare");
                    ts.acquired.push((addr, enc))
                }
                Err(_) => {
                    self.stats.bump(tid, Counter::StripeContended);
                    self.sw_release(ts, false);
                    return Err(());
                }
            }
        }
        // CAS-from-encounter success on every read-set lock *is* the read
        // validation: nothing changed since the encounter, and nothing
        // can change until release. Publish on the global clock like any
        // committing software writer (see sw_commit).
        if self.cfg.progress == Progress::Strong && !ts.wset.is_empty() {
            pmem::latency::spin_ns(self.cfg.clock_ns);
            if self
                .gclock
                .compare_exchange(rv, rv + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                self.gclock.fetch_add(1, Ordering::AcqRel);
            }
        }
        // Stage the writes durably *below* the current pver, with one
        // coalesced flush pass over the write set's distinct entry lines.
        let _psan = self.pmem.pool().psan_scope(tid, "nvhalt::prepare");
        self.pmem
            .preserve_witnesses(tid, ts.wset.iter().map(|e| e.addr as usize));
        let meta = Meta::pack(tid, ts.pver);
        ts.pundo.clear();
        ts.flush_lines.clear();
        for e in &ts.wset {
            let data = heap.data_cell(e.addr as usize);
            let old = data.load(Ordering::Acquire);
            ts.pundo.push((e.addr, old));
            self.pmem
                .stage_entry(tid, e.addr as usize, old, e.val, meta);
            ts.flush_lines.push(self.pmem.entry_line(e.addr as usize));
            data.store(e.val, Ordering::Release);
        }
        self.pmem.flush_lines(tid, &mut ts.flush_lines);
        self.pmem.sfence(tid);
        // The coordinator may record its durable decision as soon as
        // `prepare` returns: every staged entry must already be fenced.
        self.pmem
            .pool()
            .durability_point(tid, "nvhalt::prepare_staged");
        Ok(())
    }

    /// Aggregate statistics handle (shared with the pmem pool).
    pub fn stats_handle(&self) -> Arc<TmStats> {
        self.stats.clone()
    }
}

impl TmPrepare for NvHalt {
    fn prepare<R>(
        &self,
        tid: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> TxResult<R> {
        assert!(tid < self.cfg.max_threads, "tid out of range");
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(
            !ts.prepared,
            "prepare while a prepared transaction is outstanding"
        );
        // Always the software path: the hardware path does not lock its
        // read set, so it cannot pin a cross-TM snapshot until a decision.
        let mut attempt = 0usize;
        loop {
            self.pmem.pool().crash_point(tid);
            match self.attempt_prepare(ts, tid, attempt, body) {
                Outcome::Committed(r) => return Ok(r),
                Outcome::Cancelled => return Err(Cancelled),
                Outcome::Aborted(_) => {
                    ts.seed = ts.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    self.cfg.policy.backoff(ts.seed, attempt);
                }
            }
            attempt += 1;
        }
    }

    fn commit_prepared(&self, tid: usize) {
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(ts.prepared, "commit_prepared without a prepared txn");
        self.pmem.pool().crash_point(tid);
        // Advancing the durable pver past the staged entries *is* the
        // commit: from here recovery keeps them (Figure 1 epilogue).
        let _psan = self.pmem.pool().psan_scope(tid, "nvhalt::commit_prepared");
        ts.pver += 1;
        self.pmem.persist_pver(tid, ts.pver);
        self.pmem.sfence(tid);
        self.sw_release(ts, true);
        self.alloc.commit(tid, &mut ts.alloc_log);
        ts.pundo.clear();
        ts.prepared = false;
        self.stats.bump(tid, Counter::SwCommit);
    }

    fn abort_prepared(&self, tid: usize) {
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(ts.prepared, "abort_prepared without a prepared txn");
        // Restore the volatile heap, then overwrite each staged entry so
        // both its data and back fields hold the pre-transaction value.
        let _psan = self.pmem.pool().psan_scope(tid, "nvhalt::abort_prepared");
        let meta = Meta::pack(tid, ts.pver);
        ts.flush_lines.clear();
        for &(a, old) in &ts.pundo {
            self.heap
                .data_cell(a as usize)
                .store(old, Ordering::Release);
            self.pmem.stage_entry(tid, a as usize, old, old, meta);
            ts.flush_lines.push(self.pmem.entry_line(a as usize));
        }
        self.pmem.flush_lines(tid, &mut ts.flush_lines);
        self.pmem.sfence(tid);
        // Consume the generation the aborted entries are stamped with: a
        // trusted marker pushes the durable pver past them so they are
        // neither resurrected by recovery nor miscounted as witnesses of
        // this thread's *next* (counted, one-fence) commit.
        if !ts.pundo.is_empty() {
            ts.pver += 1;
            self.pmem.persist_pver(tid, ts.pver);
            self.pmem.sfence(tid);
        }
        // Release with a version bump (not the pre-acquire word): the data
        // words changed while locked, so restoring the encounter value
        // would let a stale reader validate across the blip.
        self.sw_release(ts, true);
        self.alloc.abort(tid, &mut ts.alloc_log);
        ts.pundo.clear();
        ts.prepared = false;
        self.stats.bump(tid, Counter::Cancelled);
    }

    fn has_prepared(&self, tid: usize) -> bool {
        self.threads[tid].lock().prepared
    }
}

impl Tm for NvHalt {
    fn txn<R>(
        &self,
        tid: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> TxResult<R> {
        assert!(tid < self.cfg.max_threads, "tid out of range");
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(
            !ts.prepared,
            "txn while a prepared transaction is outstanding"
        );
        let mut attempt = 0usize;
        let mut capacity_aborts = 0usize;
        loop {
            self.pmem.pool().crash_point(tid);
            let choice = self.cfg.policy.choose(attempt, capacity_aborts);
            let outcome = match choice {
                PathChoice::Hw => self.attempt_hw(ts, tid, attempt, body),
                PathChoice::Sw => self.attempt_sw(ts, tid, attempt, body),
            };
            match outcome {
                Outcome::Committed(r) => return Ok(r),
                Outcome::Cancelled => return Err(Cancelled),
                Outcome::Aborted(kind) => {
                    if kind == AbortKind::Capacity {
                        capacity_aborts += 1;
                    }
                    if choice == PathChoice::Sw {
                        ts.seed = ts.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        self.cfg.policy.backoff(ts.seed, attempt);
                    }
                }
            }
            attempt += 1;
        }
    }

    fn max_threads(&self) -> usize {
        self.cfg.max_threads
    }

    fn read_raw(&self, a: Addr) -> Word {
        self.heap.data_cell(a.index()).load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn name(&self) -> &'static str {
        self.cfg.variant_name()
    }
}

// ----------------------------------------------------------------------
// Hardware-path transaction wrapper
// ----------------------------------------------------------------------

struct HwTxn<'a, 'env, 't> {
    tm: &'env NvHalt,
    tid: usize,
    attempt: usize,
    htx: &'a mut HtmTxn<'env, 't>,
    hlog: &'a mut Vec<(u64, u64)>,
    hlocks: &'a mut Vec<u64>,
    alloc_log: &'a mut TxnLog,
    oom: &'a mut bool,
    htm_aborted: bool,
}

impl<'a, 'env, 't> HwTxn<'a, 'env, 't> {
    /// Map an HTM-level abort into the TM abort type, remembering that the
    /// hardware attempt is already dead (so the driver must not xabort
    /// again and overwrite the recorded kind).
    #[inline]
    fn lift<T>(&mut self, r: Result<T, Xabort>) -> Result<T, Abort> {
        r.map_err(|Xabort| {
            self.htm_aborted = true;
            Abort::CONFLICT
        })
    }

    #[inline]
    fn xab(&mut self, code: u32) -> Abort {
        let Xabort = self.htx.xabort(code);
        self.htm_aborted = true;
        Abort::CONFLICT
    }
}

impl<'a, 'env, 't> Txn for HwTxn<'a, 'env, 't> {
    fn read(&mut self, a: Addr) -> Result<Word, Abort> {
        let idx = self.tm.check_addr(a)?;
        let lock = self.tm.heap.lock_cell(idx);
        // Colocated locks share the data word's cache line: the lock and
        // the value arrive with one tracked line access (the CL layout's
        // prefetching benefit, §4).
        let (lv, val) = if self.tm.heap.is_colocated() {
            let r = self.htx.read2(lock, self.tm.heap.data_cell(idx));
            let (l, v) = self.lift(r)?;
            (LockWord(l), v)
        } else {
            let r = self.htx.read(lock);
            let l = LockWord(self.lift(r)?);
            if l.is_locked() && l.owner() != self.tid {
                return Err(self.xab(CODE_LOCKED));
            }
            let r = self.htx.read(self.tm.heap.data_cell(idx));
            (l, self.lift(r)?)
        };
        if lv.is_locked() && lv.owner() != self.tid {
            return Err(self.xab(CODE_LOCKED));
        }
        Ok(val)
    }

    fn write(&mut self, a: Addr, v: Word) -> Result<(), Abort> {
        let idx = self.tm.check_addr(a)?;
        let lock = self.tm.heap.lock_cell(idx);
        let persist = self.tm.config().persist_hw;
        if persist && self.tm.heap.is_colocated() {
            // One tracked line carries the lock and the old value.
            let r = self.htx.read2(lock, self.tm.heap.data_cell(idx));
            let (l, old) = self.lift(r)?;
            let lv = LockWord(l);
            if lv.is_locked() && lv.owner() != self.tid {
                return Err(self.xab(CODE_LOCKED));
            }
            if !lv.is_locked() {
                let r = self.htx.write(lock, lv.hw_acquired(self.tid).0);
                self.lift(r)?;
                self.hlocks.push(a.0);
                // Colocated: one lock per address, so a fresh acquisition
                // means this address was not logged yet.
                self.hlog.push((a.0, old));
            }
        } else {
            let r = self.htx.read(lock);
            let lv = LockWord(self.lift(r)?);
            if lv.is_locked() && lv.owner() != self.tid {
                return Err(self.xab(CODE_LOCKED));
            }
            if persist {
                if !lv.is_locked() {
                    let r = self.htx.write(lock, lv.hw_acquired(self.tid).0);
                    self.lift(r)?;
                    self.hlocks.push(a.0);
                }
                if !self.hlog.iter().any(|&(addr, _)| addr == a.0) {
                    let r = self.htx.read(self.tm.heap.data_cell(idx));
                    let old = self.lift(r)?;
                    self.hlog.push((a.0, old));
                }
            }
        }
        let r = self.htx.write(self.tm.heap.data_cell(idx), v);
        self.lift(r)
    }

    fn alloc(&mut self, words: usize) -> Result<Addr, Abort> {
        match self.tm.alloc.alloc(self.tid, words, self.alloc_log) {
            Some(a) => Ok(Addr(a)),
            None => {
                *self.oom = true;
                Err(self.xab(CODE_USER_RETRY))
            }
        }
    }

    fn free(&mut self, a: Addr, words: usize) -> Result<(), Abort> {
        self.tm.alloc.free(a.0, words, self.alloc_log);
        Ok(())
    }

    fn is_hw(&self) -> bool {
        true
    }

    fn attempt(&self) -> usize {
        self.attempt
    }
}

// ----------------------------------------------------------------------
// Software-path transaction wrapper
// ----------------------------------------------------------------------

struct SwTxn<'a> {
    tm: &'a NvHalt,
    tid: usize,
    attempt: usize,
    rset: &'a mut Vec<RsEntry>,
    wset: &'a mut Vec<WsEntry>,
    alloc_log: &'a mut TxnLog,
    oom: &'a mut bool,
}

impl<'a> SwTxn<'a> {
    /// Figure 1's `validate(sRdSet)`: every read-set lock still carries
    /// its encounter value (no commit-time self-locks exist during the
    /// read phase, so plain equality suffices).
    fn validate(&self) -> bool {
        self.rset.iter().all(|r| {
            let cur = LockWord(self.tm.htm.nt_load(self.tm.heap.lock_cell(r.addr as usize)));
            cur == r.enc
        })
    }
}

impl<'a> Txn for SwTxn<'a> {
    fn read(&mut self, a: Addr) -> Result<Word, Abort> {
        let idx = self.tm.check_addr(a)?;
        pmem::latency::spin_ns(self.tm.cfg.instr_ns);
        if let Some(e) = self.wset.iter().rev().find(|e| e.addr == a.0) {
            return Ok(e.val);
        }
        let lv = LockWord(self.tm.htm.nt_load(self.tm.heap.lock_cell(idx)));
        if lv.is_locked() {
            return Err(Abort::CONFLICT);
        }
        let val = self.tm.heap.data_cell(idx).load(Ordering::Acquire);
        self.rset.push(RsEntry { addr: a.0, enc: lv });
        if !self.validate() {
            return Err(Abort::CONFLICT);
        }
        Ok(val)
    }

    fn write(&mut self, a: Addr, v: Word) -> Result<(), Abort> {
        let idx = self.tm.check_addr(a)?;
        pmem::latency::spin_ns(self.tm.cfg.instr_ns);
        if let Some(e) = self.wset.iter_mut().rev().find(|e| e.addr == a.0) {
            e.val = v;
            return Ok(());
        }
        let lv = LockWord(self.tm.htm.nt_load(self.tm.heap.lock_cell(idx)));
        if lv.is_locked() {
            return Err(Abort::CONFLICT);
        }
        self.wset.push(WsEntry {
            addr: a.0,
            enc: lv,
            val: v,
        });
        Ok(())
    }

    fn alloc(&mut self, words: usize) -> Result<Addr, Abort> {
        match self.tm.alloc.alloc(self.tid, words, self.alloc_log) {
            Some(a) => Ok(Addr(a)),
            None => {
                *self.oom = true;
                Err(Abort::CONFLICT)
            }
        }
    }

    fn free(&mut self, a: Addr, words: usize) -> Result<(), Abort> {
        self.tm.alloc.free(a.0, words, self.alloc_log);
        Ok(())
    }

    fn is_hw(&self) -> bool {
        false
    }

    fn attempt(&self) -> usize {
        self.attempt
    }
}
