//! The dual-version fine-grained locks at the heart of NV-HALT (§3.1, §3.6).
//!
//! Each lock is one 64-bit word packing:
//!
//! ```text
//! [ hver : 16 ][ owner : 8 ][ sver : 40 ]
//! ```
//!
//! * `sver` — the software version, incremented on every acquisition *and*
//!   release (TL2-style: odd means locked). 40 bits wrap after 2^39
//!   acquisitions of one lock; far beyond any run.
//! * `owner` — the holder's thread id while locked (supports the "locked
//!   by the current thread" checks of Figures 1 and 5). 8 bits limit the
//!   TM to 256 threads.
//! * `hver` — the hardware version of the strongly progressive variant
//!   (Figure 7): incremented only when a *hardware* transaction acquires
//!   the lock, letting software transactions detect conflicts with
//!   concurrent hardware transactions after a successful global-clock
//!   advance. 16 bits wrap after 65536 hardware acquisitions; a software
//!   transaction would have to stay open across that many conflicting
//!   hardware commits on one lock to alias, at which point a spurious
//!   *validation success* would require the count to match exactly — the
//!   same wrap-around exposure TL2-family TMs accept.
//!
//! The weakly progressive variant uses the same layout (hardware
//! acquisitions still bump `hver`; it is simply never read).

/// A decoded lock word. Lock words live in `AtomicU64` cells; this type is
/// the pure value logic so it can be tested exhaustively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockWord(pub u64);

const SVER_BITS: u32 = 40;
const OWNER_BITS: u32 = 8;
const SVER_MASK: u64 = (1 << SVER_BITS) - 1;
const OWNER_MASK: u64 = (1 << OWNER_BITS) - 1;

/// Maximum thread id representable in a lock word.
pub const MAX_LOCK_THREADS: usize = 1 << OWNER_BITS;

impl LockWord {
    /// The initial (unlocked, version 0) lock word.
    pub const INIT: LockWord = LockWord(0);

    /// Software version (odd = locked).
    #[inline]
    pub fn sver(self) -> u64 {
        self.0 & SVER_MASK
    }

    /// Owner thread id (meaningful only while locked).
    #[inline]
    pub fn owner(self) -> usize {
        ((self.0 >> SVER_BITS) & OWNER_MASK) as usize
    }

    /// Hardware version.
    #[inline]
    pub fn hver(self) -> u64 {
        self.0 >> (SVER_BITS + OWNER_BITS)
    }

    /// True if the lock is held.
    #[inline]
    pub fn is_locked(self) -> bool {
        self.0 & 1 == 1
    }

    /// True if the lock is held by `tid`.
    #[inline]
    pub fn is_locked_by(self, tid: usize) -> bool {
        self.is_locked() && self.owner() == tid
    }

    #[inline]
    fn pack(sver: u64, owner: usize, hver: u64) -> LockWord {
        LockWord(
            (sver & SVER_MASK)
                | (((owner as u64) & OWNER_MASK) << SVER_BITS)
                | ((hver & 0xffff) << (SVER_BITS + OWNER_BITS)),
        )
    }

    /// The word a *software* transaction installs to acquire this lock
    /// (CAS from the unlocked encounter value). `sver` becomes odd; `hver`
    /// is untouched.
    #[inline]
    pub fn sw_acquired(self, tid: usize) -> LockWord {
        debug_assert!(!self.is_locked());
        Self::pack((self.sver() + 1) & SVER_MASK, tid, self.hver())
    }

    /// The word a *hardware* transaction writes to acquire this lock
    /// (inside the transaction). Bumps `sver` (odd) and `hver` — Figure 7
    /// line 5 (`lk.sLockVer++; lk.hLockVer++`).
    #[inline]
    pub fn hw_acquired(self, tid: usize) -> LockWord {
        debug_assert!(!self.is_locked());
        Self::pack(
            (self.sver() + 1) & SVER_MASK,
            tid,
            (self.hver() + 1) & 0xffff,
        )
    }

    /// The word stored to release a held lock: `sver` bumps to the next
    /// even value, owner cleared, `hver` untouched.
    #[inline]
    pub fn released(self) -> LockWord {
        debug_assert!(self.is_locked());
        Self::pack((self.sver() + 1) & SVER_MASK, 0, self.hver())
    }

    /// Read-set validation (Figure 1): `current` is consistent with the
    /// `encounter` value recorded at first access iff the lock word is
    /// unchanged, or the only change is that *this* thread now holds it
    /// (commit-time locking locks one's own write set before validating).
    #[inline]
    pub fn validates_against(current: LockWord, encounter: LockWord, tid: usize) -> bool {
        current == encounter || (current.is_locked_by(tid) && current == encounter.sw_acquired(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_unlocked_zero() {
        let l = LockWord::INIT;
        assert!(!l.is_locked());
        assert_eq!(l.sver(), 0);
        assert_eq!(l.owner(), 0);
        assert_eq!(l.hver(), 0);
    }

    #[test]
    fn sw_acquire_release_cycle() {
        let l = LockWord::INIT;
        let held = l.sw_acquired(7);
        assert!(held.is_locked());
        assert!(held.is_locked_by(7));
        assert!(!held.is_locked_by(3));
        assert_eq!(held.sver(), 1);
        assert_eq!(held.hver(), 0);
        let rel = held.released();
        assert!(!rel.is_locked());
        assert_eq!(rel.sver(), 2);
        assert_eq!(rel.owner(), 0);
        assert_eq!(rel.hver(), 0);
    }

    #[test]
    fn hw_acquire_bumps_both_versions() {
        let l = LockWord::INIT;
        let held = l.hw_acquired(3);
        assert!(held.is_locked_by(3));
        assert_eq!(held.sver(), 1);
        assert_eq!(held.hver(), 1);
        let rel = held.released();
        assert_eq!(rel.sver(), 2);
        assert_eq!(rel.hver(), 1, "release leaves hver");
    }

    #[test]
    fn validation_accepts_unchanged_and_self_locked() {
        let enc = LockWord::INIT.sw_acquired(1).released(); // sver = 2
        assert!(LockWord::validates_against(enc, enc, 5));
        let self_locked = enc.sw_acquired(5);
        assert!(LockWord::validates_against(self_locked, enc, 5));
        assert!(
            !LockWord::validates_against(self_locked, enc, 6),
            "someone else's lock does not validate"
        );
    }

    #[test]
    fn validation_rejects_version_change() {
        let enc = LockWord::INIT;
        let changed = enc.sw_acquired(2).released();
        assert!(!LockWord::validates_against(changed, enc, 1));
        // Same sver but hver changed (hardware write cycle) also rejects:
        let hw_cycle = enc.hw_acquired(2).released();
        assert_eq!(hw_cycle.sver(), enc.sver() + 2);
        assert!(!LockWord::validates_against(hw_cycle, enc, 1));
    }

    #[test]
    fn hver_distinguishes_hw_from_sw_cycles() {
        let enc = LockWord::INIT;
        let sw_cycle = enc.sw_acquired(2).released();
        let hw_cycle = enc.hw_acquired(2).released();
        assert_eq!(sw_cycle.hver(), enc.hver());
        assert_eq!(hw_cycle.hver(), enc.hver() + 1);
    }

    #[test]
    fn owner_field_range() {
        let held = LockWord::INIT.sw_acquired(MAX_LOCK_THREADS - 1);
        assert_eq!(held.owner(), MAX_LOCK_THREADS - 1);
    }

    #[test]
    fn hver_wraps_at_16_bits() {
        let mut l = LockWord::INIT;
        for _ in 0..(1 << 16) {
            l = l.hw_acquired(0).released();
        }
        assert_eq!(l.hver(), 0, "wrapped");
        assert!(!l.is_locked());
    }

    #[test]
    fn sver_parity_is_lock_bit() {
        let mut l = LockWord::INIT;
        for i in 0..100 {
            assert!(!l.is_locked());
            l = if i % 2 == 0 {
                l.sw_acquired(i % 7)
            } else {
                l.hw_acquired(i % 7)
            };
            assert!(l.is_locked());
            l = l.released();
        }
    }
}
