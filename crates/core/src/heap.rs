//! The volatile heap and the two lock-mapping strategies (§4,
//! "Fine-Grained Locks").
//!
//! NV-HALT protects every transactional address with a versioned lock.
//! Two mappings are implemented, exactly as evaluated in the paper:
//!
//! * **Lock table** — a fixed-size table of locks; addresses hash to
//!   table entries, so multiple addresses may share a lock, but the memory
//!   layout of user data is unaffected. This is the default (plain
//!   NV-HALT / NV-HALT-SP).
//! * **Colocated** — every address has a unique lock placed in the
//!   adjacent word (the heap is laid out with stride 2), so caching a data
//!   word prefetches its lock. This is the NV-HALT-CL configuration.

use std::sync::atomic::AtomicU64;

/// Lock-mapping strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockStrategy {
    /// Fixed-size lock table with `1 << locks_log2` entries.
    Table {
        /// log2 of the number of locks.
        locks_log2: u32,
    },
    /// One lock colocated next to each data word (NV-HALT-CL).
    Colocated,
}

impl Default for LockStrategy {
    fn default() -> Self {
        LockStrategy::Table { locks_log2: 20 }
    }
}

/// The volatile (DRAM) heap: user words plus their locks.
pub struct Heap {
    vol: Box<[AtomicU64]>,
    table: Box<[AtomicU64]>,
    mask: usize,
    colocated: bool,
    heap_words: usize,
}

impl Heap {
    /// Create a zeroed heap of `heap_words` user words.
    pub fn new(heap_words: usize, strategy: LockStrategy) -> Self {
        let (vol_len, table_len, colocated) = match strategy {
            LockStrategy::Table { locks_log2 } => (heap_words, 1usize << locks_log2, false),
            LockStrategy::Colocated => (heap_words * 2, 1, true),
        };
        Heap {
            vol: (0..vol_len).map(|_| AtomicU64::new(0)).collect(),
            table: (0..table_len).map(|_| AtomicU64::new(0)).collect(),
            mask: table_len - 1,
            colocated,
            heap_words,
        }
    }

    /// Number of user words.
    #[inline]
    pub fn heap_words(&self) -> usize {
        self.heap_words
    }

    /// True if a user address is in range.
    #[inline]
    pub fn in_range(&self, a: usize) -> bool {
        a < self.heap_words
    }

    /// The data word cell for address `a`.
    #[inline]
    pub fn data_cell(&self, a: usize) -> &AtomicU64 {
        if self.colocated {
            &self.vol[a * 2]
        } else {
            &self.vol[a]
        }
    }

    /// The lock cell protecting address `a`. The table mapping follows
    /// TL2's: consecutive addresses use consecutive table entries, so the
    /// locks of one object share cache lines (addresses a table-length
    /// apart collide).
    #[inline]
    pub fn lock_cell(&self, a: usize) -> &AtomicU64 {
        if self.colocated {
            &self.vol[a * 2 + 1]
        } else {
            &self.table[a & self.mask]
        }
    }

    /// True if addresses `a` and `b` share a lock.
    pub fn same_lock(&self, a: usize, b: usize) -> bool {
        std::ptr::eq(self.lock_cell(a), self.lock_cell(b))
    }

    /// True in colocated-lock mode (each lock shares a cache line with
    /// its data word).
    #[inline]
    pub fn is_colocated(&self) -> bool {
        self.colocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn table_strategy_shares_locks_but_not_data() {
        let h = Heap::new(1 << 12, LockStrategy::Table { locks_log2: 4 });
        assert_eq!(h.heap_words(), 1 << 12);
        // With 16 locks and 4096 addresses, collisions must exist.
        let mut shared = false;
        for a in 1..4096 {
            assert!(!std::ptr::eq(h.data_cell(0), h.data_cell(a)));
            if h.same_lock(0, a) {
                shared = true;
            }
        }
        assert!(shared, "hash table of 16 locks must collide");
    }

    #[test]
    fn colocated_strategy_gives_unique_adjacent_locks() {
        let h = Heap::new(64, LockStrategy::Colocated);
        for a in 0..64 {
            for b in 0..64 {
                assert_eq!(h.same_lock(a, b), a == b);
            }
            // Lock is the adjacent word.
            let d = h.data_cell(a) as *const AtomicU64 as usize;
            let l = h.lock_cell(a) as *const AtomicU64 as usize;
            assert_eq!(l - d, 8);
        }
    }

    #[test]
    fn data_and_locks_start_zeroed_and_independent() {
        let h = Heap::new(8, LockStrategy::Colocated);
        h.data_cell(3).store(77, Ordering::Relaxed);
        assert_eq!(h.data_cell(3).load(Ordering::Relaxed), 77);
        assert_eq!(h.lock_cell(3).load(Ordering::Relaxed), 0);
        assert_eq!(h.data_cell(4).load(Ordering::Relaxed), 0);
    }

    #[test]
    fn in_range_bounds() {
        let h = Heap::new(10, LockStrategy::default());
        assert!(h.in_range(9));
        assert!(!h.in_range(10));
    }
}
