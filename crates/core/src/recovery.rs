//! Crash recovery for NV-HALT (§3.5).
//!
//! Recovery traverses the annotated persistent image and reverts to its
//! old (`back`) value every address whose entry's version number has not
//! been superseded by the owning thread's durable persistent version
//! number — i.e. entries stamped `{tid, v}` with `v >= durable_pver(tid)`
//! belong to a transaction whose persist phase did not complete before the
//! crash, and are rolled back (undo semantics, as in Trinity).
//!
//! Completing the roll-back durably makes recovery idempotent: a crash
//! during recovery itself simply re-reverts the same entries.
//!
//! The allocator's volatile state is rebuilt from a caller-supplied
//! iterator over the blocks still in use (§4: "the user must provide an
//! iterator that the allocator can utilize to determine which parts of
//! memory are in use").

use crate::config::NvHaltConfig;
use crate::engine::NvHalt;
use crate::heap::Heap;
use crate::lock::MAX_LOCK_THREADS;
use pmem::annot::AnnotLayout;
use pmem::pool::DurableImage;
use pmem::AnnotPmem;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tm::stats::TmStats;
use txalloc::{AllocConfig, TxAlloc};

impl NvHalt {
    /// Capture the durable image after a crash. All worker threads must
    /// have been joined first.
    pub fn crash_image(&self) -> DurableImage {
        assert!(
            self.pmem.pool().is_crashed(),
            "crash_image without a crash: call crash() first"
        );
        self.pmem.pool().snapshot_durable()
    }

    /// Recover a new NV-HALT instance from a crash image.
    ///
    /// `used_blocks` enumerates the `(address, words)` blocks reachable in
    /// the recovered state (run the data structures' recovery walks over
    /// the returned instance's `read_raw` *before* allocating — see
    /// [`NvHalt::recover_with`] for the two-phase variant used when the
    /// walk itself needs the recovered heap).
    pub fn recover(
        cfg: NvHaltConfig,
        image: &DurableImage,
        used_blocks: impl IntoIterator<Item = (u64, usize)>,
    ) -> NvHalt {
        let tm = Self::recover_with(cfg, image);
        tm.alloc.rebuild(used_blocks);
        tm
    }

    /// Phase one of recovery: rebuild the heap and persistent state from
    /// the image, leaving the allocator empty. The caller must walk the
    /// recovered heap (via `read_raw`) to enumerate live blocks and feed
    /// them to [`NvHalt::rebuild_allocator`] before running transactions
    /// that allocate.
    pub fn recover_with(cfg: NvHaltConfig, image: &DurableImage) -> NvHalt {
        assert!(cfg.max_threads >= 1 && cfg.max_threads <= MAX_LOCK_THREADS);
        let layout = AnnotLayout {
            heap_words: cfg.heap_words,
            max_threads: cfg.max_threads,
        };
        assert_eq!(
            image.len(),
            layout.total_words().div_ceil(pmem::LINE_WORDS) * pmem::LINE_WORDS,
            "image does not match configuration"
        );
        let stats = Arc::new(TmStats::new(cfg.max_threads));
        let pmem = AnnotPmem::from_image(layout, &cfg.pm, image, Some(stats.clone()));
        let heap = Heap::new(cfg.heap_words, cfg.locks);

        // Thresholds fold in the counted-marker check: a one-fence commit
        // whose marker is durable but whose generation is missing pad
        // witnesses is torn, and the whole generation (threshold - 1 = its
        // stamp) rolls back. The verdicts are pinned durably first —
        // neutralization below destroys the evidence they came from, so a
        // crash mid-recovery must not be able to re-derive different ones.
        let pvers = layout.revert_thresholds(image);
        pmem.pin_recovery_verdicts(image, &pvers);
        for a in 0..cfg.heap_words {
            let (data, back, meta) = layout.image_entry(image, a);
            let incomplete =
                meta.0 != 0 && meta.tid() < cfg.max_threads && meta.ver() >= pvers[meta.tid()];
            let value = if incomplete { back } else { data };
            if incomplete {
                // Make the roll-back durable *and* clear the entry's stamp:
                // a stale `{tid, v}` with its pad witness intact would be
                // miscounted as part of that thread's next counted commit.
                // Idempotent, so a crash mid-recovery just re-reverts.
                pmem.recovery_neutralize(a, back);
            }
            heap.data_cell(a).store(value, Ordering::Relaxed);
        }
        pmem.sfence(0);

        let alloc = TxAlloc::new(AllocConfig::new(cfg.heap_words, cfg.max_threads));
        NvHalt::from_parts(cfg, heap, pmem, alloc, stats, &pvers)
    }

    /// Phase two of recovery: hand the allocator the set of live blocks.
    pub fn rebuild_allocator(&self, used_blocks: impl IntoIterator<Item = (u64, usize)>) {
        self.alloc.rebuild(used_blocks);
    }

    /// The recovered pver of thread `tid` (diagnostics/tests).
    pub fn thread_pver(&self, tid: usize) -> u64 {
        self.threads[tid].lock().pver
    }
}
