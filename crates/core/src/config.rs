//! Configuration for the NV-HALT family.

use crate::heap::LockStrategy;
use htm::HtmConfig;
use pmem::pool::{EvictionPolicy, FlushPolicy, PmemConfig, PmemMode};
use pmem::LatencyModel;
use tm::policy::HybridPolicy;

/// Software-path progress guarantee (§3.6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Progress {
    /// O(1)-abortable *weakly* progressive: plain read-set validation,
    /// unordered commit-time locking (plain NV-HALT, Figure 1).
    Weak,
    /// O(1)-abortable *strongly* progressive: global clock, sorted lock
    /// acquisition, and hardware-version conflict checks (NV-HALT-SP,
    /// Figure 7).
    Strong,
}

/// Full NV-HALT configuration.
#[derive(Clone, Debug)]
pub struct NvHaltConfig {
    /// Transactional heap size in words.
    pub heap_words: usize,
    /// Thread slots (≤ 256: the lock word's owner field).
    pub max_threads: usize,
    /// Software-path progress guarantee.
    pub progress: Progress,
    /// Lock mapping (table vs colocated — the -CL variants).
    pub locks: LockStrategy,
    /// Hardware/software attempt schedule (the `C` of C-abortable).
    pub policy: HybridPolicy,
    /// If false, remove all synchronization and work specific to
    /// persisting *hardware* transactions (Figure 9's third overhead
    /// class): the hardware path only reads locks and nothing is logged or
    /// written back after `xend`.
    pub persist_hw: bool,
    /// Persistent-memory settings (`words`/`max_threads` fields are
    /// overridden from this config).
    pub pm: PmemConfig,
    /// HTM simulator settings.
    pub htm: HtmConfig,
    /// Simulation cost model: nanoseconds charged per instrumented
    /// *software-path* access, modelling the instruction and metadata
    /// cache-traffic overhead STM instrumentation pays on real silicon
    /// (hardware-path accesses are tracked by the cache for free on real
    /// HTM, so they are charged nothing beyond the simulator's own
    /// bookkeeping). Zero for functional testing; the benchmark harness
    /// sets a calibrated value, documented in EXPERIMENTS.md, and offers
    /// `--raw-costs` to disable it.
    pub instr_ns: u32,
    /// Simulation cost model: nanoseconds charged per global-clock RMW
    /// (the strongly progressive commit), modelling the contended
    /// cache-line transfer such a shared counter costs on a multi-socket
    /// machine. Zero for functional testing.
    pub clock_ns: u32,
}

impl NvHaltConfig {
    /// Functional-test defaults: zero latency, eager flushes, no spurious
    /// aborts, weak progress, lock table.
    pub fn test(heap_words: usize, max_threads: usize) -> Self {
        NvHaltConfig {
            heap_words,
            max_threads,
            progress: Progress::Weak,
            locks: LockStrategy::Table { locks_log2: 16 },
            policy: HybridPolicy::default(),
            persist_hw: true,
            pm: PmemConfig {
                words: 0,
                max_threads,
                mode: PmemMode::Nvram,
                lat: LatencyModel::zero(),
                flush: FlushPolicy::Eager,
                eviction: EvictionPolicy::None,
                seed: 0x5eed_0001,
                psan: pmem::PsanMode::Off,
            },
            htm: HtmConfig::test(),
            instr_ns: 0,
            clock_ns: 0,
        }
    }

    /// The variant name used in reports: `nv-halt`, `nv-halt-sp`,
    /// `nv-halt-cl`, or `nv-halt-sp-cl`.
    pub fn variant_name(&self) -> &'static str {
        match (self.progress, self.locks) {
            (Progress::Weak, LockStrategy::Table { .. }) => "nv-halt",
            (Progress::Strong, LockStrategy::Table { .. }) => "nv-halt-sp",
            (Progress::Weak, LockStrategy::Colocated) => "nv-halt-cl",
            (Progress::Strong, LockStrategy::Colocated) => "nv-halt-sp-cl",
        }
    }
}
