//! # NV-HALT — Non-Volatile Hardware Assisted Locking Transactions
//!
//! The paper's primary contribution: a family of persistent hybrid
//! transactional memories whose hardware fast path is used — perhaps
//! counterintuitively — primarily to *read and acquire fine-grained
//! locks*. Acquiring locks inside the hardware transaction means the
//! written addresses remain locked after `xend`, which is exactly what
//! makes it possible to persist them afterwards (flush instructions abort
//! hardware transactions, so persisting must happen outside).
//!
//! Three configurations are exposed, matching the paper's evaluation:
//!
//! * **NV-HALT** — O(1)-abortable *weakly progressive*; lock table.
//! * **NV-HALT-SP** — O(1)-abortable *strongly progressive*: global
//!   commit clock, sorted lock acquisition, dual-version locks (Figure 7).
//! * **NV-HALT-CL** — colocated locks (one lock in the word adjacent to
//!   each data word).
//!
//! All variants guarantee durable (durably linearizable) transactions and
//! opacity; see `engine.rs` for the protocol and `recovery.rs` for the
//! post-crash procedure.
//!
//! ```
//! use nvhalt::{NvHalt, NvHaltConfig};
//! use tm::{Addr, Tm};
//!
//! let tmem = NvHalt::new(NvHaltConfig::test(1 << 10, 2));
//! let committed: Result<u64, _> = tm::txn(&tmem, 0, |tx| {
//!     let v = tx.read(Addr(1))?;
//!     tx.write(Addr(1), v + 41)?;
//!     tx.read(Addr(1))
//! });
//! assert_eq!(committed, Ok(41));
//! ```

pub mod config;
pub mod engine;
pub mod heap;
pub mod lock;
pub mod recovery;

pub use config::{NvHaltConfig, Progress};
pub use engine::NvHalt;
pub use heap::LockStrategy;
pub use lock::LockWord;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use tm::policy::HybridPolicy;
    use tm::stats::Counter;
    use tm::{txn, Abort, Addr, Cancelled, Tm};

    fn small(progress: Progress, locks: LockStrategy) -> NvHalt {
        let mut cfg = NvHaltConfig::test(1 << 12, 4);
        cfg.progress = progress;
        cfg.locks = locks;
        NvHalt::new(cfg)
    }

    fn all_variants() -> Vec<NvHalt> {
        vec![
            small(Progress::Weak, LockStrategy::Table { locks_log2: 10 }),
            small(Progress::Strong, LockStrategy::Table { locks_log2: 10 }),
            small(Progress::Weak, LockStrategy::Colocated),
            small(Progress::Strong, LockStrategy::Colocated),
        ]
    }

    #[test]
    fn read_write_roundtrip_all_variants() {
        for tmem in all_variants() {
            let r = txn(&tmem, 0, |tx| {
                tx.write(Addr(5), 123)?;
                tx.read(Addr(5))
            });
            assert_eq!(r, Ok(123), "{}", tmem.name());
            assert_eq!(tmem.read_raw(Addr(5)), 123);
        }
    }

    #[test]
    fn variant_names() {
        let names: Vec<&str> = all_variants().iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            ["nv-halt", "nv-halt-sp", "nv-halt-cl", "nv-halt-sp-cl"]
        );
    }

    #[test]
    fn fast_path_commits_in_hardware() {
        let tmem = small(Progress::Weak, LockStrategy::Table { locks_log2: 10 });
        for i in 0..100 {
            txn(&tmem, 0, |tx| tx.write(Addr(1 + i % 8), i)).unwrap();
        }
        let s = tmem.stats();
        assert_eq!(s.get(Counter::HwCommit), 100, "uncontended = all hardware");
        assert_eq!(s.get(Counter::SwCommit), 0);
    }

    #[test]
    fn stm_only_policy_uses_software_path() {
        let mut cfg = NvHaltConfig::test(1 << 10, 1);
        cfg.policy = HybridPolicy::stm_only();
        let tmem = NvHalt::new(cfg);
        txn(&tmem, 0, |tx| tx.write(Addr(1), 9)).unwrap();
        let s = tmem.stats();
        assert_eq!(s.get(Counter::SwCommit), 1);
        assert_eq!(s.get(Counter::HwCommit), 0);
        assert_eq!(tmem.read_raw(Addr(1)), 9);
    }

    #[test]
    fn aborted_attempts_leave_no_trace() {
        let tmem = small(Progress::Weak, LockStrategy::Colocated);
        // Cancel after writing: nothing may be visible.
        let r: Result<(), Cancelled> = txn(&tmem, 0, |tx| {
            tx.write(Addr(7), 999)?;
            Err(Abort::Cancel)
        });
        assert_eq!(r, Err(Cancelled));
        assert_eq!(tmem.read_raw(Addr(7)), 0);
        assert_eq!(tmem.stats().get(Counter::Cancelled), 1);
    }

    #[test]
    fn user_retry_reruns_body() {
        let tmem = small(Progress::Strong, LockStrategy::Table { locks_log2: 10 });
        let mut tries = 0;
        let r = txn(&tmem, 0, |tx| {
            tries += 1;
            if tries < 5 {
                return Err(Abort::CONFLICT);
            }
            tx.write(Addr(3), tries as u64)
        });
        assert_eq!(r, Ok(()));
        assert_eq!(tries, 5);
        assert_eq!(tmem.read_raw(Addr(3)), 5);
    }

    #[test]
    fn read_own_writes_on_both_paths() {
        for stm_only in [false, true] {
            let mut cfg = NvHaltConfig::test(1 << 10, 1);
            if stm_only {
                cfg.policy = HybridPolicy::stm_only();
            }
            let tmem = NvHalt::new(cfg);
            let r = txn(&tmem, 0, |tx| {
                tx.write(Addr(2), 10)?;
                let v = tx.read(Addr(2))?;
                tx.write(Addr(2), v * 2)?;
                tx.read(Addr(2))
            });
            assert_eq!(r, Ok(20));
        }
    }

    #[test]
    fn alloc_free_within_transactions() {
        let tmem = small(Progress::Weak, LockStrategy::Table { locks_log2: 10 });
        let addr = txn(&tmem, 0, |tx| {
            let a = tx.alloc(4)?;
            tx.write(a, 77)?;
            Ok(a)
        })
        .unwrap();
        assert_eq!(tmem.read_raw(addr), 77);
        // Free and reallocate: the block must be recycled (same thread).
        txn(&tmem, 0, |tx| tx.free(addr, 4)).unwrap();
        let again = txn(&tmem, 0, |tx| tx.alloc(4)).unwrap();
        assert_eq!(again, addr);
    }

    #[test]
    fn cancelled_alloc_is_rolled_back() {
        let tmem = small(Progress::Weak, LockStrategy::Table { locks_log2: 10 });
        let first = txn(&tmem, 0, |tx| tx.alloc(8)).unwrap();
        txn(&tmem, 0, |tx| tx.free(first, 8)).unwrap();
        let r: Result<(), Cancelled> = txn(&tmem, 0, |tx| {
            let a = tx.alloc(8)?;
            assert_eq!(a, first, "recycled");
            Err(Abort::Cancel)
        });
        assert!(r.is_err());
        // The cancelled txn's allocation was returned.
        let again = txn(&tmem, 0, |tx| tx.alloc(8)).unwrap();
        assert_eq!(again, first);
    }

    #[test]
    fn concurrent_counter_is_exact_all_variants() {
        for tmem in all_variants() {
            let tmem = Arc::new(tmem);
            let per_thread = 3_000u64;
            let mut handles = Vec::new();
            for t in 0..4 {
                let tmem = tmem.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        txn(&*tmem, t, |tx| {
                            let v = tx.read(Addr(1))?;
                            tx.write(Addr(1), v + 1)
                        })
                        .unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(tmem.read_raw(Addr(1)), 4 * per_thread, "{}", tmem.name());
        }
    }

    #[test]
    fn bank_transfer_invariant_under_contention() {
        // Classic opacity smoke test: total balance is conserved and no
        // transaction ever observes a torn transfer.
        for tmem in all_variants() {
            let tmem = Arc::new(tmem);
            let accounts = 16u64;
            let initial = 1000u64;
            for a in 0..accounts {
                txn(&*tmem, 0, |tx| tx.write(Addr(1 + a), initial)).unwrap();
            }
            let violations = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for t in 0..4usize {
                let tmem = tmem.clone();
                let violations = violations.clone();
                handles.push(std::thread::spawn(move || {
                    let mut rng = (t as u64 + 1) * 0x9e37_79b9;
                    for i in 0..2_000u64 {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let from = 1 + rng % accounts;
                        let to = 1 + (rng >> 8) % accounts;
                        if from == to {
                            continue;
                        }
                        if i % 4 == 0 {
                            // Audit transaction: sum everything.
                            let total = txn(&*tmem, t, |tx| {
                                let mut sum = 0u64;
                                for a in 0..accounts {
                                    sum += tx.read(Addr(1 + a))?;
                                }
                                Ok(sum)
                            })
                            .unwrap();
                            if total != accounts * initial {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            let _ = txn(&*tmem, t, |tx| {
                                let f = tx.read(Addr(from))?;
                                if f == 0 {
                                    return Err(Abort::Cancel);
                                }
                                let g = tx.read(Addr(to))?;
                                tx.write(Addr(from), f - 1)?;
                                tx.write(Addr(to), g + 1)
                            });
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                violations.load(Ordering::Relaxed),
                0,
                "torn transfer observed in {}",
                tmem.name()
            );
            let total: u64 = (0..accounts).map(|a| tmem.read_raw(Addr(1 + a))).sum();
            assert_eq!(total, accounts * initial, "{}", tmem.name());
        }
    }

    #[test]
    fn conflicting_writes_fall_back_and_still_commit() {
        let tmem = Arc::new(small(
            Progress::Strong,
            LockStrategy::Table { locks_log2: 4 },
        ));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let tmem = tmem.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    txn(&*tmem, t, |tx| {
                        // Everyone hammers the same two words.
                        let a = tx.read(Addr(1))?;
                        let b = tx.read(Addr(2))?;
                        tx.write(Addr(1), a + 1)?;
                        tx.write(Addr(2), b + 1)?;
                        let _ = i;
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tmem.read_raw(Addr(1)), 8_000);
        assert_eq!(tmem.read_raw(Addr(2)), 8_000);
        let s = tmem.stats();
        assert_eq!(s.commits(), 8_000);
    }

    #[test]
    fn durable_after_commit_then_crash() {
        let cfg = NvHaltConfig::test(1 << 10, 2);
        let tmem = NvHalt::new(cfg.clone());
        txn(&tmem, 0, |tx| {
            tx.write(Addr(3), 33)?;
            tx.write(Addr(4), 44)
        })
        .unwrap();
        txn(&tmem, 1, |tx| tx.write(Addr(5), 55)).unwrap();
        tmem.crash();
        let img = tmem.crash_image();
        let rec = NvHalt::recover(cfg, &img, []);
        assert_eq!(rec.read_raw(Addr(3)), 33);
        assert_eq!(rec.read_raw(Addr(4)), 44);
        assert_eq!(rec.read_raw(Addr(5)), 55);
    }

    #[test]
    fn recovery_reverts_partially_persisted_transaction() {
        // Force the adversarial schedule by persisting a write set
        // manually through the engine's own primitives: commit a txn, then
        // crash *during* a second txn's persist phase by poisoning the
        // pool from another thread at a fence. Simpler and fully
        // deterministic: crash between the entry flush and the pver flush
        // using the Deferred flush policy (the pver flush never completes).
        let mut cfg = NvHaltConfig::test(1 << 10, 1);
        cfg.pm.flush = pmem::FlushPolicy::Eager;
        let tmem = NvHalt::new(cfg.clone());
        txn(&tmem, 0, |tx| tx.write(Addr(3), 1)).unwrap();

        // Hand-run an incomplete persist: entries stamped with the current
        // pver hit the media, but the pver bump does not.
        let pver = tmem.thread_pver(0);
        tmem.pmem()
            .persist_entry(0, 3, 1, 2, pmem::Meta::pack(0, pver));
        tmem.crash();
        let img = tmem.crash_image();
        let rec = NvHalt::recover(cfg, &img, []);
        assert_eq!(
            rec.read_raw(Addr(3)),
            1,
            "incomplete transaction rolled back to committed value"
        );
    }

    #[test]
    fn recovery_is_idempotent_across_double_crash() {
        let cfg = NvHaltConfig::test(1 << 10, 1);
        let tmem = NvHalt::new(cfg.clone());
        txn(&tmem, 0, |tx| tx.write(Addr(3), 7)).unwrap();
        let pver = tmem.thread_pver(0);
        tmem.pmem()
            .persist_entry(0, 3, 7, 8, pmem::Meta::pack(0, pver));
        tmem.crash();
        let img = tmem.crash_image();

        let rec1 = NvHalt::recover(cfg.clone(), &img, []);
        assert_eq!(rec1.read_raw(Addr(3)), 7);
        // Immediately crash again without any new work.
        rec1.crash();
        let img2 = rec1.crash_image();
        let rec2 = NvHalt::recover(cfg, &img2, []);
        assert_eq!(rec2.read_raw(Addr(3)), 7);
    }

    #[test]
    fn pver_survives_recovery() {
        let cfg = NvHaltConfig::test(1 << 10, 2);
        let tmem = NvHalt::new(cfg.clone());
        for i in 0..5 {
            txn(&tmem, 1, |tx| tx.write(Addr(2), i)).unwrap();
        }
        let before = tmem.thread_pver(1);
        assert_eq!(before, 5);
        tmem.crash();
        let rec = NvHalt::recover(cfg, &tmem.crash_image(), []);
        assert_eq!(rec.thread_pver(1), 5);
        // New transactions stamp versions that recovery will trust.
        txn(&rec, 1, |tx| tx.write(Addr(2), 99)).unwrap();
        rec.crash();
        let rec2 = NvHalt::recover(NvHaltConfig::test(1 << 10, 2), &rec.crash_image(), []);
        assert_eq!(rec2.read_raw(Addr(2)), 99);
    }

    #[test]
    fn crash_during_concurrent_load_preserves_committed_markers() {
        // Threads write unique markers; whatever was reported committed
        // before the crash must be durable (durable linearizability).
        let cfg = NvHaltConfig::test(1 << 12, 4);
        let tmem = Arc::new(NvHalt::new(cfg.clone()));
        let committed: Arc<parking_lot::Mutex<Vec<(u64, u64)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let tmem = tmem.clone();
            let committed = committed.clone();
            handles.push(std::thread::spawn(move || {
                tm::crash::run_crashable(|| {
                    for i in 0..100_000u64 {
                        let slot = 1 + (t as u64) * 64 + i % 64;
                        let val = (t as u64) << 32 | (i + 1);
                        if txn(&*tmem, t, |tx| tx.write(Addr(slot), val)).is_ok() {
                            committed.lock().push((slot, val));
                        }
                    }
                });
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        tmem.crash();
        for h in handles {
            h.join().unwrap();
        }
        let img = tmem.crash_image();
        let rec = NvHalt::recover(cfg, &img, []);
        // For each slot the last committed value must be durable (later
        // commits may also have made it, but only to a committed value).
        use std::collections::HashMap;
        let mut last: HashMap<u64, u64> = HashMap::new();
        let mut all: HashMap<u64, Vec<u64>> = HashMap::new();
        for (slot, val) in committed.lock().iter() {
            last.insert(*slot, *val);
            all.entry(*slot).or_default().push(*val);
        }
        for (slot, vals) in &all {
            let got = rec.read_raw(Addr(*slot));
            assert!(
                got == last[slot] || vals.contains(&got) || got > last[slot],
                "slot {slot}: got {got:x}, last committed {:x}",
                last[slot]
            );
            assert!(
                got >= last[slot],
                "slot {slot}: durable value {got:x} older than a committed write {:x}",
                last[slot]
            );
        }
    }

    // ------------------------------------------------------------------
    // Prepared transactions (two-phase commit participant)
    // ------------------------------------------------------------------

    use tm::TmPrepare;

    /// A bounded read that cancels instead of spinning forever on a held
    /// lock — lets tests observe "blocked by a prepared transaction".
    fn try_read(tmem: &NvHalt, tid: usize, a: Addr) -> Result<u64, Cancelled> {
        txn(tmem, tid, |tx| {
            if tx.attempt() >= 6 {
                return Err(Abort::Cancel);
            }
            tx.read(a)
        })
    }

    #[test]
    fn prepared_writes_are_invisible_until_commit() {
        for tmem in all_variants() {
            txn(&tmem, 0, |tx| tx.write(Addr(5), 1)).unwrap();
            tmem.prepare(0, &mut |tx| tx.write(Addr(5), 2)).unwrap();
            assert!(tmem.has_prepared(0), "{}", tmem.name());
            // Another thread cannot read past the prepared lock.
            assert_eq!(
                try_read(&tmem, 1, Addr(5)),
                Err(Cancelled),
                "{}",
                tmem.name()
            );
            tmem.commit_prepared(0);
            assert!(!tmem.has_prepared(0));
            assert_eq!(try_read(&tmem, 1, Addr(5)), Ok(2), "{}", tmem.name());
        }
    }

    #[test]
    fn prepare_pins_its_read_set() {
        let tmem = small(Progress::Strong, LockStrategy::Table { locks_log2: 10 });
        txn(&tmem, 0, |tx| tx.write(Addr(4), 7)).unwrap();
        let read = tmem.prepare(0, &mut |tx| tx.read(Addr(4))).unwrap();
        assert_eq!(read, 7);
        // A writer to the pinned address is blocked until the decision.
        let blocked = txn(&tmem, 1, |tx| {
            if tx.attempt() >= 6 {
                return Err(Abort::Cancel);
            }
            tx.write(Addr(4), 8)
        });
        assert_eq!(blocked, Err(Cancelled));
        tmem.abort_prepared(0);
        txn(&tmem, 1, |tx| tx.write(Addr(4), 8)).unwrap();
        assert_eq!(tmem.read_raw(Addr(4)), 8);
    }

    #[test]
    fn crash_while_prepared_rolls_back() {
        let cfg = NvHaltConfig::test(1 << 10, 2);
        let tmem = NvHalt::new(cfg.clone());
        txn(&tmem, 0, |tx| tx.write(Addr(6), 10)).unwrap();
        tmem.prepare(0, &mut |tx| tx.write(Addr(6), 11)).unwrap();
        tmem.crash();
        let rec = NvHalt::recover(cfg, &tmem.crash_image(), []);
        assert_eq!(
            rec.read_raw(Addr(6)),
            10,
            "undecided prepared write must not survive a crash"
        );
    }

    #[test]
    fn commit_prepared_is_durable() {
        let cfg = NvHaltConfig::test(1 << 10, 2);
        let tmem = NvHalt::new(cfg.clone());
        tmem.prepare(0, &mut |tx| tx.write(Addr(6), 21)).unwrap();
        tmem.commit_prepared(0);
        tmem.crash();
        let rec = NvHalt::recover(cfg, &tmem.crash_image(), []);
        assert_eq!(rec.read_raw(Addr(6)), 21);
    }

    #[test]
    fn abort_prepared_holds_durably_across_later_commits() {
        // The dangerous schedule: abort a prepared write, then commit more
        // transactions on the same thread (pushing the durable pver past
        // the aborted entries), then crash. The aborted value must not be
        // resurrected by recovery trusting the now-superseded entry.
        let cfg = NvHaltConfig::test(1 << 10, 1);
        let tmem = NvHalt::new(cfg.clone());
        txn(&tmem, 0, |tx| tx.write(Addr(3), 1)).unwrap();
        tmem.prepare(0, &mut |tx| tx.write(Addr(3), 2)).unwrap();
        tmem.abort_prepared(0);
        assert_eq!(tmem.read_raw(Addr(3)), 1);
        for i in 0..4u64 {
            txn(&tmem, 0, |tx| tx.write(Addr(9), i)).unwrap();
        }
        tmem.crash();
        let rec = NvHalt::recover(cfg, &tmem.crash_image(), []);
        assert_eq!(rec.read_raw(Addr(3)), 1, "aborted prepared value came back");
        assert_eq!(rec.read_raw(Addr(9)), 3);
    }

    #[test]
    fn prepared_alloc_commits_or_rolls_back_with_the_decision() {
        let tmem = small(Progress::Weak, LockStrategy::Table { locks_log2: 10 });
        let a = tmem
            .prepare(0, &mut |tx| {
                let a = tx.alloc(4)?;
                tx.write(a, 5)?;
                Ok(a)
            })
            .unwrap();
        tmem.commit_prepared(0);
        assert_eq!(tmem.read_raw(a), 5);
        // Aborted decision returns the block to the allocator.
        let b = tmem.prepare(0, &mut |tx| tx.alloc(4)).unwrap();
        tmem.abort_prepared(0);
        let again = txn(&tmem, 0, |tx| tx.alloc(4)).unwrap();
        assert_eq!(again, b, "aborted prepared allocation not recycled");
    }

    #[test]
    #[should_panic(expected = "prepared transaction is outstanding")]
    fn txn_panics_while_prepared() {
        let tmem = small(Progress::Weak, LockStrategy::Table { locks_log2: 10 });
        tmem.prepare(0, &mut |tx| tx.write(Addr(2), 1)).unwrap();
        let _ = txn(&tmem, 0, |tx| tx.read(Addr(3)));
    }
}
