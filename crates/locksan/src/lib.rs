//! Dynamic lock-discipline sanitizer (lockdep in miniature).
//!
//! psan proves the *persist order* of the TM protocols; nothing proved
//! their *lock order*. This crate closes that gap: every lock of the
//! `parking_lot` shim (so every kvserve service lock), plus the TM fast
//! path's per-address stripe locks, reports its acquisitions here, and
//! the sanitizer maintains
//!
//! * a **global lock registry** — every instance belongs to a *class*
//!   (locks sharing a `locksan_label` share a class; unlabeled locks
//!   get a per-instance class named by their first acquisition site);
//! * **per-thread held-lock stacks** with acquisition-site provenance
//!   (`#[track_caller]` on the shim's lock methods);
//! * a **dynamic lock-order graph** over classes: acquiring B while
//!   holding A inserts the edge A→B; the first edge that closes a cycle
//!   is reported as a potential deadlock (the AB/BA inversion), with
//!   the acquisition sites of both directions.
//!
//! On top of the graph, three rule checks:
//!
//! * [`Rule::LockAcrossPersist`] — a pmem flush or fence executed while
//!   the thread holds a tracked lock whose class was not registered
//!   `allow_persist`. Service locks held across the persist path are a
//!   tail-latency and deadlock hazard (the PR 5 shipper bug class);
//!   locks that exist *to* guard persists (the TMs' thread-state cells,
//!   the replication follower cells) opt out at label time.
//! * [`Rule::CondvarWhileHolding`] — a condvar wait entered while the
//!   thread holds any tracked lock besides the one it is waiting on.
//!   The held lock stays held for the whole (unbounded) wait.
//! * [`Rule::StripeOrder`] — the software fallback claims deadlock
//!   freedom by acquiring its per-address stripe locks in canonical
//!   order; the stripe hooks verify the claimed order actually holds.
//!   Stripes are modeled as one ordered class with a per-acquisition
//!   rank (the canonical sort key), so per-address tracking stays O(1).
//!
//! Zero-cost contract: the instrumented crates gate every hook behind
//! their `locksan` cargo feature — with the feature off the hooks do
//! not exist. With the feature on but the mode `Off` (the default),
//! every hook is a single relaxed atomic load. The mode comes from the
//! `LOCKSAN` environment variable (`1`/`record` → Record, `panic` →
//! Panic) or [`set_mode`].
//!
//! The registry's internals use `std::sync` primitives directly — the
//! sanitizer cannot instrument itself (and the `std-sync-lock` lint
//! rule allowlists this crate for exactly that reason).

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Sanitizer mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocksanMode {
    /// No tracking: every hook returns after one atomic load.
    Off,
    /// Track and collect [`Report`]s for [`take_reports`].
    Record,
    /// Track and panic at the offending acquisition/wait/persist, with
    /// the rule label and both sites in the message.
    Panic,
}

impl LocksanMode {
    /// Parse the `LOCKSAN` environment variable (unset/`0`/`off` →
    /// `Off`, `panic` → `Panic`, anything else truthy → `Record`).
    pub fn from_env() -> LocksanMode {
        match std::env::var("LOCKSAN") {
            Err(_) => LocksanMode::Off,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "0" | "off" => LocksanMode::Off,
                "panic" => LocksanMode::Panic,
                _ => LocksanMode::Record,
            },
        }
    }
}

/// Which discipline a report violates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// A lock-order cycle: some thread acquired B while holding A after
    /// (some thread) acquired A while holding B.
    PotentialDeadlock,
    /// A pmem flush/fence ran while a non-`allow_persist` lock was held.
    LockAcrossPersist,
    /// A condvar wait started while another tracked lock was held.
    CondvarWhileHolding,
    /// Stripe locks acquired out of canonical address order on a path
    /// that claims ordered acquisition.
    StripeOrder,
}

impl Rule {
    /// Short label used in report formatting and panic messages.
    pub fn label(self) -> &'static str {
        match self {
            Rule::PotentialDeadlock => "potential-deadlock",
            Rule::LockAcrossPersist => "lock-across-persist",
            Rule::CondvarWhileHolding => "condvar-while-holding",
            Rule::StripeOrder => "stripe-order",
        }
    }
}

/// One violation. `site_a` is where the offending acquisition/wait/
/// persist happened; `site_b` is the other side's provenance (the held
/// lock's acquisition site, or the reverse edge of a cycle).
#[derive(Clone, Debug)]
pub struct Report {
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description naming the lock classes involved.
    pub detail: String,
    /// Acquisition/wait/persist site of the offending operation.
    pub site_a: String,
    /// Provenance of the other side (held lock / reverse edge).
    pub site_b: String,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "locksan[{}]: {} (at {}; other side at {})",
            self.rule.label(),
            self.detail,
            self.site_a,
            self.site_b
        )
    }
}

/// Per-instance identity carried inside every shim lock. `const`-
/// constructible (the shim's `new` is `const`); the class id is
/// assigned lazily at first acquisition or at `locksan_label` time.
#[derive(Default)]
pub struct LockTag {
    /// Class id + 1; 0 = not yet registered.
    class: AtomicU32,
}

impl LockTag {
    /// A fresh, unregistered tag.
    pub const fn new() -> LockTag {
        LockTag {
            class: AtomicU32::new(0),
        }
    }
}

struct ClassInfo {
    label: &'static str,
    /// First registration site (label call or first acquisition).
    origin: String,
    allow_persist: bool,
}

impl ClassInfo {
    /// Display name: the label, plus the first-acquisition site for
    /// anonymous classes (whose label is just the primitive kind).
    fn name(&self) -> String {
        if self.label == self.origin {
            self.label.to_string()
        } else {
            format!("{} at {}", self.label, self.origin)
        }
    }
}

#[derive(Default)]
struct Registry {
    classes: Vec<ClassInfo>,
    by_label: HashMap<&'static str, u32>,
    /// Lock-order edges `held → acquired` with the provenance of the
    /// first acquisition that inserted them.
    edges: HashMap<(u32, u32), (String, String)>,
    /// Adjacency view of `edges` for the cycle DFS.
    adj: HashMap<u32, Vec<u32>>,
    reports: Vec<Report>,
    /// Classes already reported for `LockAcrossPersist` (dedup).
    persist_reported: Vec<u32>,
    /// Class pairs already reported for `CondvarWhileHolding` (dedup).
    condvar_reported: Vec<(u32, u32)>,
}

/// Mode cell: 255 = uninitialized (read `LOCKSAN` on first use).
static MODE: AtomicU8 = AtomicU8::new(255);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);
/// Deepest tracked held-lock stack seen on any thread.
static HELD_HWM: AtomicU64 = AtomicU64::new(0);
/// Shim acquisitions that found the lock already held and had to block.
static CONTENDED: AtomicU64 = AtomicU64::new(0);

#[derive(Clone)]
struct Held {
    class: u32,
    /// Instance identity (the `LockTag` address).
    instance: usize,
    site: &'static Location<'static>,
}

thread_local! {
    static HELD: std::cell::RefCell<Vec<Held>> = const { std::cell::RefCell::new(Vec::new()) };
    static STRIPES: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The active mode.
#[inline]
pub fn mode() -> LocksanMode {
    match MODE.load(Ordering::Relaxed) {
        255 => {
            let m = LocksanMode::from_env();
            set_mode(m);
            m
        }
        1 => LocksanMode::Record,
        2 => LocksanMode::Panic,
        _ => LocksanMode::Off,
    }
}

/// Set the mode programmatically (fixtures; overrides the env var).
pub fn set_mode(m: LocksanMode) {
    let v = match m {
        LocksanMode::Off => 0,
        LocksanMode::Record => 1,
        LocksanMode::Panic => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

#[inline]
fn enabled() -> bool {
    mode() != LocksanMode::Off
}

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut g = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(g.get_or_insert_with(Registry::default))
}

/// Record a report; in Panic mode returns the message the caller must
/// panic with *after* dropping its own state (never panic here — the
/// registry lock is held).
fn record(reg: &mut Registry, report: Report) -> Option<String> {
    let msg = (mode() == LocksanMode::Panic).then(|| report.to_string());
    reg.reports.push(report);
    msg
}

fn site_str(loc: &Location<'_>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

fn register_anon_class(reg: &mut Registry, kind: &'static str, origin: String) -> u32 {
    reg.classes.push(ClassInfo {
        label: kind,
        origin,
        allow_persist: false,
    });
    (reg.classes.len() - 1) as u32
}

fn class_of(reg: &mut Registry, tag: &LockTag, kind: &'static str, origin: &Location<'_>) -> u32 {
    let cur = tag.class.load(Ordering::Acquire);
    if cur != 0 {
        return cur - 1;
    }
    let id = register_anon_class(reg, kind, site_str(origin));
    match tag
        .class
        .compare_exchange(0, id + 1, Ordering::AcqRel, Ordering::Acquire)
    {
        Ok(_) => id,
        // Another thread registered concurrently; its class wins (the
        // loser entry stays as a dead row — harmless).
        Err(winner) => winner - 1,
    }
}

/// Name `tag`'s class. Instances sharing a label share a class (and its
/// `allow_persist` flag); lockdep-style class grouping keeps arrays of
/// homologous locks (ring slots, follower cells) to one graph node.
/// Call once, before first acquisition, from the owning constructor.
pub fn label(tag: &LockTag, name: &'static str, allow_persist: bool) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        let id = match reg.by_label.get(name) {
            Some(&id) => id,
            None => {
                reg.classes.push(ClassInfo {
                    label: name,
                    origin: name.to_string(),
                    allow_persist,
                });
                let id = (reg.classes.len() - 1) as u32;
                reg.by_label.insert(name, id);
                id
            }
        };
        tag.class.store(id + 1, Ordering::Release);
    });
}

/// Is `to` reachable from `from` over the current order graph?
fn reachable(reg: &Registry, from: u32, to: u32) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![from];
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if let Some(next) = reg.adj.get(&n) {
            for &m in next {
                if m == to {
                    return true;
                }
                if !seen.contains(&m) {
                    seen.push(m);
                    stack.push(m);
                }
            }
        }
    }
    false
}

/// A blocking acquisition of `tag` (shim `lock`/`read`/`write`): check
/// order against every held lock, insert new edges, report the first
/// edge that closes a cycle. `kind` names the primitive for anonymous
/// classes ("mutex"/"rwlock").
#[track_caller]
pub fn on_acquire(tag: &LockTag, kind: &'static str) {
    acquire_at(tag, kind, Location::caller(), true)
}

/// A successful *try* acquisition: recorded on the held stack (persist
/// and condvar rules still see it) but inserts no order edges — a
/// failed try-lock backs off instead of deadlocking.
#[track_caller]
pub fn on_try_acquire(tag: &LockTag, kind: &'static str) {
    acquire_at(tag, kind, Location::caller(), false)
}

fn acquire_at(tag: &LockTag, kind: &'static str, caller: &'static Location<'static>, order: bool) {
    if !enabled() {
        return;
    }
    let panic_msg = with_registry(|reg| {
        let class = class_of(reg, tag, kind, caller);
        let mut msg = None;
        if order {
            let held: Vec<Held> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
            for h in &held {
                if h.class == class {
                    continue;
                }
                let key = (h.class, class);
                if reg.edges.contains_key(&key) {
                    continue;
                }
                // New edge h.class → class. A path class ⇒ h.class
                // already in the graph means this edge closes a cycle.
                if msg.is_none() && reachable(reg, class, h.class) {
                    let reverse = reg
                        .edges
                        .get(&(class, h.class))
                        .map(|(a, _)| a.clone())
                        .unwrap_or_else(|| "<path through other classes>".to_string());
                    let report = Report {
                        rule: Rule::PotentialDeadlock,
                        detail: format!(
                            "acquiring '{}' while holding '{}' inverts the established \
                             lock order ('{}' was acquired while '{}' was held)",
                            reg.classes[class as usize].name(),
                            reg.classes[h.class as usize].name(),
                            reg.classes[h.class as usize].label,
                            reg.classes[class as usize].label,
                        ),
                        site_a: site_str(caller),
                        site_b: reverse,
                    };
                    msg = record(reg, report);
                }
                reg.edges.insert(key, (site_str(caller), site_str(h.site)));
                reg.adj.entry(h.class).or_default().push(class);
            }
        }
        let _ = HELD.try_with(|h| {
            let mut h = h.borrow_mut();
            h.push(Held {
                class,
                instance: tag as *const LockTag as usize,
                site: caller,
            });
            HELD_HWM.fetch_max(h.len() as u64, Ordering::Relaxed);
        });
        msg
    });
    if let Some(msg) = panic_msg {
        panic!("{msg}");
    }
}

/// A release (guard drop — including panic unwinds; the shim guards'
/// `Drop` impls call this unconditionally).
pub fn on_release(tag: &LockTag) {
    if !enabled() {
        return;
    }
    let instance = tag as *const LockTag as usize;
    let _ = HELD.try_with(|h| {
        let mut h = h.borrow_mut();
        // Innermost matching hold: guards of one lock release LIFO, but
        // unrelated guards may interleave arbitrarily.
        if let Some(i) = h.iter().rposition(|x| x.instance == instance) {
            h.remove(i);
        }
    });
}

/// A shim acquisition found the lock held and had to block.
pub fn on_contended() {
    if !enabled() {
        return;
    }
    CONTENDED.fetch_add(1, Ordering::Relaxed);
}

/// Entering a condvar wait on the mutex behind `mutex_tag`: every
/// *other* tracked lock the thread holds stays held for the whole
/// unbounded wait — report each (deduped per class pair).
#[track_caller]
pub fn on_condvar_wait(mutex_tag: &LockTag) {
    if !enabled() {
        return;
    }
    let caller = Location::caller();
    let instance = mutex_tag as *const LockTag as usize;
    let held: Vec<Held> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
    let waited_class = mutex_tag.class.load(Ordering::Acquire).wrapping_sub(1);
    let panic_msg = with_registry(|reg| {
        let mut msg = None;
        for h in &held {
            if h.instance == instance {
                continue;
            }
            let key = (h.class, waited_class);
            if reg.condvar_reported.contains(&key) {
                continue;
            }
            reg.condvar_reported.push(key);
            let report = Report {
                rule: Rule::CondvarWhileHolding,
                detail: format!(
                    "condvar wait on '{}' while holding '{}'",
                    reg.classes
                        .get(waited_class as usize)
                        .map(|c| c.name())
                        .unwrap_or_else(|| "<unregistered>".to_string()),
                    reg.classes[h.class as usize].name(),
                ),
                site_a: site_str(caller),
                site_b: site_str(h.site),
            };
            if msg.is_none() {
                msg = record(reg, report);
            } else {
                reg.reports.push(report);
            }
        }
        msg
    });
    if let Some(msg) = panic_msg {
        panic!("{msg}");
    }
}

/// A pmem flush or fence (`op` = "flush"/"fence") on the calling
/// thread: every held lock whose class is not `allow_persist` is a
/// service lock held across the persist path (deduped per class).
pub fn on_persist(op: &'static str) {
    if !enabled() {
        return;
    }
    let held: Vec<Held> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
    if held.is_empty() {
        return;
    }
    let panic_msg = with_registry(|reg| {
        let mut msg = None;
        for h in &held {
            if reg.classes[h.class as usize].allow_persist {
                continue;
            }
            if reg.persist_reported.contains(&h.class) {
                continue;
            }
            reg.persist_reported.push(h.class);
            let report = Report {
                rule: Rule::LockAcrossPersist,
                detail: format!(
                    "pmem {} while holding '{}'",
                    op,
                    reg.classes[h.class as usize].name()
                ),
                site_a: format!("pmem::{op}"),
                site_b: site_str(h.site),
            };
            if msg.is_none() {
                msg = record(reg, report);
            } else {
                reg.reports.push(report);
            }
        }
        msg
    });
    if let Some(msg) = panic_msg {
        panic!("{msg}");
    }
}

/// A fast-path stripe-lock acquisition with canonical rank `rank`.
/// `ordered` is the caller's claim (the strong-progress path sorts its
/// plan; the weak path try-locks unordered and passes `false`);
/// a rank *decrease* under the claim is the violation. `site` names the
/// acquiring protocol step.
pub fn on_stripe_acquire(rank: u64, ordered: bool, site: &'static str) {
    if !enabled() {
        return;
    }
    let violation = STRIPES
        .try_with(|s| {
            let mut s = s.borrow_mut();
            let bad = ordered && s.last().is_some_and(|&last| rank < last);
            let last = s.last().copied();
            s.push(rank);
            bad.then(|| last.unwrap_or(0))
        })
        .unwrap_or(None);
    if let Some(last) = violation {
        let panic_msg = with_registry(|reg| {
            record(
                reg,
                Report {
                    rule: Rule::StripeOrder,
                    detail: format!(
                        "stripe rank {rank} acquired after rank {last} on an ordered path"
                    ),
                    site_a: site.to_string(),
                    site_b: "canonical (cell, addr) order".to_string(),
                },
            )
        });
        if let Some(msg) = panic_msg {
            panic!("{msg}");
        }
    }
}

/// All stripe locks of the current attempt released (commit, abort, or
/// a fresh attempt resetting state after a crash unwind).
pub fn on_stripe_release_all() {
    if !enabled() {
        return;
    }
    let _ = STRIPES.try_with(|s| s.borrow_mut().clear());
}

/// Drain the collected reports.
pub fn take_reports() -> Vec<Report> {
    with_registry(|reg| {
        // Let rules fire again after a drain (fixtures run serially).
        reg.persist_reported.clear();
        reg.condvar_reported.clear();
        std::mem::take(&mut reg.reports)
    })
}

/// Held-lock high-water mark across all threads since start/reset.
pub fn held_hwm() -> u64 {
    HELD_HWM.load(Ordering::Relaxed)
}

/// Blocking shim acquisitions that found their lock contended.
pub fn contended_acquires() -> u64 {
    CONTENDED.load(Ordering::Relaxed)
}

/// Reset all global state: order graph, reports, counters, and the
/// calling thread's stacks. Test plumbing — fixtures run serially and
/// call this between scenarios so edges from one scenario cannot bleed
/// cycles into the next.
pub fn reset() {
    with_registry(|reg| {
        *reg = Registry::default();
    });
    HELD_HWM.store(0, Ordering::Relaxed);
    CONTENDED.store(0, Ordering::Relaxed);
    let _ = HELD.try_with(|h| h.borrow_mut().clear());
    let _ = STRIPES.try_with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

    /// Global state demands serial tests.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> StdMutexGuard<'static, ()> {
        let g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_mode(LocksanMode::Record);
        g
    }

    fn release_all(tags: &[&LockTag]) {
        for t in tags {
            on_release(t);
        }
    }

    #[test]
    fn ab_ba_inversion_is_a_potential_deadlock() {
        let _g = serial();
        let a = LockTag::new();
        let b = LockTag::new();
        label(&a, "fixture::A", false);
        label(&b, "fixture::B", false);
        on_acquire(&a, "mutex");
        on_acquire(&b, "mutex"); // edge A→B
        release_all(&[&b, &a]);
        on_acquire(&b, "mutex");
        on_acquire(&a, "mutex"); // edge B→A closes the cycle
        release_all(&[&a, &b]);
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].rule, Rule::PotentialDeadlock);
        assert!(reports[0].detail.contains("fixture::A"));
        assert!(reports[0].detail.contains("fixture::B"));
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn consistent_order_is_clean() {
        let _g = serial();
        let a = LockTag::new();
        let b = LockTag::new();
        label(&a, "fixture::outer", false);
        label(&b, "fixture::inner", false);
        for _ in 0..3 {
            on_acquire(&a, "mutex");
            on_acquire(&b, "mutex");
            release_all(&[&b, &a]);
        }
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn transitive_cycle_through_three_classes_is_found() {
        let _g = serial();
        let a = LockTag::new();
        let b = LockTag::new();
        let c = LockTag::new();
        label(&a, "fixture::ta", false);
        label(&b, "fixture::tb", false);
        label(&c, "fixture::tc", false);
        on_acquire(&a, "mutex");
        on_acquire(&b, "mutex"); // A→B
        release_all(&[&b, &a]);
        on_acquire(&b, "mutex");
        on_acquire(&c, "mutex"); // B→C
        release_all(&[&c, &b]);
        on_acquire(&c, "mutex");
        on_acquire(&a, "mutex"); // C→A: cycle A→B→C→A
        release_all(&[&a, &c]);
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].rule, Rule::PotentialDeadlock);
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn same_class_nesting_is_not_an_inversion() {
        let _g = serial();
        let a = LockTag::new();
        let b = LockTag::new();
        label(&a, "fixture::cell", false);
        label(&b, "fixture::cell", false);
        on_acquire(&a, "mutex");
        on_acquire(&b, "mutex");
        release_all(&[&b, &a]);
        on_acquire(&b, "mutex");
        on_acquire(&a, "mutex");
        release_all(&[&a, &b]);
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn try_acquire_inserts_no_edges() {
        let _g = serial();
        let a = LockTag::new();
        let b = LockTag::new();
        label(&a, "fixture::try-a", false);
        label(&b, "fixture::try-b", false);
        on_acquire(&a, "mutex");
        on_try_acquire(&b, "mutex");
        release_all(&[&b, &a]);
        on_acquire(&b, "mutex");
        on_try_acquire(&a, "mutex");
        release_all(&[&a, &b]);
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn persist_while_holding_is_reported_once_per_class() {
        let _g = serial();
        let a = LockTag::new();
        label(&a, "fixture::svc", false);
        on_acquire(&a, "mutex");
        on_persist("flush");
        on_persist("fence"); // deduped
        on_release(&a);
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].rule, Rule::LockAcrossPersist);
        assert!(reports[0].detail.contains("fixture::svc"));
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn allow_persist_class_is_exempt() {
        let _g = serial();
        let a = LockTag::new();
        label(&a, "fixture::tm-state", true);
        on_acquire(&a, "mutex");
        on_persist("fence");
        on_release(&a);
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn condvar_wait_while_holding_another_lock() {
        let _g = serial();
        let outer = LockTag::new();
        let waited = LockTag::new();
        label(&outer, "fixture::held", false);
        label(&waited, "fixture::waited", false);
        on_acquire(&outer, "mutex");
        on_acquire(&waited, "mutex");
        on_condvar_wait(&waited);
        release_all(&[&waited, &outer]);
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].rule, Rule::CondvarWhileHolding);
        assert!(reports[0].detail.contains("fixture::held"));
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn condvar_wait_holding_only_its_mutex_is_clean() {
        let _g = serial();
        let waited = LockTag::new();
        label(&waited, "fixture::only", false);
        on_acquire(&waited, "mutex");
        on_condvar_wait(&waited);
        on_release(&waited);
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn stripe_order_violation_on_ordered_path() {
        let _g = serial();
        on_stripe_acquire(10, true, "test::commit");
        on_stripe_acquire(20, true, "test::commit");
        on_stripe_acquire(5, true, "test::commit"); // out of order
        on_stripe_release_all();
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].rule, Rule::StripeOrder);
        assert!(reports[0].detail.contains("rank 5"));
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn unordered_stripe_path_is_never_checked() {
        let _g = serial();
        on_stripe_acquire(20, false, "test::weak");
        on_stripe_acquire(5, false, "test::weak");
        on_stripe_release_all();
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn stripe_reset_clears_cross_attempt_state() {
        let _g = serial();
        on_stripe_acquire(50, true, "test::commit");
        on_stripe_release_all();
        on_stripe_acquire(5, true, "test::commit"); // fresh attempt: fine
        on_stripe_release_all();
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn counters_track_depth_and_contention() {
        let _g = serial();
        let a = LockTag::new();
        let b = LockTag::new();
        label(&a, "fixture::d1", false);
        label(&b, "fixture::d2", false);
        on_acquire(&a, "mutex");
        on_acquire(&b, "mutex");
        on_contended();
        release_all(&[&b, &a]);
        assert!(held_hwm() >= 2);
        assert_eq!(contended_acquires(), 1);
        assert!(take_reports().is_empty());
        set_mode(LocksanMode::Off);
    }

    #[test]
    fn off_mode_tracks_nothing() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_mode(LocksanMode::Off);
        let a = LockTag::new();
        on_acquire(&a, "mutex");
        on_persist("fence");
        on_release(&a);
        assert_eq!(held_hwm(), 0);
        assert!(take_reports().is_empty());
    }

    #[test]
    fn panic_mode_aborts_at_the_inversion() {
        let _g = serial();
        set_mode(LocksanMode::Panic);
        let a = LockTag::new();
        let b = LockTag::new();
        label(&a, "fixture::pa", false);
        label(&b, "fixture::pb", false);
        on_acquire(&a, "mutex");
        on_acquire(&b, "mutex");
        release_all(&[&b, &a]);
        on_acquire(&b, "mutex");
        let err = std::panic::catch_unwind(|| on_acquire(&a, "mutex"))
            .expect_err("panic mode must abort the inversion");
        release_all(&[&a, &b]);
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("locksan[potential-deadlock]"), "{msg}");
        set_mode(LocksanMode::Off);
        reset();
    }

    #[test]
    fn mode_parses_env_conventions() {
        // from_env reads the real environment; only exercise the parse
        // table indirectly via set_mode/mode roundtrips.
        for m in [LocksanMode::Off, LocksanMode::Record, LocksanMode::Panic] {
            set_mode(m);
            assert_eq!(mode(), m);
        }
        set_mode(LocksanMode::Off);
    }
}
