//! Targeted tests of TrinityVR-TL2's distinguishing mechanisms: the
//! global version clock, snapshot staleness aborts, the validation-skip
//! optimisation, and persistence ordering.

use std::sync::atomic::{AtomicBool, Ordering};
use tm::policy::HybridPolicy;
use tm::stats::Counter;
use tm::{txn, Abort, Addr, Tm};
use trinity::{Trinity, TrinityConfig};

/// A reader that started before a writer committed must not observe the
/// writer's value (TL2's rv check), even though the write is already in
/// volatile memory when the reader reaches it.
#[test]
fn stale_snapshot_rejects_newer_versions() {
    let tmem = Trinity::new(TrinityConfig::test(1 << 10, 2));
    txn(&tmem, 0, |tx| tx.write(Addr(1), 10)).unwrap();
    let wrote = AtomicBool::new(false);
    let mut first_attempt_aborted = false;
    std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let mut attempts = 0;
            let v = txn(&tmem, 0, |tx| {
                attempts += 1;
                if attempts == 1 {
                    // Stall after TxStart so the writer commits under us.
                    wrote.store(true, Ordering::Release);
                    let t0 = std::time::Instant::now();
                    while t0.elapsed() < std::time::Duration::from_millis(20) {
                        std::thread::yield_now();
                    }
                }
                tx.read(Addr(1))
            })
            .unwrap();
            (v, attempts)
        });
        s.spawn(|| {
            while !wrote.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            txn(&tmem, 1, |tx| tx.write(Addr(1), 20)).unwrap();
        });
        let (v, attempts) = reader.join().unwrap();
        // The first attempt saw ver > rv and retried; the retry reads 20.
        first_attempt_aborted = attempts > 1;
        assert_eq!(v, 20);
    });
    assert!(
        first_attempt_aborted,
        "TL2 must reject the read of a version newer than rv"
    );
    assert!(tmem.stats().get(Counter::SwAbort) >= 1);
}

/// The validation-skip path (clock moved by exactly one) commits without
/// re-validating; interleaved independent writers still serialize
/// correctly.
#[test]
fn validation_skip_is_sound_under_interleaving() {
    let tmem = Trinity::new(TrinityConfig::test(1 << 10, 2));
    std::thread::scope(|s| {
        for t in 0..2usize {
            let tmem = &tmem;
            s.spawn(move || {
                for i in 0..3_000u64 {
                    txn(tmem, t, |tx| {
                        // Read both counters, bump our own: classic
                        // snapshot-dependent write.
                        let mine = tx.read(Addr(1 + t as u64))?;
                        let theirs = tx.read(Addr(2 - t as u64))?;
                        let _ = theirs;
                        tx.write(Addr(1 + t as u64), mine + 1)?;
                        let _ = i;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    assert_eq!(tmem.read_raw(Addr(1)), 3_000);
    assert_eq!(tmem.read_raw(Addr(2)), 3_000);
}

/// Locks are held across the persist phase: a concurrent reader can
/// never observe a committed-but-not-yet-durable value (Trinity's
/// correctness argument, inherited by NV-HALT's software path).
#[test]
fn readers_never_see_non_durable_data() {
    let mut cfg = TrinityConfig::test(1 << 10, 2);
    cfg.pm.lat.fence_base_ns = 5_000_000; // stretch the persist window
    let tmem = Trinity::new(cfg);
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for i in 1..=20u64 {
                txn(&tmem, 0, |tx| {
                    tx.write(Addr(1), i)?;
                    tx.write(Addr(2), i)
                })
                .unwrap();
            }
        });
        // The reader retries while the writer holds its locks; any
        // committed snapshot must be pair-consistent AND durable.
        for _ in 0..50 {
            let (a, b) = txn(&tmem, 1, |tx| {
                let a = tx.read(Addr(1))?;
                let b = tx.read(Addr(2))?;
                Ok((a, b))
            })
            .unwrap();
            assert_eq!(a, b, "torn pair");
            let (durable_a, _, _) = tmem.pmem().durable_entry(1);
            assert!(
                durable_a >= a || a == 0,
                "observed value {a} ahead of durable {durable_a}"
            );
        }
        writer.join().unwrap();
    });
}

/// Cancelling has no effect on the clock (no ghost versions).
#[test]
fn cancelled_writers_do_not_advance_the_clock() {
    let tmem = Trinity::new(TrinityConfig::test(1 << 10, 1));
    for _ in 0..10 {
        let _ = txn(&tmem, 0, |tx| {
            tx.write(Addr(1), 1)?;
            Err::<(), _>(Abort::Cancel)
        });
    }
    // A later reader-writer pair behaves as if nothing happened.
    txn(&tmem, 0, |tx| tx.write(Addr(1), 5)).unwrap();
    assert_eq!(txn(&tmem, 0, |tx| tx.read(Addr(1))).unwrap(), 5);
    assert_eq!(tmem.stats().get(Counter::Cancelled), 10);
}

/// Crash between two transactions of one thread: recovery restores the
/// first and drops nothing (thread pver bookkeeping).
#[test]
fn recovery_respects_thread_pver_chain() {
    let cfg = TrinityConfig::test(1 << 10, 1);
    let tmem = Trinity::new(cfg.clone());
    for i in 1..=7u64 {
        txn(&tmem, 0, |tx| tx.write(Addr(i), i * 11)).unwrap();
    }
    tmem.crash();
    let rec = Trinity::recover(cfg.clone(), &tmem.crash_image(), []);
    for i in 1..=7u64 {
        assert_eq!(rec.read_raw(Addr(i)), i * 11);
    }
    assert_eq!(rec.thread_pver(0), 7);
    // And the recovered instance keeps committing durably.
    txn(&rec, 0, |tx| tx.write(Addr(8), 88)).unwrap();
    rec.crash();
    let rec2 = Trinity::recover(cfg, &rec.crash_image(), []);
    assert_eq!(rec2.read_raw(Addr(8)), 88);
    assert_eq!(rec2.read_raw(Addr(7)), 77);
}

/// STM-only policy flag is honoured (Trinity never uses hardware).
#[test]
fn trinity_is_pure_software() {
    let mut cfg = TrinityConfig::test(1 << 10, 1);
    cfg.policy = HybridPolicy::default(); // even with hw_attempts > 0
    let tmem = Trinity::new(cfg);
    for _ in 0..50 {
        txn(&tmem, 0, |tx| tx.write(Addr(1), 1)).unwrap();
    }
    let s = tmem.stats();
    assert_eq!(s.get(Counter::HwCommit), 0);
    assert_eq!(s.get(Counter::SwCommit), 50);
}
