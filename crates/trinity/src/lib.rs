//! TrinityVR-TL2: the state-of-the-art persistent *software* TM the paper
//! compares against (§2.1.2, §5.1).
//!
//! Concurrency control is TL2 (Dice, Shalev, Shavit): a global version
//! clock, versioned write locks, invisible reads validated against the
//! clock, buffered writes with commit-time locking in a fixed order
//! (hence strong progressiveness), and the classic optimisation that
//! read-set re-validation is skipped when the clock advanced by exactly
//! one (no concurrent writer committed).
//!
//! Persistence is Trinity: every word's persistent image is an annotated
//! cache line `{data, back, seq}` (shared with NV-HALT via
//! [`pmem::annot`]); a committing writer persists `back = old`,
//! `seq = {tid, pver}`, `data = new` per word, fences, then bumps and
//! persists its per-thread persistent version number before releasing its
//! locks. Recovery reverts every word whose `seq` was not superseded —
//! identical undo semantics to NV-HALT's software path, which is exactly
//! the point: the paper adopted Trinity's mechanism for NV-HALT, so the
//! baseline and the contribution share their persistence engine and the
//! comparison isolates the concurrency-control and fast-path differences.
//!
//! The TL2 lock word is `(version << 1) | locked`: version is the global
//! clock value of the last writer, the low bit is the lock.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use pmem::annot::{AnnotLayout, PVER_COUNT_TRUSTED};
use pmem::pool::{DurableImage, PmemConfig};
use pmem::{AnnotPmem, Meta};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm::policy::HybridPolicy;
use tm::stats::{Counter, StatsSnapshot, TmStats};
use tm::{Abort, Addr, Cancelled, Tm, TmPrepare, TxResult, Txn, Word};
use txalloc::{AllocConfig, TxAlloc, TxnLog};

/// Trinity configuration.
#[derive(Clone, Debug)]
pub struct TrinityConfig {
    /// Transactional heap size in words.
    pub heap_words: usize,
    /// Thread slots.
    pub max_threads: usize,
    /// log2 of the lock-table size.
    pub locks_log2: u32,
    /// Software retry backoff (the hardware fields are unused).
    pub policy: HybridPolicy,
    /// Persistent-memory settings (`words`/`max_threads` overridden).
    pub pm: PmemConfig,
    /// Simulation cost model: ns per instrumented access (see the same
    /// field on `NvHaltConfig`; zero for functional testing).
    pub instr_ns: u32,
    /// Simulation cost model: ns per global-version-clock RMW.
    pub clock_ns: u32,
}

impl TrinityConfig {
    /// Functional-test defaults (zero latency, eager flushes).
    pub fn test(heap_words: usize, max_threads: usize) -> Self {
        TrinityConfig {
            heap_words,
            max_threads,
            locks_log2: 16,
            policy: HybridPolicy::stm_only(),
            pm: PmemConfig::test(0, max_threads),
            instr_ns: 0,
            clock_ns: 0,
        }
    }
}

struct ThreadState {
    rset: Vec<u32>,
    wset: Vec<(u64, u64)>,
    acquired: Vec<(u32, u64)>,
    alloc_log: TxnLog,
    pver: u64,
    seed: u64,
    /// True between a successful `prepare` and its commit/abort decision.
    prepared: bool,
    /// Undo list of a prepared transaction: `(addr, old value)` per write.
    pundo: Vec<(u64, u64)>,
    /// The commit version drawn at prepare time (locks are stamped with it
    /// at release, whichever way the decision goes).
    pwv: u64,
    /// Scratch for the group-commit flush pass: distinct entry lines of the
    /// write set, flushed once each instead of once per entry.
    flush_lines: Vec<usize>,
}

/// The TrinityVR-TL2 persistent STM.
pub struct Trinity {
    cfg: TrinityConfig,
    vol: Box<[AtomicU64]>,
    locks: Box<[AtomicU64]>,
    gvc: AtomicU64,
    pmem: AnnotPmem,
    alloc: TxAlloc,
    stats: Arc<TmStats>,
    threads: Vec<CachePadded<Mutex<ThreadState>>>,
}

#[inline]
fn lock_ver(l: u64) -> u64 {
    l >> 1
}

#[inline]
fn lock_held(l: u64) -> bool {
    l & 1 == 1
}

impl Trinity {
    /// Create a fresh instance.
    pub fn new(cfg: TrinityConfig) -> Self {
        let stats = Arc::new(TmStats::new(cfg.max_threads));
        Self::build(cfg, stats, None, &[])
    }

    fn build(
        cfg: TrinityConfig,
        stats: Arc<TmStats>,
        image: Option<&DurableImage>,
        pvers: &[u64],
    ) -> Self {
        let layout = AnnotLayout {
            heap_words: cfg.heap_words,
            max_threads: cfg.max_threads,
        };
        let pmem = match image {
            None => AnnotPmem::new(layout, &cfg.pm, Some(stats.clone())),
            Some(img) => AnnotPmem::from_image(layout, &cfg.pm, img, Some(stats.clone())),
        };
        let threads = (0..cfg.max_threads)
            .map(|t| {
                let cell = CachePadded::new(Mutex::new(ThreadState {
                    rset: Vec::with_capacity(256),
                    wset: Vec::with_capacity(64),
                    acquired: Vec::with_capacity(64),
                    alloc_log: TxnLog::new(),
                    pver: pvers.get(t).copied().unwrap_or(0),
                    seed: (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    prepared: false,
                    pundo: Vec::with_capacity(64),
                    pwv: 0,
                    flush_lines: Vec::with_capacity(64),
                }));
                // Commit persists the write set while this cell is held
                // — by design; exempt from the lock-across-persist rule.
                cell.locksan_label("trinity::thread_state", true);
                cell
            })
            .collect();
        Trinity {
            vol: (0..cfg.heap_words).map(|_| AtomicU64::new(0)).collect(),
            locks: (0..1usize << cfg.locks_log2)
                .map(|_| AtomicU64::new(0))
                .collect(),
            gvc: AtomicU64::new(0),
            alloc: TxAlloc::new(AllocConfig::new(cfg.heap_words, cfg.max_threads)),
            stats,
            threads,
            pmem,
            cfg,
        }
    }

    /// TL2's lock-table mapping: consecutive addresses, consecutive locks.
    #[inline]
    fn lock_idx(&self, a: usize) -> u32 {
        (a & (self.locks.len() - 1)) as u32
    }

    /// Access to the persistent pool (crash control).
    pub fn pmem(&self) -> &AnnotPmem {
        &self.pmem
    }

    /// Simulate a power failure.
    pub fn crash(&self) {
        self.pmem.pool().crash();
    }

    /// Capture the durable image after a crash.
    pub fn crash_image(&self) -> DurableImage {
        assert!(self.pmem.pool().is_crashed());
        self.pmem.pool().snapshot_durable()
    }

    /// Recover from a crash image, rebuilding the allocator from the
    /// caller's live-block iterator.
    pub fn recover(
        cfg: TrinityConfig,
        image: &DurableImage,
        used_blocks: impl IntoIterator<Item = (u64, usize)>,
    ) -> Trinity {
        let layout = AnnotLayout {
            heap_words: cfg.heap_words,
            max_threads: cfg.max_threads,
        };
        let stats = Arc::new(TmStats::new(cfg.max_threads));
        // Thresholds fold in the counted-marker check: a one-fence commit
        // whose marker is durable but whose generation is missing pad
        // witnesses is torn, and the whole generation (threshold - 1 = its
        // stamp) rolls back. The verdicts are pinned durably before any
        // neutralization destroys the evidence they came from.
        let pvers = layout.revert_thresholds(image);
        let tm = Self::build(cfg, stats, Some(image), &pvers);
        tm.pmem.pin_recovery_verdicts(image, &pvers);
        for a in 0..tm.cfg.heap_words {
            let (data, back, meta) = layout.image_entry(image, a);
            let incomplete =
                meta.0 != 0 && meta.tid() < tm.cfg.max_threads && meta.ver() >= pvers[meta.tid()];
            let value = if incomplete { back } else { data };
            if incomplete {
                // Durable roll-back *and* stamp clearing: a stale `{tid, v}`
                // with its pad witness intact would be miscounted as part of
                // that thread's next counted commit.
                tm.pmem.recovery_neutralize(a, back);
            }
            tm.vol[a].store(value, Ordering::Relaxed);
        }
        tm.pmem.sfence(0);
        tm.alloc.rebuild(used_blocks);
        tm
    }

    /// The recovered/current pver of a thread (tests).
    pub fn thread_pver(&self, tid: usize) -> u64 {
        self.threads[tid].lock().pver
    }

    /// One transaction attempt. Returns `Ok(Some(r))` on commit,
    /// `Ok(None)` on a conflict abort, `Err(Cancelled)` on cancel.
    fn attempt<R>(
        &self,
        ts: &mut ThreadState,
        tid: usize,
        attempt: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> Result<Option<R>, Cancelled> {
        ts.rset.clear();
        ts.wset.clear();
        debug_assert!(ts.alloc_log.is_empty());
        let rv = self.gvc.load(Ordering::Acquire);
        let mut oom = false;
        let res = {
            let mut tx = TrinityTxn {
                tm: self,
                rv,
                attempt,
                rset: &mut ts.rset,
                wset: &mut ts.wset,
                alloc_log: &mut ts.alloc_log,
                oom: &mut oom,
                tid,
            };
            body(&mut tx)
        };
        if oom {
            self.alloc.abort(tid, &mut ts.alloc_log);
            panic!("transactional heap exhausted (trinity)");
        }
        match res {
            Ok(r) => {
                if self.commit(tid, ts, rv) {
                    self.alloc.commit(tid, &mut ts.alloc_log);
                    self.stats.bump(tid, Counter::SwCommit);
                    Ok(Some(r))
                } else {
                    self.alloc.abort(tid, &mut ts.alloc_log);
                    self.stats.bump(tid, Counter::SwAbort);
                    Ok(None)
                }
            }
            Err(Abort::Retry(_)) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::SwAbort);
                Ok(None)
            }
            Err(Abort::Cancel) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::Cancelled);
                Err(Cancelled)
            }
        }
    }

    fn release(&self, acquired: &[(u32, u64)], new_word: Option<u64>) {
        for &(idx, pre) in acquired {
            self.locks[idx as usize].store(new_word.unwrap_or(pre), Ordering::Release);
        }
        #[cfg(feature = "locksan")]
        locksan::on_stripe_release_all();
    }

    /// TL2 commit with Trinity persistence.
    fn commit(&self, tid: usize, ts: &mut ThreadState, rv: u64) -> bool {
        if ts.wset.is_empty() {
            // Read-only: every read was validated against rv at access
            // time; the transaction serializes at its start.
            return true;
        }
        // Acquire write locks in lock-index order (strong progressiveness
        // needs a fixed total order).
        ts.acquired.clear();
        let mut idxs: Vec<u32> = ts
            .wset
            .iter()
            .map(|&(a, _)| self.lock_idx(a as usize))
            .collect();
        idxs.sort_unstable();
        idxs.dedup();
        // Fresh ordered acquisition sequence (clears crash-unwind residue).
        #[cfg(feature = "locksan")]
        locksan::on_stripe_release_all();
        for idx in idxs {
            let cell = &self.locks[idx as usize];
            let pre = cell.load(Ordering::Acquire);
            if lock_held(pre)
                || cell
                    .compare_exchange(pre, pre | 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
            {
                self.stats.bump(tid, Counter::StripeContended);
                self.release(&ts.acquired, None);
                ts.acquired.clear();
                return false;
            }
            #[cfg(feature = "locksan")]
            locksan::on_stripe_acquire(idx as u64, true, "trinity::commit");
            ts.acquired.push((idx, pre));
        }
        pmem::latency::spin_ns(self.cfg.clock_ns);
        let wv = self.gvc.fetch_add(1, Ordering::AcqRel) + 1;
        // TL2's validation skip: if the clock moved by exactly one, no
        // concurrent writer committed since we started.
        if wv != rv + 1 {
            for &idx in ts.rset.iter() {
                let cur = self.locks[idx as usize].load(Ordering::Acquire);
                let mine = ts.acquired.binary_search_by(|&(i, _)| i.cmp(&idx)).is_ok();
                if (lock_held(cur) && !mine) || lock_ver(cur) > rv {
                    self.release(&ts.acquired, None);
                    ts.acquired.clear();
                    return false;
                }
            }
        }
        // Persist (Trinity) and apply the write set as a one-fence group
        // commit — coalesced flush pass, counted marker, single fence —
        // then release locks stamped with the commit version wv.
        let _psan = self.pmem.pool().psan_scope(tid, "trinity::commit");
        self.pmem
            .preserve_witnesses(tid, ts.wset.iter().map(|&(a, _)| a as usize));
        let meta = Meta::pack(tid, ts.pver);
        ts.flush_lines.clear();
        for &(a, val) in ts.wset.iter() {
            let old = self.vol[a as usize].load(Ordering::Acquire);
            self.pmem.stage_entry(tid, a as usize, old, val, meta);
            ts.flush_lines.push(self.pmem.entry_line(a as usize));
            self.vol[a as usize].store(val, Ordering::Release);
        }
        self.pmem.flush_lines(tid, &mut ts.flush_lines);
        ts.pver += 1;
        self.persist_commit_marker(tid, ts.pver, ts.wset.len() as u64, meta);
        self.release(&ts.acquired, Some(wv << 1));
        ts.acquired.clear();
        true
    }

    /// Make the commit of an already-staged-and-flushed (but unfenced)
    /// generation durable. Normally a *counted* marker plus ONE fence —
    /// recovery tells a torn commit from a complete one by counting the
    /// generation's durable pad witnesses. Falls back to the legacy
    /// two-fence order when the generation stamp packs to zero (thread
    /// 0's first commit) or the write set overflows the count field.
    fn persist_commit_marker(&self, tid: usize, pver: u64, count: u64, gen: Meta) {
        debug_assert!(count > 0);
        if gen.0 != 0 && count < PVER_COUNT_TRUSTED {
            self.pmem.persist_pver_counted(tid, pver, count);
            self.pmem.sfence(tid);
            self.pmem
                .pool()
                .durability_point(tid, "trinity::commit_durable");
        } else {
            self.pmem.sfence(tid);
            self.pmem.persist_pver(tid, pver);
            self.pmem.sfence(tid);
        }
    }

    /// One *prepare* attempt: like [`Trinity::attempt`] but stops the
    /// commit protocol at the point of no return — locks stay held and the
    /// writes are staged durably below the thread's persistent version.
    fn attempt_prepare<R>(
        &self,
        ts: &mut ThreadState,
        tid: usize,
        attempt: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> Result<Option<R>, Cancelled> {
        ts.rset.clear();
        ts.wset.clear();
        debug_assert!(ts.alloc_log.is_empty());
        let rv = self.gvc.load(Ordering::Acquire);
        let mut oom = false;
        let res = {
            let mut tx = TrinityTxn {
                tm: self,
                rv,
                attempt,
                rset: &mut ts.rset,
                wset: &mut ts.wset,
                alloc_log: &mut ts.alloc_log,
                oom: &mut oom,
                tid,
            };
            body(&mut tx)
        };
        if oom {
            self.alloc.abort(tid, &mut ts.alloc_log);
            panic!("transactional heap exhausted (trinity)");
        }
        match res {
            Ok(r) => {
                if self.do_prepare(tid, ts, rv) {
                    // The allocation log stays pending (and the commit stat
                    // unbumped) until the coordinator's decision.
                    ts.prepared = true;
                    Ok(Some(r))
                } else {
                    self.alloc.abort(tid, &mut ts.alloc_log);
                    self.stats.bump(tid, Counter::SwAbort);
                    Ok(None)
                }
            }
            Err(Abort::Retry(_)) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::SwAbort);
                Ok(None)
            }
            Err(Abort::Cancel) => {
                self.alloc.abort(tid, &mut ts.alloc_log);
                self.stats.bump(tid, Counter::Cancelled);
                Err(Cancelled)
            }
        }
    }

    /// Lock acquisition over the write *and* read sets plus durable write
    /// staging — everything [`Trinity::commit`] does short of the pver bump
    /// and the lock release.
    fn do_prepare(&self, tid: usize, ts: &mut ThreadState, rv: u64) -> bool {
        ts.acquired.clear();
        let mut idxs: Vec<u32> = ts
            .wset
            .iter()
            .map(|&(a, _)| self.lock_idx(a as usize))
            .chain(ts.rset.iter().copied())
            .collect();
        idxs.sort_unstable();
        idxs.dedup();
        #[cfg(feature = "locksan")]
        locksan::on_stripe_release_all();
        for idx in idxs {
            let cell = &self.locks[idx as usize];
            let pre = cell.load(Ordering::Acquire);
            // Locking the read set pins it, so no commit-time validation is
            // needed later; a version past rv means a concurrent writer
            // already invalidated this attempt.
            if lock_held(pre)
                || lock_ver(pre) > rv
                || cell
                    .compare_exchange(pre, pre | 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
            {
                self.stats.bump(tid, Counter::StripeContended);
                self.release(&ts.acquired, None);
                ts.acquired.clear();
                return false;
            }
            #[cfg(feature = "locksan")]
            locksan::on_stripe_acquire(idx as u64, true, "trinity::prepare");
            ts.acquired.push((idx, pre));
        }
        pmem::latency::spin_ns(self.cfg.clock_ns);
        ts.pwv = self.gvc.fetch_add(1, Ordering::AcqRel) + 1;
        // Stage the writes durably *below* the current pver: a crash before
        // the decision recovers them as incomplete and rolls them back.
        let _psan = self.pmem.pool().psan_scope(tid, "trinity::prepare");
        self.pmem
            .preserve_witnesses(tid, ts.wset.iter().map(|&(a, _)| a as usize));
        ts.pundo.clear();
        ts.flush_lines.clear();
        let meta = Meta::pack(tid, ts.pver);
        for &(a, val) in ts.wset.iter() {
            let old = self.vol[a as usize].load(Ordering::Acquire);
            ts.pundo.push((a, old));
            self.pmem.stage_entry(tid, a as usize, old, val, meta);
            ts.flush_lines.push(self.pmem.entry_line(a as usize));
            self.vol[a as usize].store(val, Ordering::Release);
        }
        self.pmem.flush_lines(tid, &mut ts.flush_lines);
        self.pmem.sfence(tid);
        // The coordinator may record its durable decision as soon as
        // `prepare` returns: every staged entry must already be fenced.
        self.pmem
            .pool()
            .durability_point(tid, "trinity::prepare_staged");
        true
    }
}

impl TmPrepare for Trinity {
    fn prepare<R>(
        &self,
        tid: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> TxResult<R> {
        assert!(tid < self.cfg.max_threads);
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(
            !ts.prepared,
            "prepare while a prepared transaction is outstanding"
        );
        let mut attempt = 0usize;
        loop {
            self.pmem.pool().crash_point(tid);
            match self.attempt_prepare(ts, tid, attempt, body)? {
                Some(r) => return Ok(r),
                None => {
                    ts.seed = ts.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    self.cfg.policy.backoff(ts.seed, attempt);
                    attempt += 1;
                }
            }
        }
    }

    fn commit_prepared(&self, tid: usize) {
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(
            ts.prepared,
            "commit_prepared without a prepared transaction"
        );
        self.pmem.pool().crash_point(tid);
        let _psan = self.pmem.pool().psan_scope(tid, "trinity::commit_prepared");
        ts.pver += 1;
        self.pmem.persist_pver(tid, ts.pver);
        self.pmem.sfence(tid);
        self.release(&ts.acquired, Some(ts.pwv << 1));
        ts.acquired.clear();
        self.alloc.commit(tid, &mut ts.alloc_log);
        ts.pundo.clear();
        ts.prepared = false;
        self.stats.bump(tid, Counter::SwCommit);
    }

    fn abort_prepared(&self, tid: usize) {
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(ts.prepared, "abort_prepared without a prepared transaction");
        self.pmem.pool().crash_point(tid);
        // Durably restore the old values with `back == data` so a later
        // pver bump by this thread cannot resurrect the aborted writes.
        let _psan = self.pmem.pool().psan_scope(tid, "trinity::abort_prepared");
        let meta = Meta::pack(tid, ts.pver);
        ts.flush_lines.clear();
        for &(a, old) in ts.pundo.iter() {
            self.vol[a as usize].store(old, Ordering::Release);
            self.pmem.stage_entry(tid, a as usize, old, old, meta);
            ts.flush_lines.push(self.pmem.entry_line(a as usize));
        }
        self.pmem.flush_lines(tid, &mut ts.flush_lines);
        self.pmem.sfence(tid);
        // Consume the generation the aborted entries are stamped with: a
        // trusted marker pushes the durable pver past them so they are
        // neither resurrected by recovery nor miscounted as witnesses of
        // this thread's *next* (counted, one-fence) commit.
        if !ts.pundo.is_empty() {
            ts.pver += 1;
            self.pmem.persist_pver(tid, ts.pver);
            self.pmem.sfence(tid);
        }
        self.release(&ts.acquired, Some(ts.pwv << 1));
        ts.acquired.clear();
        self.alloc.abort(tid, &mut ts.alloc_log);
        ts.pundo.clear();
        ts.prepared = false;
        self.stats.bump(tid, Counter::Cancelled);
    }

    fn has_prepared(&self, tid: usize) -> bool {
        self.threads[tid].lock().prepared
    }
}

impl Tm for Trinity {
    fn txn<R>(
        &self,
        tid: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> TxResult<R> {
        assert!(tid < self.cfg.max_threads);
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        assert!(
            !ts.prepared,
            "txn while a prepared transaction is outstanding"
        );
        let mut attempt = 0usize;
        loop {
            self.pmem.pool().crash_point(tid);
            match self.attempt(ts, tid, attempt, body)? {
                Some(r) => return Ok(r),
                None => {
                    ts.seed = ts.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    self.cfg.policy.backoff(ts.seed, attempt);
                    attempt += 1;
                }
            }
        }
    }

    fn max_threads(&self) -> usize {
        self.cfg.max_threads
    }

    fn read_raw(&self, a: Addr) -> Word {
        self.vol[a.index()].load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn name(&self) -> &'static str {
        "trinity"
    }
}

struct TrinityTxn<'a> {
    tm: &'a Trinity,
    tid: usize,
    rv: u64,
    attempt: usize,
    rset: &'a mut Vec<u32>,
    wset: &'a mut Vec<(u64, u64)>,
    alloc_log: &'a mut TxnLog,
    oom: &'a mut bool,
}

impl<'a> Txn for TrinityTxn<'a> {
    fn read(&mut self, a: Addr) -> Result<Word, Abort> {
        let idx = a.index();
        if idx == 0 || idx >= self.tm.cfg.heap_words {
            return Err(Abort::CONFLICT);
        }
        pmem::latency::spin_ns(self.tm.cfg.instr_ns);
        if let Some(&(_, v)) = self.wset.iter().rev().find(|&&(wa, _)| wa == a.0) {
            return Ok(v);
        }
        let lock = &self.tm.locks[self.tm.lock_idx(idx) as usize];
        let l1 = lock.load(Ordering::Acquire);
        if lock_held(l1) || lock_ver(l1) > self.rv {
            return Err(Abort::CONFLICT);
        }
        let val = self.tm.vol[idx].load(Ordering::Acquire);
        let l2 = lock.load(Ordering::Acquire);
        if l2 != l1 {
            return Err(Abort::CONFLICT);
        }
        self.rset.push(self.tm.lock_idx(idx));
        Ok(val)
    }

    fn write(&mut self, a: Addr, v: Word) -> Result<(), Abort> {
        let idx = a.index();
        if idx == 0 || idx >= self.tm.cfg.heap_words {
            return Err(Abort::CONFLICT);
        }
        pmem::latency::spin_ns(self.tm.cfg.instr_ns);
        if let Some(e) = self.wset.iter_mut().rev().find(|e| e.0 == a.0) {
            e.1 = v;
            return Ok(());
        }
        self.wset.push((a.0, v));
        Ok(())
    }

    fn alloc(&mut self, words: usize) -> Result<Addr, Abort> {
        match self.tm.alloc.alloc(self.tid, words, self.alloc_log) {
            Some(a) => Ok(Addr(a)),
            None => {
                *self.oom = true;
                Err(Abort::CONFLICT)
            }
        }
    }

    fn free(&mut self, a: Addr, words: usize) -> Result<(), Abort> {
        self.tm.alloc.free(a.0, words, self.alloc_log);
        Ok(())
    }

    fn is_hw(&self) -> bool {
        false
    }

    fn attempt(&self) -> usize {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm::txn;

    fn small() -> Trinity {
        Trinity::new(TrinityConfig::test(1 << 12, 4))
    }

    #[test]
    fn read_write_roundtrip() {
        let t = small();
        let r = txn(&t, 0, |tx| {
            tx.write(Addr(5), 11)?;
            tx.read(Addr(5))
        });
        assert_eq!(r, Ok(11));
        assert_eq!(t.read_raw(Addr(5)), 11);
    }

    #[test]
    fn global_clock_advances_per_writer() {
        let t = small();
        for i in 0..10 {
            txn(&t, 0, |tx| tx.write(Addr(1), i)).unwrap();
        }
        assert_eq!(t.gvc.load(Ordering::Relaxed), 10);
        // Read-only transactions do not advance the clock.
        txn(&t, 0, |tx| tx.read(Addr(1))).unwrap();
        assert_eq!(t.gvc.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn cancel_discards_writes() {
        let t = small();
        let r: Result<(), Cancelled> = txn(&t, 0, |tx| {
            tx.write(Addr(3), 9)?;
            Err(Abort::Cancel)
        });
        assert!(r.is_err());
        assert_eq!(t.read_raw(Addr(3)), 0);
    }

    #[test]
    fn snapshot_reads_reject_stale_versions() {
        // A transaction that started before a writer committed must not
        // read the new value and still commit against old reads.
        let t = Arc::new(small());
        txn(&*t, 0, |tx| tx.write(Addr(1), 1)).unwrap();
        txn(&*t, 0, |tx| tx.write(Addr(2), 1)).unwrap();
        let violations = {
            let t = t.clone();
            std::thread::spawn(move || {
                let mut bad = 0;
                for _ in 0..3_000 {
                    let (a, b) = txn(&*t, 1, |tx| {
                        let a = tx.read(Addr(1))?;
                        let b = tx.read(Addr(2))?;
                        Ok((a, b))
                    })
                    .unwrap();
                    if a != b {
                        bad += 1;
                    }
                }
                bad
            })
        };
        for i in 2..2_000u64 {
            txn(&*t, 0, |tx| {
                tx.write(Addr(1), i)?;
                tx.write(Addr(2), i)
            })
            .unwrap();
        }
        assert_eq!(violations.join().unwrap(), 0);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let t = Arc::new(small());
        let mut handles = Vec::new();
        for tid in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..3_000 {
                    txn(&*t, tid, |tx| {
                        let v = tx.read(Addr(1))?;
                        tx.write(Addr(1), v + 1)
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.read_raw(Addr(1)), 12_000);
    }

    #[test]
    fn committed_data_survives_crash() {
        let cfg = TrinityConfig::test(1 << 10, 2);
        let t = Trinity::new(cfg.clone());
        txn(&t, 0, |tx| tx.write(Addr(4), 44)).unwrap();
        txn(&t, 1, |tx| tx.write(Addr(5), 55)).unwrap();
        t.crash();
        let rec = Trinity::recover(cfg, &t.crash_image(), []);
        assert_eq!(rec.read_raw(Addr(4)), 44);
        assert_eq!(rec.read_raw(Addr(5)), 55);
        assert_eq!(rec.thread_pver(0), 1);
    }

    #[test]
    fn incomplete_persist_rolls_back() {
        let cfg = TrinityConfig::test(1 << 10, 1);
        let t = Trinity::new(cfg.clone());
        txn(&t, 0, |tx| tx.write(Addr(4), 1)).unwrap();
        let pver = t.thread_pver(0);
        t.pmem().persist_entry(0, 4, 1, 2, Meta::pack(0, pver));
        t.crash();
        let rec = Trinity::recover(cfg, &t.crash_image(), []);
        assert_eq!(rec.read_raw(Addr(4)), 1);
    }

    #[test]
    fn alloc_roundtrip() {
        let t = small();
        let a = txn(&t, 0, |tx| {
            let a = tx.alloc(4)?;
            tx.write(a, 7)?;
            Ok(a)
        })
        .unwrap();
        assert_eq!(t.read_raw(a), 7);
        txn(&t, 0, |tx| tx.free(a, 4)).unwrap();
        assert_eq!(txn(&t, 0, |tx| tx.alloc(4)).unwrap(), a);
    }

    #[test]
    fn stats_count_software_commits() {
        let t = small();
        for _ in 0..5 {
            txn(&t, 0, |tx| tx.write(Addr(1), 1)).unwrap();
        }
        let s = t.stats();
        assert_eq!(s.get(Counter::SwCommit), 5);
        assert_eq!(s.get(Counter::HwCommit), 0);
        assert!(s.get(Counter::Flush) > 0);
    }

    /// A read that gives up after a few conflicting attempts, so tests can
    /// observe "this address is locked" as `Err(Cancelled)`.
    fn try_read(t: &Trinity, tid: usize, a: Addr) -> TxResult<Word> {
        txn(t, tid, |tx| {
            if tx.attempt() >= 6 {
                return Err(Abort::Cancel);
            }
            tx.read(a)
        })
    }

    #[test]
    fn prepared_writes_are_invisible_until_commit() {
        let t = small();
        txn(&t, 0, |tx| tx.write(Addr(3), 1)).unwrap();
        tm::prepare(&t, 0, |tx| tx.write(Addr(3), 2)).unwrap();
        assert!(t.has_prepared(0));
        // Another thread cannot read the prepared address.
        assert_eq!(try_read(&t, 1, Addr(3)), Err(Cancelled));
        t.commit_prepared(0);
        assert!(!t.has_prepared(0));
        assert_eq!(try_read(&t, 1, Addr(3)), Ok(2));
    }

    #[test]
    fn prepare_pins_its_read_set() {
        let t = small();
        txn(&t, 0, |tx| tx.write(Addr(4), 7)).unwrap();
        // Prepare a transaction that only *reads* Addr(4): its lock is held,
        // so a concurrent writer must fail until the decision.
        tm::prepare(&t, 0, |tx| tx.read(Addr(4))).unwrap();
        let w = txn(&t, 1, |tx| {
            if tx.attempt() >= 6 {
                return Err(Abort::Cancel);
            }
            tx.write(Addr(4), 8)?;
            tx.read(Addr(4))
        });
        assert_eq!(w, Err(Cancelled));
        t.abort_prepared(0);
        let w = txn(&t, 1, |tx| {
            tx.write(Addr(4), 8)?;
            tx.read(Addr(4))
        });
        assert_eq!(w, Ok(8));
    }

    #[test]
    fn crash_while_prepared_rolls_back() {
        let cfg = TrinityConfig::test(1 << 10, 2);
        let t = Trinity::new(cfg.clone());
        txn(&t, 0, |tx| tx.write(Addr(6), 10)).unwrap();
        tm::prepare(&t, 0, |tx| tx.write(Addr(6), 11)).unwrap();
        t.crash();
        let rec = Trinity::recover(cfg, &t.crash_image(), []);
        assert_eq!(rec.read_raw(Addr(6)), 10);
    }

    #[test]
    fn commit_prepared_is_durable() {
        let cfg = TrinityConfig::test(1 << 10, 2);
        let t = Trinity::new(cfg.clone());
        tm::prepare(&t, 0, |tx| tx.write(Addr(6), 21)).unwrap();
        t.commit_prepared(0);
        t.crash();
        let rec = Trinity::recover(cfg, &t.crash_image(), []);
        assert_eq!(rec.read_raw(Addr(6)), 21);
    }

    #[test]
    fn abort_prepared_holds_durably_across_later_commits() {
        let cfg = TrinityConfig::test(1 << 10, 1);
        let t = Trinity::new(cfg.clone());
        txn(&t, 0, |tx| tx.write(Addr(3), 1)).unwrap();
        tm::prepare(&t, 0, |tx| tx.write(Addr(3), 2)).unwrap();
        t.abort_prepared(0);
        // Later commits bump this thread's pver past the aborted entry's
        // version; the rollback must still hold after a crash.
        for i in 0..4 {
            txn(&t, 0, |tx| tx.write(Addr(9), i + 1)).unwrap();
        }
        t.crash();
        let rec = Trinity::recover(cfg, &t.crash_image(), []);
        assert_eq!(rec.read_raw(Addr(3)), 1);
        assert_eq!(rec.read_raw(Addr(9)), 4);
    }

    #[test]
    #[should_panic(expected = "prepared transaction is outstanding")]
    fn txn_panics_while_prepared() {
        let t = small();
        tm::prepare(&t, 0, |tx| tx.write(Addr(2), 1)).unwrap();
        let _ = txn(&t, 0, |tx| tx.read(Addr(2)));
    }
}
