//! `kvserve` — a durable, sharded key-value service on top of NV-HALT.
//!
//! The service demonstrates the paper's TM as a *storage engine*: keys are
//! hash-routed across N shards, each shard owning one [`NvHalt`] instance
//! and one transactional hashmap. Per-shard worker threads drain a bounded
//! request queue and coalesce up to `batch_max` requests into a **single
//! durable transaction**, amortizing commit-time flush/fence costs — the
//! service-level payoff of the TM's cheap fine-grained-lock fast path.
//!
//! Robustness knobs (all in [`ServiceConfig`]):
//! - **deadlines** — every request carries one; expired requests get a
//!   typed [`ServeError::Timeout`], whether they expire in the queue or
//!   mid-retry;
//! - **backpressure** — a full shard queue rejects immediately with
//!   [`ServeError::Overloaded`] carrying a retry hint;
//! - **bounded retries** — a batch whose transaction exhausts its attempt
//!   fuel is retried under exponential backoff at most `max_retries`
//!   times, then answered [`ServeError::Aborted`].
//!
//! Crash/recovery are *service operations*: [`Service::crash`] simulates a
//! power failure (workers unwind mid-transaction), captures each shard's
//! durable image, and returns a [`CrashDump`]; [`Service::recover`] replays
//! TM recovery per shard, rebuilds the allocators from a heap walk, and
//! restarts the workers. The durable-linearizability contract at this
//! level: **every acked write survives; an un-acked request may or may not
//! have committed, but a multi-op request is never partially visible.**
//!
//! [`Service::snapshot`] exposes per-shard op counters, abort-cause
//! breakdowns from the TM, batch-size distributions, and fixed-bucket
//! latency histograms — no external dependencies.
//!
//! The front end is completion-based ([`Ring`], see the `ring` module):
//! the blocking `get`/`put`/`batch` calls are thin wrappers that submit
//! to an internal ring and park on the ticket, while [`Service::ring`]
//! hands out rings that keep thousands of requests in flight from one
//! thread. Cross-shard batches are queued to dedicated 2PC driver
//! threads — no request path ever blocks on a per-request channel.

mod coord;
pub mod metrics;
pub mod migrate;
pub mod net;
pub mod repl;
mod ring;
mod shard;

pub use coord::TwoPcStep;
pub use metrics::{
    CoordinatorSnapshot, HistogramSnapshot, NetSnapshot, ReplShardSnapshot, ReplSnapshot,
    RingSnapshot, ServiceSnapshot, ShardSnapshot,
};
pub use migrate::{MigrateCrash, MigrateReport, MigrateSpec, MigrateStep};
pub use net::{FrameError, NetClient, NetConfig, NetError, NetHook, NetKill, NetServer, NetStep};
pub use repl::{FailoverStep, Follower, LogEntry, LogKind, ReplStep};
pub use ring::{Completion, Drain, Ring, Ticket};
pub use txstructs::MapOp;

use coord::Coordinator;
use crossbeam::channel::{self, Receiver, Sender};
use metrics::RingMetrics;
use nvhalt::{NvHalt, NvHaltConfig};
use pmem::pool::DurableImage;
use repl::{PrimaryLog, ReplRuntime};
use ring::{RingCompletion, RingLane};
use shard::Shard;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tm::{Addr, Tm};
use txstructs::HashMapTx;

/// Extra time a blocking client waits past its deadline for the
/// worker-side timeout completion before abandoning the ticket.
const REPLY_GRACE: Duration = Duration::from_millis(100);

/// Buckets of each shard's 2PC marker map (tiny: it only ever holds the
/// markers of in-flight cross-shard transactions).
pub(crate) const META_BUCKETS: usize = 64;

/// Why a request was not served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The request's deadline passed before it was served.
    Timeout,
    /// The shard's queue was full; retry after the hinted delay.
    Overloaded {
        /// Suggested client backoff before resubmitting.
        retry_after: Duration,
    },
    /// The batch transaction exhausted its retry budget.
    Aborted,
    /// The service (or its shard workers) stopped — e.g. a simulated
    /// power failure tore the worker down before it could ack.
    Stopped,
    /// A multi-op request mixed keys from different shards. No longer
    /// produced — such requests now run under two-phase commit — but kept
    /// so clients written against the pre-2PC service still compile.
    CrossShard,
    /// Every slot of the submission ring is occupied (in flight or
    /// completed but not yet reaped). Reap completions, then resubmit.
    RingFull,
    /// The request was submitted under a routing-table epoch that a live
    /// shard migration has since flipped, and its keys no longer belong
    /// to the shard that dequeued it. Deterministic verdict: nothing was
    /// executed — re-route against the current table and resubmit.
    Rerouted,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Timeout => write!(f, "deadline exceeded"),
            ServeError::Overloaded { retry_after } => {
                write!(f, "shard queue full, retry after {retry_after:?}")
            }
            ServeError::Aborted => write!(f, "transaction retry budget exhausted"),
            ServeError::Stopped => write!(f, "service stopped"),
            ServeError::CrossShard => write!(f, "multi-op request spans shards"),
            ServeError::RingFull => write!(f, "submission ring full, reap completions"),
            ServeError::Rerouted => {
                write!(f, "routing table flipped under the request, resubmit")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// What a request resolves to: one value slot per submitted op, in
/// submission order. `Ok` is the durability ack; any `Err` means the
/// request was never acked (it may or may not have committed).
pub type Reply = Result<Vec<Option<u64>>, ServeError>;

/// One queued cross-shard request, awaiting a 2PC driver thread.
pub(crate) struct XRequest {
    pub ops: Vec<MapOp>,
    pub reply: RingCompletion,
    /// Absolute deadline; queue wait counts against it.
    pub deadline: Instant,
}

/// Service tuning knobs. Construct with [`ServiceConfig::new`] and adjust
/// fields as needed; `nvhalt` is a template whose `heap_words` /
/// `max_threads` are overridden per shard.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of shards (one NV-HALT instance + hashmap each).
    pub shards: usize,
    /// Worker threads per shard (each gets its own TM thread slot).
    pub workers_per_shard: usize,
    /// Maximum requests coalesced into one durable transaction.
    pub batch_max: usize,
    /// Bounded queue depth per shard; beyond it requests are rejected
    /// with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Request slots per [`Ring`] (also sizes the internal ring behind
    /// the blocking calls); a ring with no free slot rejects submissions
    /// with [`ServeError::RingFull`].
    pub ring_slots: usize,
    /// Hashmap buckets per shard.
    pub buckets_per_shard: usize,
    /// Transactional heap words per shard.
    pub heap_words_per_shard: usize,
    /// Deadline applied by the plain `get`/`put`/`del`/`batch` calls.
    pub default_deadline: Duration,
    /// Service-level batch retries after the transaction cancels.
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// TM attempts (across both paths) a batch may burn before the
    /// transaction is voluntarily cancelled back to the service layer.
    pub attempt_fuel: usize,
    /// Cross-shard coordinator slots: how many client threads may drive
    /// 2PC batches concurrently. Each slot reserves one extra TM thread
    /// id on every shard and one on the decision log.
    pub coordinators: usize,
    /// Transactional heap words of the decision log's own TM.
    pub log_heap_words: usize,
    /// Replicate each shard to a follower NV-HALT instance: mutations
    /// reach a durable per-shard op log inside their own transaction, a
    /// shipper streams the log to the follower, and acks wait for the
    /// durable follower receive (semi-synchronous). Enables
    /// [`Service::fail_over`] / [`Service::promote`].
    pub replication: bool,
    /// Idle poll interval of the per-shard shipping threads (appends also
    /// wake them eagerly).
    pub ship_interval: Duration,
    /// Group-commit window of the shipping threads: once woken, a
    /// shipper lingers this long before its round, so every op-log
    /// entry appended in the window rides the round's single follower
    /// commit (one flush pass, one fence) instead of costing its own.
    /// Acks wait for the durable follower receive, so the window is a
    /// deliberate latency-for-persist-traffic trade; zero disables it.
    pub ship_coalesce: Duration,
    /// NV-HALT template for each shard (variant, policy, latency model).
    pub nvhalt: NvHaltConfig,
}

impl ServiceConfig {
    /// Defaults sized for functional tests: small heaps, zero simulated
    /// latency. Benchmarks override the `nvhalt` template and sizes.
    pub fn new(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            workers_per_shard: 1,
            batch_max: 16,
            queue_depth: 1024,
            ring_slots: 4096,
            buckets_per_shard: 512,
            heap_words_per_shard: 1 << 16,
            default_deadline: Duration::from_secs(2),
            max_retries: 8,
            backoff_base: Duration::from_micros(50),
            backoff_max: Duration::from_millis(5),
            attempt_fuel: 16,
            coordinators: 2,
            log_heap_words: 1 << 16,
            replication: false,
            ship_interval: Duration::from_millis(1),
            ship_coalesce: Duration::ZERO,
            nvhalt: NvHaltConfig::test(1 << 16, 1),
        }
    }

    /// The per-shard NV-HALT configuration derived from the template.
    /// Thread slots: `workers_per_shard` for the shard's own workers,
    /// one participant slot per cross-shard coordinator, one slot for
    /// the replication shipper, and one for a live migration driver.
    /// The shipper and migration slots are reserved even when unused: a
    /// pool image's length depends on `max_threads`, and keeping it
    /// fixed lets primary images, follower images, a promoted
    /// follower's image, and a freshly provisioned migration target all
    /// recover under this one configuration.
    pub(crate) fn shard_nvhalt(&self) -> NvHaltConfig {
        let mut c = self.nvhalt.clone();
        let threads = self.workers_per_shard + self.coordinators + 2;
        c.heap_words = self.heap_words_per_shard;
        c.max_threads = threads;
        c.pm.max_threads = threads;
        c
    }

    /// The decision log's NV-HALT configuration (one thread slot per
    /// coordinator; slot 0 doubles as the recovery thread).
    fn log_nvhalt(&self) -> NvHaltConfig {
        let mut c = self.nvhalt.clone();
        let threads = self.coordinators.max(1);
        c.heap_words = self.log_heap_words;
        c.max_threads = threads;
        c.pm.max_threads = threads;
        c
    }
}

/// The raw routing hash: which of `shards` cells `key` falls into.
/// This is both the legacy fixed-topology router and the slot hash of
/// the versioned [`RoutingTable`] (with `shards = ROUTE_SLOTS`). A
/// *fresh* table routes identically to `shard_of_key(key, n)` whenever
/// `n` divides [`ROUTE_SLOTS`], which keeps pre-migration deployments
/// bit-compatible with the old router. Exposed so tests and load
/// generators can construct same-shard (atomic) multi-op requests.
#[inline]
pub fn shard_of_key(key: u64, shards: usize) -> usize {
    ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % shards as u64) as usize
}

/// Fixed number of virtual routing slots. Keys hash to a slot; the
/// [`RoutingTable`] assigns each slot to a shard. Migrations move whole
/// slots, so the unit of elasticity is `1/64` of the key space.
pub const ROUTE_SLOTS: usize = 64;

/// The versioned routing table: `epoch` counts flips (0 at creation),
/// `assign[slot]` names the owning shard. The table is durably rooted
/// in the 2PC decision log's pool and only ever replaced by a single
/// committed transaction ([the flip](migrate)), so a crash recovers to
/// either the old or the new assignment — never a torn one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoutingTable {
    epoch: u64,
    assign: Vec<u32>,
}

impl RoutingTable {
    /// The epoch-0 table for `shards` shards: slot `s` belongs to shard
    /// `s % shards`.
    pub fn fresh(shards: usize) -> RoutingTable {
        assert!(shards >= 1, "need at least one shard");
        RoutingTable {
            epoch: 0,
            assign: (0..ROUTE_SLOTS).map(|s| (s % shards) as u32).collect(),
        }
    }

    pub(crate) fn from_parts(epoch: u64, assign: Vec<u32>) -> RoutingTable {
        assert_eq!(assign.len(), ROUTE_SLOTS, "corrupt routing table");
        RoutingTable { epoch, assign }
    }

    /// The table's version; bumped by one per migration flip.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The slot `key` hashes into (table-independent).
    #[inline]
    pub fn slot_of(key: u64) -> usize {
        shard_of_key(key, ROUTE_SLOTS)
    }

    /// Which shard serves `key` under this table.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        self.assign[RoutingTable::slot_of(key)] as usize
    }

    /// How many shards the table addresses (`max(assign) + 1`).
    pub fn shards(&self) -> usize {
        self.assign
            .iter()
            .map(|&a| a as usize + 1)
            .max()
            .unwrap_or(1)
    }

    /// The slots currently assigned to `shard`, ascending.
    pub fn slots_of(&self, shard: usize) -> Vec<usize> {
        (0..ROUTE_SLOTS)
            .filter(|&s| self.assign[s] as usize == shard)
            .collect()
    }

    /// The per-slot assignment (read-only view).
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// The next-epoch table with `slots` reassigned to `target`.
    pub fn reassign(&self, slots: &[usize], target: usize) -> RoutingTable {
        let mut assign = self.assign.clone();
        for &s in slots {
            assign[s] = target as u32;
        }
        RoutingTable {
            epoch: self.epoch + 1,
            assign,
        }
    }
}

/// The versioned routing accessor every submission path goes through:
/// one lock-guarded cell holding the current table **and** the matched
/// shard lanes and cross-shard queue. Reading all three together is
/// what makes a submission race-free against a concurrent flip — a
/// request stamped with epoch E always lands in an epoch-E queue, and
/// the migration drains those queues after installing epoch E+1, so
/// every in-ring request submitted under the old table is re-routed (or
/// answered [`ServeError::Rerouted`]) deterministically.
/// (held-lock high-water mark, contended blocking acquisitions) from
/// the lock-discipline sanitizer, for the observability snapshot.
#[cfg(feature = "locksan")]
fn lock_counters() -> (u64, u64) {
    (locksan::held_hwm(), locksan::contended_acquires())
}

/// Lock counters read zero without the `locksan` feature.
#[cfg(not(feature = "locksan"))]
fn lock_counters() -> (u64, u64) {
    (0, 0)
}

pub(crate) struct Router {
    inner: parking_lot::Mutex<RouterInner>,
}

#[derive(Clone)]
pub(crate) struct RouterInner {
    pub table: Arc<RoutingTable>,
    pub lanes: Arc<Vec<RingLane>>,
    pub xqueue: Sender<XRequest>,
}

impl Router {
    pub fn new(inner: RouterInner) -> Router {
        let r = Router {
            inner: parking_lot::Mutex::new(inner),
        };
        r.inner.locksan_label("service::router", false);
        r
    }

    /// A coherent `(table, lanes, xqueue)` snapshot.
    pub fn load(&self) -> RouterInner {
        self.inner.lock().clone()
    }

    /// The current table.
    pub fn table(&self) -> Arc<RoutingTable> {
        self.inner.lock().table.clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().table.epoch
    }

    /// Install the next topology (the in-memory half of a flip).
    pub fn install(&self, inner: RouterInner) {
        *self.inner.lock() = inner;
    }
}

/// One shard's durable remains after a crash: the persistent image plus
/// the map's root metadata needed to re-attach.
pub struct ShardImage {
    /// Durable persistent-memory image captured post-crash.
    pub image: DurableImage,
    /// Bucket-array address of the shard's hashmap.
    pub buckets: Addr,
    /// Bucket count of the shard's hashmap.
    pub nbuckets: usize,
    /// Bucket-array address of the shard's 2PC marker map.
    pub meta_buckets: Addr,
    /// Bucket count of the shard's 2PC marker map.
    pub meta_nbuckets: usize,
    /// The shard's op-log header block (always present; the durable
    /// armed word inside it says whether appends were live).
    pub repl_hdr: Addr,
    /// Extra live blocks recovery must keep reserved (e.g. a promoted
    /// follower's old header block).
    pub keep: Vec<(u64, usize)>,
}

/// One follower's durable remains: the image plus the roots needed to
/// re-attach its maps and find its receive log and watermarks.
pub struct FollowerImage {
    /// Durable persistent-memory image captured post-crash.
    pub image: DurableImage,
    /// Bucket-array address of the follower's data map.
    pub buckets: Addr,
    /// Bucket count of the follower's data map.
    pub nbuckets: usize,
    /// Bucket-array address of the follower's 2PC marker map.
    pub meta_buckets: Addr,
    /// Bucket count of the follower's 2PC marker map.
    pub meta_nbuckets: usize,
    /// The follower's header block (receive-log head + watermarks).
    pub hdr: Addr,
}

/// Everything [`Service::recover`] needs: the config, one [`ShardImage`]
/// per shard, the followers' remains (empty when replication is off),
/// and the decision log's durable remains.
pub struct CrashDump {
    cfg: ServiceConfig,
    shards: Vec<ShardImage>,
    followers: Vec<FollowerImage>,
    /// Durable image of the decision log's TM.
    log: DurableImage,
    /// Head word of the decision-entry list inside `log`.
    log_head: Addr,
    /// Durable routing-table root block inside `log`.
    route: Addr,
}

impl CrashDump {
    /// The per-shard durable images (read-only view).
    pub fn shards(&self) -> &[ShardImage] {
        &self.shards
    }
}

/// What survives losing every primary pool: the followers' durable
/// images and the 2PC decision log. [`Service::promote`] turns this into
/// a serving service.
pub struct FailoverDump {
    cfg: ServiceConfig,
    followers: Vec<FollowerImage>,
    log: DurableImage,
    log_head: Addr,
    /// Durable routing-table root block inside `log`.
    route: Addr,
}

/// What a promotion did, for reporting.
#[derive(Clone, Copy, Debug)]
pub struct FailoverReport {
    /// Wall-clock time from entering promotion to serving.
    pub duration: Duration,
    /// Receive-log tail entries applied during promotion.
    pub tail_applied: u64,
    /// Shard-transactions re-applied from the 2PC decision log.
    pub replayed: u64,
}

/// A crash injected mid-promotion: every phase is idempotent, so the
/// carried dump can simply be promoted again.
pub struct PromotionCrash {
    /// Fresh durable remains captured at the crash point.
    pub dump: FailoverDump,
}

/// The execution context the 2PC driver threads share with the service:
/// per-shard transactional state, the coordinator, the config, and the
/// replication runtime. `Arc`-held, so the drivers stay sound while a
/// `Service` is being consumed by [`Service::crash`].
pub(crate) struct Engine {
    pub cfg: ServiceConfig,
    pub parts: Vec<EnginePart>,
    /// `Arc` so a migration can carry the coordinator (decision log,
    /// txid counter, metrics) into the reassembled post-flip service.
    pub coord: Arc<Coordinator>,
    pub repl: Option<Arc<ReplRuntime>>,
    /// The versioned routing accessor (shared with every ring).
    pub router: Arc<Router>,
}

/// Prepared per-shard state handed to [`Service::assemble`]: TM, data
/// map, 2PC marker map, op-log header, extra blocks to keep reserved
/// across recoveries.
type ShardParts = (Arc<NvHalt>, HashMapTx, HashMapTx, Addr, Vec<(u64, usize)>);

/// One shard's transactional state, as the 2PC coordinator sees it.
pub(crate) struct EnginePart {
    pub tm: Arc<NvHalt>,
    pub map: HashMapTx,
    pub meta: HashMapTx,
    /// The shard's op-log header (appends gated by its armed word).
    pub log_hdr: Addr,
}

impl Engine {
    /// Poison every pool: the instant of power failure. In-flight
    /// requests surface [`ServeError::Stopped`] or
    /// [`ServeError::Timeout`] — never an ack.
    pub fn poison(&self) {
        for p in &self.parts {
            p.tm.crash();
        }
        self.coord.log.crash();
        if let Some(rt) = &self.repl {
            // Release semi-sync ack waiters immediately; with the primary
            // gone nothing will ever advance the receive watermarks.
            for st in &rt.states {
                st.down.store(true, Ordering::Release);
                st.notify_all();
            }
        }
    }
}

/// The sharded durable KV service. Cheap to share across client threads
/// by reference; dropped, it stops and joins its workers.
pub struct Service {
    engine: Arc<Engine>,
    shards: Vec<Shard>,
    shippers: Vec<JoinHandle<()>>,
    /// Receiver half of the cross-shard queue (the sender lives in the
    /// router), kept so teardown can drain it deterministically.
    xqueue_rx: Receiver<XRequest>,
    xstop: Arc<AtomicBool>,
    xdrivers: Vec<JoinHandle<()>>,
    /// Service-wide ring metrics, shared by every ring over this service.
    ring_metrics: Arc<RingMetrics>,
    /// The internal ring backing the blocking `get`/`put`/`batch` calls.
    front: Ring,
}

impl Service {
    /// Start a fresh service: create each shard's TM and hashmap, spawn
    /// the workers.
    pub fn new(cfg: ServiceConfig) -> Service {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.workers_per_shard >= 1, "need at least one worker");
        assert!(cfg.batch_max >= 1, "batch_max must be positive");
        assert!(cfg.queue_depth >= 1, "queue_depth must be positive");
        assert!(cfg.ring_slots >= 1, "ring_slots must be positive");
        assert!(cfg.coordinators >= 1, "need at least one coordinator slot");
        let table = Arc::new(RoutingTable::fresh(cfg.shards));
        let parts: Vec<(Arc<NvHalt>, HashMapTx, HashMapTx, Addr)> = (0..cfg.shards)
            .map(|_| {
                let tm = Arc::new(NvHalt::new(cfg.shard_nvhalt()));
                let map = HashMapTx::create(&*tm, 0, cfg.buckets_per_shard)
                    .expect("creating a map on a fresh TM cannot cancel");
                let meta = HashMapTx::create(&*tm, 0, META_BUCKETS)
                    .expect("creating a map on a fresh TM cannot cancel");
                // Every shard gets a log header; the durable armed word
                // (on iff replicating — a migration can arm it later)
                // gates actual appends.
                let hdr = tm.alloc_raw(0, repl::PRIMARY_HDR_WORDS);
                if cfg.replication {
                    repl::set_armed(&tm, 0, hdr, true);
                }
                (tm, map, meta, hdr)
            })
            .collect();
        let coord = Arc::new(Coordinator::new(&cfg, &table));
        let rt = cfg.replication.then(|| {
            let primaries = parts
                .iter()
                .map(|(tm, _, _, hdr)| PrimaryLog {
                    tm: tm.clone(),
                    hdr: *hdr,
                })
                .collect();
            Arc::new(ReplRuntime::new(&cfg, primaries, coord.log.clone()))
        });
        let parts = parts
            .into_iter()
            .map(|(tm, map, meta, hdr)| (tm, map, meta, hdr, Vec::new()))
            .collect();
        Service::assemble(cfg, parts, coord, rt, table, None, None)
    }

    /// Wire a service over prepared per-shard state (fresh, recovered,
    /// promoted, or migrated): spawn the shard workers, the 2PC drivers,
    /// and the shippers, install the topology into the (new or carried)
    /// router, and build the internal ring. A migration passes the old
    /// service's `router`/`ring_metrics` so every ring handed out before
    /// the flip atomically re-targets the new topology.
    fn assemble(
        cfg: ServiceConfig,
        parts: Vec<ShardParts>,
        coord: Arc<Coordinator>,
        rt: Option<Arc<ReplRuntime>>,
        table: Arc<RoutingTable>,
        router: Option<Arc<Router>>,
        ring_metrics: Option<Arc<RingMetrics>>,
    ) -> Service {
        let (xqueue, xqueue_rx) = channel::bounded::<XRequest>(cfg.queue_depth);
        let engine_parts: Vec<EnginePart> = parts
            .iter()
            .map(|(tm, map, meta, hdr, _)| EnginePart {
                tm: tm.clone(),
                map: *map,
                meta: *meta,
                log_hdr: *hdr,
            })
            .collect();
        // The router must exist before the workers: they read it to
        // validate stale-epoch requests.
        let router = router.unwrap_or_else(|| {
            Arc::new(Router::new(RouterInner {
                table: table.clone(),
                lanes: Arc::new(Vec::new()),
                xqueue: xqueue.clone(),
            }))
        });
        let engine = Arc::new(Engine {
            parts: engine_parts,
            coord,
            repl: rt.clone(),
            router: router.clone(),
            cfg: cfg.clone(),
        });
        let shards: Vec<Shard> = parts
            .into_iter()
            .enumerate()
            .map(|(i, (tm, map, meta, hdr, keep))| {
                Shard::start(
                    &cfg,
                    i,
                    tm,
                    map,
                    meta,
                    hdr,
                    keep,
                    rt.clone(),
                    router.clone(),
                )
            })
            .collect();
        let shippers = rt.as_ref().map(repl::spawn_shippers).unwrap_or_default();
        let xstop = Arc::new(AtomicBool::new(false));
        let xdrivers = (0..cfg.coordinators)
            .map(|c| {
                let eng = engine.clone();
                let rx = xqueue_rx.clone();
                let stop = xstop.clone();
                std::thread::Builder::new()
                    .name(format!("kvserve-2pc-{c}"))
                    .spawn(move || coord::drive(eng, rx, stop, c))
                    .expect("spawn 2pc driver")
            })
            .collect();
        let lanes: Arc<Vec<RingLane>> = Arc::new(
            shards
                .iter()
                .map(|s| RingLane {
                    queue: s.queue.clone(),
                    metrics: s.metrics.clone(),
                })
                .collect(),
        );
        // The flip's in-memory half: from here every submission (old
        // rings included) routes under `table` into the new lanes.
        router.install(RouterInner {
            table,
            lanes,
            xqueue,
        });
        let ring_metrics = ring_metrics.unwrap_or_else(|| Arc::new(RingMetrics::new()));
        let front = Ring::attach(
            cfg.ring_slots,
            router.clone(),
            ring_metrics.clone(),
            cfg.default_deadline,
            cfg.backoff_base,
        );
        Service {
            engine,
            shards,
            shippers,
            xqueue_rx,
            xstop,
            xdrivers,
            ring_metrics,
            front,
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.engine.cfg
    }

    /// A new completion-based front end over this service: its own slot
    /// slab of `cfg.ring_slots` slots, sharing the service-wide ring
    /// metrics. Clone the ring (cheap) to submit or reap from several
    /// threads against the same slab.
    pub fn ring(&self) -> Ring {
        self.ring_with_slots(self.engine.cfg.ring_slots)
    }

    /// [`Service::ring`] with an explicit slot count.
    pub fn ring_with_slots(&self, slots: usize) -> Ring {
        Ring::attach(
            slots,
            self.engine.router.clone(),
            self.ring_metrics.clone(),
            self.engine.cfg.default_deadline,
            self.engine.cfg.backoff_base,
        )
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The current routing table — the versioned accessor. Every
    /// submission path routes through (a coherent snapshot of) this.
    pub fn routing(&self) -> Arc<RoutingTable> {
        self.engine.router.table()
    }

    /// Which shard serves `key`, under the current routing table.
    pub fn shard_of(&self, key: u64) -> usize {
        self.engine.router.table().route(key)
    }

    /// Drain the persist-order sanitizer's diagnostics from every pool
    /// (each shard's TM plus the decision log). Empty when the sanitizer
    /// is off. Test plumbing: crash suites assert this stays free of
    /// correctness diagnostics.
    pub fn psan_diagnostics(&self) -> Vec<pmem::Diagnostic> {
        let mut out = Vec::new();
        for s in &self.shards {
            if let Some(p) = s.tm.pmem().pool().psan() {
                out.extend(p.take_diagnostics());
            }
        }
        if let Some(p) = self.engine.coord.log.pmem().pool().psan() {
            out.extend(p.take_diagnostics());
        }
        if let Some(rt) = &self.engine.repl {
            for cell in &rt.followers {
                if let Some(f) = &*cell.lock() {
                    if let Some(p) = f.tm.pmem().pool().psan() {
                        out.extend(p.take_diagnostics());
                    }
                }
            }
        }
        out
    }

    /// Drain the lock-discipline sanitizer's reports. Always empty
    /// without the `locksan` feature (or with the sanitizer off). Test
    /// plumbing: crash suites assert this stays empty too.
    #[cfg(feature = "locksan")]
    pub fn locksan_reports(&self) -> Vec<locksan::Report> {
        locksan::take_reports()
    }

    /// Drain the lock-discipline sanitizer's reports (always empty: the
    /// `locksan` feature is disabled).
    #[cfg(not(feature = "locksan"))]
    pub fn locksan_reports(&self) -> Vec<String> {
        Vec::new()
    }

    /// Install (or clear) the replication crash-injection hook: called at
    /// every [`ReplStep`]. At the worker steps a `true` poisons the
    /// *primary* pools (the failure failover exists for); at the shipper
    /// steps it poisons that shard's *follower* pool (repaired in place by
    /// [`Service::recover_follower`]).
    pub fn set_repl_crash_hook(&self, hook: Option<Arc<dyn Fn(ReplStep) -> bool + Send + Sync>>) {
        let rt = self
            .engine
            .repl
            .as_ref()
            .expect("set_repl_crash_hook requires cfg.replication");
        *rt.hook.lock() = hook;
    }

    /// Install (or clear) the 2PC crash-injection hook: called at every
    /// [`TwoPcStep`] of every cross-shard batch; returning `true` poisons
    /// all pools and unwinds the submitting thread right there, exactly
    /// as a power failure at that protocol step would. Test-only plumbing
    /// for deterministic crash injection.
    pub fn set_twopc_crash_hook(&self, hook: Option<Arc<dyn Fn(TwoPcStep) -> bool + Send + Sync>>) {
        *self.engine.coord.hook.lock() = hook;
    }

    /// Look up `key` under the default deadline.
    pub fn get(&self, key: u64) -> Result<Option<u64>, ServeError> {
        self.apply(MapOp::Get(key))
    }

    /// Insert/update `key` under the default deadline; returns the
    /// previous value.
    pub fn put(&self, key: u64, val: u64) -> Result<Option<u64>, ServeError> {
        self.apply(MapOp::Insert(key, val))
    }

    /// Remove `key` under the default deadline; returns the removed
    /// value.
    pub fn del(&self, key: u64) -> Result<Option<u64>, ServeError> {
        self.apply(MapOp::Remove(key))
    }

    /// Run one op under the default deadline.
    pub fn apply(&self, op: MapOp) -> Result<Option<u64>, ServeError> {
        self.apply_deadline(op, self.engine.cfg.default_deadline)
    }

    /// Run one op with an explicit deadline.
    pub fn apply_deadline(&self, op: MapOp, deadline: Duration) -> Result<Option<u64>, ServeError> {
        let mut vals = self.blocking(vec![op], deadline)?;
        Ok(vals.pop().expect("one value per op"))
    }

    /// Run several ops as **one atomic, durable transaction** under the
    /// default deadline. Batches whose keys all route to one shard take
    /// the queued fast path; mixed batches run under two-phase commit
    /// across the participating shards (still atomic and durable, at the
    /// cost of the 2PC round trips).
    pub fn batch(&self, ops: Vec<MapOp>) -> Result<Vec<Option<u64>>, ServeError> {
        self.batch_deadline(ops, self.engine.cfg.default_deadline)
    }

    /// [`Service::batch`] with an explicit deadline.
    pub fn batch_deadline(
        &self,
        ops: Vec<MapOp>,
        deadline: Duration,
    ) -> Result<Vec<Option<u64>>, ServeError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        self.blocking(ops, deadline)
    }

    /// The blocking calls are a thin shell over the internal ring: submit,
    /// then park on the ticket. The deadline clock starts at submission —
    /// queue wait is charged against it — and the extra `REPLY_GRACE`
    /// only pads the *wait*, giving the worker time to deliver a verdict
    /// for a request it picked up near the deadline.
    fn blocking(&self, ops: Vec<MapOp>, deadline: Duration) -> Reply {
        // `Rerouted` is retryable by construction — the request never
        // executed, the routing table just flipped under it — so the
        // blocking shell resubmits under the fresh table instead of
        // leaking a transient migration artifact to the caller.
        for _ in 0..3 {
            let ticket = match self.front.submit_batch_deadline(ops.clone(), deadline) {
                Ok(t) => t,
                // The internal ring sized out: equivalent to a full queue
                // from the blocking caller's point of view.
                Err(ServeError::RingFull) => {
                    return Err(ServeError::Overloaded {
                        retry_after: self.engine.cfg.backoff_base,
                    })
                }
                Err(e) => return Err(e),
            };
            match self
                .front
                .wait_deadline(ticket, Instant::now() + deadline + REPLY_GRACE)
            {
                Err(ServeError::Rerouted) => continue,
                verdict => return verdict,
            }
        }
        Err(ServeError::Rerouted)
    }

    /// Zero every shard's service-level counters and histograms (TM
    /// statistics are cumulative; diff snapshots with
    /// [`tm::stats::StatsSnapshot::since`] instead). Lets load
    /// generators exclude prefill/warm-up from the measurement window.
    pub fn reset_metrics(&self) {
        for s in &self.shards {
            s.metrics.reset();
        }
        self.engine.coord.metrics.reset();
        self.ring_metrics.reset();
    }

    /// Point-in-time observability snapshot: per-shard counters, latency
    /// and batch-size histograms, TM statistics (abort causes), and the
    /// cross-shard coordinator's 2PC counters and phase latencies.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            routing_epoch: self.engine.router.epoch(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.metrics.snapshot(i, s.tm.stats()))
                .collect(),
            coordinator: self
                .engine
                .coord
                .metrics
                .snapshot(self.engine.coord.log.stats()),
            ring: self.ring_metrics.snapshot(),
            replication: self.engine.repl.as_ref().map(|rt| ReplSnapshot {
                shards: rt
                    .states
                    .iter()
                    .enumerate()
                    .map(|(i, st)| ReplShardSnapshot {
                        shard: i,
                        appended: st.appended.load(Ordering::Relaxed),
                        received: st.received.load(Ordering::Acquire),
                        applied: st.applied.load(Ordering::Acquire),
                        settling: st.settling.load(Ordering::Acquire),
                    })
                    .collect(),
            }),
            lock_held_hwm: lock_counters().0,
            lock_contended: lock_counters().1,
        }
    }

    /// Poison every shard's persistent pool *without* tearing the
    /// service down: the instant of power failure, injectable while
    /// client threads are still submitting. Follow with
    /// [`Service::crash`] (idempotent over the poison) once the clients
    /// have been released. In-flight requests surface
    /// [`ServeError::Stopped`] or [`ServeError::Timeout`] — never an ack.
    pub fn poison(&self) {
        self.engine.poison();
    }

    /// Stop and join every worker, 2PC driver, and shipper thread, then
    /// drain both request queues, *returning* the queued-but-unserved
    /// requests. A crash/teardown drops them (each completion handle's
    /// Drop delivers `Stopped` into its ring slot); a migration re-routes
    /// them under the new table instead.
    pub(crate) fn halt_threads(&mut self) -> (Vec<shard::ShardRequest>, Vec<XRequest>) {
        if let Some(rt) = &self.engine.repl {
            rt.stop.store(true, Ordering::Release);
            for st in &rt.states {
                st.notify_all();
            }
        }
        self.xstop.store(true, Ordering::Release);
        for s in &self.shards {
            s.stop.store(true, Ordering::Release);
        }
        for s in &mut self.shards {
            for h in s.workers.drain(..) {
                let _ = h.join();
            }
        }
        for h in self.xdrivers.drain(..) {
            let _ = h.join();
        }
        for h in self.shippers.drain(..) {
            let _ = h.join();
        }
        // The channels hold buffered requests alive as long as any Sender
        // clone exists (user-held rings keep them connected); drain
        // explicitly so the requests resolve *now*, not whenever the
        // last ring is dropped.
        let mut reqs = Vec::new();
        for s in &self.shards {
            while let Ok(r) = s.queue_rx.try_recv() {
                reqs.push(r);
            }
        }
        let mut xreqs = Vec::new();
        while let Ok(r) = self.xqueue_rx.try_recv() {
            xreqs.push(r);
        }
        (reqs, xreqs)
    }

    /// [`Service::halt_threads`], dropping the drained requests (their
    /// tickets resolve to `Stopped`). Post-condition: every ticket
    /// submitted before this call has a definite verdict in its ring.
    fn stop_threads(&mut self) {
        let _ = self.halt_threads();
    }

    /// Simulate a power failure of the *whole deployment* — primaries,
    /// followers, decision log: poison every pool (workers mid-transaction
    /// unwind and never ack), stop and join all threads, and capture every
    /// durable image. For the lost-primary failure shape that keeps the
    /// followers, see [`Service::fail_over`].
    pub fn crash(mut self) -> CrashDump {
        // Poison first so nothing can be acked after the crash point…
        self.poison();
        if let Some(rt) = &self.engine.repl {
            for s in 0..rt.followers.len() {
                rt.poison_follower(s);
            }
        }
        // …then wake idle workers and shippers and collect them.
        self.stop_threads();
        let shards = std::mem::take(&mut self.shards);
        let images = shards
            .into_iter()
            .map(|s| ShardImage {
                image: s.tm.crash_image(),
                buckets: s.map.buckets_addr(),
                nbuckets: s.map.nbuckets(),
                meta_buckets: s.meta.buckets_addr(),
                meta_nbuckets: s.meta.nbuckets(),
                repl_hdr: s.repl_hdr,
                keep: s.keep_blocks.clone(),
            })
            .collect();
        let followers = match &self.engine.repl {
            Some(rt) => rt
                .followers
                .iter()
                .map(|cell| {
                    let f = cell.lock().take().expect("follower present until crash");
                    follower_image(&f)
                })
                .collect(),
            None => Vec::new(),
        };
        CrashDump {
            cfg: self.engine.cfg.clone(),
            shards: images,
            followers,
            log: self.engine.coord.log.crash_image(),
            log_head: self.engine.coord.head,
            route: self.engine.coord.route,
        }
    }

    /// Declare every primary pool lost — the failure shape replication
    /// exists for — and capture only what failover needs: the followers'
    /// durable images and the decision log. The primary images are
    /// dropped. Feed the result to [`Service::promote`].
    pub fn fail_over(mut self) -> FailoverDump {
        assert!(
            self.engine.cfg.replication,
            "fail_over requires cfg.replication"
        );
        self.poison();
        let rt = self.engine.repl.clone().expect("replication runtime");
        for s in 0..rt.followers.len() {
            rt.poison_follower(s);
        }
        self.stop_threads();
        // The primary pools are lost; drop them with the shards.
        drop(std::mem::take(&mut self.shards));
        let followers = rt
            .followers
            .iter()
            .map(|cell| {
                let f = cell.lock().take().expect("follower present until failover");
                follower_image(&f)
            })
            .collect();
        FailoverDump {
            cfg: self.engine.cfg.clone(),
            followers,
            log: self.engine.coord.log.crash_image(),
            log_head: self.engine.coord.head,
            route: self.engine.coord.route,
        }
    }

    /// Promote the followers of a [`FailoverDump`] into a serving
    /// service: finish applying each receive log's tail, durably commit
    /// the promotion, replay the 2PC decision log over the promoted
    /// shards, and start workers over the followers' pools. The promoted
    /// service runs with replication off (it *is* the surviving replica).
    pub fn promote(dump: FailoverDump) -> (Service, FailoverReport) {
        match Service::promote_hooked(dump, None) {
            Ok(r) => r,
            Err(_) => unreachable!("promotion without a hook cannot crash"),
        }
    }

    /// [`Service::promote`] with a crash-injection hook fired between the
    /// promotion phases. A `true` from the hook crashes the promotion and
    /// returns a fresh [`FailoverDump`] inside [`PromotionCrash`]; every
    /// phase is idempotent, so promoting that dump again completes the
    /// failover.
    pub fn promote_hooked(
        dump: FailoverDump,
        hook: Option<repl::FailoverHook>,
    ) -> Result<(Service, FailoverReport), Box<PromotionCrash>> {
        let start = Instant::now();
        let FailoverDump {
            cfg,
            followers,
            log,
            log_head,
            route,
        } = dump;
        let log_tm = Arc::new(NvHalt::recover_with(cfg.log_nvhalt(), &log));
        let entries = coord::walk_log(&log_tm, log_head);
        log_tm.rebuild_allocator(
            std::iter::once((log_head.0, 1))
                .chain(std::iter::once((route.0, coord::ROUTE_WORDS)))
                .chain(entries.iter().map(|e| (e.addr.0, e.words()))),
        );
        let table = Arc::new(coord::read_route_raw(&log_tm, route));
        let next_txid = entries.iter().map(|e| e.txid).max().unwrap_or(0) + 1;
        let coord = Arc::new(Coordinator::recovered(log_tm, log_head, route, next_txid));
        let fs: Vec<Follower> = followers
            .iter()
            .map(|fi| recover_follower_image(&cfg, fi))
            .collect();

        let crash = |fs: &[Follower], coord: &Coordinator| -> Box<PromotionCrash> {
            for f in fs {
                f.tm.crash();
            }
            coord.log.crash();
            Box::new(PromotionCrash {
                dump: FailoverDump {
                    cfg: cfg.clone(),
                    followers: fs.iter().map(follower_image).collect(),
                    log: coord.log.crash_image(),
                    log_head,
                    route,
                },
            })
        };
        let check = |step: FailoverStep| hook.as_ref().is_some_and(|h| h(step));
        if check(FailoverStep::Recovered) {
            return Err(crash(&fs, &coord));
        }

        // Finish applying each follower's received-but-unapplied tail:
        // everything durably received was ackable, so it must be served.
        let mut tail_applied = 0u64;
        for f in &fs {
            tail_applied += f.apply_batch(&f.pending()) as u64;
        }
        if check(FailoverStep::TailApplied) {
            return Err(crash(&fs, &coord));
        }

        for f in &fs {
            f.commit_promotion();
        }
        if check(FailoverStep::Promoted) {
            return Err(crash(&fs, &coord));
        }

        // Resolve cross-shard batches in flight at the failover: the
        // followers mirror the primaries' 2PC markers (via Prepare
        // entries), so the same replay that repairs a restart repairs a
        // promotion.
        let triples: Vec<(Arc<NvHalt>, HashMapTx, HashMapTx)> =
            fs.iter().map(|f| (f.tm.clone(), f.data, f.meta)).collect();
        // Each promoted shard gets a fresh (disarmed — the promoted
        // service is its own surviving replica) op-log header; raw
        // allocation is durably zero, so replay appends nothing to it.
        let hdrs: Vec<Addr> = fs
            .iter()
            .map(|f| f.tm.alloc_raw(0, repl::PRIMARY_HDR_WORDS))
            .collect();
        let replayed = coord::replay(&coord, &triples, &table, &entries, &hdrs);
        coord
            .metrics
            .counters
            .replayed
            .fetch_add(replayed, Ordering::Relaxed);
        for e in &entries {
            coord.release_entry(e.addr, e.cap);
        }
        if check(FailoverStep::Replayed) {
            return Err(crash(&fs, &coord));
        }

        // The receive logs are dead weight now: fully applied, and no
        // primary left to re-ship from.
        for f in &fs {
            f.trim_all();
        }

        let mut cfg2 = cfg;
        cfg2.replication = false;
        let parts = fs
            .into_iter()
            .zip(hdrs)
            .map(|(f, hdr)| {
                // The old follower header block stays reserved across
                // future recoveries of the promoted service.
                let keep = vec![(f.hdr.0, repl::FOLLOWER_HDR_WORDS)];
                (f.tm, f.data, f.meta, hdr, keep)
            })
            .collect();
        let report = FailoverReport {
            duration: start.elapsed(),
            tail_applied,
            replayed,
        };
        Ok((
            Service::assemble(cfg2, parts, coord, None, table, None, None),
            report,
        ))
    }

    /// Recover any crashed follower pools in place — the follower-only
    /// failure shape, injected at the shipper's [`ReplStep`]s. The
    /// primary keeps serving throughout (replicated writes time out while
    /// the follower is down); this re-runs TM recovery over the crashed
    /// follower, rebuilds its allocator, restores the ship watermarks
    /// from the durable words, and wakes the shipper, which re-ships the
    /// un-received tail from the primary's log.
    pub fn recover_follower(&self) {
        let rt = self
            .engine
            .repl
            .as_ref()
            .expect("recover_follower requires cfg.replication");
        for (s, cell) in rt.followers.iter().enumerate() {
            let mut cell = cell.lock();
            let crashed = matches!(&*cell, Some(f) if f.tm.pmem().pool().is_crashed());
            if !crashed {
                continue;
            }
            let f = cell.take().expect("checked above");
            let fi = follower_image(&f);
            let nf = recover_follower_image(&self.engine.cfg, &fi);
            let st = &rt.states[s];
            st.received.store(nf.received_raw(), Ordering::Release);
            st.applied.store(nf.applied_lsn(), Ordering::Release);
            *cell = Some(nf);
            st.down.store(false, Ordering::Release);
            st.signal_work();
        }
    }

    /// Recover a service from a crash dump: replay each shard's TM
    /// recovery, re-attach its hashmaps, rebuild the allocators from heap
    /// walks, replay the cross-shard decision log over the quiescent
    /// shards, and restart the workers.
    pub fn recover(dump: CrashDump) -> Service {
        let CrashDump {
            cfg,
            shards,
            followers,
            log,
            log_head,
            route,
        } = dump;
        // Decision log first: TM recovery, then rebuild its allocator
        // from a walk of the entry list (plus the head word and the
        // routing-table root).
        let log_tm = Arc::new(NvHalt::recover_with(cfg.log_nvhalt(), &log));
        let entries = coord::walk_log(&log_tm, log_head);
        log_tm.rebuild_allocator(
            std::iter::once((log_head.0, 1))
                .chain(std::iter::once((route.0, coord::ROUTE_WORDS)))
                .chain(entries.iter().map(|e| (e.addr.0, e.words()))),
        );
        // The durable routing table decides the recovered topology: a
        // crash mid-migration lands before the flip transaction (old
        // table, old shard count — the dump never saw the target) or
        // after it (new table, dump carries the target shard). Never a
        // torn mix.
        let table = Arc::new(coord::read_route_raw(&log_tm, route));
        debug_assert_eq!(table.shards(), shards.len(), "routing table vs dump");
        let next_txid = entries.iter().map(|e| e.txid).max().unwrap_or(0) + 1;
        let coord = Arc::new(Coordinator::recovered(log_tm, log_head, route, next_txid));

        // Shard TMs next, still quiescent (no workers yet). The heap walk
        // covers the maps, the op log, and any kept blocks.
        let recovered: Vec<(Arc<NvHalt>, HashMapTx, HashMapTx)> = shards
            .iter()
            .map(|si| {
                let tm = Arc::new(NvHalt::recover_with(cfg.shard_nvhalt(), &si.image));
                let map = HashMapTx::attach(si.buckets, si.nbuckets);
                let meta = HashMapTx::attach(si.meta_buckets, si.meta_nbuckets);
                let mut blocks: Vec<(u64, usize)> = map
                    .used_blocks(&*tm)
                    .into_iter()
                    .chain(meta.used_blocks(&*tm))
                    .collect();
                blocks.extend(repl::primary_used_blocks(&tm, si.repl_hdr));
                blocks.extend(si.keep.iter().copied());
                tm.rebuild_allocator(blocks);
                (tm, map, meta)
            })
            .collect();

        // Without replication the op logs only exist for migrations; a
        // crash mid-migration leaves the source's log armed with a
        // partial stream nobody will ever consume (a re-issued migration
        // arms and streams from scratch). Disarm and empty them while
        // quiescent.
        if !cfg.replication {
            for ((tm, _, _), si) in recovered.iter().zip(&shards) {
                if repl::armed_raw(tm, si.repl_hdr) {
                    repl::set_armed(tm, 0, si.repl_hdr, false);
                }
                repl::trim_through(tm, 0, si.repl_hdr.offset(repl::P_HEAD), u64::MAX);
            }
        }

        // Replay undecided cross-shard commits before any new traffic
        // (appending the matching Prepare/Resolve entries to the armed
        // op logs, so the followers re-converge too).
        let logs: Vec<Addr> = shards.iter().map(|si| si.repl_hdr).collect();
        let replayed = coord::replay(&coord, &recovered, &table, &entries, &logs);
        coord
            .metrics
            .counters
            .replayed
            .fetch_add(replayed, Ordering::Relaxed);
        // Replay left every entry resolved with its markers dropped, so
        // all of them are recyclable.
        for e in &entries {
            coord.release_entry(e.addr, e.cap);
        }

        // Followers last (after replay, so the ship states see the final
        // appended watermarks).
        let rt = cfg.replication.then(|| {
            let fs: Vec<Follower> = followers
                .iter()
                .map(|fi| recover_follower_image(&cfg, fi))
                .collect();
            let primaries = recovered
                .iter()
                .zip(&shards)
                .map(|((tm, _, _), si)| PrimaryLog {
                    tm: tm.clone(),
                    hdr: si.repl_hdr,
                })
                .collect();
            Arc::new(ReplRuntime::assemble(
                &cfg,
                primaries,
                coord.log.clone(),
                fs,
            ))
        });

        let parts = recovered
            .into_iter()
            .zip(shards)
            .map(|((tm, map, meta), si)| (tm, map, meta, si.repl_hdr, si.keep))
            .collect();
        Service::assemble(cfg, parts, coord, rt, table, None, None)
    }
}

/// Capture a crashed follower's durable remains.
fn follower_image(f: &Follower) -> FollowerImage {
    FollowerImage {
        image: f.tm.crash_image(),
        buckets: f.data.buckets_addr(),
        nbuckets: f.data.nbuckets(),
        meta_buckets: f.meta.buckets_addr(),
        meta_nbuckets: f.meta.nbuckets(),
        hdr: f.hdr,
    }
}

/// Recover a follower from its durable remains: TM recovery, map
/// re-attach, allocator rebuild from the maps + header + receive log.
fn recover_follower_image(cfg: &ServiceConfig, fi: &FollowerImage) -> Follower {
    let tm = Arc::new(NvHalt::recover_with(cfg.shard_nvhalt(), &fi.image));
    let data = HashMapTx::attach(fi.buckets, fi.nbuckets);
    let meta = HashMapTx::attach(fi.meta_buckets, fi.meta_nbuckets);
    let f = Follower::attach(tm, data, meta, fi.hdr);
    f.tm.rebuild_allocator(f.used_blocks());
    f
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// The key an op addresses (what routing hashes).
#[inline]
pub fn op_key(op: MapOp) -> u64 {
    match op {
        MapOp::Get(k) | MapOp::Insert(k, _) | MapOp::Remove(k) => k,
    }
}

/// Partition a batch under a routing table: `(shard, original op
/// indices)` per participating shard, in order of first appearance.
/// This is exactly the grouping the 2PC coordinator uses; exposed so
/// tests and load generators can predict a batch's participants.
pub fn partition_by_table(ops: &[MapOp], table: &RoutingTable) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        let s = table.route(op_key(op));
        match groups.iter_mut().find(|g| g.0 == s) {
            Some(g) => g.1.push(i),
            None => groups.push((s, vec![i])),
        }
    }
    groups
}

/// [`partition_by_table`] under the fresh (epoch-0) table for `shards`
/// shards — the pre-migration grouping.
pub fn partition_by_shard(ops: &[MapOp], shards: usize) -> Vec<(usize, Vec<usize>)> {
    partition_by_table(ops, &RoutingTable::fresh(shards))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(shards: usize) -> ServiceConfig {
        let mut cfg = ServiceConfig::new(shards);
        cfg.heap_words_per_shard = 1 << 14;
        cfg.buckets_per_shard = 64;
        cfg
    }

    #[test]
    fn put_get_del_roundtrip() {
        let svc = Service::new(test_cfg(4));
        assert_eq!(svc.get(7), Ok(None));
        assert_eq!(svc.put(7, 70), Ok(None));
        assert_eq!(svc.get(7), Ok(Some(70)));
        assert_eq!(svc.put(7, 71), Ok(Some(70)));
        assert_eq!(svc.del(7), Ok(Some(71)));
        assert_eq!(svc.get(7), Ok(None));
    }

    #[test]
    fn routing_spreads_and_is_stable() {
        let svc = Service::new(test_cfg(4));
        let mut hit = [false; 4];
        for k in 0..256u64 {
            let s = svc.shard_of(k);
            assert_eq!(s, shard_of_key(k, 4));
            hit[s] = true;
            assert_eq!(svc.put(k, k + 1), Ok(None));
        }
        assert!(hit.iter().all(|&h| h), "some shard never addressed");
        for k in 0..256u64 {
            assert_eq!(svc.get(k), Ok(Some(k + 1)));
        }
    }

    #[test]
    fn same_shard_batch_is_atomic_and_ordered() {
        let svc = Service::new(test_cfg(4));
        // Find two distinct keys on the same shard.
        let a = 1u64;
        let b = (2..).find(|&k| svc.shard_of(k) == svc.shard_of(a)).unwrap();
        let vals = svc
            .batch(vec![
                MapOp::Insert(a, 10),
                MapOp::Insert(b, 20),
                MapOp::Get(a),
                MapOp::Remove(b),
            ])
            .unwrap();
        assert_eq!(vals, vec![None, None, Some(10), Some(20)]);
        assert_eq!(svc.get(b), Ok(None));
    }

    #[test]
    fn cross_shard_batch_commits_atomically() {
        let svc = Service::new(test_cfg(4));
        let a = 1u64;
        let b = (2..).find(|&k| svc.shard_of(k) != svc.shard_of(a)).unwrap();
        // A batch spanning two shards commits as one transaction, with
        // results in submission order.
        let vals = svc
            .batch(vec![
                MapOp::Insert(a, 1),
                MapOp::Insert(b, 2),
                MapOp::Get(a),
            ])
            .unwrap();
        assert_eq!(vals, vec![None, None, Some(1)]);
        assert_eq!(svc.get(a), Ok(Some(1)));
        assert_eq!(svc.get(b), Ok(Some(2)));
        // Previous values come back on overwrite, across shards.
        let vals = svc
            .batch(vec![MapOp::Insert(a, 10), MapOp::Remove(b)])
            .unwrap();
        assert_eq!(vals, vec![Some(1), Some(2)]);
        let snap = svc.snapshot();
        assert_eq!(snap.coordinator.cross_batches, 2);
        assert_eq!(snap.coordinator.cross_ops, 5);
        // No markers leak: resolution removed them all.
        for sh in &svc.shards {
            assert!(sh.meta.collect_raw(&*sh.tm).is_empty());
        }
    }

    #[test]
    fn cross_shard_batch_spanning_all_shards() {
        let svc = Service::new(test_cfg(4));
        // One key per shard; insert all four in one batch, then read all
        // four in another.
        let mut keys = [None; 4];
        let mut k = 1u64;
        while keys.iter().any(Option::is_none) {
            keys[svc.shard_of(k)].get_or_insert(k);
            k += 1;
        }
        let keys: Vec<u64> = keys.iter().map(|k| k.unwrap()).collect();
        let ins: Vec<MapOp> = keys.iter().map(|&k| MapOp::Insert(k, k * 7)).collect();
        assert_eq!(svc.batch(ins).unwrap(), vec![None; 4]);
        let gets: Vec<MapOp> = keys.iter().map(|&k| MapOp::Get(k)).collect();
        let expect: Vec<Option<u64>> = keys.iter().map(|&k| Some(k * 7)).collect();
        assert_eq!(svc.batch(gets).unwrap(), expect);
    }

    #[test]
    fn single_shard_batch_bypasses_two_phase_commit() {
        let svc = Service::new(test_cfg(4));
        let a = 1u64;
        let b = (2..).find(|&k| svc.shard_of(k) == svc.shard_of(a)).unwrap();
        svc.batch(vec![MapOp::Insert(a, 1), MapOp::Insert(b, 2)])
            .unwrap();
        assert_eq!(svc.snapshot().coordinator.cross_batches, 0);
    }

    #[test]
    fn cross_shard_batches_survive_crash_and_recovery() {
        let svc = Service::new(test_cfg(4));
        let a = 1u64;
        let b = (2..).find(|&k| svc.shard_of(k) != svc.shard_of(a)).unwrap();
        svc.batch(vec![MapOp::Insert(a, 5), MapOp::Insert(b, 6)])
            .unwrap();
        let svc = Service::recover(svc.crash());
        assert_eq!(svc.get(a), Ok(Some(5)));
        assert_eq!(svc.get(b), Ok(Some(6)));
        // The recovered coordinator keeps serving cross-shard batches
        // (fresh txids, working log).
        let vals = svc.batch(vec![MapOp::Get(a), MapOp::Get(b)]).unwrap();
        assert_eq!(vals, vec![Some(5), Some(6)]);
    }

    #[test]
    fn crash_hook_tears_down_before_ack() {
        let svc = Service::new(test_cfg(4));
        let a = 1u64;
        let b = (2..).find(|&k| svc.shard_of(k) != svc.shard_of(a)).unwrap();
        svc.set_twopc_crash_hook(Some(Arc::new(|step| step == TwoPcStep::Prepared)));
        assert_eq!(
            svc.batch(vec![MapOp::Insert(a, 1), MapOp::Insert(b, 2)]),
            Err(ServeError::Stopped)
        );
        // Undecided at the crash: recovery rolls the batch back whole.
        let svc = Service::recover(svc.crash());
        assert_eq!(svc.get(a), Ok(None));
        assert_eq!(svc.get(b), Ok(None));
    }

    #[test]
    fn empty_batch_is_trivially_ok() {
        let svc = Service::new(test_cfg(2));
        assert_eq!(svc.batch(Vec::new()), Ok(Vec::new()));
    }

    #[test]
    fn zero_deadline_times_out() {
        let svc = Service::new(test_cfg(1));
        assert_eq!(
            svc.apply_deadline(MapOp::Insert(1, 1), Duration::ZERO),
            Err(ServeError::Timeout)
        );
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let mut cfg = test_cfg(1);
        cfg.queue_depth = 2;
        let mut svc = Service::new(cfg);
        // Stop the worker so the queue cannot drain.
        svc.shards[0].stop.store(true, Ordering::Release);
        for h in svc.shards[0].workers.drain(..) {
            h.join().unwrap();
        }
        let d = Duration::from_millis(10);
        assert_eq!(
            svc.apply_deadline(MapOp::Insert(1, 1), d),
            Err(ServeError::Timeout)
        );
        assert_eq!(
            svc.apply_deadline(MapOp::Insert(2, 2), d),
            Err(ServeError::Timeout)
        );
        match svc.apply_deadline(MapOp::Insert(3, 3), d) {
            Err(ServeError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(svc.snapshot().shards[0].rejected, 1);
    }

    #[test]
    fn crash_then_recover_preserves_acked_writes() {
        let svc = Service::new(test_cfg(2));
        for k in 0..64u64 {
            assert_eq!(svc.put(k, k * 2), Ok(None));
        }
        let dump = svc.crash();
        assert_eq!(dump.shards().len(), 2);
        let svc = Service::recover(dump);
        for k in 0..64u64 {
            assert_eq!(svc.get(k), Ok(Some(k * 2)), "lost acked write {k}");
        }
        // The recovered allocator must serve fresh inserts without
        // handing out live blocks.
        for k in 64..128u64 {
            assert_eq!(svc.put(k, k), Ok(None));
        }
        for k in 0..64u64 {
            assert_eq!(svc.get(k), Ok(Some(k * 2)));
        }
    }

    #[test]
    fn recovery_is_repeatable() {
        let mut svc = Service::new(test_cfg(1));
        for round in 0..3u64 {
            svc.put(9, round).unwrap();
            svc = Service::recover(svc.crash());
            assert_eq!(svc.get(9), Ok(Some(round)));
        }
    }

    #[test]
    fn snapshot_counts_ops_and_batches() {
        let svc = Service::new(test_cfg(2));
        for k in 0..32u64 {
            svc.put(k, k).unwrap();
        }
        for k in 0..32u64 {
            svc.get(k).unwrap();
        }
        let snap = svc.snapshot();
        let gets: u64 = snap.shards.iter().map(|s| s.gets).sum();
        let puts: u64 = snap.shards.iter().map(|s| s.puts).sum();
        assert_eq!((gets, puts), (32, 32));
        assert_eq!(snap.ops(), 64);
        assert!(snap.mean_batch() >= 1.0);
        assert!(snap.latency_quantile(0.5).is_some());
        // Every shard committed at least one transaction.
        for s in &snap.shards {
            assert!(s.tm.commits() > 0);
        }
        // The Display form renders without panicking.
        let _ = format!("{snap}");
    }

    fn repl_cfg(shards: usize) -> ServiceConfig {
        let mut cfg = test_cfg(shards);
        cfg.replication = true;
        cfg
    }

    #[test]
    fn replicated_service_serves_and_drains_lag() {
        let svc = Service::new(repl_cfg(2));
        for k in 0..32u64 {
            assert_eq!(svc.put(k, k + 1), Ok(None));
        }
        for k in 0..32u64 {
            assert_eq!(svc.get(k), Ok(Some(k + 1)));
        }
        // Acks are semi-synchronous: everything acked is already durably
        // received, and the apply lag drains within a few ship intervals.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let repl = svc.snapshot().replication.expect("replication on");
            assert!(repl.shards.iter().all(|s| s.ship_lag() == 0));
            if repl.lag() == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "apply lag never drained: {repl}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn fail_over_serves_every_acked_write() {
        let svc = Service::new(repl_cfg(3));
        for k in 0..48u64 {
            assert_eq!(svc.put(k, k * 3), Ok(None));
        }
        // A cross-shard batch right before the failover, acked.
        let a = 1u64;
        let b = (2..).find(|&k| svc.shard_of(k) != svc.shard_of(a)).unwrap();
        svc.batch(vec![MapOp::Insert(a, 1000), MapOp::Insert(b, 2000)])
            .unwrap();
        let (svc, report) = Service::promote(svc.fail_over());
        assert!(report.duration > Duration::ZERO);
        for k in 0..48u64 {
            let want = if k == a {
                1000
            } else if k == b {
                2000
            } else {
                k * 3
            };
            assert_eq!(svc.get(k), Ok(Some(want)), "key {k} lost in failover");
        }
        // The promoted service is a full service: writes, batches, and
        // another crash/recover cycle all keep working.
        assert_eq!(svc.put(a, 7), Ok(Some(1000)));
        let svc = Service::recover(svc.crash());
        assert_eq!(svc.get(a), Ok(Some(7)));
        assert_eq!(svc.get(b), Ok(Some(2000)));
    }

    #[test]
    fn replicated_crash_restarts_with_followers() {
        let svc = Service::new(repl_cfg(2));
        for k in 0..32u64 {
            svc.put(k, k + 9).unwrap();
        }
        // Whole-deployment restart: primaries, followers, and the ship
        // watermarks all come back from their durable words.
        let svc = Service::recover(svc.crash());
        for k in 0..32u64 {
            assert_eq!(svc.get(k), Ok(Some(k + 9)));
        }
        svc.put(99, 1).unwrap();
        let repl = svc.snapshot().replication.expect("replication on");
        assert!(repl.shards.iter().all(|s| s.ship_lag() == 0));
        // And the restarted deployment can still fail over.
        let (svc, _) = Service::promote(svc.fail_over());
        for k in 0..32u64 {
            assert_eq!(svc.get(k), Ok(Some(k + 9)));
        }
        assert_eq!(svc.get(99), Ok(Some(1)));
    }

    #[test]
    fn concurrent_clients_hammer_one_service() {
        let mut cfg = test_cfg(4);
        cfg.queue_depth = 64;
        let svc = Service::new(cfg);
        std::thread::scope(|scope| {
            for c in 0..8u64 {
                let svc = &svc;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = c * 1_000 + i;
                        loop {
                            match svc.put(k, i) {
                                Ok(_) => break,
                                Err(ServeError::Overloaded { retry_after }) => {
                                    std::thread::sleep(retry_after);
                                }
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                        assert_eq!(svc.get(k), Ok(Some(i)));
                    }
                });
            }
        });
        assert_eq!(svc.snapshot().ops(), 8 * 200 * 2);
    }
}
