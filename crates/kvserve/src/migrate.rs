//! Live shard migration — elastic resharding without stopping traffic.
//!
//! [`Service::migrate`] moves a set of routing slots from a live source
//! shard onto a newly provisioned shard, reusing the per-shard op log
//! and the durable watermark discipline of the replication layer
//! (PR 5) as the streaming substrate:
//!
//! 1. **Provision** — a fresh TM + maps + op-log header for the target
//!    (plus a fresh follower when replicating). Nothing routes to it
//!    yet; a crash here simply forgets it.
//! 2. **Base copy** — arm the source's op log (transactionally, so
//!    arming serializes against every batch), record `base_lsn`, then
//!    stream a chunked per-bucket snapshot of the moving keys into the
//!    target. Each chunk is one atomic bucket cut; mutations that race
//!    the copy land in the armed log with `lsn > base_lsn`.
//! 3. **Catch up** — replay logged entries above the cursor into the
//!    target while the source keeps serving, advancing the shipper's
//!    trim floor ([`ShipState::hold`](crate::repl)) behind the cursor.
//! 4. **Drain** — the brief write pause: halt workers, 2PC drivers and
//!    shippers (collecting, not dropping, the queued requests), replay
//!    the final quiescent tail, and sync the target's follower so an
//!    immediate post-flip failover cannot lose a moved acked write.
//!    Halting the 2PC drivers first is also what makes the decision
//!    log fully resolved at the flip — the whole prepared-transaction
//!    interaction with a migrating shard reduces to "there are none".
//! 5. **Flip** — one committed transaction rewrites the durable
//!    routing-table root ([`coord::write_route`](crate::coord)) with
//!    the bumped epoch. This is the migration's single durability
//!    point: recovery reads the root and lands on entirely the old or
//!    entirely the new topology, never a torn one.
//! 6. **Resume** — reassemble the service over the old shards plus the
//!    target, *reusing the old router and ring metrics*, so every ring
//!    handed out before the flip atomically re-targets the new
//!    topology; re-route the collected requests under the new table;
//!    scavenge the moved keys off the source (logged removes, so a
//!    replicating source's follower converges too).
//!
//! Every step is idempotent from the outside: a crash at any
//! [`MigrateStep`] recovers (via the ordinary [`Service::recover`])
//! to a consistent topology, and re-issuing the same [`MigrateSpec`]
//! against the recovered service either re-runs the migration from
//! scratch (pre-flip crash) or detects it already applied and only
//! re-runs the scavenge (post-flip crash).

use crate::repl::{self, Follower, LogEntry, LogKind, PrimaryLog, ReplRuntime};
use crate::shard::ShardRequest;
use crate::{
    follower_image, op_key, CrashDump, FollowerImage, RouterInner, RoutingTable, ServeError,
    Service, ShardImage, XRequest, META_BUCKETS, ROUTE_SLOTS,
};
use crossbeam::channel::TrySendError;
use nvhalt::NvHalt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use txstructs::{HashMapTx, MapOp};

/// The migration protocol steps a crash-injection hook can observe, in
/// protocol order. Steps strictly before [`MigrateStep::FlipLogged`]
/// recover to the **old** topology (the target is forgotten); from
/// `FlipLogged` on, recovery lands on the **new** one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrateStep {
    /// Target TM, maps, log header (and follower) created; volatile.
    Provisioned,
    /// Source log armed and the base snapshot copied into the target.
    BaseCopied,
    /// Live catch-up converged (source still serving).
    CaughtUp,
    /// Traffic paused, final tail replayed, target follower synced.
    Drained,
    /// The new routing table is durably rooted — the point of no return.
    FlipLogged,
    /// The post-flip service is serving under the new table.
    Resumed,
}

impl MigrateStep {
    /// All steps, in protocol order (for exhaustive crash injection).
    pub const ALL: [MigrateStep; 6] = [
        MigrateStep::Provisioned,
        MigrateStep::BaseCopied,
        MigrateStep::CaughtUp,
        MigrateStep::Drained,
        MigrateStep::FlipLogged,
        MigrateStep::Resumed,
    ];

    /// Whether a crash at this step recovers to the new topology.
    pub fn flipped(self) -> bool {
        matches!(self, MigrateStep::FlipLogged | MigrateStep::Resumed)
    }
}

/// Crash-injection hook over [`MigrateStep`].
pub type MigrateHook = Arc<dyn Fn(MigrateStep) -> bool + Send + Sync>;

/// What to migrate: `slots` (currently owned by shard `source`) move to
/// a newly provisioned shard. Moving a strict subset splits the shard;
/// moving all of its slots empties it.
#[derive(Clone, Debug)]
pub struct MigrateSpec {
    /// The shard being split or emptied.
    pub source: usize,
    /// The routing slots to move (each must currently map to `source`).
    pub slots: Vec<usize>,
}

impl MigrateSpec {
    /// Split `source` in half: move the upper half of its current slots.
    pub fn split(table: &RoutingTable, source: usize) -> MigrateSpec {
        let owned = table.slots_of(source);
        assert!(owned.len() >= 2, "cannot split a single-slot shard");
        MigrateSpec {
            source,
            slots: owned[owned.len() / 2..].to_vec(),
        }
    }
}

/// What a migration did, for reporting.
#[derive(Clone, Copy, Debug)]
pub struct MigrateReport {
    /// Wall-clock time for the whole migration.
    pub duration: Duration,
    /// The write pause: halt-to-serving under the new table.
    pub flip_pause: Duration,
    /// Keys streamed in the base snapshot.
    pub base_keys: u64,
    /// Log entries replayed by catch-up (live + final tail).
    pub catchup_entries: u64,
    /// The routing epoch after the migration.
    pub epoch: u64,
    /// `true` when the spec was detected as already applied and only
    /// the source scavenge ran.
    pub already_applied: bool,
}

/// A crash injected mid-migration: the deployment's durable remains,
/// recovered with the ordinary [`Service::recover`]. The routing root
/// inside decides which topology comes back.
pub struct MigrateCrash {
    /// Fresh durable remains captured at the crash point.
    pub dump: CrashDump,
}

/// The target shard under construction: everything volatile until the
/// flip logs it into the topology.
struct Target {
    tm: Arc<NvHalt>,
    map: HashMapTx,
    meta: HashMapTx,
    hdr: tm::Addr,
    follower: Option<Follower>,
}

impl Service {
    /// Split (or empty) a live shard without stopping traffic: stream
    /// its moving slots onto a newly provisioned shard and atomically
    /// flip the versioned routing table, pausing writes only for the
    /// final drain-and-flip. Consumes the service and returns the
    /// post-flip one; rings handed out before the call keep working —
    /// they re-target through the shared router. See the module docs
    /// for the protocol.
    pub fn migrate(self, spec: MigrateSpec) -> (Service, MigrateReport) {
        match self.migrate_hooked(spec, None) {
            Ok(r) => r,
            Err(_) => unreachable!("migration without a hook cannot crash"),
        }
    }

    /// [`Service::migrate`] with a crash-injection hook fired at every
    /// [`MigrateStep`]. A `true` from the hook poisons every pool right
    /// there and returns the durable remains in [`MigrateCrash`].
    pub fn migrate_hooked(
        mut self,
        spec: MigrateSpec,
        hook: Option<MigrateHook>,
    ) -> Result<(Service, MigrateReport), Box<MigrateCrash>> {
        let start = Instant::now();
        let cfg = self.engine.cfg.clone();
        let old_table = self.engine.router.table();
        let source = spec.source;
        let target_idx = self.engine.parts.len();
        assert!(source < target_idx, "source shard out of range");
        assert!(!spec.slots.is_empty(), "nothing to migrate");
        let mut mask = [false; ROUTE_SLOTS];
        let mut owners: Vec<usize> = Vec::new();
        for &s in &spec.slots {
            assert!(s < ROUTE_SLOTS, "slot out of range");
            assert!(!mask[s], "duplicate slot in spec");
            mask[s] = true;
            let o = old_table.assignment()[s] as usize;
            if !owners.contains(&o) {
                owners.push(o);
            }
        }
        // Idempotent re-issue: a post-flip crash already moved every
        // slot to one (new) shard. Only the scavenge can be missing —
        // re-run it and report the migration as already applied.
        if owners.len() == 1 && owners[0] != source {
            self.scavenge(source);
            let report = MigrateReport {
                duration: start.elapsed(),
                flip_pause: Duration::ZERO,
                base_keys: 0,
                catchup_entries: 0,
                epoch: old_table.epoch(),
                already_applied: true,
            };
            return Ok((self, report));
        }
        assert_eq!(
            owners,
            vec![source],
            "spec slots not owned by the source shard"
        );
        let new_table = Arc::new(old_table.reassign(&spec.slots, target_idx));
        let mig_tid = cfg.workers_per_shard + cfg.coordinators + 1;
        let check = |step: MigrateStep| hook.as_ref().is_some_and(|h| h(step));

        // Plain handles to the source shard (HashMapTx is Copy) so the
        // service itself stays un-borrowed across the crash points.
        let stm = self.engine.parts[source].tm.clone();
        let smap = self.engine.parts[source].map;
        let shdr = self.engine.parts[source].log_hdr;
        let old_rt = self.engine.repl.clone();

        // ---- 1. Provision ------------------------------------------------
        let ttm = Arc::new(NvHalt::new(cfg.shard_nvhalt()));
        let tmap = HashMapTx::create(&*ttm, 0, cfg.buckets_per_shard)
            .expect("creating a map on a fresh TM cannot cancel");
        let tmeta = HashMapTx::create(&*ttm, 0, META_BUCKETS)
            .expect("creating a map on a fresh TM cannot cancel");
        let thdr = ttm.alloc_raw(0, repl::PRIMARY_HDR_WORDS);
        if cfg.replication {
            repl::set_armed(&ttm, 0, thdr, true);
        }
        let tfollower = cfg
            .replication
            .then(|| Follower::create(cfg.shard_nvhalt(), cfg.buckets_per_shard, META_BUCKETS));
        let target = Target {
            tm: ttm,
            map: tmap,
            meta: tmeta,
            hdr: thdr,
            follower: tfollower,
        };
        if check(MigrateStep::Provisioned) {
            return Err(Box::new(MigrateCrash { dump: self.crash() }));
        }

        // ---- 2. Base copy ------------------------------------------------
        // Arm first: the armed word is read inside every batch
        // transaction, so from this commit on every source mutation is
        // logged. Lower the shipper's trim floor *before* reading
        // `base_lsn` — a trim round that raced the store only dropped
        // entries at or below the (monotone) `P_LAST` we then read.
        if !repl::armed_raw(&stm, shdr) {
            repl::set_armed(&stm, mig_tid, shdr, true);
        }
        if let Some(rt) = &old_rt {
            rt.states[source].hold.store(0, Ordering::Release);
        }
        let base_lsn = tm::txn(&*stm, mig_tid, |tx| tx.read(shdr.offset(repl::P_LAST)))
            .expect("log-header reads never cancel");
        let mut base_keys = 0u64;
        for b in 0..cfg.buckets_per_shard {
            let chunk = tm::txn(&*stm, mig_tid, |tx| smap.scan_bucket_in(tx, b))
                .expect("bucket scans never cancel");
            let moving: Vec<(u64, u64)> = chunk
                .into_iter()
                .filter(|&(k, _)| mask[RoutingTable::slot_of(k)])
                .collect();
            if moving.is_empty() {
                continue;
            }
            // The chunk lands in the target's (armed-iff-replicating)
            // log too, so the target follower can be brought up from
            // the same stream.
            tm::txn(&*target.tm, 0, |tx| {
                let mut muts = Vec::with_capacity(moving.len());
                for &(k, v) in &moving {
                    target.map.insert_in(tx, k, v)?;
                    muts.push(MapOp::Insert(k, v));
                }
                repl::append_armed_in(tx, target.hdr, LogKind::Batch, 0, &muts)?;
                Ok(())
            })
            .expect("target-side migration transactions never cancel");
            base_keys += moving.len() as u64;
        }
        if check(MigrateStep::BaseCopied) {
            return Err(Box::new(MigrateCrash { dump: self.crash() }));
        }

        // ---- 3. Live catch-up --------------------------------------------
        let mut cursor = base_lsn;
        let mut catchup_entries = 0u64;
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            let Some(fresh) = repl::read_after(&stm, mig_tid, shdr.offset(repl::P_HEAD), cursor)
            else {
                // Lost the read race against appenders; back off briefly.
                if rounds > 256 {
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
                continue;
            };
            if fresh.is_empty() {
                break;
            }
            cursor = fresh.last().expect("non-empty").lsn;
            catchup_entries += apply_entries(&target, &fresh, &mask);
            if let Some(rt) = &old_rt {
                // Everything at or below the cursor is replayed; let the
                // shipper trim it.
                rt.states[source].hold.store(cursor, Ordering::Release);
            }
            // Close enough: the remaining tail is replayed under the
            // pause, where it can no longer grow.
            if fresh.len() <= 4 || rounds > 256 {
                break;
            }
        }
        if check(MigrateStep::CaughtUp) {
            return Err(Box::new(MigrateCrash { dump: self.crash() }));
        }

        // ---- 4. Drain (the write pause starts here) ----------------------
        let pause_start = Instant::now();
        let (mut reqs, mut xreqs) = self.halt_threads();
        // Quiescent now (workers, 2PC drivers and shippers joined): the
        // decision log is fully resolved, the logs can no longer grow.
        let tail = repl::read_after(&stm, mig_tid, shdr.offset(repl::P_HEAD), cursor)
            .expect("a quiescent log read cannot lose its race");
        catchup_entries += apply_entries(&target, &tail, &mask);
        if let Some(f) = &target.follower {
            // Sync the target's follower *before* the flip: from the
            // instant the new table is durable, a primary-loss failover
            // must find every moved acked write on the target's replica.
            let all = repl::read_after(&target.tm, 0, target.hdr.offset(repl::P_HEAD), 0)
                .expect("a quiescent log read cannot lose its race");
            f.ingest(&all);
        }
        if check(MigrateStep::Drained) {
            return Err(Box::new(MigrateCrash { dump: self.crash() }));
        }

        // ---- 5. Flip ------------------------------------------------------
        // The single durability point: one committed transaction on the
        // decision log's pool rewrites the routing root.
        self.engine.coord.write_route(0, &new_table);
        if check(MigrateStep::FlipLogged) {
            return Err(Box::new(MigrateCrash {
                dump: self.crash_with_target(target),
            }));
        }

        // ---- 6. Resume ----------------------------------------------------
        let mut cfg2 = cfg.clone();
        cfg2.shards = target_idx + 1;
        let mut parts: Vec<crate::ShardParts> = self
            .shards
            .iter()
            .map(|s| {
                (
                    s.tm.clone(),
                    s.map,
                    s.meta,
                    s.repl_hdr,
                    s.keep_blocks.clone(),
                )
            })
            .collect();
        let Target {
            tm: ttm,
            map: tmap,
            meta: tmeta,
            hdr: thdr,
            follower: tfollower,
        } = target;
        parts.push((ttm, tmap, tmeta, thdr, Vec::new()));
        let rt2 = cfg.replication.then(|| {
            let rt = old_rt.as_ref().expect("replication runtime");
            let mut followers: Vec<Follower> = rt
                .followers
                .iter()
                .map(|cell| cell.lock().take().expect("follower present until flip"))
                .collect();
            followers.push(tfollower.expect("replicating migration provisions a follower"));
            let primaries = parts
                .iter()
                .map(|(tm, _, _, hdr, _)| PrimaryLog {
                    tm: tm.clone(),
                    hdr: *hdr,
                })
                .collect();
            Arc::new(ReplRuntime::assemble(
                &cfg2,
                primaries,
                self.engine.coord.log.clone(),
                followers,
            ))
        });
        let svc = Service::assemble(
            cfg2,
            parts,
            self.engine.coord.clone(),
            rt2,
            new_table.clone(),
            Some(self.engine.router.clone()),
            Some(self.ring_metrics.clone()),
        );
        // Stragglers that grabbed a pre-flip router snapshot may have
        // landed in the husk's queues between our drain and the router
        // install; collect them, then drop the husk so any later
        // straggler sees `Disconnected` and the ring's reroute retry.
        for s in &self.shards {
            while let Ok(r) = s.queue_rx.try_recv() {
                reqs.push(r);
            }
        }
        while let Ok(r) = self.xqueue_rx.try_recv() {
            xreqs.push(r);
        }
        drop(self);
        // Re-route the collected requests under the new table. A batch
        // that was same-shard under the old table may now straddle the
        // split — it goes to the 2PC drivers.
        let inner = svc.engine.router.load();
        for r in reqs {
            requeue(&inner, r.ops, r.reply, r.deadline, r.enqueued);
        }
        for r in xreqs {
            requeue(&inner, r.ops, r.reply, r.deadline, Instant::now());
        }
        // The moved keys' source copies are unreachable under the new
        // table; sweep them (logged removes keep a replicating source's
        // follower in sync). With replication off the source log only
        // existed for this migration — disarm and empty it first.
        if !cfg.replication {
            repl::set_armed(&stm, mig_tid, shdr, false);
            repl::trim_through(&stm, mig_tid, shdr.offset(repl::P_HEAD), u64::MAX);
        }
        svc.scavenge(source);
        let flip_pause = pause_start.elapsed();
        if check(MigrateStep::Resumed) {
            return Err(Box::new(MigrateCrash { dump: svc.crash() }));
        }
        let report = MigrateReport {
            duration: start.elapsed(),
            flip_pause,
            base_keys,
            catchup_entries,
            epoch: new_table.epoch(),
            already_applied: false,
        };
        Ok((svc, report))
    }

    /// Remove every key on `shard` that the *current* table routes
    /// elsewhere. Live-safe: chunked per-bucket transactional scans on
    /// the reserved migration thread slot — no request can touch a
    /// misrouted key (workers reject them), so the sweep races nothing.
    /// Removes are logged when the shard's op log is armed, keeping a
    /// replicating source's follower in sync.
    fn scavenge(&self, shard: usize) -> u64 {
        let cfg = &self.engine.cfg;
        let table = self.engine.router.table();
        let p = &self.engine.parts[shard];
        let mig_tid = cfg.workers_per_shard + cfg.coordinators + 1;
        let mut removed = 0u64;
        for b in 0..cfg.buckets_per_shard {
            let chunk = tm::txn(&*p.tm, mig_tid, |tx| p.map.scan_bucket_in(tx, b))
                .expect("bucket scans never cancel");
            let stale: Vec<u64> = chunk
                .into_iter()
                .filter(|&(k, _)| table.route(k) != shard)
                .map(|(k, _)| k)
                .collect();
            if stale.is_empty() {
                continue;
            }
            let (map, hdr) = (p.map, p.log_hdr);
            tm::txn(&*p.tm, mig_tid, |tx| {
                let mut muts = Vec::with_capacity(stale.len());
                for &k in &stale {
                    if map.remove_in(tx, k)?.is_some() {
                        muts.push(MapOp::Remove(k));
                    }
                }
                if !muts.is_empty() {
                    repl::append_armed_in(tx, hdr, LogKind::Batch, 0, &muts)?;
                }
                Ok(muts.len() as u64)
            })
            .map(|n| removed += n)
            .expect("scavenge transactions never cancel");
        }
        removed
    }

    /// The post-flip crash shape: every pool poisoned, the dump carries
    /// the old shards *plus* the target (and its follower), matching the
    /// durably flipped routing root.
    fn crash_with_target(mut self, target: Target) -> CrashDump {
        self.poison();
        target.tm.crash();
        if let Some(rt) = &self.engine.repl {
            for s in 0..rt.followers.len() {
                rt.poison_follower(s);
            }
        }
        if let Some(f) = &target.follower {
            f.tm.crash();
        }
        // Threads are already halted; this drains and drops any
        // straggler requests (their tickets resolve to `Stopped`).
        let _ = self.halt_threads();
        let shards = std::mem::take(&mut self.shards);
        let mut images: Vec<ShardImage> = shards
            .into_iter()
            .map(|s| ShardImage {
                image: s.tm.crash_image(),
                buckets: s.map.buckets_addr(),
                nbuckets: s.map.nbuckets(),
                meta_buckets: s.meta.buckets_addr(),
                meta_nbuckets: s.meta.nbuckets(),
                repl_hdr: s.repl_hdr,
                keep: s.keep_blocks.clone(),
            })
            .collect();
        images.push(ShardImage {
            image: target.tm.crash_image(),
            buckets: target.map.buckets_addr(),
            nbuckets: target.map.nbuckets(),
            meta_buckets: target.meta.buckets_addr(),
            meta_nbuckets: target.meta.nbuckets(),
            repl_hdr: target.hdr,
            keep: Vec::new(),
        });
        let mut followers: Vec<FollowerImage> = match &self.engine.repl {
            Some(rt) => rt
                .followers
                .iter()
                .map(|cell| {
                    let f = cell.lock().take().expect("follower present until crash");
                    follower_image(&f)
                })
                .collect(),
            None => Vec::new(),
        };
        if let Some(f) = &target.follower {
            followers.push(follower_image(f));
        }
        let mut cfg2 = self.engine.cfg.clone();
        cfg2.shards += 1;
        CrashDump {
            cfg: cfg2,
            shards: images,
            followers,
            log: self.engine.coord.log.crash_image(),
            log_head: self.engine.coord.head,
            route: self.engine.coord.route,
        }
    }
}

/// Replay log entries into the target: apply the moving mutations and
/// append them to the target's (armed-iff-replicating) log in the same
/// transaction. 2PC markers are deliberately not migrated — the flip
/// happens with the decision log fully resolved, so every `Prepare` in
/// the stream has its `Resolve` before the final tail ends and the
/// markers net to nothing. Returns how many entries contributed.
fn apply_entries(target: &Target, entries: &[LogEntry], mask: &[bool; ROUTE_SLOTS]) -> u64 {
    let _ = target.meta; // markers stay empty by construction
    let mut applied = 0u64;
    for e in entries {
        let muts: Vec<MapOp> = e
            .ops
            .iter()
            .copied()
            .filter(|&op| mask[RoutingTable::slot_of(op_key(op))])
            .collect();
        if muts.is_empty() {
            continue;
        }
        tm::txn(&*target.tm, 0, |tx| {
            for &op in &muts {
                target.map.apply_in(tx, op)?;
            }
            repl::append_armed_in(tx, target.hdr, LogKind::Batch, 0, &muts)?;
            Ok(())
        })
        .expect("target-side migration transactions never cancel");
        applied += 1;
    }
    applied
}

/// Route one collected request under the (new) table snapshot: back
/// into its shard's lane when it is still single-shard, to the 2PC
/// drivers when the flip split it. Queue-full answers `Overloaded`,
/// exactly as a fresh submission would have been told.
fn requeue(
    inner: &RouterInner,
    ops: Vec<MapOp>,
    reply: crate::ring::RingCompletion,
    deadline: Instant,
    enqueued: Instant,
) {
    let table = &inner.table;
    let shard = table.route(op_key(ops[0]));
    if ops.iter().all(|&op| table.route(op_key(op)) == shard) {
        let req = ShardRequest {
            ops,
            reply,
            deadline,
            enqueued,
            epoch: table.epoch(),
        };
        match inner.lanes[shard].queue.try_send(req) {
            Ok(()) => {}
            Err(TrySendError::Full(req)) | Err(TrySendError::Disconnected(req)) => {
                req.reply.send(Err(ServeError::Overloaded {
                    retry_after: Duration::from_millis(1),
                }));
            }
        }
    } else {
        let req = XRequest {
            ops,
            reply,
            deadline,
        };
        match inner.xqueue.try_send(req) {
            Ok(()) => {}
            Err(TrySendError::Full(req)) | Err(TrySendError::Disconnected(req)) => {
                req.reply.send(Err(ServeError::Overloaded {
                    retry_after: Duration::from_millis(1),
                }));
            }
        }
    }
}
