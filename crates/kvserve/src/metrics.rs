//! Per-shard observability: op counters, fixed-bucket latency histograms,
//! batch-size distribution, and TM abort-cause plumbing.
//!
//! Everything here is lock-free atomics updated on the hot path and
//! summed into immutable snapshots on demand, mirroring the cache-padded
//! sharding discipline of `tm::stats` (counters must never introduce the
//! coherence traffic they are supposed to measure).

use crossbeam::utils::CachePadded;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tm::stats::{Counter, StatsSnapshot};

/// Number of latency buckets: 16 exact sub-16 ns buckets plus 4 buckets
/// per power of two up to 2^63 ns.
const LAT_BUCKETS: usize = 16 + 60 * 4;

/// Largest batch size tracked exactly; bigger batches clamp to the top
/// bucket.
pub const BATCH_BUCKETS: usize = 64;

/// A fixed-bucket log-scale histogram of durations (no allocation after
/// construction, ~2-significant-bit resolution — quantiles are upper
/// bounds of their bucket).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
}

fn lat_bucket(nanos: u64) -> usize {
    if nanos < 16 {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros() as u64; // >= 4
    let frac = (nanos >> (exp - 2)) & 0b11;
    let idx = 16 + (exp - 4) * 4 + frac;
    (idx as usize).min(LAT_BUCKETS - 1)
}

fn lat_bucket_upper(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let exp = 4 + (idx - 16) as u64 / 4;
    let frac = ((idx - 16) % 4) as u64;
    // Upper edge of [2^exp + frac·2^(exp-2), 2^exp + (frac+1)·2^(exp-2)).
    (1u64 << exp) + (frac + 1) * (1u64 << (exp - 2))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..LAT_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[lat_bucket(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Immutable copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) as an upper-bound duration, or
    /// `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Duration::from_nanos(lat_bucket_upper(i)));
            }
        }
        Some(Duration::from_nanos(lat_bucket_upper(LAT_BUCKETS - 1)))
    }
}

/// Atomic counters one shard's workers update on the hot path.
#[derive(Default)]
pub struct ShardCounters {
    /// Completed Get operations.
    pub gets: AtomicU64,
    /// Completed Put operations.
    pub puts: AtomicU64,
    /// Completed Delete operations.
    pub dels: AtomicU64,
    /// Requests answered `Timeout` (deadline passed in queue or retry).
    pub timeouts: AtomicU64,
    /// Requests rejected at submit with `Overloaded` (queue full).
    pub rejected: AtomicU64,
    /// Requests answered `Aborted` (retry budget exhausted).
    pub aborted: AtomicU64,
    /// Batches executed (committed transactions, one per batch attempt).
    pub batches: AtomicU64,
    /// Total requests across committed batches (mean batch size =
    /// `batched_reqs / batches`).
    pub batched_reqs: AtomicU64,
    /// Service-level retry rounds (transaction gave up its attempt fuel
    /// and the worker backed off and retried the batch).
    pub retries: AtomicU64,
    /// Requests answered `Rerouted` (stamped with a stale routing epoch
    /// and no longer owned by this shard after a migration flip).
    pub rerouted: AtomicU64,
}

/// One shard's full metrics: counters, histograms, and the TM hook.
pub struct ShardMetrics {
    /// Hot-path counters.
    pub counters: CachePadded<ShardCounters>,
    /// End-to-end request latency (enqueue to reply).
    pub latency: Histogram,
    /// Distribution of committed batch sizes (index = size, clamped).
    batch_sizes: Vec<AtomicU64>,
}

impl ShardMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> ShardMetrics {
        ShardMetrics {
            counters: CachePadded::new(ShardCounters::default()),
            latency: Histogram::new(),
            batch_sizes: (0..=BATCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one committed batch of `n` requests.
    pub fn record_batch(&self, n: usize) {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .batched_reqs
            .fetch_add(n as u64, Ordering::Relaxed);
        self.batch_sizes[n.min(BATCH_BUCKETS)].fetch_add(1, Ordering::Relaxed);
    }

    /// Zero every counter and histogram (e.g. after a warm-up or prefill
    /// phase, so a measurement window starts clean).
    pub fn reset(&self) {
        let c = &*self.counters;
        for counter in [
            &c.gets,
            &c.puts,
            &c.dels,
            &c.timeouts,
            &c.rejected,
            &c.aborted,
            &c.batches,
            &c.batched_reqs,
            &c.retries,
            &c.rerouted,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
        self.latency.reset();
        for b in &self.batch_sizes {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot against the shard TM's stats.
    pub fn snapshot(&self, shard: usize, tm_stats: StatsSnapshot) -> ShardSnapshot {
        let c = &*self.counters;
        ShardSnapshot {
            shard,
            gets: c.gets.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            dels: c.dels.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            aborted: c.aborted.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_reqs: c.batched_reqs.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            rerouted: c.rerouted.load(Ordering::Relaxed),
            batch_sizes: self
                .batch_sizes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            latency: self.latency.snapshot(),
            tm: tm_stats,
        }
    }
}

impl Default for ShardMetrics {
    fn default() -> ShardMetrics {
        ShardMetrics::new()
    }
}

/// Point-in-time view of one shard.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Completed Get operations.
    pub gets: u64,
    /// Completed Put operations.
    pub puts: u64,
    /// Completed Delete operations.
    pub dels: u64,
    /// Requests answered `Timeout`.
    pub timeouts: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests answered `Aborted`.
    pub aborted: u64,
    /// Committed batches.
    pub batches: u64,
    /// Requests summed over committed batches.
    pub batched_reqs: u64,
    /// Service-level batch retries.
    pub retries: u64,
    /// Requests answered `Rerouted` after a migration flip.
    pub rerouted: u64,
    /// Batch-size histogram (index = size, last bucket clamps).
    pub batch_sizes: Vec<u64>,
    /// Request latency histogram.
    pub latency: HistogramSnapshot,
    /// The shard TM's statistics (commits, aborts by cause, flushes…).
    pub tm: StatsSnapshot,
}

impl ShardSnapshot {
    /// Completed operations (any kind).
    pub fn ops(&self) -> u64 {
        self.gets + self.puts + self.dels
    }

    /// Mean committed batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_reqs as f64 / self.batches as f64
        }
    }

    /// Aborted TM attempts per committed TM transaction.
    pub fn abort_rate(&self) -> f64 {
        let commits = self.tm.commits();
        if commits == 0 {
            0.0
        } else {
            self.tm.aborts() as f64 / commits as f64
        }
    }
}

/// Hot-path counters of the completion ring front end. All rings of a
/// service (the internal ring behind the blocking API and every ring
/// handed out by [`Service::ring`](crate::Service::ring)) share one
/// instance, so the gauges are service-wide.
#[derive(Default)]
pub struct RingCounters {
    /// Accepted submissions (a ticket was returned).
    pub submitted: AtomicU64,
    /// Delivered completions (acked or errored).
    pub completed: AtomicU64,
    /// Submissions rejected with `RingFull` (no free slot).
    pub ring_full: AtomicU64,
    /// Gauge: submitted but not yet completed.
    pub in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    pub in_flight_hwm: AtomicU64,
    /// Gauge: slots not free (in flight or completed-but-unreaped).
    pub occupied: AtomicU64,
    /// High-water mark of `occupied` — the ring-slot occupancy peak.
    pub occupied_hwm: AtomicU64,
}

/// Ring front-end metrics: slot/depth counters plus the
/// submit-to-complete latency histogram.
pub struct RingMetrics {
    /// Hot-path counters.
    pub counters: CachePadded<RingCounters>,
    /// Submit-to-complete latency (covers queue wait, execution, and
    /// replication ack — the client-observable request latency).
    pub latency: Histogram,
}

impl RingMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> RingMetrics {
        RingMetrics {
            counters: CachePadded::new(RingCounters::default()),
            latency: Histogram::new(),
        }
    }

    /// A slot was acquired and its request accepted.
    pub(crate) fn occupy(&self) {
        let c = &*self.counters;
        c.submitted.fetch_add(1, Ordering::Relaxed);
        let inf = c.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        c.in_flight_hwm.fetch_max(inf, Ordering::Relaxed);
        let occ = c.occupied.fetch_add(1, Ordering::Relaxed) + 1;
        c.occupied_hwm.fetch_max(occ, Ordering::Relaxed);
    }

    /// A slot acquisition was rolled back before its ticket escaped.
    pub(crate) fn vacate_inflight(&self) {
        let c = &*self.counters;
        c.submitted.fetch_sub(1, Ordering::Relaxed);
        c.in_flight.fetch_sub(1, Ordering::Relaxed);
        c.occupied.fetch_sub(1, Ordering::Relaxed);
    }

    /// A request's outcome was delivered into its slot.
    pub(crate) fn complete(&self, submit_to_complete: Duration) {
        let c = &*self.counters;
        c.completed.fetch_add(1, Ordering::Relaxed);
        c.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.latency.record(submit_to_complete);
    }

    /// A completed slot was reaped and recycled.
    pub(crate) fn vacate_reaped(&self) {
        self.counters.occupied.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current in-flight depth.
    pub(crate) fn in_flight(&self) -> u64 {
        self.counters.in_flight.load(Ordering::Relaxed)
    }

    /// Zero the monotonic counters and the histogram; the gauges keep
    /// their live values and the high-water marks restart from them.
    pub fn reset(&self) {
        let c = &*self.counters;
        c.submitted.store(0, Ordering::Relaxed);
        c.completed.store(0, Ordering::Relaxed);
        c.ring_full.store(0, Ordering::Relaxed);
        c.in_flight_hwm
            .store(c.in_flight.load(Ordering::Relaxed), Ordering::Relaxed);
        c.occupied_hwm
            .store(c.occupied.load(Ordering::Relaxed), Ordering::Relaxed);
        self.latency.reset();
    }

    /// Immutable copy.
    pub fn snapshot(&self) -> RingSnapshot {
        let c = &*self.counters;
        RingSnapshot {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            ring_full: c.ring_full.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            in_flight_hwm: c.in_flight_hwm.load(Ordering::Relaxed),
            occupied_hwm: c.occupied_hwm.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }

    pub(crate) fn reject_ring_full(&self) {
        self.counters.ring_full.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for RingMetrics {
    fn default() -> RingMetrics {
        RingMetrics::new()
    }
}

/// Point-in-time view of the ring front end.
#[derive(Clone, Debug)]
pub struct RingSnapshot {
    /// Accepted submissions.
    pub submitted: u64,
    /// Delivered completions.
    pub completed: u64,
    /// Submissions rejected with `RingFull`.
    pub ring_full: u64,
    /// In-flight depth at snapshot time.
    pub in_flight: u64,
    /// In-flight depth high-water mark.
    pub in_flight_hwm: u64,
    /// Ring-slot occupancy high-water mark.
    pub occupied_hwm: u64,
    /// Submit-to-complete latency histogram.
    pub latency: HistogramSnapshot,
}

impl fmt::Display for RingSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ring: submitted={} completed={} ring_full={} in_flight={} \
             inflight_hwm={} occ_hwm={} s2c_p50={} s2c_p99={}",
            self.submitted,
            self.completed,
            self.ring_full,
            self.in_flight,
            self.in_flight_hwm,
            self.occupied_hwm,
            fmt_dur(self.latency.quantile(0.50)),
            fmt_dur(self.latency.quantile(0.99)),
        )
    }
}

/// Hot-path counters of the TCP wire layer (`kvserve::net`). One
/// instance per [`NetServer`](crate::net::NetServer), shared by every
/// connection it serves.
#[derive(Default)]
pub struct NetCounters {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections fully torn down (reader and writer exited, ring
    /// slots drained).
    pub closed: AtomicU64,
    /// Request frames read off sockets.
    pub frames_in: AtomicU64,
    /// Response frames written to sockets.
    pub frames_out: AtomicU64,
    /// Bytes read (frames only; headers included).
    pub bytes_in: AtomicU64,
    /// Bytes written (frames only; headers included).
    pub bytes_out: AtomicU64,
    /// `Busy` responses: the visible-backpressure path (per-connection
    /// cap, `RingFull`, or `Overloaded`).
    pub busy: AtomicU64,
    /// Malformed frames from peers (each closes its connection).
    pub protocol_errors: AtomicU64,
    /// Completions reaped after the peer disconnected — slots freed
    /// with the response suppressed, never written to a dead socket.
    pub reaped_after_disconnect: AtomicU64,
    /// Response writes suppressed because the socket was already dead.
    pub dead_socket_suppressed: AtomicU64,
}

/// Wire-layer metrics (counter bumps only; latency lives in the shared
/// ring histogram the connections' rings feed).
pub struct NetMetrics {
    /// Hot-path counters.
    pub counters: CachePadded<NetCounters>,
}

impl NetMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> NetMetrics {
        NetMetrics {
            counters: CachePadded::new(NetCounters::default()),
        }
    }

    pub(crate) fn accepted(&self) {
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn closed(&self) {
        self.counters.closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn frame_in(&self, bytes: u64) {
        self.counters.frames_in.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn frame_out(&self, bytes: u64) {
        self.counters.frames_out.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn busy(&self) {
        self.counters.busy.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn protocol_error(&self) {
        self.counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reaped_after_disconnect(&self) {
        self.counters
            .reaped_after_disconnect
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn suppressed_dead_write(&self) {
        self.counters
            .dead_socket_suppressed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable copy.
    pub fn snapshot(&self) -> NetSnapshot {
        let c = &*self.counters;
        NetSnapshot {
            accepted: c.accepted.load(Ordering::Relaxed),
            closed: c.closed.load(Ordering::Relaxed),
            frames_in: c.frames_in.load(Ordering::Relaxed),
            frames_out: c.frames_out.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            busy: c.busy.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            reaped_after_disconnect: c.reaped_after_disconnect.load(Ordering::Relaxed),
            dead_socket_suppressed: c.dead_socket_suppressed.load(Ordering::Relaxed),
        }
    }
}

impl Default for NetMetrics {
    fn default() -> NetMetrics {
        NetMetrics::new()
    }
}

/// Immutable copy of the wire-layer counters.
#[derive(Clone, Debug)]
pub struct NetSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections fully torn down.
    pub closed: u64,
    /// Request frames read.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// Bytes read.
    pub bytes_in: u64,
    /// Bytes written.
    pub bytes_out: u64,
    /// `Busy` responses (visible backpressure).
    pub busy: u64,
    /// Malformed frames from peers.
    pub protocol_errors: u64,
    /// Completions reaped after their peer disconnected.
    pub reaped_after_disconnect: u64,
    /// Writes suppressed on dead sockets.
    pub dead_socket_suppressed: u64,
}

impl fmt::Display for NetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net: conns={}/{} frames={}in/{}out bytes={}in/{}out busy={} \
             proto_err={} reaped_disc={} dead_suppressed={}",
            self.accepted,
            self.closed,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.busy,
            self.protocol_errors,
            self.reaped_after_disconnect,
            self.dead_socket_suppressed,
        )
    }
}

/// Hot-path counters of the cross-shard 2PC coordinator.
#[derive(Default)]
pub struct CoordinatorCounters {
    /// Cross-shard batches attempted (any outcome).
    pub cross_batches: AtomicU64,
    /// Ops summed over attempted cross-shard batches.
    pub cross_ops: AtomicU64,
    /// Prepare rounds that cancelled and were retried.
    pub cross_retries: AtomicU64,
    /// Batches answered `Aborted` (prepare retry budget exhausted).
    pub abort_conflict: AtomicU64,
    /// Batches answered `Timeout` before their decision was logged.
    pub abort_timeout: AtomicU64,
    /// Shard-transactions re-applied from the decision log at recovery.
    pub replayed: AtomicU64,
    /// Decision-log group commits (one committed log transaction each).
    pub decision_groups: AtomicU64,
    /// Decisions written across those group commits; the mean group
    /// size `decisions_logged / decision_groups` is the fence
    /// amortization factor of the 2PC commit point.
    pub decisions_logged: AtomicU64,
}

/// Coordinator metrics: 2PC counters plus per-phase latency histograms.
pub struct CoordinatorMetrics {
    /// Hot-path counters.
    pub counters: CachePadded<CoordinatorCounters>,
    /// Latency of a successful prepare round (all participants).
    pub prepare_latency: Histogram,
    /// Latency from decision logged to markers dropped.
    pub commit_latency: Histogram,
}

impl CoordinatorMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> CoordinatorMetrics {
        CoordinatorMetrics {
            counters: CachePadded::new(CoordinatorCounters::default()),
            prepare_latency: Histogram::new(),
            commit_latency: Histogram::new(),
        }
    }

    /// Zero every counter and histogram.
    pub fn reset(&self) {
        let c = &*self.counters;
        for counter in [
            &c.cross_batches,
            &c.cross_ops,
            &c.cross_retries,
            &c.abort_conflict,
            &c.abort_timeout,
            &c.replayed,
            &c.decision_groups,
            &c.decisions_logged,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
        self.prepare_latency.reset();
        self.commit_latency.reset();
    }

    /// Snapshot against the decision-log TM's stats.
    pub fn snapshot(&self, tm_stats: StatsSnapshot) -> CoordinatorSnapshot {
        let c = &*self.counters;
        CoordinatorSnapshot {
            cross_batches: c.cross_batches.load(Ordering::Relaxed),
            cross_ops: c.cross_ops.load(Ordering::Relaxed),
            cross_retries: c.cross_retries.load(Ordering::Relaxed),
            abort_conflict: c.abort_conflict.load(Ordering::Relaxed),
            abort_timeout: c.abort_timeout.load(Ordering::Relaxed),
            replayed: c.replayed.load(Ordering::Relaxed),
            decision_groups: c.decision_groups.load(Ordering::Relaxed),
            decisions_logged: c.decisions_logged.load(Ordering::Relaxed),
            prepare: self.prepare_latency.snapshot(),
            commit: self.commit_latency.snapshot(),
            tm: tm_stats,
        }
    }
}

impl Default for CoordinatorMetrics {
    fn default() -> CoordinatorMetrics {
        CoordinatorMetrics::new()
    }
}

/// Point-in-time view of the 2PC coordinator.
#[derive(Clone, Debug)]
pub struct CoordinatorSnapshot {
    /// Cross-shard batches attempted.
    pub cross_batches: u64,
    /// Ops summed over attempted cross-shard batches.
    pub cross_ops: u64,
    /// Retried prepare rounds.
    pub cross_retries: u64,
    /// Batches aborted on conflict (retry budget exhausted).
    pub abort_conflict: u64,
    /// Batches timed out before their decision.
    pub abort_timeout: u64,
    /// Shard-transactions replayed from the log at recovery.
    pub replayed: u64,
    /// Decision-log group commits.
    pub decision_groups: u64,
    /// Decisions written across those group commits.
    pub decisions_logged: u64,
    /// Prepare-round latency histogram.
    pub prepare: HistogramSnapshot,
    /// Decision-to-resolution latency histogram.
    pub commit: HistogramSnapshot,
    /// The decision-log TM's statistics (its flushes and fences are
    /// part of the service's persistence bill, so benchmark persist
    /// tallies must fold them in alongside the shard TMs').
    pub tm: StatsSnapshot,
}

impl fmt::Display for CoordinatorSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "2pc: batches={} ops={} retries={} ab_conflict={} ab_timeout={} \
             replayed={} groups={} logged={} prep_p50={} prep_p99={} \
             commit_p50={} commit_p99={}",
            self.cross_batches,
            self.cross_ops,
            self.cross_retries,
            self.abort_conflict,
            self.abort_timeout,
            self.replayed,
            self.decision_groups,
            self.decisions_logged,
            fmt_dur(self.prepare.quantile(0.50)),
            fmt_dur(self.prepare.quantile(0.99)),
            fmt_dur(self.commit.quantile(0.50)),
            fmt_dur(self.commit.quantile(0.99)),
        )
    }
}

/// Point-in-time view of one shard's replication pipeline: the three
/// LSN watermarks. `appended ≥ received ≥ applied` always; the gaps are
/// the shipping and apply lags.
#[derive(Clone, Copy, Debug)]
pub struct ReplShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Highest LSN durably appended to the primary's op log.
    pub appended: u64,
    /// Highest LSN durably staged in the follower's receive log.
    pub received: u64,
    /// Highest LSN durably applied into the follower's maps.
    pub applied: u64,
    /// A shipping round is mid-flight: its watermark stores may have
    /// landed while its trailing work (trim, crash checkpoints) has
    /// not run yet. Quiescence means zero lag *and* no round in
    /// flight — `lag()` folds this in so pollers cannot observe a
    /// half-finished round as settled.
    pub settling: bool,
}

impl ReplShardSnapshot {
    /// Entries appended but not yet durably received by the follower
    /// (what a failover at this instant could lose acks over — zero for
    /// acked writes, which waited out this gap).
    pub fn ship_lag(&self) -> u64 {
        self.appended.saturating_sub(self.received)
    }

    /// Entries received but not yet applied (what promotion's tail
    /// apply has to finish).
    pub fn apply_lag(&self) -> u64 {
        self.received.saturating_sub(self.applied)
    }

    /// Total entries the follower's applied state is behind the primary,
    /// counting a mid-flight shipping round as one outstanding entry.
    pub fn lag(&self) -> u64 {
        self.appended
            .saturating_sub(self.applied)
            .max(u64::from(self.settling))
    }
}

/// Replication watermarks for every shard.
#[derive(Clone, Debug)]
pub struct ReplSnapshot {
    /// One entry per shard, in shard order.
    pub shards: Vec<ReplShardSnapshot>,
}

impl ReplSnapshot {
    /// Total entries behind across all shards.
    pub fn lag(&self) -> u64 {
        self.shards.iter().map(ReplShardSnapshot::lag).sum()
    }
}

impl fmt::Display for ReplSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "repl: lag={}", self.lag())?;
        for s in &self.shards {
            write!(
                f,
                " s{}[app={} recv={} appl={}]",
                s.shard, s.appended, s.received, s.applied
            )?;
        }
        Ok(())
    }
}

/// Point-in-time view of the whole service.
#[derive(Clone, Debug)]
pub struct ServiceSnapshot {
    /// The routing table's version at snapshot time (bumps once per
    /// migration flip).
    pub routing_epoch: u64,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// The cross-shard coordinator's metrics.
    pub coordinator: CoordinatorSnapshot,
    /// The ring front end's metrics (in-flight depth, slot occupancy,
    /// submit-to-complete latency) — service-wide across all rings.
    pub ring: RingSnapshot,
    /// Replication watermarks, when replication is on.
    pub replication: Option<ReplSnapshot>,
    /// Deepest tracked held-lock stack any thread reached (locksan's
    /// held-lock high-water mark). Zero unless built with `--features
    /// locksan` and the sanitizer is on.
    pub lock_held_hwm: u64,
    /// Blocking shim-lock acquisitions that found their lock contended
    /// (locksan's contended-acquire count). Zero unless locksan is on.
    pub lock_contended: u64,
}

impl ServiceSnapshot {
    /// Completed operations across all shards.
    pub fn ops(&self) -> u64 {
        self.shards.iter().map(ShardSnapshot::ops).sum()
    }

    /// Mean batch size across all shards.
    pub fn mean_batch(&self) -> f64 {
        let batches: u64 = self.shards.iter().map(|s| s.batches).sum();
        let reqs: u64 = self.shards.iter().map(|s| s.batched_reqs).sum();
        if batches == 0 {
            0.0
        } else {
            reqs as f64 / batches as f64
        }
    }

    /// Merged latency quantile across shards.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        let mut merged: Option<HistogramSnapshot> = None;
        for s in &self.shards {
            merged = Some(match merged {
                None => s.latency.clone(),
                Some(mut m) => {
                    for (a, b) in m.buckets.iter_mut().zip(&s.latency.buckets) {
                        *a += b;
                    }
                    m
                }
            });
        }
        merged.and_then(|m| m.quantile(q))
    }

    /// Stripe-lock CAS acquisitions that lost to another owner across
    /// all shards' TMs (the fast path's fine-grained lock contention).
    pub fn stripe_contended(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.tm.get(Counter::StripeContended))
            .sum()
    }

    /// Aborted TM attempts per committed TM transaction, service-wide.
    pub fn abort_rate(&self) -> f64 {
        let commits: u64 = self.shards.iter().map(|s| s.tm.commits()).sum();
        let aborts: u64 = self.shards.iter().map(|s| s.tm.aborts()).sum();
        if commits == 0 {
            0.0
        } else {
            aborts as f64 / commits as f64
        }
    }
}

fn fmt_dur(d: Option<Duration>) -> String {
    match d {
        None => "-".to_string(),
        Some(d) => {
            let n = d.as_nanos();
            if n >= 1_000_000_000 {
                format!("{:.2}s", d.as_secs_f64())
            } else if n >= 1_000_000 {
                format!("{:.2}ms", n as f64 / 1e6)
            } else if n >= 1_000 {
                format!("{:.1}µs", n as f64 / 1e3)
            } else {
                format!("{n}ns")
            }
        }
    }
}

impl fmt::Display for ShardSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}: ops={} (g={} p={} d={}) to={} rej={} ab={} \
             batches={} mean_b={:.2} retries={} p50={} p99={} abrt_rate={:.3}",
            self.shard,
            self.ops(),
            self.gets,
            self.puts,
            self.dels,
            self.timeouts,
            self.rejected,
            self.aborted,
            self.batches,
            self.mean_batch(),
            self.retries,
            fmt_dur(self.latency.quantile(0.50)),
            fmt_dur(self.latency.quantile(0.99)),
            self.abort_rate(),
        )?;
        if self.rerouted > 0 {
            write!(f, " rerouted={}", self.rerouted)?;
        }
        let causes: Vec<String> = self
            .tm
            .abort_breakdown()
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(c, v)| format!("{}={}", c.label(), v))
            .collect();
        if !causes.is_empty() {
            write!(f, " [{}]", causes.join(" "))?;
        }
        Ok(())
    }
}

impl fmt::Display for ServiceSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.shards {
            writeln!(f, "{s}")?;
        }
        if self.coordinator.cross_batches > 0 || self.coordinator.replayed > 0 {
            writeln!(f, "{}", self.coordinator)?;
        }
        if self.ring.submitted > 0 {
            writeln!(f, "{}", self.ring)?;
        }
        if let Some(repl) = &self.replication {
            writeln!(f, "{repl}")?;
        }
        if self.lock_held_hwm > 0 || self.lock_contended > 0 || self.stripe_contended() > 0 {
            writeln!(
                f,
                "locks: held_hwm={} contended={} stripe_contended={}",
                self.lock_held_hwm,
                self.lock_contended,
                self.stripe_contended(),
            )?;
        }
        write!(
            f,
            "total: ops={} mean_batch={:.2} p50={} p99={} abort_rate={:.3}",
            self.ops(),
            self.mean_batch(),
            fmt_dur(self.latency_quantile(0.50)),
            fmt_dur(self.latency_quantile(0.99)),
            self.abort_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut prev_idx = 0;
        for exp in 0..60u32 {
            let n = 1u64 << exp;
            let idx = lat_bucket(n);
            assert!(idx >= prev_idx, "bucket index not monotone at 2^{exp}");
            prev_idx = idx;
            assert!(
                lat_bucket_upper(idx) >= n,
                "upper bound below sample at 2^{exp}"
            );
            // Upper bound within 2x at coarse resolution.
            assert!(lat_bucket_upper(idx) <= n.saturating_mul(2).max(16));
        }
    }

    #[test]
    fn quantiles_bound_samples() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        let p50 = snap.quantile(0.5).unwrap();
        let p99 = snap.quantile(0.99).unwrap();
        assert!(p50 >= Duration::from_micros(400) && p50 <= Duration::from_micros(800));
        assert!(p99 >= Duration::from_micros(900) && p99 <= Duration::from_micros(1500));
        assert!(snap.quantile(0.0).unwrap() <= p50);
        assert!(snap.quantile(1.0).unwrap() >= p99);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert!(Histogram::new().snapshot().quantile(0.5).is_none());
    }

    #[test]
    fn batch_recording_and_mean() {
        let m = ShardMetrics::new();
        m.record_batch(1);
        m.record_batch(3);
        m.record_batch(8);
        let snap = m.snapshot(0, tm::stats::TmStats::new(1).snapshot());
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batched_reqs, 12);
        assert!((snap.mean_batch() - 4.0).abs() < 1e-9);
        assert_eq!(snap.batch_sizes[1], 1);
        assert_eq!(snap.batch_sizes[3], 1);
        assert_eq!(snap.batch_sizes[8], 1);
    }

    #[test]
    fn oversized_batches_clamp() {
        let m = ShardMetrics::new();
        m.record_batch(BATCH_BUCKETS + 100);
        let snap = m.snapshot(0, tm::stats::TmStats::new(1).snapshot());
        assert_eq!(snap.batch_sizes[BATCH_BUCKETS], 1);
    }

    #[test]
    fn display_is_stable() {
        let m = ShardMetrics::new();
        m.counters.gets.fetch_add(2, Ordering::Relaxed);
        m.record_batch(2);
        let snap = m.snapshot(3, tm::stats::TmStats::new(1).snapshot());
        let line = format!("{snap}");
        assert!(line.contains("shard 3"));
        assert!(line.contains("ops=2"));
    }
}
