//! Completion-based submission/completion front end.
//!
//! A [`Ring`] owns a bounded slab of request slots. Clients
//! [`Ring::submit`] / [`Ring::submit_batch`] operations and get a
//! [`Ticket`] back immediately — no thread parks per request — then reap
//! finished operations with [`Ring::complete`], [`Ring::drain`], or
//! [`Ring::wait`]. One submitting thread can keep thousands of requests
//! in flight, which is what lets an open-loop load generator offer a
//! controlled arrival rate instead of the closed-loop
//! depth-equals-thread-count regime.
//!
//! Backpressure is structural: a ring with no free slot rejects the
//! submission with [`ServeError::RingFull`] (a completed-but-unreaped
//! ticket still occupies its slot — reaping is part of the protocol),
//! and a full shard queue rejects with [`ServeError::Overloaded`]
//! before a slot is consumed. Nothing queues unboundedly.
//!
//! **Crash verdicts.** Every accepted ticket resolves to exactly one
//! completion, even across a simulated power failure: the worker-side
//! completion handle delivers `Err(Stopped)` from its `Drop` if the
//! request is torn down un-answered (worker unwound mid-transaction,
//! queue dropped at crash, 2PC driver killed mid-protocol). After
//! [`Service::crash`](crate::Service::crash) returns, every outstanding
//! ticket has a definite acked-or-lost verdict the durable-linearizability
//! checker can consume: `Ok` means the write is durable and must survive
//! recovery; any `Err` means the request may or may not have committed
//! but was never acked.
//!
//! Slot lifecycle: `Free → InFlight → Done → Free` (reaped), with an
//! `InFlight` slot abandoned by a timed-out [`Ring::wait_deadline`]
//! recycling straight to `Free` when its completion finally arrives.

use crate::metrics::RingMetrics;
use crate::shard::ShardRequest;
use crate::{op_key, Reply, Router, ServeError, XRequest};
use crossbeam::channel::{Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txstructs::MapOp;

/// Handle to one ring submission. Copyable; stale tickets (already
/// reaped) are detected by the sequence number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ticket {
    slot: u32,
    seq: u64,
}

impl Ticket {
    /// The slot index this ticket occupies (diagnostic only).
    pub fn slot(&self) -> usize {
        self.slot as usize
    }
}

/// One reaped completion: the ticket and its definite outcome.
#[derive(Debug)]
pub struct Completion {
    /// The ticket this completion resolves.
    pub ticket: Ticket,
    /// `Ok(values)` — acked, durable, one value slot per submitted op.
    /// Any error — never acked (the operation may or may not have
    /// committed, but the service made no durability promise).
    pub result: Reply,
}

enum SlotState {
    Free,
    InFlight {
        submitted: Instant,
        /// A timed-out waiter walked away; recycle on delivery.
        abandoned: bool,
    },
    Done {
        result: Reply,
    },
}

struct Slot {
    /// Bumped on every acquisition; guards against stale tickets after
    /// slot reuse.
    seq: u64,
    state: SlotState,
}

/// State shared between a ring's submitters, reapers, and the
/// worker-side completion handles.
pub(crate) struct RingShared {
    slots: Vec<Mutex<Slot>>,
    free: Mutex<Vec<u32>>,
    /// Reap queue of completed slot indices; paired with `cv` so
    /// `wait`-ers learn about deliveries.
    done: Mutex<VecDeque<u32>>,
    cv: Condvar,
    metrics: Arc<RingMetrics>,
}

impl RingShared {
    fn new(slots: usize, metrics: Arc<RingMetrics>) -> RingShared {
        let shared = RingShared {
            slots: (0..slots)
                .map(|_| {
                    Mutex::new(Slot {
                        seq: 0,
                        state: SlotState::Free,
                    })
                })
                .collect(),
            free: Mutex::new((0..slots as u32).rev().collect()),
            done: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            metrics,
        };
        for s in &shared.slots {
            s.locksan_label("ring::slot", false);
        }
        shared.free.locksan_label("ring::free", false);
        shared.done.locksan_label("ring::done", false);
        shared
    }

    /// Take a free slot and mark it in flight. `None` means RingFull.
    fn acquire(&self, now: Instant) -> Option<Ticket> {
        let idx = self.free.lock().pop()?;
        let seq;
        {
            let mut s = self.slots[idx as usize].lock();
            s.seq += 1;
            seq = s.seq;
            s.state = SlotState::InFlight {
                submitted: now,
                abandoned: false,
            };
        }
        self.metrics.occupy();
        Some(Ticket { slot: idx, seq })
    }

    /// Roll back an acquisition whose enqueue failed: the ticket was
    /// never returned to the caller, so the slot recycles silently.
    fn cancel(&self, t: Ticket) {
        {
            let mut s = self.slots[t.slot as usize].lock();
            debug_assert_eq!(s.seq, t.seq, "cancel of a stale ticket");
            s.state = SlotState::Free;
        }
        self.free.lock().push(t.slot);
        self.metrics.vacate_inflight();
    }

    /// Deliver a request's outcome into its slot (worker side).
    fn deliver(&self, slot: u32, seq: u64, result: Reply) {
        let recycle = {
            let mut s = self.slots[slot as usize].lock();
            if s.seq != seq {
                return; // stale delivery for a recycled slot
            }
            match s.state {
                SlotState::InFlight {
                    submitted,
                    abandoned,
                } => {
                    self.metrics.complete(submitted.elapsed());
                    if abandoned {
                        s.state = SlotState::Free;
                        true
                    } else {
                        s.state = SlotState::Done { result };
                        false
                    }
                }
                // Double delivery cannot happen (the completion handle
                // fires at most once), but be defensive.
                _ => return,
            }
        };
        if recycle {
            self.free.lock().push(slot);
            self.metrics.vacate_reaped();
        } else {
            let mut done = self.done.lock();
            done.push_back(slot);
            drop(done);
            self.cv.notify_all();
        }
    }

    /// Reap the slot if it is `Done`, recycling it. `None` if the slot
    /// holds a different generation or is not done yet.
    fn try_reap(&self, idx: u32) -> Option<Completion> {
        let mut s = self.slots[idx as usize].lock();
        if !matches!(s.state, SlotState::Done { .. }) {
            return None;
        }
        let SlotState::Done { result } = std::mem::replace(&mut s.state, SlotState::Free) else {
            unreachable!("checked above");
        };
        let ticket = Ticket {
            slot: idx,
            seq: s.seq,
        };
        drop(s);
        self.free.lock().push(idx);
        self.metrics.vacate_reaped();
        Some(Completion { ticket, result })
    }
}

/// Worker-side completion handle: completes the ticket's slot exactly
/// once — explicitly via [`RingCompletion::send`], or with
/// `Err(Stopped)` from `Drop` if the request is torn down un-answered
/// (crash unwinding, queue teardown). This drop path is what turns a
/// simulated power failure into a definite verdict on every in-flight
/// ticket.
pub(crate) struct RingCompletion {
    shared: Arc<RingShared>,
    slot: u32,
    seq: u64,
    fired: AtomicBool,
}

impl RingCompletion {
    /// Deliver the outcome. Later sends (and the drop) are no-ops.
    pub fn send(&self, reply: Reply) {
        if !self.fired.swap(true, Ordering::AcqRel) {
            self.shared.deliver(self.slot, self.seq, reply);
        }
    }

    /// Disarm without delivering (the slot is being cancelled by the
    /// submitter, which still owns the un-returned ticket).
    fn defuse(&self) {
        self.fired.store(true, Ordering::Release);
    }
}

impl Drop for RingCompletion {
    fn drop(&mut self) {
        if !self.fired.swap(true, Ordering::AcqRel) {
            self.shared
                .deliver(self.slot, self.seq, Err(ServeError::Stopped));
        }
    }
}

/// A shard's submission lane as the ring sees it.
pub(crate) struct RingLane {
    pub queue: Sender<ShardRequest>,
    pub metrics: Arc<crate::metrics::ShardMetrics>,
}

/// The completion-based front end. Cheap to clone (clones share the
/// slot slab); all methods take `&self` and are thread-safe.
///
/// A ring outlives the [`Service`](crate::Service) it was created from:
/// after [`Service::crash`](crate::Service::crash) every outstanding
/// ticket resolves (to `Err(Stopped)` at the latest when the crash drops
/// the queues), and the ring can still be reaped. New submissions to a
/// torn-down service answer `Err(Stopped)`.
pub struct Ring {
    shared: Arc<RingShared>,
    router: Arc<Router>,
    default_deadline: Duration,
    retry_hint: Duration,
}

impl Clone for Ring {
    fn clone(&self) -> Ring {
        Ring {
            shared: self.shared.clone(),
            router: self.router.clone(),
            default_deadline: self.default_deadline,
            retry_hint: self.retry_hint,
        }
    }
}

/// Bounded routing retries after a `Disconnected` lane whose epoch
/// advanced under us (a migration flip retargeted the router between
/// our snapshot and the send).
const REROUTE_ATTEMPTS: usize = 4;

impl Ring {
    pub(crate) fn attach(
        slots: usize,
        router: Arc<Router>,
        metrics: Arc<RingMetrics>,
        default_deadline: Duration,
        retry_hint: Duration,
    ) -> Ring {
        assert!(slots >= 1, "ring needs at least one slot");
        Ring {
            shared: Arc::new(RingShared::new(slots, metrics)),
            router,
            default_deadline,
            retry_hint,
        }
    }

    /// Number of request slots.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Submitted-but-uncompleted requests across the service's rings.
    pub fn in_flight(&self) -> u64 {
        self.shared.metrics.in_flight()
    }

    /// Submit one operation under the service's default deadline.
    pub fn submit(&self, op: MapOp) -> Result<Ticket, ServeError> {
        self.submit_batch(vec![op])
    }

    /// Submit several operations as **one atomic, durable transaction**
    /// under the default deadline. Same-shard batches feed that shard's
    /// batching workers; mixed batches are queued to the 2PC driver
    /// threads.
    pub fn submit_batch(&self, ops: Vec<MapOp>) -> Result<Ticket, ServeError> {
        self.submit_batch_deadline(ops, self.default_deadline)
    }

    /// [`Ring::submit_batch`] with an explicit deadline. The deadline
    /// clock starts *now*: time spent queued behind other requests is
    /// charged against it, and a request that expires before execution
    /// starts completes with `Err(Timeout)` without running.
    pub fn submit_batch_deadline(
        &self,
        mut ops: Vec<MapOp>,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        let now = Instant::now();
        let Some(ticket) = self.shared.acquire(now) else {
            self.shared.metrics.reject_ring_full();
            return Err(ServeError::RingFull);
        };
        let mut sink = RingCompletion {
            shared: self.shared.clone(),
            slot: ticket.slot,
            seq: ticket.seq,
            fired: AtomicBool::new(false),
        };
        if ops.is_empty() {
            sink.send(Ok(Vec::new()));
            return Ok(ticket);
        }
        let deadline_at = now + deadline;
        // One coherent (table, lanes, xqueue) snapshot per attempt: the
        // request is stamped with the snapshot's epoch and lands in that
        // epoch's queues, so a concurrent flip either sees it when it
        // drains the old queues or never races it at all.
        let mut snap = self.router.load();
        let mut attempts = 0usize;
        loop {
            let table = &snap.table;
            let shard = table.route(op_key(ops[0]));
            let single = ops.iter().all(|&op| table.route(op_key(op)) == shard);
            if single {
                let req = ShardRequest {
                    ops,
                    reply: sink,
                    deadline: deadline_at,
                    enqueued: now,
                    epoch: table.epoch(),
                };
                match snap.lanes[shard].queue.try_send(req) {
                    Ok(()) => return Ok(ticket),
                    Err(TrySendError::Full(req)) => {
                        snap.lanes[shard]
                            .metrics
                            .counters
                            .rejected
                            .fetch_add(1, Ordering::Relaxed);
                        req.reply.defuse();
                        drop(req);
                        self.shared.cancel(ticket);
                        return Err(ServeError::Overloaded {
                            retry_after: self.retry_hint,
                        });
                    }
                    Err(TrySendError::Disconnected(req)) => {
                        // A dead lane is either a torn-down service or a
                        // migration flip that retired this snapshot's
                        // queues; re-read the router and retry if the
                        // epoch moved.
                        let fresh = self.router.load();
                        if fresh.table.epoch() != snap.table.epoch() && attempts < REROUTE_ATTEMPTS
                        {
                            let ShardRequest {
                                ops: o, reply: r, ..
                            } = req;
                            ops = o;
                            sink = r;
                            snap = fresh;
                            attempts += 1;
                            continue;
                        }
                        req.reply.defuse();
                        drop(req);
                        self.shared.cancel(ticket);
                        return Err(ServeError::Stopped);
                    }
                }
            } else {
                let req = XRequest {
                    ops,
                    reply: sink,
                    deadline: deadline_at,
                };
                match snap.xqueue.try_send(req) {
                    Ok(()) => return Ok(ticket),
                    Err(TrySendError::Full(req)) => {
                        req.reply.defuse();
                        drop(req);
                        self.shared.cancel(ticket);
                        return Err(ServeError::Overloaded {
                            retry_after: self.retry_hint,
                        });
                    }
                    Err(TrySendError::Disconnected(req)) => {
                        let fresh = self.router.load();
                        if fresh.table.epoch() != snap.table.epoch() && attempts < REROUTE_ATTEMPTS
                        {
                            let XRequest {
                                ops: o, reply: r, ..
                            } = req;
                            ops = o;
                            sink = r;
                            snap = fresh;
                            attempts += 1;
                            continue;
                        }
                        req.reply.defuse();
                        drop(req);
                        self.shared.cancel(ticket);
                        return Err(ServeError::Stopped);
                    }
                }
            }
        }
    }

    /// Reap one completion, if any is ready. Non-blocking.
    pub fn complete(&self) -> Option<Completion> {
        loop {
            let idx = self.shared.done.lock().pop_front()?;
            // A stale entry (its completion was taken by `wait`) skips.
            if let Some(c) = self.shared.try_reap(idx) {
                return Some(c);
            }
        }
    }

    /// Reap everything currently ready. Non-blocking.
    pub fn drain(&self) -> Drain<'_> {
        Drain(self)
    }

    /// Block until `ticket` completes and return its outcome. Every
    /// accepted ticket completes eventually — a crash resolves it to
    /// `Err(Stopped)` — so this only hangs if the service is alive but
    /// wedged. Panics on a stale ticket (already reaped via
    /// [`Ring::complete`] / [`Ring::drain`]).
    pub fn wait(&self, ticket: Ticket) -> Reply {
        self.wait_inner(ticket, None)
            .expect("wait without deadline cannot time out")
    }

    /// [`Ring::wait`] with a timeout: past `deadline` the ticket is
    /// abandoned (its slot recycles when the straggler completion
    /// arrives) and `Err(Timeout)` is returned.
    pub fn wait_deadline(&self, ticket: Ticket, deadline: Instant) -> Reply {
        match self.wait_inner(ticket, Some(deadline)) {
            Some(r) => r,
            None => Err(ServeError::Timeout),
        }
    }

    /// `None` = timed out and abandoned.
    fn wait_inner(&self, ticket: Ticket, deadline: Option<Instant>) -> Option<Reply> {
        loop {
            {
                let mut s = self.shared.slots[ticket.slot as usize].lock();
                assert_eq!(
                    s.seq, ticket.seq,
                    "wait on a stale ticket (already reaped elsewhere)"
                );
                match &mut s.state {
                    SlotState::Done { .. } => {
                        let SlotState::Done { result } =
                            std::mem::replace(&mut s.state, SlotState::Free)
                        else {
                            unreachable!("checked above");
                        };
                        drop(s);
                        self.shared.free.lock().push(ticket.slot);
                        self.shared.metrics.vacate_reaped();
                        return Some(result);
                    }
                    SlotState::InFlight { abandoned, .. } => {
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            *abandoned = true;
                            return None;
                        }
                    }
                    SlotState::Free => panic!("wait on a free slot with a live seq"),
                }
            }
            // Sleep until a delivery (bounded, to recheck the deadline).
            let mut guard = self.shared.done.lock();
            let wait = match deadline {
                Some(d) => d
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(5)),
                None => Duration::from_millis(5),
            };
            let _ = self.shared.cv.wait_for(&mut guard, wait);
        }
    }
}

/// Iterator over currently-ready completions (see [`Ring::drain`]).
pub struct Drain<'a>(&'a Ring);

impl Iterator for Drain<'_> {
    type Item = Completion;

    fn next(&mut self) -> Option<Completion> {
        self.0.complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(slots: usize) -> Arc<RingShared> {
        Arc::new(RingShared::new(slots, Arc::new(RingMetrics::new())))
    }

    fn sink(sh: &Arc<RingShared>, t: Ticket) -> RingCompletion {
        RingCompletion {
            shared: sh.clone(),
            slot: t.slot,
            seq: t.seq,
            fired: AtomicBool::new(false),
        }
    }

    #[test]
    fn slot_lifecycle_acquire_deliver_reap() {
        let sh = shared(2);
        let t = sh.acquire(Instant::now()).unwrap();
        let s = sink(&sh, t);
        s.send(Ok(vec![Some(7)]));
        let idx = sh.done.lock().pop_front().unwrap();
        let c = sh.try_reap(idx).unwrap();
        assert_eq!(c.ticket, t);
        assert_eq!(c.result, Ok(vec![Some(7)]));
        // The slot recycled: two more acquisitions succeed.
        assert!(sh.acquire(Instant::now()).is_some());
        assert!(sh.acquire(Instant::now()).is_some());
        assert!(sh.acquire(Instant::now()).is_none());
    }

    #[test]
    fn dropping_an_unfired_sink_delivers_stopped() {
        let sh = shared(1);
        let t = sh.acquire(Instant::now()).unwrap();
        drop(sink(&sh, t));
        let idx = sh.done.lock().pop_front().unwrap();
        let c = sh.try_reap(idx).unwrap();
        assert_eq!(c.result, Err(ServeError::Stopped));
    }

    #[test]
    fn send_wins_over_drop_and_double_send_is_noop() {
        let sh = shared(1);
        let t = sh.acquire(Instant::now()).unwrap();
        let s = sink(&sh, t);
        s.send(Ok(vec![None]));
        s.send(Err(ServeError::Aborted));
        drop(s);
        let idx = sh.done.lock().pop_front().unwrap();
        assert_eq!(sh.try_reap(idx).unwrap().result, Ok(vec![None]));
        assert!(sh.done.lock().is_empty());
    }

    #[test]
    fn cancelled_slot_recycles_without_a_completion() {
        let sh = shared(1);
        let t = sh.acquire(Instant::now()).unwrap();
        let s = sink(&sh, t);
        s.defuse();
        drop(s);
        sh.cancel(t);
        assert!(sh.done.lock().is_empty());
        assert!(sh.acquire(Instant::now()).is_some());
    }

    #[test]
    fn stale_delivery_is_ignored() {
        let sh = shared(1);
        let t1 = sh.acquire(Instant::now()).unwrap();
        let s1 = sink(&sh, t1);
        s1.send(Ok(vec![]));
        let idx = sh.done.lock().pop_front().unwrap();
        sh.try_reap(idx).unwrap();
        let t2 = sh.acquire(Instant::now()).unwrap();
        assert_ne!(t1.seq, t2.seq);
        // A straggler delivery carrying the old seq must not touch t2.
        sh.deliver(t1.slot, t1.seq, Err(ServeError::Aborted));
        assert!(sh.done.lock().is_empty());
        let s2 = sink(&sh, t2);
        s2.send(Ok(vec![Some(1)]));
        let idx = sh.done.lock().pop_front().unwrap();
        assert_eq!(sh.try_reap(idx).unwrap().result, Ok(vec![Some(1)]));
    }
}
