//! Cross-shard atomicity: two-phase commit over the shards' NV-HALT
//! instances.
//!
//! A multi-op request whose keys route to several shards is queued to a
//! dedicated 2PC driver thread ([`drive`]) and executed there as one
//! **distributed transaction**:
//!
//! 1. **Prepare** — per participating shard, run the shard's ops plus a
//!    *marker* insert (`meta[txid] = 1`) as a prepared transaction
//!    ([`tm::TmPrepare`]): the writes are durably staged below the
//!    shard's persistent version and every touched address stays locked,
//!    so the staged state is invisible to other transactions and a crash
//!    rolls it back.
//! 2. **Decide** — append a `COMMITTED` entry (txid + the full op list)
//!    to the decision log, a linked list in its own NV-HALT instance,
//!    as one committed transaction. *This commit is the commit point of
//!    the whole batch.* Aborts are presumed: no entry is ever written
//!    for them.
//! 3. **Commit fan-out** — `commit_prepared` on every participant makes
//!    the staged writes (and the marker) durable and visible.
//! 4. **Resolve** — flip the entry to `RESOLVED`, then delete the
//!    markers, then recycle the entry: later decisions rewrite resolved
//!    blocks in place, so the log's footprint tracks in-flight batches,
//!    not batches ever committed.
//!
//! Recovery replays the log: for every unresolved `COMMITTED` entry, any
//! shard whose marker is missing lost its prepared state in the crash
//! and gets the entry's ops re-applied (with the marker) in one
//! transaction; shards whose marker survived already committed and are
//! skipped — that is what makes replay idempotent and safe against
//! *later* committed writes to the same keys. The entry is then resolved
//! and the markers dropped.
//!
//! Phase 1 can deadlock with a concurrent coordinator preparing the same
//! shards in a different order; every prepare is therefore fuel-bounded
//! and a cancelled round aborts all prepared participants, backs off and
//! retries, up to `max_retries`.

use crate::metrics::CoordinatorMetrics;
use crate::repl::{self, LogKind};
use crate::{
    op_key, Engine, Reply, RoutingTable, ServeError, ServiceConfig, XRequest, ROUTE_SLOTS,
};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use nvhalt::NvHalt;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tm::{Abort, Addr, Tm, TmPrepare};
use txstructs::MapOp;

/// Decision-log entry layout (word offsets within an entry block):
/// `[next, txid, state, nops, cap, (tag, key, val) × cap]`.
/// `cap` is the block's op capacity; resolved entries are recycled in
/// place for later decisions with `nops <= cap`, so the log's footprint
/// tracks the number of *in-flight* cross-shard batches, not the number
/// ever committed.
const E_NEXT: u64 = 0;
const E_TXID: u64 = 1;
const E_STATE: u64 = 2;
const E_NOPS: u64 = 3;
const E_CAP: u64 = 4;
const E_OPS: u64 = 5;
const OP_WORDS: u64 = 3;

/// Entry state: decision taken, fan-out possibly incomplete.
pub(crate) const STATE_COMMITTED: u64 = 1;
/// Entry state: every participant durably committed; skip at recovery.
pub(crate) const STATE_RESOLVED: u64 = 2;

/// Routing-root layout inside the decision log's pool:
/// `[epoch, nslots, assign[0..ROUTE_SLOTS]]`. Rewritten whole by one
/// committed transaction per migration flip, so recovery reads either
/// the pre-flip or the post-flip table — never a torn mix.
const R_EPOCH: u64 = 0;
const R_NSLOTS: u64 = 1;
const R_ASSIGN: u64 = 2;
/// Words in the routing-root block.
pub(crate) const ROUTE_WORDS: usize = 2 + ROUTE_SLOTS;

/// The 2PC steps a crash-injection hook can observe (and crash at).
/// Steps strictly before [`TwoPcStep::DecisionLogged`] must roll the
/// batch back on recovery; that step and later ones must complete it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwoPcStep {
    /// Before any participant prepared.
    BeforePrepare,
    /// Between two participants' prepares (some prepared, some not).
    BetweenPrepares,
    /// All participants prepared, decision not yet logged.
    Prepared,
    /// The commit decision is durably logged.
    DecisionLogged,
    /// Between two participants' commits (some visible, some still
    /// prepared).
    MidCommit,
    /// All participants committed, entry not yet resolved.
    Committed,
}

impl TwoPcStep {
    /// All steps, in protocol order (for exhaustive crash injection).
    pub const ALL: [TwoPcStep; 6] = [
        TwoPcStep::BeforePrepare,
        TwoPcStep::BetweenPrepares,
        TwoPcStep::Prepared,
        TwoPcStep::DecisionLogged,
        TwoPcStep::MidCommit,
        TwoPcStep::Committed,
    ];

    /// True if a crash at this step must leave the batch fully applied
    /// after recovery (the decision was durably logged).
    pub fn is_decided(self) -> bool {
        matches!(
            self,
            TwoPcStep::DecisionLogged | TwoPcStep::MidCommit | TwoPcStep::Committed
        )
    }
}

/// Crash-injection hook: called at every [`TwoPcStep`]; returning `true`
/// poisons all pools and unwinds the calling thread right there.
pub(crate) type CrashHook = Arc<dyn Fn(TwoPcStep) -> bool + Send + Sync>;

/// The cross-shard commit coordinator: the decision log shared by the
/// 2PC driver threads. Driver `c` exclusively owns coordinator slot `c`,
/// which grants TM thread id `workers_per_shard + c` on every shard and
/// `c` on the log.
pub(crate) struct Coordinator {
    /// The decision log's own NV-HALT instance (crashed and recovered
    /// together with the shards).
    pub log: Arc<NvHalt>,
    /// Head word of the decision-entry linked list.
    pub head: Addr,
    /// The durable routing-table root block (same pool as the log).
    pub route: Addr,
    /// Next transaction id to hand out (recovered as max seen + 1).
    pub next_txid: AtomicU64,
    /// Recyclable `RESOLVED` entries, as `(addr, op capacity)`. Entries
    /// enter only after their markers are dropped (a recycled entry must
    /// never still be needed to dedupe replay).
    free: Mutex<Vec<(Addr, u64)>>,
    /// The decision-log group-commit queue (see [`Coordinator::log_decision`]).
    group: Mutex<DecisionGroup>,
    group_cv: Condvar,
    pub metrics: Arc<CoordinatorMetrics>,
    pub hook: Mutex<Option<CrashHook>>,
}

/// Shared state of the decision-log group commit: decisions queued for
/// the next leader, and the results a leader publishes back to its
/// waiters.
#[derive(Default)]
struct DecisionGroup {
    /// Decisions waiting to be written, as `(txid, ops)`.
    queue: Vec<(u64, Vec<MapOp>)>,
    /// Written decisions not yet picked up: txid → `(entry, cap)`.
    results: HashMap<u64, (Addr, u64)>,
    /// A leader is writing the current batch.
    leader_busy: bool,
    /// The leader's write crash-unwound (pool poisoned mid-commit);
    /// every waiter must unwind too instead of blocking forever.
    poisoned: bool,
}

/// Unwind-safety for the group leader: if the decision-log transaction
/// crash-unwinds (simulated power failure), flag the group and wake the
/// waiters so they unwind as well.
struct GroupAbortGuard<'a>(&'a Coordinator);

impl Drop for GroupAbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.group.lock().poisoned = true;
            self.0.group_cv.notify_all();
        }
    }
}

impl Coordinator {
    /// Fresh coordinator: new log TM, head allocated and durably zero,
    /// the initial routing table durably written.
    pub fn new(cfg: &ServiceConfig, table: &RoutingTable) -> Coordinator {
        let log = Arc::new(NvHalt::new(cfg.log_nvhalt()));
        let head = log.alloc_raw(0, 1);
        let route = log.alloc_raw(0, ROUTE_WORDS);
        let co = Coordinator::assemble(log, head, route, 1);
        co.write_route(0, table);
        co
    }

    /// Rebuild over a recovered log TM.
    pub fn recovered(log: Arc<NvHalt>, head: Addr, route: Addr, next_txid: u64) -> Coordinator {
        Coordinator::assemble(log, head, route, next_txid)
    }

    fn assemble(log: Arc<NvHalt>, head: Addr, route: Addr, next_txid: u64) -> Coordinator {
        let co = Coordinator {
            log,
            head,
            route,
            next_txid: AtomicU64::new(next_txid),
            free: Mutex::new(Vec::new()),
            group: Mutex::new(DecisionGroup::default()),
            group_cv: Condvar::new(),
            metrics: Arc::new(CoordinatorMetrics::new()),
            hook: Mutex::new(None),
        };
        co.free.locksan_label("coord::free", false);
        co.group.locksan_label("coord::group", false);
        co.hook.locksan_label("coord::hook", false);
        co
    }

    /// Durably (re)write the routing root as **one committed
    /// transaction** — for a migration this is the flip, the batch's
    /// "commit point" analogue: before it commits recovery sees the old
    /// table, after it the new one. Followed by a psan durability point:
    /// the table must be fully fenced before anything serves under it.
    pub fn write_route(&self, ltid: usize, t: &RoutingTable) {
        assert_eq!(t.assignment().len(), ROUTE_SLOTS);
        let route = self.route;
        tm::txn(&*self.log, ltid, |tx| {
            tx.write(route.offset(R_EPOCH), t.epoch())?;
            tx.write(route.offset(R_NSLOTS), ROUTE_SLOTS as u64)?;
            for (s, &a) in t.assignment().iter().enumerate() {
                tx.write(route.offset(R_ASSIGN + s as u64), a as u64)?;
            }
            Ok(())
        })
        .expect("routing-root transactions never cancel");
        if let Some(p) = self.log.pmem().pool().psan() {
            p.durability_point(ltid, "kvserve::coord::route_flip");
        }
    }
}

/// Read the durable routing table back. Only valid on a quiescent TM
/// (recovery / promotion).
pub(crate) fn read_route_raw(log: &NvHalt, route: Addr) -> RoutingTable {
    let nslots = log.read_raw(route.offset(R_NSLOTS)) as usize;
    assert_eq!(nslots, ROUTE_SLOTS, "routing root slot-count mismatch");
    let assign = (0..ROUTE_SLOTS)
        .map(|s| log.read_raw(route.offset(R_ASSIGN + s as u64)) as u32)
        .collect();
    RoutingTable::from_parts(log.read_raw(route.offset(R_EPOCH)), assign)
}

impl Coordinator {
    /// Best-fit pop from the recycle list: the smallest resolved entry
    /// that can hold `nops` ops.
    fn take_free(&self, nops: u64) -> Option<(Addr, u64)> {
        let mut free = self.free.lock();
        let mut best: Option<usize> = None;
        for (i, &(_, cap)) in free.iter().enumerate() {
            if cap >= nops {
                let better = match best {
                    Some(b) => cap < free[b].1,
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best.map(|i| free.swap_remove(i))
    }

    /// Hand a fully resolved entry (markers already dropped) back for
    /// recycling.
    pub fn release_entry(&self, entry: Addr, cap: u64) {
        self.free.lock().push((entry, cap));
    }

    /// Durably log a `COMMITTED` entry — the batch's commit point — as a
    /// **group commit**: the decision is queued, and the first driver to
    /// find no leader writing becomes the leader, writing *every* queued
    /// decision in one committed log transaction (one flush pass, one
    /// fence) and publishing the entries back to the waiting drivers.
    /// Concurrently-resolving cross-shard batches thus share a single
    /// commit's persist cost instead of paying one fence each. Returns
    /// this decision's entry and its op capacity.
    fn log_decision(&self, ltid: usize, txid: u64, ops: &[MapOp]) -> (Addr, u64) {
        let mut g = self.group.lock();
        g.queue.push((txid, ops.to_vec()));
        loop {
            if let Some(r) = g.results.remove(&txid) {
                return r;
            }
            if g.poisoned {
                // The leader's transaction died in a simulated power
                // failure; this decision is not durable and never will
                // be. Unwind like any other crashed transaction.
                drop(g);
                tm::crash::crash_unwind();
            }
            if !g.leader_busy {
                g.leader_busy = true;
                let batch = std::mem::take(&mut g.queue);
                drop(g);
                let guard = GroupAbortGuard(self);
                let written = self.write_decisions(ltid, &batch);
                std::mem::forget(guard);
                let c = &*self.metrics.counters;
                c.decision_groups.fetch_add(1, Ordering::Relaxed);
                c.decisions_logged
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                g = self.group.lock();
                for ((id, _), r) in batch.iter().zip(written) {
                    g.results.insert(*id, r);
                }
                g.leader_busy = false;
                self.group_cv.notify_all();
            } else {
                self.group_cv.wait(&mut g);
            }
        }
    }

    /// The group leader's write: every queued decision in **one**
    /// committed log transaction. Per decision, recycles a resolved
    /// entry in place when one is large enough, otherwise appends a new
    /// block. Returns one `(entry, cap)` per batch element, in order.
    fn write_decisions(&self, ltid: usize, batch: &[(u64, Vec<MapOp>)]) -> Vec<(Addr, u64)> {
        let head = self.head;
        // Pick recycled blocks before the transaction so an internal
        // retry does not take more of them.
        let reuse: Vec<Option<(Addr, u64)>> = batch
            .iter()
            .map(|(_, ops)| self.take_free(ops.len() as u64))
            .collect();
        let _psan = self
            .log
            .pmem()
            .pool()
            .psan_scope(ltid, "kvserve::coord::log_decision");
        tm::txn(&*self.log, ltid, |tx| {
            let mut out = Vec::with_capacity(batch.len());
            for ((txid, ops), reuse) in batch.iter().zip(&reuse) {
                let nops = ops.len() as u64;
                let (e, cap) = match *reuse {
                    Some((e, cap)) => (e, cap),
                    None => {
                        let e = tx.alloc((E_OPS + nops * OP_WORDS) as usize)?;
                        tx.write(e.offset(E_CAP), nops)?;
                        let prev = tx.read(head)?;
                        tx.write(e.offset(E_NEXT), prev)?;
                        tx.write(head, e.0)?;
                        (e, nops)
                    }
                };
                tx.write(e.offset(E_TXID), *txid)?;
                tx.write(e.offset(E_NOPS), nops)?;
                for (i, &op) in ops.iter().enumerate() {
                    let (tag, k, v) = encode_op(op);
                    let base = e.offset(E_OPS + i as u64 * OP_WORDS);
                    tx.write(base, tag)?;
                    tx.write(base.offset(1), k)?;
                    tx.write(base.offset(2), v)?;
                }
                tx.write(e.offset(E_STATE), STATE_COMMITTED)?;
                out.push((e, cap));
            }
            Ok(out)
        })
        .expect("decision-log transactions never cancel")
    }

    /// Durably flip `entry` to `RESOLVED` (recovery will skip it).
    pub fn resolve(&self, ltid: usize, entry: Addr) {
        tm::txn(&*self.log, ltid, |tx| {
            tx.write(entry.offset(E_STATE), STATE_RESOLVED)
        })
        .expect("decision-log transactions never cancel");
    }
}

fn encode_op(op: MapOp) -> (u64, u64, u64) {
    match op {
        MapOp::Get(k) => (0, k, 0),
        MapOp::Insert(k, v) => (1, k, v),
        MapOp::Remove(k) => (2, k, 0),
    }
}

fn decode_op(tag: u64, k: u64, v: u64) -> MapOp {
    match tag {
        0 => MapOp::Get(k),
        1 => MapOp::Insert(k, v),
        2 => MapOp::Remove(k),
        _ => unreachable!("corrupt decision-log op tag {tag}"),
    }
}

/// One decoded decision-log entry.
pub(crate) struct DecisionEntry {
    pub addr: Addr,
    pub txid: u64,
    pub state: u64,
    pub cap: u64,
    pub ops: Vec<MapOp>,
}

impl DecisionEntry {
    /// The entry's block size in words (for allocator rebuild).
    pub fn words(&self) -> usize {
        (E_OPS + self.cap * OP_WORDS) as usize
    }
}

/// Decode the whole log. Only valid on a quiescent TM (recovery).
///
/// List position carries no ordering (resolved entries are recycled in
/// place), and none is needed: per shard and key at most one unresolved
/// entry can be missing its marker — any later conflicting prepare
/// required the earlier commit to release its locks, which also made
/// its marker durable — so replay never re-applies two entries to the
/// same key.
pub(crate) fn walk_log(log: &NvHalt, head: Addr) -> Vec<DecisionEntry> {
    let mut entries = Vec::new();
    let mut a = Addr(log.read_raw(head));
    while !a.is_null() {
        let nops = log.read_raw(a.offset(E_NOPS)) as usize;
        let ops = (0..nops)
            .map(|i| {
                let base = a.offset(E_OPS + i as u64 * OP_WORDS);
                decode_op(
                    log.read_raw(base),
                    log.read_raw(base.offset(1)),
                    log.read_raw(base.offset(2)),
                )
            })
            .collect();
        entries.push(DecisionEntry {
            addr: a,
            txid: log.read_raw(a.offset(E_TXID)),
            state: log.read_raw(a.offset(E_STATE)),
            cap: log.read_raw(a.offset(E_CAP)),
            ops,
        });
        a = Addr(log.read_raw(a.offset(E_NEXT)));
    }
    entries
}

/// Fire the crash-injection hook, if any: poison every pool and unwind.
fn crash_check(eng: &Engine, step: TwoPcStep) {
    let hook = eng.coord.hook.lock().clone();
    if let Some(h) = hook {
        if h(step) {
            eng.poison();
            tm::crash::crash_unwind();
        }
    }
}

/// 2PC driver loop: drains the cross-shard queue, sheds requests whose
/// deadline passed while queued (queue wait is charged against the
/// deadline — execution never starts for an expired batch), and runs
/// each batch under [`tm::crash::run_crashable`]. A simulated power
/// failure unwinds the driver; the dropped request's completion handle
/// delivers [`ServeError::Stopped`] — never an ack.
pub(crate) fn drive(eng: Arc<Engine>, rx: Receiver<XRequest>, stop: Arc<AtomicBool>, slot: usize) {
    while !stop.load(Ordering::Acquire) {
        let req = match rx.recv_timeout(crate::shard::POLL) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if Instant::now() >= req.deadline {
            eng.coord
                .metrics
                .counters
                .abort_timeout
                .fetch_add(1, Ordering::Relaxed);
            req.reply.send(Err(ServeError::Timeout));
            continue;
        }
        let survived = tm::crash::run_crashable(|| {
            let reply = cross_shard(&eng, &req.ops, req.deadline, slot);
            req.reply.send(reply);
        });
        if survived.is_none() {
            // The pools are poisoned; the unwind dropped `req`, whose
            // completion handle surfaced `Stopped`. This driver is dead
            // until the service is recovered.
            return;
        }
    }
}

/// Run a multi-shard batch as one 2PC transaction on driver `slot`
/// (which exclusively owns the matching reserved TM thread ids). Called
/// inside [`tm::crash::run_crashable`]; a simulated power failure
/// unwinds out of here and the client observes [`ServeError::Stopped`].
pub(crate) fn cross_shard(eng: &Engine, ops: &[MapOp], deadline_at: Instant, slot: usize) -> Reply {
    let co = &eng.coord;
    let cfg = &eng.cfg;

    // Partition ops under the *current* routing table, remembering
    // original positions so the reply lines up with the submitted
    // order. Epoch-agnostic by construction: a migration flip only runs
    // after joining the 2PC drivers, so the table cannot change under a
    // batch mid-protocol, and a batch re-routed across a flip is simply
    // re-partitioned here under the new table (it may even collapse to
    // one group — still a correct, if degenerate, 2PC round).
    let table = eng.router.table();
    let mut groups: Vec<(usize, Vec<(usize, MapOp)>)> = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        let s = table.route(op_key(op));
        match groups.iter_mut().find(|g| g.0 == s) {
            Some(g) => g.1.push((i, op)),
            None => groups.push((s, vec![(i, op)])),
        }
    }
    let c = &*co.metrics.counters;
    c.cross_batches.fetch_add(1, Ordering::Relaxed);
    c.cross_ops.fetch_add(ops.len() as u64, Ordering::Relaxed);

    let ptid = cfg.workers_per_shard + slot;
    let ltid = slot;

    let txid = co.next_txid.fetch_add(1, Ordering::Relaxed);
    let fuel = cfg.attempt_fuel;
    crash_check(eng, TwoPcStep::BeforePrepare);

    // Phase 1: prepare every participant. Any cancelled prepare aborts
    // the whole round; the deadline is only honoured here — once the
    // decision is logged the batch always completes.
    let rt = eng.repl.as_deref();
    let mut results: Vec<Option<u64>> = vec![None; ops.len()];
    // Per-group LSN of the Prepare entry appended inside the prepared
    // transaction (0 when replication is off). Valid only for the round
    // that ends up committing — an aborted round rolls its appends back.
    let mut prep_lsns = vec![0u64; groups.len()];
    let mut retry = 0u32;
    'round: loop {
        if Instant::now() >= deadline_at {
            c.abort_timeout.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Timeout);
        }
        let prep_start = Instant::now();
        let mut prepared: Vec<usize> = Vec::with_capacity(groups.len());
        for (gi, (s, gops)) in groups.iter().enumerate() {
            if gi > 0 {
                crash_check(eng, TwoPcStep::BetweenPrepares);
            }
            let sh = &eng.parts[*s];
            let (map, meta) = (sh.map, sh.meta);
            let log_hdr = sh.log_hdr;
            let muts: Vec<MapOp> =
                repl::mutations(&gops.iter().map(|&(_, op)| op).collect::<Vec<MapOp>>());
            let _psan = sh
                .tm
                .pmem()
                .pool()
                .psan_scope(ptid, "kvserve::coord::prepare");
            let res = tm::prepare(&*sh.tm, ptid, |tx| {
                if tx.attempt() >= fuel {
                    return Err(Abort::Cancel);
                }
                let mut out = Vec::with_capacity(gops.len());
                for &(_, op) in gops.iter() {
                    out.push(map.apply_in(tx, op)?);
                }
                // The marker commits or rolls back atomically with the
                // ops; recovery uses it to make replay idempotent.
                meta.insert_in(tx, txid, 1)?;
                // When the shard's op log is armed (replicating, or a
                // live migration is streaming it), the follower mirrors
                // the marker too — via the Prepare entry — so
                // decision-log replay stays idempotent across a
                // promotion or migration boundary.
                let lsn = repl::append_armed_in(tx, log_hdr, LogKind::Prepare, txid, &muts)?;
                Ok((out, lsn))
            });
            match res {
                Ok((vals, lsn)) => {
                    for (&(oi, _), v) in gops.iter().zip(vals) {
                        results[oi] = v;
                    }
                    prep_lsns[gi] = lsn;
                    prepared.push(gi);
                }
                Err(tm::Cancelled) => {
                    for &pgi in &prepared {
                        eng.parts[groups[pgi].0].tm.abort_prepared(ptid);
                    }
                    c.cross_retries.fetch_add(1, Ordering::Relaxed);
                    if retry >= cfg.max_retries {
                        c.abort_conflict.fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Aborted);
                    }
                    let backoff = cfg
                        .backoff_base
                        .saturating_mul(1u32 << retry.min(16))
                        .min(cfg.backoff_max);
                    std::thread::sleep(backoff);
                    retry += 1;
                    continue 'round;
                }
            }
        }
        co.metrics.prepare_latency.record(prep_start.elapsed());
        break;
    }
    crash_check(eng, TwoPcStep::Prepared);

    // Commit point.
    let (entry, cap) = co.log_decision(ltid, txid, ops);
    crash_check(eng, TwoPcStep::DecisionLogged);

    // Phase 2: fan out the commit. Crashes from here on are repaired by
    // log replay at recovery.
    let commit_start = Instant::now();
    for (gi, (s, _)) in groups.iter().enumerate() {
        if gi > 0 {
            crash_check(eng, TwoPcStep::MidCommit);
        }
        let sh = &eng.parts[*s];
        let _psan = sh
            .tm
            .pmem()
            .pool()
            .psan_scope(ptid, "kvserve::coord::commit");
        sh.tm.commit_prepared(ptid);
        // The Prepare entry just became durable with the rest of the
        // staged writes; let the shipper at it.
        if let Some(r) = rt {
            if prep_lsns[gi] > 0 {
                r.states[*s]
                    .appended
                    .fetch_max(prep_lsns[gi], Ordering::AcqRel);
                r.states[*s].signal_work();
            }
        }
    }
    crash_check(eng, TwoPcStep::Committed);

    // Resolve, then drop the markers (in that order: a marker may only
    // disappear once the log no longer needs it to dedupe replay), and
    // only then recycle the entry — a recycled entry overwritten by a
    // new decision must not leave this txid's markers behind.
    co.resolve(ltid, entry);
    let mut resolve_lsns = vec![0u64; groups.len()];
    for (gi, (s, _)) in groups.iter().enumerate() {
        let sh = &eng.parts[*s];
        let meta = sh.meta;
        let log_hdr = sh.log_hdr;
        let lsn = tm::txn(&*sh.tm, ptid, |tx| {
            meta.remove_in(tx, txid)?;
            repl::append_armed_in(tx, log_hdr, LogKind::Resolve, txid, &[])
        })
        .expect("marker cleanup never cancels");
        resolve_lsns[gi] = lsn;
        if let Some(r) = rt {
            if lsn > 0 {
                r.states[*s].appended.fetch_max(lsn, Ordering::AcqRel);
                r.states[*s].signal_work();
            }
        }
    }
    co.release_entry(entry, cap);
    co.metrics.commit_latency.record(commit_start.elapsed());

    // Semi-synchronous ack: wait until every participant's Resolve entry
    // is durably in its follower's receive log (per-shard LSN order makes
    // that cover the Prepare entry too). A miss answers `Timeout` — the
    // batch committed, but a committed-yet-unacked request is legal.
    if let Some(r) = rt {
        for (gi, (s, _)) in groups.iter().enumerate() {
            if resolve_lsns[gi] > 0 && !r.states[*s].wait_received(resolve_lsns[gi], deadline_at) {
                return Err(ServeError::Timeout);
            }
        }
    }
    Ok(results)
}

/// Replay the decision log over recovered, quiescent shards: re-apply
/// every unresolved committed entry on the shards that lost it, resolve
/// it, and drop markers. Entries partition under `table` — sound
/// because a migration flip only commits with the decision log fully
/// resolved (the flip joins the 2PC drivers first), so every entry
/// still needing replay was logged under the recovered table. Every
/// replay transaction appends the matching Prepare/Resolve entry to the
/// shard's op log when it is armed, so the follower re-converges too.
/// Returns how many shard-transactions were re-applied.
pub(crate) fn replay(
    co: &Coordinator,
    shards: &[(Arc<NvHalt>, txstructs::HashMapTx, txstructs::HashMapTx)],
    table: &RoutingTable,
    entries: &[DecisionEntry],
    logs: &[Addr],
) -> u64 {
    let mut replayed = 0u64;
    for e in entries {
        let mut by_shard: Vec<(usize, Vec<MapOp>)> = Vec::new();
        for &op in &e.ops {
            let s = table.route(op_key(op));
            match by_shard.iter_mut().find(|g| g.0 == s) {
                Some(g) => g.1.push(op),
                None => by_shard.push((s, vec![op])),
            }
        }
        if e.state == STATE_COMMITTED {
            for (s, sops) in &by_shard {
                let (tm, map, meta) = &shards[*s];
                // A surviving marker means this shard committed its part
                // before the crash; re-applying would clobber later writes.
                let done = meta
                    .get(&**tm, 0, e.txid)
                    .expect("recovery reads never cancel")
                    .is_some();
                if done {
                    continue;
                }
                tm::txn(&**tm, 0, |tx| {
                    for &op in sops.iter() {
                        map.apply_in(tx, op)?;
                    }
                    meta.insert_in(tx, e.txid, 1)?;
                    repl::append_armed_in(
                        tx,
                        logs[*s],
                        LogKind::Prepare,
                        e.txid,
                        &repl::mutations(sops),
                    )?;
                    Ok(())
                })
                .expect("recovery replay never cancels");
                replayed += 1;
            }
            co.resolve(0, e.addr);
        }
        // Resolved either way now: markers are garbage, drop them.
        for (s, _) in &by_shard {
            let (tm, _, meta) = &shards[*s];
            tm::txn(&**tm, 0, |tx| {
                meta.remove_in(tx, e.txid)?;
                repl::append_armed_in(tx, logs[*s], LogKind::Resolve, e.txid, &[])?;
                Ok(())
            })
            .expect("marker cleanup never cancels");
        }
    }
    replayed
}
