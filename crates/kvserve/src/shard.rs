//! One shard: an NV-HALT instance, its transactional hashmap, a bounded
//! request queue, and the worker threads that drain it.
//!
//! Workers coalesce queued requests into batches and run each batch as a
//! *single* durable transaction ([`HashMapTx::apply_in`] per op inside one
//! `tm::txn`), amortizing the commit-time flush/fence cost across the
//! batch. A batch whose transaction burns through its attempt fuel is
//! voluntarily cancelled; the worker then backs off exponentially and
//! retries the whole batch, shedding requests whose deadlines have passed.
//!
//! Crash simulation: a worker torn down mid-transaction by the pool's
//! [`CrashSignal`](tm::crash::CrashSignal) unwinds out of the serve loop;
//! the in-flight requests' reply channels drop, which clients observe as
//! [`ServeError::Stopped`] — never as an ack.

use crate::metrics::ShardMetrics;
use crate::{Reply, ServeError, ServiceConfig};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use nvhalt::NvHalt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tm::Abort;
use txstructs::{HashMapTx, MapOp};

/// How often an idle worker re-checks the stop flag.
const POLL: Duration = Duration::from_millis(2);

/// One queued request: the ops to run atomically, where to send the
/// answer, and its timing envelope.
pub(crate) struct ShardRequest {
    pub ops: Vec<MapOp>,
    pub reply: mpsc::Sender<Reply>,
    pub deadline: Instant,
    pub enqueued: Instant,
}

/// A running shard.
pub(crate) struct Shard {
    pub tm: Arc<NvHalt>,
    pub map: HashMapTx,
    /// 2PC marker map: `txid -> 1` while a cross-shard transaction's
    /// commit on this shard awaits resolution (see `coord`).
    pub meta: HashMapTx,
    pub metrics: Arc<ShardMetrics>,
    pub queue: Sender<ShardRequest>,
    /// Kept so the channel stays connected (and `try_send` reports `Full`,
    /// not `Disconnected`) even if every worker has exited.
    #[allow(dead_code)]
    pub queue_rx: Receiver<ShardRequest>,
    pub stop: Arc<AtomicBool>,
    pub workers: Vec<JoinHandle<()>>,
}

struct WorkerCtx {
    tm: Arc<NvHalt>,
    map: HashMapTx,
    rx: Receiver<ShardRequest>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ShardMetrics>,
    tid: usize,
    batch_max: usize,
    max_retries: u32,
    backoff_base: Duration,
    backoff_max: Duration,
    attempt_fuel: usize,
}

impl Shard {
    /// Spawn the shard's workers over an existing TM + map (fresh or
    /// recovered).
    pub fn start(
        cfg: &ServiceConfig,
        index: usize,
        tm: Arc<NvHalt>,
        map: HashMapTx,
        meta: HashMapTx,
    ) -> Shard {
        let (queue, queue_rx) = channel::bounded::<ShardRequest>(cfg.queue_depth);
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ShardMetrics::new());
        let workers = (0..cfg.workers_per_shard)
            .map(|w| {
                let ctx = WorkerCtx {
                    tm: tm.clone(),
                    map,
                    rx: queue_rx.clone(),
                    stop: stop.clone(),
                    metrics: metrics.clone(),
                    tid: w,
                    batch_max: cfg.batch_max,
                    max_retries: cfg.max_retries,
                    backoff_base: cfg.backoff_base,
                    backoff_max: cfg.backoff_max,
                    attempt_fuel: cfg.attempt_fuel,
                };
                std::thread::Builder::new()
                    .name(format!("kvserve-s{index}-w{w}"))
                    .spawn(move || worker(ctx))
                    .expect("spawn shard worker")
            })
            .collect();
        Shard {
            tm,
            map,
            meta,
            metrics,
            queue,
            queue_rx,
            stop,
            workers,
        }
    }
}

fn worker(ctx: WorkerCtx) {
    // A simulated power failure unwinds `serve_loop` from wherever it was;
    // dropping the in-flight requests' reply senders surfaces `Stopped`.
    let _ = tm::crash::run_crashable(|| serve_loop(&ctx));
}

fn serve_loop(ctx: &WorkerCtx) {
    while !ctx.stop.load(Ordering::Acquire) {
        let first = match ctx.rx.recv_timeout(POLL) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        while batch.len() < ctx.batch_max {
            match ctx.rx.try_recv() {
                Ok(r) => batch.push(r),
                Err(_) => break,
            }
        }
        execute_batch(ctx, batch);
    }
}

/// Reply `Timeout` to expired requests, dropping them from the batch.
fn shed_expired(ctx: &WorkerCtx, batch: &mut Vec<ShardRequest>) {
    let now = Instant::now();
    let mut expired = 0u64;
    batch.retain(|r| {
        if r.deadline <= now {
            let _ = r.reply.send(Err(ServeError::Timeout));
            expired += 1;
            false
        } else {
            true
        }
    });
    if expired > 0 {
        ctx.metrics
            .counters
            .timeouts
            .fetch_add(expired, Ordering::Relaxed);
    }
}

fn execute_batch(ctx: &WorkerCtx, mut batch: Vec<ShardRequest>) {
    let mut retry = 0u32;
    loop {
        shed_expired(ctx, &mut batch);
        if batch.is_empty() {
            return;
        }
        let ops: Vec<MapOp> = batch.iter().flat_map(|r| r.ops.iter().copied()).collect();
        let fuel = ctx.attempt_fuel;
        let res = tm::txn(&*ctx.tm, ctx.tid, |tx| {
            if tx.attempt() >= fuel {
                // Attempt budget exhausted: hand progress control back to
                // the service layer (backoff + bounded retries).
                return Err(Abort::Cancel);
            }
            let mut out = Vec::with_capacity(ops.len());
            for &op in &ops {
                out.push(ctx.map.apply_in(tx, op)?);
            }
            Ok(out)
        });
        match res {
            Ok(vals) => {
                reply_batch(ctx, &batch, vals);
                return;
            }
            Err(tm::Cancelled) => {
                if retry >= ctx.max_retries {
                    ctx.metrics
                        .counters
                        .aborted
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    for r in &batch {
                        let _ = r.reply.send(Err(ServeError::Aborted));
                    }
                    return;
                }
                ctx.metrics.counters.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = ctx
                    .backoff_base
                    .saturating_mul(1u32 << retry.min(16))
                    .min(ctx.backoff_max);
                std::thread::sleep(backoff);
                retry += 1;
            }
        }
    }
}

fn reply_batch(ctx: &WorkerCtx, batch: &[ShardRequest], vals: Vec<Option<u64>>) {
    ctx.metrics.record_batch(batch.len());
    let c = &*ctx.metrics.counters;
    let now = Instant::now();
    let mut vi = vals.into_iter();
    for r in batch {
        for op in &r.ops {
            match op {
                MapOp::Get(_) => c.gets.fetch_add(1, Ordering::Relaxed),
                MapOp::Insert(..) => c.puts.fetch_add(1, Ordering::Relaxed),
                MapOp::Remove(_) => c.dels.fetch_add(1, Ordering::Relaxed),
            };
        }
        ctx.metrics.latency.record(now.duration_since(r.enqueued));
        let per_req: Vec<Option<u64>> = (&mut vi).take(r.ops.len()).collect();
        // The ack: once this send succeeds the write is durably committed.
        let _ = r.reply.send(Ok(per_req));
    }
}
