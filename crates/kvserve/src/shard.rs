//! One shard: an NV-HALT instance, its transactional hashmap, a bounded
//! request queue, and the worker threads that drain it.
//!
//! Workers coalesce queued requests into batches and run each batch as a
//! *single* durable transaction ([`HashMapTx::apply_in`] per op inside one
//! `tm::txn`), amortizing the commit-time flush/fence cost across the
//! batch. A batch whose transaction burns through its attempt fuel is
//! voluntarily cancelled; the worker then backs off exponentially and
//! retries the whole batch, shedding requests whose deadlines have passed.
//!
//! Crash simulation: a worker torn down mid-transaction by the pool's
//! [`CrashSignal`](tm::crash::CrashSignal) unwinds out of the serve loop;
//! the in-flight requests' completion handles drop, which delivers
//! [`ServeError::Stopped`] into their ring slots — never an ack.

use crate::metrics::ShardMetrics;
use crate::repl::{self, LogKind, ReplRuntime, ReplStep};
use crate::ring::RingCompletion;
use crate::{op_key, Router, ServeError, ServiceConfig};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use nvhalt::NvHalt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tm::{Abort, Addr};
use txstructs::{HashMapTx, MapOp};

/// How often an idle worker re-checks the stop flag.
pub(crate) const POLL: Duration = Duration::from_millis(2);

/// One queued request: the ops to run atomically, the ring slot that
/// receives the answer, its timing envelope, and the routing epoch the
/// submitter routed under (workers reject stale-epoch requests whose
/// keys no longer belong here — see [`ServeError::Rerouted`]).
pub(crate) struct ShardRequest {
    pub ops: Vec<MapOp>,
    pub reply: RingCompletion,
    pub deadline: Instant,
    pub enqueued: Instant,
    pub epoch: u64,
}

/// A running shard.
pub(crate) struct Shard {
    pub tm: Arc<NvHalt>,
    pub map: HashMapTx,
    /// 2PC marker map: `txid -> 1` while a cross-shard transaction's
    /// commit on this shard awaits resolution (see `coord`).
    pub meta: HashMapTx,
    pub metrics: Arc<ShardMetrics>,
    pub queue: Sender<ShardRequest>,
    /// Kept so the channel stays connected (and `try_send` reports `Full`,
    /// not `Disconnected`) even if every worker has exited.
    #[allow(dead_code)]
    pub queue_rx: Receiver<ShardRequest>,
    pub stop: Arc<AtomicBool>,
    pub workers: Vec<JoinHandle<()>>,
    /// This shard's op-log header block (always allocated; appends gate
    /// on the in-pool armed word — see `repl::append_armed_in`).
    pub repl_hdr: Addr,
    /// Extra live blocks future recoveries must keep reserved beyond the
    /// maps and log — e.g. a promoted follower's old header block.
    pub keep_blocks: Vec<(u64, usize)>,
}

struct WorkerCtx {
    tm: Arc<NvHalt>,
    map: HashMapTx,
    rx: Receiver<ShardRequest>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ShardMetrics>,
    tid: usize,
    batch_max: usize,
    max_retries: u32,
    backoff_base: Duration,
    backoff_max: Duration,
    attempt_fuel: usize,
    shard: usize,
    log_hdr: Addr,
    repl: Option<Arc<ReplRuntime>>,
    router: Arc<Router>,
}

impl Shard {
    /// Spawn the shard's workers over an existing TM + map (fresh or
    /// recovered).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        cfg: &ServiceConfig,
        index: usize,
        tm: Arc<NvHalt>,
        map: HashMapTx,
        meta: HashMapTx,
        repl_hdr: Addr,
        keep_blocks: Vec<(u64, usize)>,
        repl: Option<Arc<ReplRuntime>>,
        router: Arc<Router>,
    ) -> Shard {
        let (queue, queue_rx) = channel::bounded::<ShardRequest>(cfg.queue_depth);
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ShardMetrics::new());
        let workers = (0..cfg.workers_per_shard)
            .map(|w| {
                let ctx = WorkerCtx {
                    tm: tm.clone(),
                    map,
                    rx: queue_rx.clone(),
                    stop: stop.clone(),
                    metrics: metrics.clone(),
                    tid: w,
                    batch_max: cfg.batch_max,
                    max_retries: cfg.max_retries,
                    backoff_base: cfg.backoff_base,
                    backoff_max: cfg.backoff_max,
                    attempt_fuel: cfg.attempt_fuel,
                    shard: index,
                    log_hdr: repl_hdr,
                    repl: repl.clone(),
                    router: router.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("kvserve-s{index}-w{w}"))
                    .spawn(move || worker(ctx))
                    .expect("spawn shard worker")
            })
            .collect();
        Shard {
            tm,
            map,
            meta,
            metrics,
            queue,
            queue_rx,
            stop,
            workers,
            repl_hdr,
            keep_blocks,
        }
    }
}

fn worker(ctx: WorkerCtx) {
    // A simulated power failure unwinds `serve_loop` from wherever it was;
    // dropping the in-flight requests' completion handles surfaces `Stopped`.
    let _ = tm::crash::run_crashable(|| serve_loop(&ctx));
}

fn serve_loop(ctx: &WorkerCtx) {
    while !ctx.stop.load(Ordering::Acquire) {
        let first = match ctx.rx.recv_timeout(POLL) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        while batch.len() < ctx.batch_max {
            match ctx.rx.try_recv() {
                Ok(r) => batch.push(r),
                Err(_) => break,
            }
        }
        execute_batch(ctx, batch);
    }
}

/// Reply `Timeout` to expired requests, dropping them from the batch.
fn shed_expired(ctx: &WorkerCtx, batch: &mut Vec<ShardRequest>) {
    let now = Instant::now();
    let mut expired = 0u64;
    batch.retain(|r| {
        if r.deadline <= now {
            r.reply.send(Err(ServeError::Timeout));
            expired += 1;
            false
        } else {
            true
        }
    });
    if expired > 0 {
        ctx.metrics
            .counters
            .timeouts
            .fetch_add(expired, Ordering::Relaxed);
    }
}

/// Reply `Rerouted` to requests routed under a stale table whose keys no
/// longer all live on this shard, dropping them from the batch. Requests
/// stamped with the current epoch always pass (the flip joins workers
/// before installing a new table, so a live worker's shard is never
/// wrong about current-epoch keys); stale-epoch requests pass only if
/// every key still routes here.
fn shed_rerouted(ctx: &WorkerCtx, batch: &mut Vec<ShardRequest>) {
    let table = ctx.router.table();
    let epoch = table.epoch();
    let mut rerouted = 0u64;
    batch.retain(|r| {
        if r.epoch == epoch || r.ops.iter().all(|&op| table.route(op_key(op)) == ctx.shard) {
            true
        } else {
            r.reply.send(Err(ServeError::Rerouted));
            rerouted += 1;
            false
        }
    });
    if rerouted > 0 {
        ctx.metrics
            .counters
            .rerouted
            .fetch_add(rerouted, Ordering::Relaxed);
    }
}

fn execute_batch(ctx: &WorkerCtx, mut batch: Vec<ShardRequest>) {
    let mut retry = 0u32;
    loop {
        shed_expired(ctx, &mut batch);
        shed_rerouted(ctx, &mut batch);
        if batch.is_empty() {
            return;
        }
        let ops: Vec<MapOp> = batch.iter().flat_map(|r| r.ops.iter().copied()).collect();
        // Mutations reach the shard op log inside the same transaction as
        // the batch — when the log is armed (replication, or a migration
        // in flight) — so the log entry and the data it describes commit
        // or roll back atomically. Read-only batches skip the log (and
        // the follower ack) entirely.
        let muts = repl::mutations(&ops);
        if !muts.is_empty() {
            if let Some(rt) = ctx.repl.as_deref() {
                repl::crash_check(rt, ReplStep::BeforeAppend);
            }
        }
        let fuel = ctx.attempt_fuel;
        let res = tm::txn(&*ctx.tm, ctx.tid, |tx| {
            if tx.attempt() >= fuel {
                // Attempt budget exhausted: hand progress control back to
                // the service layer (backoff + bounded retries).
                return Err(Abort::Cancel);
            }
            let mut out = Vec::with_capacity(ops.len());
            for &op in &ops {
                out.push(ctx.map.apply_in(tx, op)?);
            }
            let lsn = if muts.is_empty() {
                0
            } else {
                repl::append_armed_in(tx, ctx.log_hdr, LogKind::Batch, 0, &muts)?
            };
            Ok((out, lsn))
        });
        match res {
            Ok((vals, lsn)) => {
                // `lsn > 0` with no runtime is a migration-armed log:
                // the appended entry feeds the catch-up replay, but
                // there is no follower to wait on.
                if lsn > 0 && ctx.repl.is_some() && !await_replication(ctx, &batch, lsn) {
                    return;
                }
                reply_batch(ctx, &batch, vals);
                return;
            }
            Err(tm::Cancelled) => {
                if retry >= ctx.max_retries {
                    ctx.metrics
                        .counters
                        .aborted
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    for r in &batch {
                        r.reply.send(Err(ServeError::Aborted));
                    }
                    return;
                }
                ctx.metrics.counters.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = ctx
                    .backoff_base
                    .saturating_mul(1u32 << retry.min(16))
                    .min(ctx.backoff_max);
                std::thread::sleep(backoff);
                retry += 1;
            }
        }
    }
}

/// Semi-synchronous ack gate: publish the freshly appended LSN to the
/// shipper, then block until the follower's receive log durably covers
/// it — only then may the batch be acked, which is what lets an acked
/// write survive losing *either* pool. Returns `false` if the wait
/// failed (follower down or deadline passed); the batch is then answered
/// `Timeout` — it committed locally, but a committed-yet-unacked request
/// is legal under the ack contract.
fn await_replication(ctx: &WorkerCtx, batch: &[ShardRequest], lsn: u64) -> bool {
    let rt = ctx.repl.as_deref().expect("log append implies replication");
    let state = &rt.states[ctx.shard];
    state.appended.fetch_max(lsn, Ordering::AcqRel);
    state.signal_work();
    repl::crash_check(rt, ReplStep::AfterAppend);
    if let Some(p) = ctx.tm.pmem().pool().psan() {
        // The batch and its log entry must be fully fenced before the
        // follower can be told about them.
        p.durability_point(ctx.tid, "kvserve::repl::log_append");
    }
    let deadline = batch
        .iter()
        .map(|r| r.deadline)
        .max()
        .expect("non-empty batch");
    if state.wait_received(lsn, deadline) {
        return true;
    }
    ctx.metrics
        .counters
        .timeouts
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    for r in batch {
        r.reply.send(Err(ServeError::Timeout));
    }
    false
}

fn reply_batch(ctx: &WorkerCtx, batch: &[ShardRequest], vals: Vec<Option<u64>>) {
    ctx.metrics.record_batch(batch.len());
    let c = &*ctx.metrics.counters;
    let now = Instant::now();
    let mut vi = vals.into_iter();
    for r in batch {
        for op in &r.ops {
            match op {
                MapOp::Get(_) => c.gets.fetch_add(1, Ordering::Relaxed),
                MapOp::Insert(..) => c.puts.fetch_add(1, Ordering::Relaxed),
                MapOp::Remove(_) => c.dels.fetch_add(1, Ordering::Relaxed),
            };
        }
        ctx.metrics.latency.record(now.duration_since(r.enqueued));
        let per_req: Vec<Option<u64>> = (&mut vi).take(r.ops.len()).collect();
        // The ack: once this fires the write is durably committed.
        r.reply.send(Ok(per_req));
    }
}
