//! `kvserve::net` — a length-prefixed binary wire protocol in front of
//! the completion ring, over `std::net` TCP on loopback.
//!
//! The network layer is deliberately thin: a connection is a framed
//! byte stream of request/response pairs, and everything between the
//! socket and durability is the existing ring machinery. The server
//! gives every accepted connection its own [`Ring`] slab over the
//! shared [`Router`], so N connections multiplex onto the per-shard
//! lanes exactly like N in-process submitters would — same routing,
//! same deadlines, same 2PC split, same crash verdicts.
//!
//! **Backpressure is visible on the wire, never absorbed in buffers.**
//! A connection has a hard in-flight cap (at most its ring's slot
//! count); a request arriving over the cap, or bouncing off
//! [`ServeError::RingFull`] / [`ServeError::Overloaded`], is answered
//! with an explicit `Busy` response carrying a retry hint. The server
//! never queues request bytes it has not got a slot for, so a slow
//! shard surfaces to the client as `Busy` frames instead of unbounded
//! server-side memory growth — the network layer can therefore never
//! block the ring, only the other way around.
//!
//! **The ack contract.** A response frame with status `Ok` is the
//! durability ack: the batch committed and its effects survive any
//! later crash. Every error status is a *definite* no-op verdict
//! (`Timeout`, `Aborted`, `Stopped`, `Rerouted`, `Busy`: nothing
//! executed, resubmitting is sound — these are the ring's own verdict
//! semantics forwarded to the wire). A connection that dies without a
//! response for an in-flight request yields **no verdict**: the batch
//! either committed in its entirety or not at all (the service's
//! torn-batch guarantee), but which one must be learned by reading.
//! `tests/kvserve_net.rs` drives a crash sweep through every
//! [`NetStep`] to hold the layer to exactly this contract.
//!
//! **Determinism.** Like the 2PC/replication/migration layers, the
//! server carries crash hooks: [`NetServer::set_net_crash_hook`]
//! installs a predicate over [`NetStep`], and the step where it first
//! answers `true` tears the whole network layer down abruptly
//! (sockets shut, no further bytes) — `MidWrite` additionally flushes
//! a *partial* response frame first, so clients must treat a truncated
//! tail frame as no-ack. The same hook points double as client-kill
//! points for the disconnect sweep.

use crate::metrics::{NetMetrics, NetSnapshot, RingMetrics};
use crate::{MapOp, Reply, Ring, Router, ServeError, Service, Ticket};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire protocol version, checked on every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Frame header length: `len: u32 | version: u8 | kind: u8 | flags: u16`,
/// all little-endian; `len` counts the body only.
pub const HEADER_LEN: usize = 8;

/// Hard cap on a frame body. A header announcing more is a protocol
/// error, rejected before any allocation — a hostile length prefix
/// cannot balloon server memory.
pub const MAX_BODY: u32 = 1 << 20;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;

const STATUS_OK: u8 = 0;
const STATUS_TIMEOUT: u8 = 1;
const STATUS_ABORTED: u8 = 2;
const STATUS_STOPPED: u8 = 3;
const STATUS_REROUTED: u8 = 4;
const STATUS_BUSY: u8 = 5;
const STATUS_CROSS_SHARD: u8 = 6;

const TAG_GET: u8 = 0;
const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;

/// Bytes per encoded op: tag + key + value.
const OP_LEN: usize = 1 + 8 + 8;

/// How a byte sequence failed to be a frame. Every malformed input —
/// truncation, hostile lengths, unknown versions/kinds/tags, trailing
/// garbage — decodes to one of these; the codec never panics and never
/// yields a partial batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The stream ended cleanly on a frame boundary.
    Closed,
    /// The input ended inside a frame (header or body).
    Truncated,
    /// The header announced a body over [`MAX_BODY`].
    Oversized(u32),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Reserved flag bits were set.
    BadFlags(u16),
    /// Unknown op tag in a request body.
    BadTag(u8),
    /// Unknown status byte in a response body.
    BadStatus(u8),
    /// The body length disagrees with its announced op/value counts.
    SizeMismatch,
    /// The underlying socket failed mid-frame.
    Io(io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed on a frame boundary"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::Oversized(n) => write!(f, "frame body {n} exceeds cap {MAX_BODY}"),
            FrameError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadFlags(b) => write!(f, "reserved flag bits set: {b:#06x}"),
            FrameError::BadTag(t) => write!(f, "unknown op tag {t}"),
            FrameError::BadStatus(s) => write!(f, "unknown response status {s}"),
            FrameError::SizeMismatch => write!(f, "body length disagrees with its counts"),
            FrameError::Io(k) => write!(f, "socket error: {k:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded request frame: one atomic batch plus its correlation id
/// and deadline (`0` micros = the server's default).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RequestFrame {
    /// Client-chosen id echoed on the matching response.
    pub corr: u64,
    /// Request deadline in microseconds; `0` asks for the default.
    pub deadline_micros: u64,
    /// The batch, executed as one durable transaction.
    pub ops: Vec<MapOp>,
}

/// A decoded response frame: the correlation id plus the service-level
/// verdict ([`Reply`]); `Busy` arrives as `Err(Overloaded)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub corr: u64,
    /// The verdict. `Ok` is the durability ack; every `Err` is a
    /// definite nothing-executed verdict.
    pub reply: Reply,
}

/// Any decoded frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frame {
    /// A client's request.
    Request(RequestFrame),
    /// A server's response.
    Response(ResponseFrame),
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("caller checked length"))
}

fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("caller checked length"))
}

fn finish_frame(buf: &mut [u8], start: usize) {
    let body = (buf.len() - start - HEADER_LEN) as u32;
    buf[start..start + 4].copy_from_slice(&body.to_le_bytes());
}

fn push_header(buf: &mut Vec<u8>, kind: u8) -> usize {
    let start = buf.len();
    put_u32(buf, 0); // patched by finish_frame
    buf.push(PROTOCOL_VERSION);
    buf.push(kind);
    buf.extend_from_slice(&0u16.to_le_bytes());
    start
}

/// Append one encoded request frame to `buf`.
pub fn encode_request(buf: &mut Vec<u8>, corr: u64, deadline_micros: u64, ops: &[MapOp]) {
    let start = push_header(buf, KIND_REQUEST);
    put_u64(buf, corr);
    put_u64(buf, deadline_micros);
    put_u32(buf, ops.len() as u32);
    for &op in ops {
        let (tag, key, val) = match op {
            MapOp::Get(k) => (TAG_GET, k, 0),
            MapOp::Insert(k, v) => (TAG_INSERT, k, v),
            MapOp::Remove(k) => (TAG_REMOVE, k, 0),
        };
        buf.push(tag);
        put_u64(buf, key);
        put_u64(buf, val);
    }
    finish_frame(buf, start);
}

/// Append one encoded response frame to `buf`.
pub fn encode_response(buf: &mut Vec<u8>, corr: u64, reply: &Reply) {
    let start = push_header(buf, KIND_RESPONSE);
    put_u64(buf, corr);
    match reply {
        Ok(vals) => {
            buf.push(STATUS_OK);
            put_u32(buf, vals.len() as u32);
            for v in vals {
                match v {
                    Some(x) => {
                        buf.push(1);
                        put_u64(buf, *x);
                    }
                    None => {
                        buf.push(0);
                        put_u64(buf, 0);
                    }
                }
            }
        }
        Err(ServeError::Timeout) => buf.push(STATUS_TIMEOUT),
        Err(ServeError::Aborted) => buf.push(STATUS_ABORTED),
        Err(ServeError::Stopped) => buf.push(STATUS_STOPPED),
        Err(ServeError::Rerouted) => buf.push(STATUS_REROUTED),
        Err(ServeError::CrossShard) => buf.push(STATUS_CROSS_SHARD),
        // Both structural-backpressure rejections cross the wire as
        // Busy; RingFull's hint is "reap then resubmit", rendered as a
        // zero retry delay.
        Err(ServeError::Overloaded { retry_after }) => {
            buf.push(STATUS_BUSY);
            put_u64(buf, retry_after.as_micros() as u64);
        }
        Err(ServeError::RingFull) => {
            buf.push(STATUS_BUSY);
            put_u64(buf, 0);
        }
    }
    finish_frame(buf, start);
}

/// Validate a header and return `(kind, body_len)`.
fn decode_header(h: &[u8]) -> Result<(u8, usize), FrameError> {
    debug_assert!(h.len() >= HEADER_LEN);
    let len = get_u32(h);
    if len > MAX_BODY {
        return Err(FrameError::Oversized(len));
    }
    if h[4] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(h[4]));
    }
    let kind = h[5];
    if kind != KIND_REQUEST && kind != KIND_RESPONSE {
        return Err(FrameError::BadKind(kind));
    }
    let flags = u16::from_le_bytes([h[6], h[7]]);
    if flags != 0 {
        return Err(FrameError::BadFlags(flags));
    }
    Ok((kind, len as usize))
}

fn decode_request_body(body: &[u8]) -> Result<RequestFrame, FrameError> {
    if body.len() < 20 {
        return Err(FrameError::Truncated);
    }
    let corr = get_u64(body);
    let deadline_micros = get_u64(&body[8..]);
    let count = get_u32(&body[16..]) as usize;
    let rest = &body[20..];
    if rest.len() != count.saturating_mul(OP_LEN) {
        return Err(FrameError::SizeMismatch);
    }
    let mut ops = Vec::with_capacity(count);
    for chunk in rest.chunks_exact(OP_LEN) {
        let key = get_u64(&chunk[1..]);
        let val = get_u64(&chunk[9..]);
        ops.push(match chunk[0] {
            TAG_GET => MapOp::Get(key),
            TAG_INSERT => MapOp::Insert(key, val),
            TAG_REMOVE => MapOp::Remove(key),
            t => return Err(FrameError::BadTag(t)),
        });
    }
    Ok(RequestFrame {
        corr,
        deadline_micros,
        ops,
    })
}

fn decode_response_body(body: &[u8]) -> Result<ResponseFrame, FrameError> {
    if body.len() < 9 {
        return Err(FrameError::Truncated);
    }
    let corr = get_u64(body);
    let status = body[8];
    let rest = &body[9..];
    let reply = match status {
        STATUS_OK => {
            if rest.len() < 4 {
                return Err(FrameError::Truncated);
            }
            let count = get_u32(rest) as usize;
            let vals = &rest[4..];
            if vals.len() != count.saturating_mul(9) {
                return Err(FrameError::SizeMismatch);
            }
            let mut out = Vec::with_capacity(count);
            for chunk in vals.chunks_exact(9) {
                out.push(match chunk[0] {
                    0 => None,
                    1 => Some(get_u64(&chunk[1..])),
                    _ => return Err(FrameError::SizeMismatch),
                });
            }
            Ok(out)
        }
        STATUS_TIMEOUT => Err(ServeError::Timeout),
        STATUS_ABORTED => Err(ServeError::Aborted),
        STATUS_STOPPED => Err(ServeError::Stopped),
        STATUS_REROUTED => Err(ServeError::Rerouted),
        STATUS_CROSS_SHARD => Err(ServeError::CrossShard),
        STATUS_BUSY => {
            if rest.len() != 8 {
                return Err(FrameError::SizeMismatch);
            }
            Err(ServeError::Overloaded {
                retry_after: Duration::from_micros(get_u64(rest)),
            })
        }
        s => return Err(FrameError::BadStatus(s)),
    };
    if matches!(
        status,
        STATUS_TIMEOUT | STATUS_ABORTED | STATUS_STOPPED | STATUS_REROUTED | STATUS_CROSS_SHARD
    ) && !rest.is_empty()
    {
        return Err(FrameError::SizeMismatch);
    }
    Ok(ResponseFrame { corr, reply })
}

/// Decode the first frame in `bytes`, returning it plus the number of
/// bytes consumed. A slice that ends mid-frame is [`FrameError::Truncated`]
/// (an empty slice is [`FrameError::Closed`]); nothing is ever consumed
/// from a malformed prefix.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    if bytes.is_empty() {
        return Err(FrameError::Closed);
    }
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let (kind, len) = decode_header(bytes)?;
    if bytes.len() < HEADER_LEN + len {
        return Err(FrameError::Truncated);
    }
    let body = &bytes[HEADER_LEN..HEADER_LEN + len];
    let frame = match kind {
        KIND_REQUEST => Frame::Request(decode_request_body(body)?),
        _ => Frame::Response(decode_response_body(body)?),
    };
    Ok((frame, HEADER_LEN + len))
}

/// Blocking read of exactly one frame from `r`. Distinguishes a clean
/// close on a frame boundary ([`FrameError::Closed`]) from a stream
/// that dies mid-frame ([`FrameError::Truncated`]) — the latter is how
/// a client sees a `MidWrite` crash: a partial response is *not* an ack.
pub fn read_frame(r: &mut impl Read, scratch: &mut Vec<u8>) -> Result<Frame, FrameError> {
    let mut hdr = [0u8; HEADER_LEN];
    let mut at = 0;
    while at < HEADER_LEN {
        match r.read(&mut hdr[at..]) {
            Ok(0) => {
                return Err(if at == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    let (kind, len) = decode_header(&hdr)?;
    scratch.clear();
    scratch.resize(len, 0);
    let mut at = 0;
    while at < len {
        match r.read(&mut scratch[at..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    match kind {
        KIND_REQUEST => Ok(Frame::Request(decode_request_body(scratch)?)),
        _ => Ok(Frame::Response(decode_response_body(scratch)?)),
    }
}

/// The single funnel for socket writes. Every byte the layer puts on a
/// wire goes through [`FramedWriter::write_frame`] (whole frames) or
/// [`FramedWriter::write_partial`] (the `MidWrite` crash injection) —
/// xtask lint rule `raw-tcp-write` holds the rest of the crate to that.
struct FramedWriter {
    stream: TcpStream,
}

impl FramedWriter {
    fn new(stream: TcpStream) -> FramedWriter {
        FramedWriter { stream }
    }

    /// Write one whole encoded frame.
    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    /// Crash injection only: flush a strict prefix of a frame and stop.
    /// The peer must treat the truncated tail as no-ack.
    fn write_partial(&mut self, frame: &[u8], upto: usize) -> io::Result<()> {
        use std::io::Write;
        let upto = upto.min(frame.len().saturating_sub(1));
        self.stream.write_all(&frame[..upto])?;
        self.stream.flush()
    }
}

/// The network layer's deterministic crash points, in wire order. The
/// sweep in `tests/kvserve_net.rs` fires each one and proves the ack
/// contract holds at every point: steps before `AfterComplete` leave
/// the request unacked and unexecuted-or-torn-checked; the three steps
/// after completion leave it *executed but unacked* — durable without
/// an ack, never the reverse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetStep {
    /// A request frame was read off the socket, before decode/submit.
    AfterReadFrame,
    /// The request decoded and passed the in-flight cap, about to enter
    /// the ring.
    BeforeSubmit,
    /// The ring delivered the request's completion (the transaction is
    /// durable if it was `Ok`), before any response work.
    AfterComplete,
    /// The response frame is encoded and about to be written.
    BeforeWriteResponse,
    /// A strict prefix of the response frame was flushed to the wire.
    MidWrite,
}

impl NetStep {
    /// Every step, in wire order, for sweep rotations.
    pub const ALL: [NetStep; 5] = [
        NetStep::AfterReadFrame,
        NetStep::BeforeSubmit,
        NetStep::AfterComplete,
        NetStep::BeforeWriteResponse,
        NetStep::MidWrite,
    ];
}

/// Crash-hook shape shared with the other injected layers: return
/// `true` at a step to tear the network layer down right there.
pub type NetHook = Arc<dyn Fn(NetStep) -> bool + Send + Sync>;

/// Tuning for a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Slot count of each connection's ring (`0` = the service's
    /// `ring_slots`).
    pub ring_slots: usize,
    /// Per-connection in-flight cap; requests over it answer `Busy`.
    /// Clamped to the connection's ring slots (`0` = no extra cap, i.e.
    /// exactly the ring slots).
    pub max_in_flight: usize,
    /// Retry hint carried on cap-rejection `Busy` frames.
    pub retry_hint: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            ring_slots: 0,
            max_in_flight: 0,
            retry_hint: Duration::from_micros(200),
        }
    }
}

/// Everything a connection needs to mint its ring without holding the
/// (crash-consumable) [`Service`].
struct RingSource {
    router: Arc<Router>,
    metrics: Arc<RingMetrics>,
    slots: usize,
    default_deadline: Duration,
    retry_hint: Duration,
}

impl RingSource {
    fn mint(&self) -> Ring {
        Ring::attach(
            self.slots,
            self.router.clone(),
            self.metrics.clone(),
            self.default_deadline,
            self.retry_hint,
        )
    }
}

/// One accepted connection's shared handle, kept by the server so a
/// crash (or stop) can shut every socket abruptly.
struct ConnShared {
    stream: TcpStream,
    /// Once set, no thread writes another byte to this socket.
    dead: AtomicBool,
}

impl ConnShared {
    fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

struct NetShared {
    stop: AtomicBool,
    crashed: AtomicBool,
    hook: parking_lot::Mutex<Option<NetHook>>,
    conns: parking_lot::Mutex<Vec<Arc<ConnShared>>>,
    live: AtomicUsize,
    metrics: Arc<NetMetrics>,
    cfg: NetConfig,
    rings: RingSource,
}

impl NetShared {
    /// Evaluate the crash hook at `step` (outside the hook lock — a
    /// hook may shut sockets down, which must not nest under it).
    fn fire(&self, step: NetStep) -> bool {
        let hook = self.hook.lock().clone();
        match hook {
            Some(h) if h(step) => {
                self.crash();
                true
            }
            _ => false,
        }
    }

    /// The network layer's power-failure instant: every socket is shut
    /// both ways, nothing further is read or written. Ring slots the
    /// connections still hold resolve through the ring's own crash
    /// semantics when the service is crashed.
    fn crash(&self) {
        self.crashed.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        for c in self.conns.lock().iter() {
            c.kill();
        }
    }
}

/// The TCP front end: an accept loop plus two threads per connection
/// (a reader that decodes and submits, a writer that reaps and
/// responds). Start with [`Service::serve_net`] or [`NetServer::start`].
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind a loopback listener and start serving `svc`'s rings.
    pub fn start(svc: &Service, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let slots = if cfg.ring_slots == 0 {
            svc.engine.cfg.ring_slots
        } else {
            cfg.ring_slots
        };
        let shared = Arc::new(NetShared {
            stop: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            hook: parking_lot::Mutex::new(None),
            conns: parking_lot::Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            metrics: Arc::new(NetMetrics::new()),
            cfg,
            rings: RingSource {
                router: svc.engine.router.clone(),
                metrics: svc.ring_metrics.clone(),
                slots,
                default_deadline: svc.engine.cfg.default_deadline,
                retry_hint: svc.engine.cfg.backoff_base,
            },
        });
        shared.hook.locksan_label("net::hook", false);
        shared.conns.locksan_label("net::conns", false);
        let workers = Arc::new(parking_lot::Mutex::new(Vec::new()));
        workers.locksan_label("net::workers", false);
        let accept = {
            let shared = shared.clone();
            let workers = workers.clone();
            std::thread::Builder::new()
                .name("kvserve-net-accept".into())
                .spawn(move || accept_loop(listener, shared, workers))
                .expect("spawn accept loop")
        };
        Ok(NetServer {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Install (or clear) the crash hook driving the [`NetStep`] sweeps.
    pub fn set_net_crash_hook(&self, hook: Option<NetHook>) {
        *self.shared.hook.lock() = hook;
    }

    /// Whether an injected crash has torn the layer down.
    pub fn crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::Acquire)
    }

    /// Connections currently being served.
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }

    /// Counters for the wire layer (frames, bytes, busy rejections,
    /// protocol errors, reaped disconnects).
    pub fn metrics(&self) -> NetSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Tear the layer down as a crash would (abrupt socket shutdown, no
    /// further bytes), without needing the hook to fire. The service
    /// underneath is untouched.
    pub fn crash_net(&self) {
        self.shared.crash();
    }

    /// Stop accepting, shut every connection, join all threads.
    pub fn stop(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for c in self.shared.conns.lock().iter() {
            c.kill();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Start a [`NetServer`] over this service with the given tuning.
impl Service {
    /// Serve this service's rings over loopback TCP. The server holds
    /// no reference to the service itself (only `Arc`s to its router
    /// and metrics), so [`Service::crash`] composes with a live server:
    /// in-flight wire requests resolve through the ring's `Stopped`
    /// verdicts.
    pub fn serve_net(&self, cfg: NetConfig) -> io::Result<NetServer> {
        NetServer::start(self, cfg)
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<NetShared>,
    workers: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                shared.metrics.accepted();
                spawn_conn(stream, &shared, &workers);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_micros(500)),
        }
    }
}

/// Per-connection state shared by its reader and writer threads.
struct Conn {
    net: Arc<NetShared>,
    cs: Arc<ConnShared>,
    ring: Ring,
    /// Ticket → correlation id for in-flight requests. Submission
    /// inserts under this lock *around* the ring submit, so the writer
    /// can never reap a ticket it cannot correlate.
    pending: parking_lot::Mutex<HashMap<Ticket, u64>>,
    outstanding: AtomicUsize,
    reader_done: AtomicBool,
    writer: parking_lot::Mutex<FramedWriter>,
}

impl Conn {
    /// Write one whole response frame unless the socket is dead; a
    /// failed write marks it dead so nothing is ever written after.
    fn respond(&self, frame: &[u8]) {
        if self.cs.dead.load(Ordering::Acquire) {
            self.net.metrics.suppressed_dead_write();
            return;
        }
        let mut w = self.writer.lock();
        // Re-check under the writer lock: a kill between the check and
        // the lock must still suppress the write.
        if self.cs.dead.load(Ordering::Acquire) {
            self.net.metrics.suppressed_dead_write();
            return;
        }
        match w.write_frame(frame) {
            Ok(()) => self.net.metrics.frame_out(frame.len() as u64),
            Err(_) => self.cs.dead.store(true, Ordering::Release),
        }
    }
}

fn spawn_conn(
    stream: TcpStream,
    shared: &Arc<NetShared>,
    workers: &Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let cs = Arc::new(ConnShared {
        stream: match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
        dead: AtomicBool::new(false),
    });
    shared.conns.lock().push(cs.clone());
    shared.live.fetch_add(1, Ordering::AcqRel);
    let conn = Arc::new(Conn {
        net: shared.clone(),
        cs,
        ring: shared.rings.mint(),
        pending: parking_lot::Mutex::new(HashMap::new()),
        outstanding: AtomicUsize::new(0),
        reader_done: AtomicBool::new(false),
        writer: parking_lot::Mutex::new(FramedWriter::new(write_half)),
    });
    conn.pending.locksan_label("net::pending", false);
    conn.writer.locksan_label("net::writer", false);
    let mut guard = workers.lock();
    {
        let conn = conn.clone();
        guard.push(
            std::thread::Builder::new()
                .name("kvserve-net-read".into())
                .spawn(move || reader_loop(stream, conn))
                .expect("spawn conn reader"),
        );
    }
    guard.push(
        std::thread::Builder::new()
            .name("kvserve-net-write".into())
            .spawn(move || writer_loop(conn))
            .expect("spawn conn writer"),
    );
}

fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>) {
    let net = conn.net.clone();
    let mut scratch = Vec::new();
    let cap = {
        let slots = conn.ring.capacity();
        if net.cfg.max_in_flight == 0 {
            slots
        } else {
            net.cfg.max_in_flight.min(slots)
        }
    };
    while !net.stop.load(Ordering::Acquire) {
        let frame = match read_frame(&mut stream, &mut scratch) {
            Ok(f) => f,
            Err(FrameError::Closed) => break,
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
            Err(_) => {
                // Malformed bytes: frame sync is unrecoverable, drop
                // the connection (the codec consumed nothing partial).
                net.metrics.protocol_error();
                break;
            }
        };
        net.metrics.frame_in((HEADER_LEN + scratch.len()) as u64);
        if net.fire(NetStep::AfterReadFrame) {
            break;
        }
        let req = match frame {
            Frame::Request(r) => r,
            Frame::Response(_) => {
                // Clients must not send responses.
                net.metrics.protocol_error();
                break;
            }
        };
        if conn.outstanding.load(Ordering::Acquire) >= cap {
            let mut busy = Vec::new();
            encode_response(
                &mut busy,
                req.corr,
                &Err(ServeError::Overloaded {
                    retry_after: net.cfg.retry_hint,
                }),
            );
            net.metrics.busy();
            conn.respond(&busy);
            continue;
        }
        if net.fire(NetStep::BeforeSubmit) {
            break;
        }
        let deadline = if req.deadline_micros == 0 {
            net.rings.default_deadline
        } else {
            Duration::from_micros(req.deadline_micros)
        };
        // Insert-under-lock around the submit: a completion cannot be
        // reaped before its correlation id is recorded.
        let verdict = {
            let mut pending = conn.pending.lock();
            match conn.ring.submit_batch_deadline(req.ops, deadline) {
                Ok(ticket) => {
                    pending.insert(ticket, req.corr);
                    conn.outstanding.fetch_add(1, Ordering::AcqRel);
                    None
                }
                Err(e) => Some(e),
            }
        };
        if let Some(e) = verdict {
            match e {
                // Structural backpressure surfaces as Busy frames.
                ServeError::RingFull | ServeError::Overloaded { .. } => {
                    let mut busy = Vec::new();
                    encode_response(&mut busy, req.corr, &Err(e));
                    net.metrics.busy();
                    conn.respond(&busy);
                }
                // The service is torn down: a definite no-op verdict,
                // then the connection closes.
                other => {
                    let mut f = Vec::new();
                    encode_response(&mut f, req.corr, &Err(other));
                    conn.respond(&f);
                    break;
                }
            }
        }
    }
    conn.reader_done.store(true, Ordering::Release);
}

fn writer_loop(conn: Arc<Conn>) {
    let net = conn.net.clone();
    let mut frame = Vec::new();
    loop {
        if net.crashed.load(Ordering::Acquire) {
            break;
        }
        let Some(completion) = conn.ring.complete() else {
            let reader_done = conn.reader_done.load(Ordering::Acquire);
            if reader_done && conn.outstanding.load(Ordering::Acquire) == 0 {
                break;
            }
            if net.stop.load(Ordering::Acquire) && conn.ring.in_flight() == 0 {
                // Stopping and nothing left to resolve for anyone.
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
            continue;
        };
        let corr = conn.pending.lock().remove(&completion.ticket);
        conn.outstanding.fetch_sub(1, Ordering::AcqRel);
        let Some(corr) = corr else {
            // Cannot happen (insertion is under the pending lock around
            // the submit), but never write an uncorrelatable response.
            continue;
        };
        if net.fire(NetStep::AfterComplete) {
            break;
        }
        if net.fire(NetStep::BeforeWriteResponse) {
            break;
        }
        frame.clear();
        encode_response(&mut frame, corr, &completion.result);
        if net.fire(NetStep::MidWrite) {
            // The injected torn write: flush a strict prefix of the
            // response, then die. The client must read this as no-ack.
            let upto = HEADER_LEN + (frame.len() - HEADER_LEN) / 2;
            let _ = conn.writer.lock().write_partial(&frame, upto);
            break;
        }
        conn.respond(&frame);
    }
    // Reap-or-die: past this point the connection is closing. If the
    // layer is still alive (client disconnect, graceful stop), drain
    // the connection's remaining completions so every ring slot is
    // freed — without ever writing to the (possibly dead) socket.
    if !net.crashed.load(Ordering::Acquire) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while conn.outstanding.load(Ordering::Acquire) > 0 {
            if net.crashed.load(Ordering::Acquire) || std::time::Instant::now() >= deadline {
                break;
            }
            match conn.ring.complete() {
                Some(c) => {
                    if conn.pending.lock().remove(&c.ticket).is_some() {
                        conn.outstanding.fetch_sub(1, Ordering::AcqRel);
                        net.metrics.reaped_after_disconnect();
                    }
                }
                None => std::thread::sleep(Duration::from_micros(100)),
            }
        }
    }
    conn.cs.kill();
    net.live.fetch_sub(1, Ordering::AcqRel);
    net.metrics.closed();
}

/// Errors a [`NetClient`] can surface. `Serve` wraps the server's
/// definite verdicts; `Disconnected` is the one *indefinite* outcome —
/// the connection died without a response, so in-flight batches may or
/// may not have committed (whole, never torn).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::ErrorKind),
    /// The peer sent bytes that do not decode as a frame.
    Frame(FrameError),
    /// A definite server-side verdict (nothing executed).
    Serve(ServeError),
    /// The connection closed with no verdict for in-flight requests.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(k) => write!(f, "socket error: {k:?}"),
            NetError::Frame(e) => write!(f, "protocol error: {e}"),
            NetError::Serve(e) => write!(f, "server verdict: {e}"),
            NetError::Disconnected => write!(f, "connection closed with requests in flight"),
        }
    }
}

impl std::error::Error for NetError {}

/// A handle that can abruptly kill a client connection from another
/// thread (the disconnect sweep's client-side "power cut").
pub struct NetKill(TcpStream);

impl NetKill {
    /// Shut the connection both ways, now.
    pub fn kill(&self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

/// A pipelined wire client: send any number of request frames, then
/// reap responses in arrival order. One instance is single-threaded by
/// design (clone the connection for concurrent clients); the open-loop
/// bench drives one of these exactly like it drives a [`Ring`].
pub struct NetClient {
    stream: TcpStream,
    writer: FramedWriter,
    scratch: Vec<u8>,
    /// Accumulator for nonblocking reads (partial frames span calls).
    acc: Vec<u8>,
    next_corr: u64,
    in_flight: usize,
}

impl NetClient {
    /// Connect to a [`NetServer`].
    pub fn connect(addr: SocketAddr) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = FramedWriter::new(stream.try_clone()?);
        Ok(NetClient {
            stream,
            writer,
            scratch: Vec::new(),
            acc: Vec::new(),
            next_corr: 1,
            in_flight: 0,
        })
    }

    /// A kill handle for the disconnect sweeps.
    pub fn kill_handle(&self) -> io::Result<NetKill> {
        Ok(NetKill(self.stream.try_clone()?))
    }

    /// Requests sent but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Send one batch under the server's default deadline; returns the
    /// correlation id its response will echo.
    pub fn send_batch(&mut self, ops: &[MapOp]) -> Result<u64, NetError> {
        self.send_batch_deadline(ops, Duration::ZERO)
    }

    /// [`NetClient::send_batch`] with an explicit deadline
    /// (`Duration::ZERO` = server default).
    pub fn send_batch_deadline(
        &mut self,
        ops: &[MapOp],
        deadline: Duration,
    ) -> Result<u64, NetError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        self.scratch.clear();
        encode_request(&mut self.scratch, corr, deadline.as_micros() as u64, ops);
        self.writer
            .write_frame(&self.scratch)
            .map_err(|e| NetError::Io(e.kind()))?;
        self.in_flight += 1;
        Ok(corr)
    }

    /// Block until the next response arrives. `Disconnected` means the
    /// server went away with no verdict for whatever was in flight.
    pub fn recv(&mut self) -> Result<ResponseFrame, NetError> {
        // Serve from the accumulator first (a blocking read may have
        // been preceded by nonblocking reads that buffered frames).
        if let Some(r) = self.take_buffered()? {
            return Ok(r);
        }
        self.stream
            .set_nonblocking(false)
            .map_err(|e| NetError::Io(e.kind()))?;
        loop {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::Io(e.kind())),
            }
            if let Some(r) = self.take_buffered()? {
                return Ok(r);
            }
        }
    }

    /// Nonblocking reap: `Ok(None)` when no complete response has
    /// arrived yet.
    pub fn try_recv(&mut self) -> Result<Option<ResponseFrame>, NetError> {
        if let Some(r) = self.take_buffered()? {
            return Ok(Some(r));
        }
        self.stream
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.kind()))?;
        loop {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => {
                    self.acc.extend_from_slice(&chunk[..n]);
                    if let Some(r) = self.take_buffered()? {
                        return Ok(Some(r));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(NetError::Io(e.kind())),
            }
        }
    }

    /// Decode one response out of the accumulator, if whole.
    fn take_buffered(&mut self) -> Result<Option<ResponseFrame>, NetError> {
        match decode_frame(&self.acc) {
            Ok((Frame::Response(r), used)) => {
                self.acc.drain(..used);
                self.in_flight = self.in_flight.saturating_sub(1);
                Ok(Some(r))
            }
            Ok((Frame::Request(_), _)) => Err(NetError::Frame(FrameError::BadKind(KIND_REQUEST))),
            Err(FrameError::Closed) | Err(FrameError::Truncated) => Ok(None),
            Err(e) => Err(NetError::Frame(e)),
        }
    }

    /// Blocking convenience mirroring [`Service::batch`]: send one
    /// batch, wait for its response, retry transparently on `Busy`.
    /// Any other server verdict comes back as `NetError::Serve`.
    pub fn batch(&mut self, ops: &[MapOp]) -> Result<Vec<Option<u64>>, NetError> {
        loop {
            let corr = self.send_batch(ops)?;
            let resp = self.recv_for(corr)?;
            match resp {
                Ok(vals) => return Ok(vals),
                Err(ServeError::Overloaded { retry_after }) => std::thread::sleep(retry_after),
                Err(e) => return Err(NetError::Serve(e)),
            }
        }
    }

    /// Receive until the response for `corr` arrives (responses for
    /// other correlation ids are dropped — only sound for callers that
    /// keep one request in flight, like [`NetClient::batch`]).
    fn recv_for(&mut self, corr: u64) -> Result<Reply, NetError> {
        loop {
            let r = self.recv()?;
            if r.corr == corr {
                return Ok(r.reply);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(corr: u64, deadline: u64, ops: Vec<MapOp>) {
        let mut buf = Vec::new();
        encode_request(&mut buf, corr, deadline, &ops);
        let (frame, used) = decode_frame(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(
            frame,
            Frame::Request(RequestFrame {
                corr,
                deadline_micros: deadline,
                ops
            })
        );
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(0, 0, vec![]);
        roundtrip_request(
            7,
            1_000_000,
            vec![MapOp::Get(1), MapOp::Insert(2, 3), MapOp::Remove(u64::MAX)],
        );
    }

    #[test]
    fn response_roundtrips() {
        let replies: Vec<Reply> = vec![
            Ok(vec![]),
            Ok(vec![None, Some(0), Some(u64::MAX)]),
            Err(ServeError::Timeout),
            Err(ServeError::Aborted),
            Err(ServeError::Stopped),
            Err(ServeError::Rerouted),
            Err(ServeError::CrossShard),
            Err(ServeError::Overloaded {
                retry_after: Duration::from_micros(250),
            }),
        ];
        for reply in replies {
            let mut buf = Vec::new();
            encode_response(&mut buf, 42, &reply);
            let (frame, used) = decode_frame(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(frame, Frame::Response(ResponseFrame { corr: 42, reply }));
        }
    }

    #[test]
    fn ring_full_crosses_as_busy() {
        let mut buf = Vec::new();
        encode_response(&mut buf, 1, &Err(ServeError::RingFull));
        let (frame, _) = decode_frame(&buf).unwrap();
        let Frame::Response(r) = frame else {
            panic!("not a response")
        };
        assert_eq!(
            r.reply,
            Err(ServeError::Overloaded {
                retry_after: Duration::ZERO
            })
        );
    }

    #[test]
    fn truncation_is_clean_at_every_length() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 9, 17, &[MapOp::Insert(1, 2), MapOp::Get(3)]);
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Closed | FrameError::Truncated),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_headers_reject_before_allocation() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, 0, &[MapOp::Get(5)]);
        let mut oversized = buf.clone();
        oversized[..4].copy_from_slice(&(MAX_BODY + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&oversized).unwrap_err(),
            FrameError::Oversized(MAX_BODY + 1)
        );
        let mut bad_ver = buf.clone();
        bad_ver[4] = 99;
        assert_eq!(
            decode_frame(&bad_ver).unwrap_err(),
            FrameError::BadVersion(99)
        );
        let mut bad_kind = buf.clone();
        bad_kind[5] = 7;
        assert_eq!(decode_frame(&bad_kind).unwrap_err(), FrameError::BadKind(7));
        let mut bad_flags = buf.clone();
        bad_flags[6] = 1;
        assert_eq!(
            decode_frame(&bad_flags).unwrap_err(),
            FrameError::BadFlags(1)
        );
        let mut bad_tag = buf;
        bad_tag[HEADER_LEN + 20] = 9;
        assert_eq!(decode_frame(&bad_tag).unwrap_err(), FrameError::BadTag(9));
    }

    #[test]
    fn count_length_disagreement_is_a_size_mismatch() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, 0, &[MapOp::Get(5)]);
        // Claim two ops but carry one.
        let mut lie = buf.clone();
        lie[HEADER_LEN + 16..HEADER_LEN + 20].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(decode_frame(&lie).unwrap_err(), FrameError::SizeMismatch);
    }
}
