//! Per-shard replication: a durable op log on every primary shard, a
//! shipping thread streaming it to a follower instance, and the failover
//! machinery that promotes the follower when the primary's pool is lost.
//!
//! ## The op log
//!
//! Each primary shard keeps a replication log *inside its own NV-HALT
//! heap*: a three-word header `[head, last_lsn, armed]` plus a
//! newest-first linked list of packed entries
//! `[next, lsn, meta, tagword × ⌈nops/32⌉, (key, val) × nops]`. The header
//! exists on every shard; the durable `armed` word says whether
//! appenders actually log their mutations (always on a replicated
//! service; turned on transactionally by a live migration otherwise —
//! see [`P_ARMED`]).
//! Every committed mutation reaches the log **inside the transaction that
//! performs it** ([`append_in`] is called from the worker's batch
//! transaction and from the 2PC prepare/resolve transactions), so the log
//! entry and the data it describes commit or roll back atomically — a
//! post-commit hook could tear (batch durable, entry lost) and was
//! deliberately rejected. Because the header's `last_lsn` word is written
//! by every appending transaction, the log head doubles as a per-shard
//! serialization point: LSN order equals commit order, and a prepared 2PC
//! transaction holds the head locked until its decision, so no later
//! batch can slip an earlier LSN past it.
//!
//! Entry kinds mirror everything the follower needs to stay a drop-in
//! replacement across a promotion:
//! - [`LogKind::Batch`] — a worker batch's mutations;
//! - [`LogKind::Prepare`] — a 2PC participant's mutations plus its marker
//!   (`meta[txid] = 1`), so the follower's marker map mirrors the
//!   primary's and the coordinator's decision-log replay stays idempotent
//!   over promoted shards;
//! - [`LogKind::Resolve`] — drops the marker again.
//!
//! ## Shipping
//!
//! One shipper thread per shard drives the follower's own NV-HALT
//! instance. In steady state a whole ship round is **one follower
//! transaction**: every new primary entry is applied straight into the
//! follower's data map and both `received_lsn` and `applied_lsn`
//! advance together under that single commit — one flush pass, one
//! fence, amortized over however many entries the round picked up, and
//! nothing staged in the receive log that would need trimming later.
//! Receiving and applying atomically is strictly stronger than the
//! ack contract needs (an acked write must be durably *received*), so
//! every crash point of the old receive-then-apply protocol remains
//! covered. The two-stage path ([`Follower::receive_batch`] then
//! [`Follower::apply_entry`]) survives for recovery catch-up: a
//! repaired follower may hold a received-but-unapplied tail, which the
//! next round drains — batched, in one transaction — before fusing.
//!
//! Acks are **semi-synchronous**: a worker (or 2PC coordinator) only
//! acks once the follower's `received_lsn` durably covers its entry, so
//! every acked write survives losing *either* pool. The primary log is
//! trimmed behind the shipped watermark, amortized over
//! [`PRIMARY_TRIM_BATCH`] entries so retirement does not cost a commit
//! (flush pass + fence) per round.
//!
//! ## Crash injection
//!
//! [`ReplStep`] hooks poison the primary pools (worker steps — the
//! failure failover exists for) or the follower pool (shipper steps) at
//! every protocol point; [`FailoverStep`] hooks crash a promotion
//! between its phases. The top-level `kvserve_replication` suite sweeps
//! all of them.

use crate::ServiceConfig;
use nvhalt::{NvHalt, NvHaltConfig};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tm::{Abort, Addr, Tm, Txn};
use txstructs::{HashMapTx, MapOp};

/// Primary log header layout: `[head, last_lsn, armed]`.
pub(crate) const P_HEAD: u64 = 0;
pub(crate) const P_LAST: u64 = 1;
/// Durable arming word: appenders log their mutations only while it is
/// non-zero. Always 1 on a replicated service; on a non-replicated one
/// it is 0 until a live migration transactionally arms the log to
/// stream the shard, and recovery disarms it again. Appenders read the
/// word *inside* their mutating transaction, so arming serializes
/// against every batch — no batch can commit unlogged after the arming
/// transaction commits.
pub(crate) const P_ARMED: u64 = 2;
/// Words in a primary shard's log header block.
pub(crate) const PRIMARY_HDR_WORDS: usize = 3;

/// Follower header layout: `[recv_head, received_lsn, applied_lsn, role]`.
const F_HEAD: u64 = 0;
const F_RECEIVED: u64 = 1;
const F_APPLIED: u64 = 2;
const F_ROLE: u64 = 3;
/// Words in a follower's header block.
pub(crate) const FOLLOWER_HDR_WORDS: usize = 4;

/// Role word values: follower until a promotion durably flips it.
const ROLE_FOLLOWER: u64 = 0;
const ROLE_PRIMARY: u64 = 1;

/// Log entry layout (word offsets within an entry block):
/// `[next, lsn, meta, tagword × ⌈nops/32⌉, (key, val) × nops]`.
///
/// `meta` packs the entry kind (2 bits), the op count (14 bits) and the
/// 2PC transaction id (48 bits) into one word, and each op's tag takes
/// 2 bits of the packed tag words — 3 + ⌈n/32⌉ + 2n words per entry
/// against the naive 5 + 3n. Every persisted word is a flushed cache
/// line eventually, so the diet feeds directly into flushes/op.
const L_NEXT: u64 = 0;
const L_LSN: u64 = 1;
const L_META: u64 = 2;
const L_TAGS: u64 = 3;
/// Words per op payload (key, value).
const OP_WORDS: u64 = 2;
/// Op tags per packed tag word (2 bits each).
const TAGS_PER_WORD: u64 = 32;

const META_KIND_BITS: u64 = 2;
const META_NOPS_BITS: u64 = 14;
/// Ops an entry can carry (14-bit count field).
const META_NOPS_MAX: u64 = (1 << META_NOPS_BITS) - 1;
/// Largest representable 2PC transaction id (48-bit field).
const META_TXID_MAX: u64 = (1 << (64 - META_KIND_BITS - META_NOPS_BITS)) - 1;

fn pack_meta(kind: LogKind, txid: u64, nops: u64) -> u64 {
    debug_assert!(nops <= META_NOPS_MAX, "log entry op count overflow");
    debug_assert!(txid <= META_TXID_MAX, "log txid overflows meta field");
    kind.encode() | (nops << META_KIND_BITS) | (txid << (META_KIND_BITS + META_NOPS_BITS))
}

fn meta_kind(meta: u64) -> LogKind {
    LogKind::decode(meta & ((1 << META_KIND_BITS) - 1))
}

fn meta_nops(meta: u64) -> u64 {
    (meta >> META_KIND_BITS) & META_NOPS_MAX
}

fn meta_txid(meta: u64) -> u64 {
    meta >> (META_KIND_BITS + META_NOPS_BITS)
}

/// Packed tag words needed for `nops` ops.
fn tag_words(nops: u64) -> u64 {
    nops.div_ceil(TAGS_PER_WORD)
}

/// An entry block's total size in words.
fn entry_words(nops: u64) -> u64 {
    L_TAGS + tag_words(nops) + nops * OP_WORDS
}

/// What a log entry carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogKind {
    /// A worker batch's mutations.
    Batch,
    /// A 2PC participant's mutations plus its `meta[txid] = 1` marker.
    Prepare,
    /// Drop the 2PC marker for `txid` (batch resolved).
    Resolve,
}

impl LogKind {
    fn encode(self) -> u64 {
        match self {
            LogKind::Batch => 0,
            LogKind::Prepare => 1,
            LogKind::Resolve => 2,
        }
    }

    fn decode(w: u64) -> LogKind {
        match w {
            0 => LogKind::Batch,
            1 => LogKind::Prepare,
            2 => LogKind::Resolve,
            _ => unreachable!("corrupt replication-log kind {w}"),
        }
    }
}

/// One decoded replication-log entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogEntry {
    /// Per-shard log sequence number; strictly increasing from 1.
    pub lsn: u64,
    /// What the entry carries.
    pub kind: LogKind,
    /// The 2PC transaction id for `Prepare`/`Resolve`; 0 for batches.
    pub txid: u64,
    /// The mutations (never `Get`s — reads are not replicated).
    pub ops: Vec<MapOp>,
}

impl LogEntry {
    /// The entry's block size in words.
    pub fn words(&self) -> usize {
        entry_words(self.ops.len() as u64) as usize
    }
}

/// Write one entry's body (everything but `next`) into the block at
/// `e` inside the caller's transaction. The block is fully overwritten,
/// so recycled blocks need no zeroing.
fn write_entry_in<Tx: Txn + ?Sized>(
    tx: &mut Tx,
    e: Addr,
    lsn: u64,
    kind: LogKind,
    txid: u64,
    ops: &[MapOp],
) -> Result<(), Abort> {
    let nops = ops.len() as u64;
    tx.write(e.offset(L_LSN), lsn)?;
    tx.write(e.offset(L_META), pack_meta(kind, txid, nops))?;
    for (w, chunk) in ops.chunks(TAGS_PER_WORD as usize).enumerate() {
        let mut word = 0u64;
        for (j, &op) in chunk.iter().enumerate() {
            let (tag, _, _) = encode_op(op);
            word |= tag << (2 * j as u64);
        }
        tx.write(e.offset(L_TAGS + w as u64), word)?;
    }
    let base0 = L_TAGS + tag_words(nops);
    for (i, &op) in ops.iter().enumerate() {
        let (_, k, v) = encode_op(op);
        let base = e.offset(base0 + i as u64 * OP_WORDS);
        tx.write(base, k)?;
        tx.write(base.offset(1), v)?;
    }
    Ok(())
}

fn encode_op(op: MapOp) -> (u64, u64, u64) {
    match op {
        MapOp::Get(k) => (0, k, 0),
        MapOp::Insert(k, v) => (1, k, v),
        MapOp::Remove(k) => (2, k, 0),
    }
}

fn decode_op(tag: u64, k: u64, v: u64) -> MapOp {
    match tag {
        0 => MapOp::Get(k),
        1 => MapOp::Insert(k, v),
        2 => MapOp::Remove(k),
        _ => unreachable!("corrupt replication-log op tag {tag}"),
    }
}

/// The mutations of `ops` (reads are not replicated).
pub(crate) fn mutations(ops: &[MapOp]) -> Vec<MapOp> {
    ops.iter()
        .copied()
        .filter(|op| !matches!(op, MapOp::Get(_)))
        .collect()
}

/// Append a log entry inside the caller's transaction: allocate the
/// block, link it at the head, and advance `last_lsn`. Returns the LSN.
/// Because this runs inside the data transaction, the entry commits (or
/// rolls back) atomically with the mutations it describes.
pub(crate) fn append_in<Tx: Txn + ?Sized>(
    tx: &mut Tx,
    hdr: Addr,
    kind: LogKind,
    txid: u64,
    ops: &[MapOp],
) -> Result<u64, Abort> {
    let lsn = tx.read(hdr.offset(P_LAST))? + 1;
    let e = tx.alloc(entry_words(ops.len() as u64) as usize)?;
    write_entry_in(tx, e, lsn, kind, txid, ops)?;
    let prev = tx.read(hdr.offset(P_HEAD))?;
    tx.write(e.offset(L_NEXT), prev)?;
    tx.write(hdr.offset(P_HEAD), e.0)?;
    tx.write(hdr.offset(P_LAST), lsn)?;
    Ok(lsn)
}

/// Append to the log **iff it is armed**, reading the armed word inside
/// the caller's transaction (see [`P_ARMED`]). Returns the LSN, or 0
/// when the log is disarmed (LSNs start at 1, so 0 is never a real
/// entry). Note `Resolve` entries legitimately carry no ops — skipping
/// empty batches is the caller's business.
pub(crate) fn append_armed_in<Tx: Txn + ?Sized>(
    tx: &mut Tx,
    hdr: Addr,
    kind: LogKind,
    txid: u64,
    ops: &[MapOp],
) -> Result<u64, Abort> {
    if tx.read(hdr.offset(P_ARMED))? == 0 {
        return Ok(0);
    }
    append_in(tx, hdr, kind, txid, ops)
}

/// Durably set the log's armed word in its own transaction.
pub(crate) fn set_armed(tm: &NvHalt, tid: usize, hdr: Addr, on: bool) {
    tm::txn(tm, tid, |tx| tx.write(hdr.offset(P_ARMED), u64::from(on)))
        .expect("arming transactions never cancel");
}

/// The log's durable armed word. Quiescent only.
pub(crate) fn armed_raw(tm: &NvHalt, hdr: Addr) -> bool {
    tm.read_raw(hdr.offset(P_ARMED)) != 0
}

/// Replay one log entry's effect through the follower's transactional
/// structures — the shared core of [`Follower::apply_entry`],
/// [`Follower::apply_batch`], and [`Follower::receive_apply_batch`].
fn apply_ops_in(
    tx: &mut dyn Txn,
    data: &HashMapTx,
    meta: &HashMapTx,
    e: &LogEntry,
) -> Result<(), Abort> {
    match e.kind {
        LogKind::Batch | LogKind::Prepare => {
            for &op in &e.ops {
                data.apply_in(tx, op)?;
            }
            if e.kind == LogKind::Prepare {
                meta.insert_in(tx, e.txid, 1)?;
            }
        }
        LogKind::Resolve => {
            meta.remove_in(tx, e.txid)?;
        }
    }
    Ok(())
}

fn read_entry_in<Tx: Txn + ?Sized>(tx: &mut Tx, a: Addr) -> Result<LogEntry, Abort> {
    let meta = tx.read(a.offset(L_META))?;
    let nops = meta_nops(meta);
    let mut tags = Vec::with_capacity(tag_words(nops) as usize);
    for w in 0..tag_words(nops) {
        tags.push(tx.read(a.offset(L_TAGS + w))?);
    }
    let base0 = L_TAGS + tag_words(nops);
    let mut ops = Vec::with_capacity(nops as usize);
    for i in 0..nops {
        let tag = (tags[(i / TAGS_PER_WORD) as usize] >> (2 * (i % TAGS_PER_WORD))) & 0b11;
        let base = a.offset(base0 + i * OP_WORDS);
        ops.push(decode_op(tag, tx.read(base)?, tx.read(base.offset(1))?));
    }
    Ok(LogEntry {
        lsn: tx.read(a.offset(L_LSN))?,
        kind: meta_kind(meta),
        txid: meta_txid(meta),
        ops,
    })
}

/// Attempts a shipper-side read gets before giving the round up (the
/// primary's workers keep the log head hot; the next round retries).
const READ_FUEL: usize = 8;

/// Transactionally read every entry with `lsn > after` from the list
/// rooted at `head`, in ascending LSN order. `None` if the read
/// transaction could not win its fuel against concurrent appends.
pub(crate) fn read_after(tm: &NvHalt, tid: usize, head: Addr, after: u64) -> Option<Vec<LogEntry>> {
    tm::txn(tm, tid, |tx| {
        if tx.attempt() >= READ_FUEL {
            return Err(Abort::Cancel);
        }
        let mut out = Vec::new();
        let mut a = Addr(tx.read(head)?);
        while !a.is_null() {
            let lsn = tx.read(a.offset(L_LSN))?;
            if lsn <= after {
                break;
            }
            out.push(read_entry_in(tx, a)?);
            a = Addr(tx.read(a.offset(L_NEXT))?);
        }
        out.reverse();
        Ok(out)
    })
    .ok()
}

/// Unlink and free every entry with `lsn <= upto` (the strictly
/// descending suffix of the newest-first list rooted at `head`). Both
/// logs are trimmed behind durable watermarks, so a trimmed entry is
/// never needed again. Best-effort under contention.
pub(crate) fn trim_through(tm: &NvHalt, tid: usize, head: Addr, upto: u64) {
    let _ = tm::txn(tm, tid, |tx| {
        if tx.attempt() >= READ_FUEL {
            return Err(Abort::Cancel);
        }
        let mut prev: Option<Addr> = None;
        let mut a = Addr(tx.read(head)?);
        while !a.is_null() {
            if tx.read(a.offset(L_LSN))? <= upto {
                break;
            }
            prev = Some(a);
            a = Addr(tx.read(a.offset(L_NEXT))?);
        }
        if a.is_null() {
            return Ok(());
        }
        match prev {
            Some(p) => tx.write(p.offset(L_NEXT), 0)?,
            None => tx.write(head, 0)?,
        }
        while !a.is_null() {
            let next = Addr(tx.read(a.offset(L_NEXT))?);
            let nops = meta_nops(tx.read(a.offset(L_META))?);
            tx.free(a, entry_words(nops) as usize)?;
            a = next;
        }
        Ok(())
    });
}

/// Every heap block a primary shard's log owns: the header plus every
/// entry. For allocator rebuilds after recovery. Quiescent only.
pub(crate) fn primary_used_blocks(tm: &NvHalt, hdr: Addr) -> Vec<(u64, usize)> {
    std::iter::once((hdr.0, PRIMARY_HDR_WORDS))
        .chain(walk_blocks_raw(tm, hdr.offset(P_HEAD)))
        .collect()
}

/// Raw walk of the list rooted at `head`: `(addr, words)` per entry, for
/// allocator rebuilds. Only valid on a quiescent TM.
pub(crate) fn walk_blocks_raw(tm: &NvHalt, head: Addr) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    let mut a = Addr(tm.read_raw(head));
    while !a.is_null() {
        let nops = meta_nops(tm.read_raw(a.offset(L_META)));
        out.push((a.0, entry_words(nops) as usize));
        a = Addr(tm.read_raw(a.offset(L_NEXT)));
    }
    out
}

/// The last LSN durably appended to a primary log. Quiescent only.
pub(crate) fn last_lsn_raw(tm: &NvHalt, hdr: Addr) -> u64 {
    tm.read_raw(hdr.offset(P_LAST))
}

// ---------------------------------------------------------------------
// Follower
// ---------------------------------------------------------------------

/// A shard's follower: its own NV-HALT instance holding a mirror of the
/// primary's data and 2PC-marker maps, a receive log, and the durable
/// `received`/`applied` watermarks. Only the shard's shipper thread (or
/// promotion, with the shipper gone) touches it, always as TM thread 0.
pub struct Follower {
    pub(crate) tm: Arc<NvHalt>,
    pub(crate) data: HashMapTx,
    pub(crate) meta: HashMapTx,
    pub(crate) hdr: Addr,
}

/// TM thread id of all follower-side transactions.
const FOLLOWER_TID: usize = 0;

impl Follower {
    /// Fresh follower over a new TM: empty maps, zero watermarks.
    pub(crate) fn create(cfg: NvHaltConfig, buckets: usize, meta_buckets: usize) -> Follower {
        let tm = Arc::new(NvHalt::new(cfg));
        let data = HashMapTx::create(&*tm, FOLLOWER_TID, buckets)
            .expect("creating a map on a fresh TM cannot cancel");
        let meta = HashMapTx::create(&*tm, FOLLOWER_TID, meta_buckets)
            .expect("creating a map on a fresh TM cannot cancel");
        let hdr = tm.alloc_raw(FOLLOWER_TID, FOLLOWER_HDR_WORDS);
        let f = Follower {
            tm,
            data,
            meta,
            hdr,
        };
        // Raw allocation is durably zero; zero is the follower role.
        debug_assert_eq!(f.role_raw(), ROLE_FOLLOWER);
        f
    }

    /// Standalone fresh follower for tests: `heap_words` of heap, small
    /// maps. The proptest suite drives [`Follower::ingest`] against this
    /// directly, with no service around it.
    pub fn fresh(heap_words: usize) -> Follower {
        Follower::create(NvHaltConfig::test(heap_words, 1), 64, 64)
    }

    /// Re-attach over a recovered TM (maps and header already exist).
    pub(crate) fn attach(tm: Arc<NvHalt>, data: HashMapTx, meta: HashMapTx, hdr: Addr) -> Follower {
        Follower {
            tm,
            data,
            meta,
            hdr,
        }
    }

    /// Every heap block reachable from the follower's roots: both maps,
    /// the header, and the receive-log entries. For allocator rebuilds
    /// after recovery.
    pub(crate) fn used_blocks(&self) -> Vec<(u64, usize)> {
        self.data
            .used_blocks(&*self.tm)
            .into_iter()
            .chain(self.meta.used_blocks(&*self.tm))
            .chain(std::iter::once((self.hdr.0, FOLLOWER_HDR_WORDS)))
            .chain(walk_blocks_raw(&self.tm, self.hdr.offset(F_HEAD)))
            .collect()
    }

    /// Durable `received_lsn`. Quiescent only.
    pub(crate) fn received_raw(&self) -> u64 {
        self.tm.read_raw(self.hdr.offset(F_RECEIVED))
    }

    /// Durable `applied_lsn`. Quiescent only.
    pub fn applied_lsn(&self) -> u64 {
        self.tm.read_raw(self.hdr.offset(F_APPLIED))
    }

    /// Durable role word: has a promotion committed on this follower?
    pub(crate) fn role_raw(&self) -> u64 {
        self.tm.read_raw(self.hdr.offset(F_ROLE))
    }

    /// Stage a slice of entries (ascending by LSN) into the receive log
    /// and advance the durable `received_lsn` to the last one — all in
    /// **one transaction**, so a whole ship round's worth of entries
    /// costs one commit (one flush pass, one fence) instead of one per
    /// entry. Entries at or below the watermark are skipped (idempotent
    /// re-ship after a follower recovery). Returns how many entries were
    /// actually staged.
    pub(crate) fn receive_batch(&self, entries: &[LogEntry]) -> usize {
        debug_assert!(entries.windows(2).all(|w| w[0].lsn < w[1].lsn));
        tm::txn(&*self.tm, FOLLOWER_TID, |tx| {
            let watermark = tx.read(self.hdr.offset(F_RECEIVED))?;
            let fresh: Vec<&LogEntry> = entries.iter().filter(|e| e.lsn > watermark).collect();
            let Some(last) = fresh.last() else {
                return Ok(0);
            };
            for e in &fresh {
                let a = tx.alloc(e.words())?;
                write_entry_in(tx, a, e.lsn, e.kind, e.txid, &e.ops)?;
                let prev = tx.read(self.hdr.offset(F_HEAD))?;
                tx.write(a.offset(L_NEXT), prev)?;
                tx.write(self.hdr.offset(F_HEAD), a.0)?;
            }
            tx.write(self.hdr.offset(F_RECEIVED), last.lsn)?;
            Ok(fresh.len())
        })
        .expect("follower transactions never cancel")
    }

    /// Steady-state ship round: apply a slice of fresh entries
    /// (ascending by LSN) straight into the data map and advance
    /// `received_lsn` *and* `applied_lsn` to the last one, all in **one
    /// transaction** — the whole round costs one flush pass and one
    /// fence, and leaves nothing in the receive log to trim. Entries at
    /// or below the received watermark are skipped (idempotent re-ship
    /// after a follower recovery). Refuses to fuse — receiving nothing —
    /// while a received-but-unapplied tail exists (the caller must
    /// drain it via [`Follower::apply_batch`] first, or the fused
    /// watermark bump would skip it). Returns the durable
    /// `(received_lsn, applied_lsn)` pair after the commit, for the
    /// caller's volatile mirrors.
    pub(crate) fn receive_apply_batch(&self, entries: &[LogEntry]) -> (u64, u64) {
        debug_assert!(entries.windows(2).all(|w| w[0].lsn < w[1].lsn));
        tm::txn(&*self.tm, FOLLOWER_TID, |tx| {
            let received = tx.read(self.hdr.offset(F_RECEIVED))?;
            let applied = tx.read(self.hdr.offset(F_APPLIED))?;
            if applied != received {
                return Ok((received, applied));
            }
            let fresh: Vec<&LogEntry> = entries.iter().filter(|e| e.lsn > received).collect();
            let Some(last) = fresh.last() else {
                return Ok((received, applied));
            };
            for e in &fresh {
                apply_ops_in(tx, &self.data, &self.meta, e)?;
            }
            tx.write(self.hdr.offset(F_RECEIVED), last.lsn)?;
            tx.write(self.hdr.offset(F_APPLIED), last.lsn)?;
            Ok((last.lsn, last.lsn))
        })
        .expect("follower transactions never cancel")
    }

    /// Apply a slice of already-received entries (ascending by LSN) and
    /// advance the durable `applied_lsn` to the last one, in **one
    /// transaction** — recovery catch-up and promotion tail-apply cost
    /// one commit however long the tail is. Entries at or below the
    /// applied watermark are skipped. Returns how many were applied.
    pub(crate) fn apply_batch(&self, entries: &[LogEntry]) -> usize {
        debug_assert!(entries.windows(2).all(|w| w[0].lsn < w[1].lsn));
        let applied = tm::txn(&*self.tm, FOLLOWER_TID, |tx| {
            let watermark = tx.read(self.hdr.offset(F_APPLIED))?;
            let fresh: Vec<&LogEntry> = entries.iter().filter(|e| e.lsn > watermark).collect();
            let Some(last) = fresh.last() else {
                return Ok(0);
            };
            for e in &fresh {
                apply_ops_in(tx, &self.data, &self.meta, e)?;
            }
            tx.write(self.hdr.offset(F_APPLIED), last.lsn)?;
            Ok(fresh.len())
        })
        .expect("follower transactions never cancel");
        if applied > 0 {
            if let Some(p) = self.tm.pmem().pool().psan() {
                p.durability_point(FOLLOWER_TID, "kvserve::repl::applied_lsn");
            }
        }
        applied
    }

    /// Received-but-unapplied entries, ascending by LSN.
    pub(crate) fn pending(&self) -> Vec<LogEntry> {
        tm::txn(&*self.tm, FOLLOWER_TID, |tx| {
            let applied = tx.read(self.hdr.offset(F_APPLIED))?;
            let mut out = Vec::new();
            let mut a = Addr(tx.read(self.hdr.offset(F_HEAD))?);
            while !a.is_null() {
                if tx.read(a.offset(L_LSN))? <= applied {
                    break;
                }
                out.push(read_entry_in(tx, a)?);
                a = Addr(tx.read(a.offset(L_NEXT))?);
            }
            out.reverse();
            Ok(out)
        })
        .expect("follower transactions never cancel")
    }

    /// Apply one entry through the same [`HashMapTx`] path the primary
    /// used and advance the durable `applied_lsn` in the same
    /// transaction (the watermark check is what makes re-application
    /// idempotent). Followed by a psan durability point: the applied
    /// state must be fully fenced before the watermark can be trusted.
    /// Returns whether the entry was actually applied.
    pub(crate) fn apply_entry(&self, e: &LogEntry) -> bool {
        let applied = tm::txn(&*self.tm, FOLLOWER_TID, |tx| {
            if tx.read(self.hdr.offset(F_APPLIED))? >= e.lsn {
                return Ok(false);
            }
            apply_ops_in(tx, &self.data, &self.meta, e)?;
            tx.write(self.hdr.offset(F_APPLIED), e.lsn)?;
            Ok(true)
        })
        .expect("follower transactions never cancel");
        if let Some(p) = self.tm.pmem().pool().psan() {
            p.durability_point(FOLLOWER_TID, "kvserve::repl::applied_lsn");
        }
        applied
    }

    /// Drop every receive-log entry at or below the applied watermark.
    pub(crate) fn trim_applied(&self, upto: u64) {
        trim_through(&self.tm, FOLLOWER_TID, self.hdr.offset(F_HEAD), upto);
    }

    /// Drop the whole receive log (promotion epilogue: everything is
    /// applied and there is no primary left to re-ship from).
    pub(crate) fn trim_all(&self) {
        trim_through(&self.tm, FOLLOWER_TID, self.hdr.offset(F_HEAD), u64::MAX);
    }

    /// Durably mark this follower promoted, then assert the promotion
    /// record is fully fenced.
    pub(crate) fn commit_promotion(&self) {
        tm::txn(&*self.tm, FOLLOWER_TID, |tx| {
            tx.write(self.hdr.offset(F_ROLE), ROLE_PRIMARY)
        })
        .expect("follower transactions never cancel");
        if let Some(p) = self.tm.pmem().pool().psan() {
            p.durability_point(FOLLOWER_TID, "kvserve::repl::promotion_commit");
        }
        debug_assert_eq!(self.role_raw(), ROLE_PRIMARY);
    }

    /// Receive and apply a slice of log entries, as the shipper would.
    /// Test surface for the applied-LSN idempotence property: any split
    /// of a log into `ingest` calls — including overlapping re-sends —
    /// must converge to the same state as one whole-log call.
    pub fn ingest(&self, entries: &[LogEntry]) {
        self.receive_batch(entries);
        for e in self.pending() {
            self.apply_entry(&e);
        }
        let applied = tm::txn(&*self.tm, FOLLOWER_TID, |tx| {
            tx.read(self.hdr.offset(F_APPLIED))
        })
        .expect("follower transactions never cancel");
        self.trim_applied(applied);
    }

    /// The mirrored data map's contents, sorted by key. Quiescent only.
    pub fn contents(&self) -> Vec<(u64, u64)> {
        let mut v = self.data.collect_raw(&*self.tm);
        v.sort_unstable();
        v
    }

    /// The mirrored 2PC marker map's keys, sorted. Quiescent only.
    pub fn markers(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .meta
            .collect_raw(&*self.tm)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        v.sort_unstable();
        v
    }
}

// ---------------------------------------------------------------------
// Crash-injection steps
// ---------------------------------------------------------------------

/// The replication protocol steps a crash-injection hook can observe.
/// Worker steps (`BeforeAppend`, `AfterAppend`) poison the *primary*
/// pools — the failure shape failover exists for; shipper steps poison
/// only the *follower* pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplStep {
    /// Worker, before the batch transaction (nothing durable anywhere).
    BeforeAppend,
    /// Worker, after the batch + log entry committed on the primary but
    /// before the follower ack.
    AfterAppend,
    /// Shipper, new primary entries read but nothing received yet.
    BeforeReceive,
    /// Shipper, entries durably in the receive log, none applied.
    Received,
    /// Shipper, first pending entry applied, the rest maybe not.
    MidApply,
    /// Shipper, every pending entry applied and both logs trimmed.
    Applied,
}

impl ReplStep {
    /// All steps, in protocol order (for exhaustive crash injection).
    pub const ALL: [ReplStep; 6] = [
        ReplStep::BeforeAppend,
        ReplStep::AfterAppend,
        ReplStep::BeforeReceive,
        ReplStep::Received,
        ReplStep::MidApply,
        ReplStep::Applied,
    ];

    /// True for the steps injected on the worker (primary-crash) side.
    pub fn is_primary(self) -> bool {
        matches!(self, ReplStep::BeforeAppend | ReplStep::AfterAppend)
    }
}

/// The phases of a promotion a crash-injection hook can crash between.
/// A crashed promotion returns a fresh [`FailoverDump`](crate::FailoverDump)
/// and promotion is simply run again — every phase is idempotent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailoverStep {
    /// Follower TMs and the decision log recovered, tail not applied.
    Recovered,
    /// The receive-log tail fully applied.
    TailApplied,
    /// The promotion durably committed (role word flipped).
    Promoted,
    /// Decision-log replay over the promoted shards finished.
    Replayed,
}

impl FailoverStep {
    /// All phases, in order.
    pub const ALL: [FailoverStep; 4] = [
        FailoverStep::Recovered,
        FailoverStep::TailApplied,
        FailoverStep::Promoted,
        FailoverStep::Replayed,
    ];
}

/// Crash-injection hook over [`ReplStep`].
pub(crate) type ReplHook = Arc<dyn Fn(ReplStep) -> bool + Send + Sync>;
/// Crash-injection hook over [`FailoverStep`].
pub type FailoverHook = Arc<dyn Fn(FailoverStep) -> bool + Send + Sync>;

// ---------------------------------------------------------------------
// Ship state and runtime
// ---------------------------------------------------------------------

/// Per-shard shipping state: watermark mirrors for waiters and metrics,
/// plus the condvar gluing workers and the shipper together. The
/// atomics mirror durable words and only ever lag them.
pub(crate) struct ShipState {
    /// Highest LSN durably appended on the primary (worker-maintained).
    pub appended: AtomicU64,
    /// Highest LSN durably in the follower's receive log.
    pub received: AtomicU64,
    /// Highest LSN durably applied on the follower.
    pub applied: AtomicU64,
    /// The follower pool is crashed; ack waiters fail fast instead of
    /// burning their deadlines.
    pub down: AtomicBool,
    /// Trim floor: the shipper only trims primary entries with
    /// `lsn <= min(received, hold)`. `u64::MAX` normally; a live
    /// migration lowers it to its replay cursor so the tail it still
    /// needs cannot be trimmed out from under it, and restores it at
    /// the flip.
    pub hold: AtomicU64,
    /// Unshipped work exists (set by appenders, cleared by the shipper).
    dirty: AtomicBool,
    /// A shipping round is mid-flight. Raised before the round's first
    /// transaction and lowered only after its trailing work (amortized
    /// trim, crash checkpoints), so quiescence pollers — `lag() == 0`
    /// via the metrics snapshot — never observe a round whose
    /// watermark stores have landed but whose tail has not run.
    pub settling: AtomicBool,
    /// Highest primary-log LSN already retired by the amortized trim.
    trimmed: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Retire shipped primary-log entries only once this many have
/// accumulated past the last trim: trimming is pure garbage collection
/// (the follower has durably received everything at or below the
/// watermark), so paying its commit — a flush pass and a fence — every
/// round would be persist traffic for nothing. The lag bounds the
/// garbage, not the correctness.
const PRIMARY_TRIM_BATCH: u64 = 8;

impl ShipState {
    fn new() -> ShipState {
        let state = ShipState {
            appended: AtomicU64::new(0),
            received: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            down: AtomicBool::new(false),
            hold: AtomicU64::new(u64::MAX),
            dirty: AtomicBool::new(false),
            settling: AtomicBool::new(false),
            trimmed: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        };
        state.lock.locksan_label("repl::ship_state", false);
        state
    }

    /// Wake every waiter (ack waiters and the shipper).
    pub fn notify_all(&self) {
        drop(self.lock.lock());
        self.cv.notify_all();
    }

    /// Tell the shipper there is new work.
    pub fn signal_work(&self) {
        self.dirty.store(true, Ordering::Release);
        self.notify_all();
    }

    /// Block until the follower durably received `lsn`, the deadline
    /// passes, or the follower goes down. The ack decision.
    pub fn wait_received(&self, lsn: u64, deadline: Instant) -> bool {
        loop {
            if self.received.load(Ordering::Acquire) >= lsn {
                return true;
            }
            if self.down.load(Ordering::Acquire) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let mut guard = self.lock.lock();
            if self.received.load(Ordering::Acquire) >= lsn {
                return true;
            }
            if self.down.load(Ordering::Acquire) {
                return false;
            }
            let wait = (deadline - now).min(Duration::from_millis(5));
            let _ = self.cv.wait_for(&mut guard, wait);
        }
    }

    /// Shipper-side wait: until new work, a stop, or `interval`.
    fn wait_work(&self, interval: Duration, stop: &AtomicBool) {
        let mut guard = self.lock.lock();
        if self.dirty.swap(false, Ordering::AcqRel) || stop.load(Ordering::Acquire) {
            return;
        }
        let _ = self.cv.wait_for(&mut guard, interval);
        self.dirty.store(false, Ordering::Release);
    }
}

/// One primary shard's log location.
pub(crate) struct PrimaryLog {
    pub tm: Arc<NvHalt>,
    pub hdr: Addr,
}

/// Everything the replication layer shares between workers, the 2PC
/// coordinator, the shipper threads, and the service's crash plumbing.
pub(crate) struct ReplRuntime {
    pub primaries: Vec<PrimaryLog>,
    /// The 2PC decision log's TM, poisoned together with the primaries.
    pub decision_log: Arc<NvHalt>,
    pub followers: Vec<Mutex<Option<Follower>>>,
    pub states: Vec<Arc<ShipState>>,
    pub hook: Mutex<Option<ReplHook>>,
    pub stop: AtomicBool,
    pub ship_interval: Duration,
    /// Shipper group-commit window (see `ServiceConfig::ship_coalesce`).
    pub ship_coalesce: Duration,
    /// The reserved shipper TM thread slot on every primary shard.
    pub ship_tid: usize,
}

impl ReplRuntime {
    /// Fresh runtime: one empty follower per shard, zero watermarks.
    pub fn new(
        cfg: &ServiceConfig,
        primaries: Vec<PrimaryLog>,
        decision_log: Arc<NvHalt>,
    ) -> ReplRuntime {
        let followers = (0..primaries.len())
            .map(|_| {
                Follower::create(
                    cfg.shard_nvhalt(),
                    cfg.buckets_per_shard,
                    crate::META_BUCKETS,
                )
            })
            .collect();
        ReplRuntime::assemble(cfg, primaries, decision_log, followers)
    }

    /// Assemble over existing (fresh or recovered) followers, seeding
    /// each shard's ship state from the durable watermarks. Both sides
    /// must be quiescent.
    pub fn assemble(
        cfg: &ServiceConfig,
        primaries: Vec<PrimaryLog>,
        decision_log: Arc<NvHalt>,
        followers: Vec<Follower>,
    ) -> ReplRuntime {
        let states = primaries
            .iter()
            .zip(&followers)
            .map(|(p, f)| {
                let st = ShipState::new();
                st.appended
                    .store(last_lsn_raw(&p.tm, p.hdr), Ordering::Relaxed);
                st.received.store(f.received_raw(), Ordering::Relaxed);
                st.applied.store(f.applied_lsn(), Ordering::Relaxed);
                Arc::new(st)
            })
            .collect();
        let rt = ReplRuntime {
            primaries,
            decision_log,
            followers: followers.into_iter().map(|f| Mutex::new(Some(f))).collect(),
            states,
            hook: Mutex::new(None),
            stop: AtomicBool::new(false),
            ship_interval: cfg.ship_interval,
            ship_coalesce: cfg.ship_coalesce,
            ship_tid: cfg.workers_per_shard + cfg.coordinators,
        };
        for f in &rt.followers {
            // The shipper commits follower transactions (persists) while
            // the cell is held — that *is* the cell's job; exempt it
            // from the lock-across-persist rule.
            f.locksan_label("repl::follower_cell", true);
        }
        rt.hook.locksan_label("repl::hook", false);
        rt
    }

    /// The primary-side power failure: poison every shard pool and the
    /// decision log, leave the followers alive (that is what failover is
    /// for), and release ack waiters.
    pub fn poison_primary(&self) {
        for p in &self.primaries {
            p.tm.crash();
        }
        self.decision_log.crash();
        for st in &self.states {
            st.down.store(true, Ordering::Release);
            st.notify_all();
        }
    }

    /// Poison shard `s`'s follower pool (the follower-side power
    /// failure).
    pub fn poison_follower(&self, s: usize) {
        if let Some(f) = &*self.followers[s].lock() {
            f.tm.crash();
        }
    }
}

/// Worker-side crash check: fires the hook at primary steps, poisoning
/// the primary pools and unwinding the worker before it can ack.
pub(crate) fn crash_check(rt: &ReplRuntime, step: ReplStep) {
    let hook = rt.hook.lock().clone();
    if let Some(h) = hook {
        if h(step) {
            rt.poison_primary();
            tm::crash::crash_unwind();
        }
    }
}

/// Shipper-side crash check: poisons the follower pool and unwinds the
/// shipper's round. Takes the follower by reference — the round already
/// holds the cell lock, so going through [`ReplRuntime::poison_follower`]
/// here would self-deadlock.
fn ship_crash_check(rt: &ReplRuntime, f: &Follower, step: ReplStep) {
    let hook = rt.hook.lock().clone();
    if let Some(h) = hook {
        if h(step) {
            f.tm.crash();
            tm::crash::crash_unwind();
        }
    }
}

/// Spawn one shipper thread per shard.
pub(crate) fn spawn_shippers(rt: &Arc<ReplRuntime>) -> Vec<JoinHandle<()>> {
    (0..rt.primaries.len())
        .map(|s| {
            let rt = rt.clone();
            std::thread::Builder::new()
                .name(format!("kvserve-ship-{s}"))
                .spawn(move || shipper(&rt, s))
                .expect("spawn shipper thread")
        })
        .collect()
}

fn shipper(rt: &ReplRuntime, s: usize) {
    let state = &rt.states[s];
    loop {
        if rt.stop.load(Ordering::Acquire) {
            return;
        }
        state.settling.store(true, Ordering::Release);
        let round = tm::crash::run_crashable(|| ship_round(rt, s));
        state.settling.store(false, Ordering::Release);
        match round {
            Some(()) => {}
            None => {
                // A pool died mid-round. A dead primary means the whole
                // service is crashing or failing over — exit so the
                // teardown can join us. A dead follower just parks the
                // shard's shipping until `recover_follower`.
                if rt.primaries[s].tm.pmem().pool().is_crashed() {
                    return;
                }
                state.down.store(true, Ordering::Release);
                state.notify_all();
            }
        }
        state.wait_work(rt.ship_interval, &rt.stop);
        // Group commit across worker batches: linger so every entry
        // appended in the window rides the next round's single
        // follower commit instead of costing its own flush pass and
        // fence.
        if !rt.ship_coalesce.is_zero() && !rt.stop.load(Ordering::Acquire) {
            std::thread::sleep(rt.ship_coalesce);
        }
    }
}

/// One shipping round for shard `s`. Steady state is a single follower
/// commit: the round's fresh primary entries are applied straight into
/// the follower's data map with both watermarks advanced under one
/// fence ([`Follower::receive_apply_batch`]), and the primary log is
/// retired behind the shipped watermark only every
/// [`PRIMARY_TRIM_BATCH`] entries. A received-but-unapplied tail (left
/// by a follower recovery) is drained first — batched, one commit —
/// so the fused path never skips it.
fn ship_round(rt: &ReplRuntime, s: usize) {
    let state = &rt.states[s];
    let cell = rt.followers[s].lock();
    let Some(f) = &*cell else { return };
    if f.tm.pmem().pool().is_crashed() {
        state.down.store(true, Ordering::Release);
        state.notify_all();
        return;
    }
    let p = &rt.primaries[s];
    let pending = f.pending();
    if !pending.is_empty() {
        f.apply_batch(&pending);
        let last = pending.last().expect("non-empty").lsn;
        state.applied.fetch_max(last, Ordering::AcqRel);
        ship_crash_check(rt, f, ReplStep::MidApply);
        f.trim_applied(state.applied.load(Ordering::Acquire));
    }
    let received = state.received.load(Ordering::Acquire);
    let Some(fresh) = read_after(&p.tm, rt.ship_tid, p.hdr.offset(P_HEAD), received) else {
        // Lost the read race against appenders (e.g. a prepared 2PC
        // transaction holds the log head); the next round — at latest
        // one ship interval away — retries.
        return;
    };
    let mut processed = !pending.is_empty();
    if !fresh.is_empty() {
        ship_crash_check(rt, f, ReplStep::BeforeReceive);
        // The round's group commit: received and applied in one
        // transaction. Acks unblock at the round's granularity.
        let (recv, appl) = f.receive_apply_batch(&fresh);
        state.received.fetch_max(recv, Ordering::AcqRel);
        state.applied.fetch_max(appl, Ordering::AcqRel);
        state.notify_all();
        ship_crash_check(rt, f, ReplStep::Received);
        // Receive and apply commit together, so "mid-apply" is no
        // longer a distinct durable state; the hook stays a live crash
        // point at the same protocol position.
        ship_crash_check(rt, f, ReplStep::MidApply);
        processed = true;
    }
    if processed {
        let upto = state
            .received
            .load(Ordering::Acquire)
            .min(state.hold.load(Ordering::Acquire));
        if upto.saturating_sub(state.trimmed.load(Ordering::Acquire)) >= PRIMARY_TRIM_BATCH {
            trim_through(&p.tm, rt.ship_tid, p.hdr.offset(P_HEAD), upto);
            state.trimmed.store(upto, Ordering::Release);
        }
        ship_crash_check(rt, f, ReplStep::Applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lsn: u64, kind: LogKind, txid: u64, ops: Vec<MapOp>) -> LogEntry {
        LogEntry {
            lsn,
            kind,
            txid,
            ops,
        }
    }

    #[test]
    fn ingest_is_idempotent_across_the_watermark() {
        let log = vec![
            entry(1, LogKind::Batch, 0, vec![MapOp::Insert(1, 10)]),
            entry(2, LogKind::Prepare, 7, vec![MapOp::Insert(2, 20)]),
            entry(3, LogKind::Batch, 0, vec![MapOp::Remove(1)]),
            entry(4, LogKind::Resolve, 7, vec![]),
        ];
        let whole = Follower::fresh(1 << 12);
        whole.ingest(&log);
        let split = Follower::fresh(1 << 12);
        split.ingest(&log[..2]);
        split.ingest(&log); // overlapping re-send: prefix must be skipped
        assert_eq!(whole.contents(), split.contents());
        assert_eq!(whole.markers(), split.markers());
        assert_eq!(whole.applied_lsn(), 4);
        assert_eq!(split.applied_lsn(), 4);
        assert_eq!(whole.contents(), vec![(2, 20)]);
        assert!(whole.markers().is_empty());
    }

    #[test]
    fn append_read_trim_roundtrip() {
        let tm = NvHalt::new(NvHaltConfig::test(1 << 12, 1));
        let hdr = tm.alloc_raw(0, PRIMARY_HDR_WORDS);
        for i in 1..=5u64 {
            let lsn = tm::txn(&tm, 0, |tx| {
                append_in(tx, hdr, LogKind::Batch, 0, &[MapOp::Insert(i, i * 10)])
            })
            .unwrap();
            assert_eq!(lsn, i);
        }
        let all = read_after(&tm, 0, hdr.offset(P_HEAD), 0).unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].lsn + 1 == w[1].lsn));
        let late = read_after(&tm, 0, hdr.offset(P_HEAD), 3).unwrap();
        assert_eq!(late.len(), 2);
        trim_through(&tm, 0, hdr.offset(P_HEAD), 3);
        let rest = read_after(&tm, 0, hdr.offset(P_HEAD), 0).unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].lsn, 4);
        assert_eq!(last_lsn_raw(&tm, hdr), 5);
    }
}
