//! Property tests for request routing and the single/cross-shard split.
//!
//! Over random op batches, shard counts and slot moves:
//! - `partition_by_shard` is a true partition (every op exactly once, in
//!   its key's shard, groups ordered by first appearance);
//! - the versioned routing table routes every key to exactly one live
//!   shard before, during and after any sequence of slot reassignments,
//!   and a reassignment changes the routing of exactly the moved slots;
//! - the service is sequentially equivalent to a `HashMap` model no
//!   matter how batches mix shards (single-shard fast path and 2PC must
//!   agree on semantics);
//! - single-shard batches never engage the 2PC coordinator, and every
//!   multi-shard batch does;
//! - a deployment that grew by live migration is model-equivalent to a
//!   fresh deployment with the final topology.

use proptest::prelude::*;
use proptest::proptest;
use std::collections::HashMap;

use kvserve::{
    op_key, partition_by_shard, Follower, LogEntry, LogKind, MapOp, MigrateSpec, RoutingTable,
    Service, ServiceConfig, ROUTE_SLOTS,
};

fn op_strategy() -> impl Strategy<Value = MapOp> {
    (0u8..3, 0u64..48, 0u64..1000).prop_map(|(tag, k, v)| match tag {
        0 => MapOp::Get(k),
        1 => MapOp::Insert(k, v),
        _ => MapOp::Remove(k),
    })
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<MapOp>>> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..8), 1..16)
}

fn model_apply(model: &mut HashMap<u64, u64>, op: MapOp) -> Option<u64> {
    match op {
        MapOp::Get(k) => model.get(&k).copied(),
        MapOp::Insert(k, v) => model.insert(k, v),
        MapOp::Remove(k) => model.remove(&k),
    }
}

fn small_cfg(shards: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(shards);
    cfg.heap_words_per_shard = 1 << 13;
    cfg.buckets_per_shard = 32;
    cfg.log_heap_words = 1 << 13;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every op index lands in exactly one group, each group's ops all
    /// route to that group's shard, shards are distinct, and groups are
    /// ordered by first appearance.
    #[test]
    fn partition_is_exact(
        shards in 1usize..9,
        ops in proptest::collection::vec(op_strategy(), 0..32),
    ) {
        let groups = partition_by_shard(&ops, shards);
        let mut seen = vec![false; ops.len()];
        let mut first_seen_order = Vec::new();
        for (s, idxs) in &groups {
            prop_assert!(*s < shards);
            prop_assert!(!idxs.is_empty());
            for &i in idxs {
                prop_assert!(!seen[i], "op {} in two groups", i);
                seen[i] = true;
                prop_assert_eq!(RoutingTable::fresh(shards).route(op_key(ops[i])), *s);
            }
            first_seen_order.push(idxs[0]);
        }
        prop_assert!(seen.iter().all(|&b| b), "some op not partitioned");
        let mut sorted = first_seen_order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(first_seen_order, sorted, "groups not in first-appearance order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Routing is total and exact under any sequence of slot moves:
    /// every key routes to exactly one shard at every step, `slots_of`
    /// partitions the slot space, the epoch counts the moves, and each
    /// move changes the routing of exactly the keys in the moved slots.
    #[test]
    fn routing_survives_arbitrary_slot_moves(
        shards in 1usize..6,
        moves in proptest::collection::vec(
            (proptest::collection::vec(0usize..ROUTE_SLOTS, 1..8), 0usize..8),
            0..6,
        ),
        keys in proptest::collection::vec(0u64..10_000, 16),
    ) {
        let mut table = RoutingTable::fresh(shards);
        prop_assert_eq!(table.epoch(), 0);
        for (step, (mut slots, target)) in moves.into_iter().enumerate() {
            slots.sort_unstable();
            slots.dedup();
            let next = table.reassign(&slots, target);
            prop_assert_eq!(next.epoch(), step as u64 + 1);
            for &k in &keys {
                let slot = RoutingTable::slot_of(k);
                // Exactly one owner, and exactly the moved slots change.
                prop_assert_eq!(next.route(k), next.assignment()[slot] as usize);
                if slots.contains(&slot) {
                    prop_assert_eq!(next.route(k), target);
                } else {
                    prop_assert_eq!(next.route(k), table.route(k));
                }
            }
            // `slots_of` is the inverse view: a disjoint cover of all 64
            // slots across shards.
            let mut covered = vec![0u32; ROUTE_SLOTS];
            for s in 0..next.shards() {
                for slot in next.slots_of(s) {
                    covered[slot] += 1;
                    prop_assert_eq!(next.assignment()[slot] as usize, s);
                }
            }
            prop_assert!(covered.iter().all(|&c| c == 1), "slots_of not a partition");
            table = next;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The service agrees with a sequential `HashMap` model over random
    /// batches regardless of how they split across shards — and the 2PC
    /// coordinator is engaged for exactly the multi-shard batches.
    #[test]
    fn batches_match_model_and_fast_path_bypasses_2pc(
        shards in 1usize..5,
        batches in batches_strategy(),
    ) {
        let svc = Service::new(small_cfg(shards));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut expect_cross = 0u64;
        for ops in &batches {
            if partition_by_shard(ops, shards).len() > 1 {
                expect_cross += 1;
            }
            let expected: Vec<Option<u64>> =
                ops.iter().map(|&op| model_apply(&mut model, op)).collect();
            let got = svc.batch(ops.clone());
            prop_assert_eq!(got.as_ref(), Ok(&expected));
        }
        let snap = svc.snapshot();
        prop_assert_eq!(snap.coordinator.cross_batches, expect_cross);
        // Final state agrees key by key.
        for k in 0..48u64 {
            prop_assert_eq!(svc.get(k), Ok(model.get(&k).copied()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// A deployment grown by live migration stays sequentially
    /// equivalent to the `HashMap` model across the flip, agrees with
    /// the routing table on where every key lives, and ends up
    /// indistinguishable from a fresh deployment holding the same model
    /// under the same (post-migration) topology.
    #[test]
    fn migrated_deployment_matches_model(
        pre in batches_strategy(),
        post in batches_strategy(),
    ) {
        let svc = Service::new(small_cfg(2));
        let mut model: HashMap<u64, u64> = HashMap::new();
        for ops in &pre {
            let expected: Vec<Option<u64>> =
                ops.iter().map(|&op| model_apply(&mut model, op)).collect();
            prop_assert_eq!(svc.batch(ops.clone()), Ok(expected));
        }
        let spec = MigrateSpec::split(&svc.routing(), 0);
        let moved = spec.slots.clone();
        let (svc, report) = svc.migrate(spec);
        prop_assert!(!report.already_applied);
        prop_assert_eq!(report.epoch, 1);
        let table = svc.routing();
        prop_assert_eq!(table.shards(), 3);
        prop_assert_eq!(table.slots_of(2), moved);
        // Traffic across the flip still matches the model...
        for ops in &post {
            let expected: Vec<Option<u64>> =
                ops.iter().map(|&op| model_apply(&mut model, op)).collect();
            prop_assert_eq!(svc.batch(ops.clone()), Ok(expected));
        }
        // ...every key answers from where the table says it lives...
        for k in 0..48u64 {
            prop_assert_eq!(svc.get(k), Ok(model.get(&k).copied()));
            prop_assert_eq!(svc.shard_of(k), table.route(k));
        }
        // ...and a fresh deployment migrated to the same topology and
        // loaded with the same model is indistinguishable through the
        // API: same assignment, same answer for every key.
        let fresh = Service::new(small_cfg(2));
        let (fresh, _) = fresh.migrate(MigrateSpec { source: 0, slots: moved });
        for (k, v) in &model {
            fresh.put(*k, *v).unwrap();
        }
        let fresh_table = fresh.routing();
        prop_assert_eq!(fresh_table.assignment(), table.assignment());
        for k in 0..48u64 {
            prop_assert_eq!(fresh.get(k), svc.get(k));
        }
    }
}

// ---------------------------------------------------------------------------
// Wire-frame codec properties: arbitrary batches survive the wire
// byte-for-byte, and arbitrary bytes — truncations, hostile headers,
// garbage — decode to clean errors, never panics, never partial frames.
// ---------------------------------------------------------------------------

use kvserve::net::{
    decode_frame, encode_request, encode_response, Frame, FrameError, HEADER_LEN, MAX_BODY,
    PROTOCOL_VERSION,
};
use kvserve::{Reply, ServeError};
use std::time::Duration;

fn reply_strategy() -> impl Strategy<Value = Reply> {
    prop_oneof![
        proptest::collection::vec(proptest::option::of(any::<u64>()), 0..16).prop_map(Ok),
        Just(Err(ServeError::Timeout)),
        Just(Err(ServeError::Aborted)),
        Just(Err(ServeError::Stopped)),
        Just(Err(ServeError::Rerouted)),
        Just(Err(ServeError::CrossShard)),
        (0u64..1_000_000).prop_map(|us| Err(ServeError::Overloaded {
            retry_after: Duration::from_micros(us),
        })),
        Just(Err(ServeError::RingFull)),
    ]
}

/// What the decoder should hand back for an encoded reply: `RingFull`
/// crosses the wire as `Busy` with a zero retry hint, everything else
/// is identity.
fn wire_normalize(reply: &Reply) -> Reply {
    match reply {
        Err(ServeError::RingFull) => Err(ServeError::Overloaded {
            retry_after: Duration::ZERO,
        }),
        other => other.clone(),
    }
}

fn wide_op_strategy() -> impl Strategy<Value = MapOp> {
    (0u8..3, any::<u64>(), any::<u64>()).prop_map(|(tag, k, v)| match tag {
        0 => MapOp::Get(k),
        1 => MapOp::Insert(k, v),
        _ => MapOp::Remove(k),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// A stream of arbitrary request and response frames encodes into
    /// one buffer and decodes back frame-for-frame identical, consuming
    /// exactly the bytes written — no drift, no trailing slop.
    #[test]
    fn frames_roundtrip_through_the_wire(
        frames in proptest::collection::vec(
            prop_oneof![
                (any::<u64>(), any::<u64>(), proptest::collection::vec(wide_op_strategy(), 0..32))
                    .prop_map(|(corr, dl, ops)| (corr, Some(dl), Ok(ops))),
                (any::<u64>(), reply_strategy()).prop_map(|(corr, r)| (corr, None, Err(r))),
            ],
            1..12,
        ),
    ) {
        let mut buf = Vec::new();
        for (corr, deadline, payload) in &frames {
            match payload {
                Ok(ops) => encode_request(&mut buf, *corr, deadline.unwrap(), ops),
                Err(reply) => encode_response(&mut buf, *corr, reply),
            }
        }
        let mut at = 0;
        for (corr, deadline, payload) in &frames {
            let (frame, used) = decode_frame(&buf[at..]).expect("valid frame");
            at += used;
            match (frame, payload) {
                (Frame::Request(req), Ok(ops)) => {
                    prop_assert_eq!(req.corr, *corr);
                    prop_assert_eq!(req.deadline_micros, deadline.unwrap());
                    prop_assert_eq!(&req.ops, ops);
                }
                (Frame::Response(resp), Err(reply)) => {
                    prop_assert_eq!(resp.corr, *corr);
                    prop_assert_eq!(resp.reply, wire_normalize(reply));
                }
                (got, _) => prop_assert!(false, "frame kind flipped on the wire: {:?}", got),
            }
        }
        prop_assert_eq!(at, buf.len(), "codec drifted off the frame boundary");
        prop_assert_eq!(decode_frame(&buf[at..]), Err(FrameError::Closed));
    }

    /// Every strict prefix of a valid frame is `Truncated` (empty is
    /// `Closed`) — a cut never panics, never yields a frame, and never
    /// misreports where the stream died.
    #[test]
    fn every_truncation_is_clean(
        corr in any::<u64>(),
        deadline in any::<u64>(),
        ops in proptest::collection::vec(wide_op_strategy(), 0..16),
        reply in reply_strategy(),
    ) {
        let mut buf = Vec::new();
        encode_request(&mut buf, corr, deadline, &ops);
        encode_response(&mut buf, corr, &reply);
        for cut in 0..buf.len() {
            let want = if cut == 0 { FrameError::Closed } else { FrameError::Truncated };
            // Cuts inside the *second* frame still decode the first.
            let got = decode_frame(&buf[..cut]);
            match got {
                Err(e) => prop_assert_eq!(e, want, "cut at {}", cut),
                Ok((_, used)) => prop_assert!(
                    used <= cut && decode_frame(&buf[used..cut]) == Err(if used == cut {
                        FrameError::Closed
                    } else {
                        FrameError::Truncated
                    }),
                    "cut at {} leaked past the boundary", cut
                ),
            }
        }
    }

    /// Arbitrary bytes never panic the decoder, and a hostile length
    /// field is rejected *before* any allocation: oversized headers and
    /// unknown versions fail on the 8 header bytes alone.
    #[test]
    fn hostile_bytes_fail_closed(
        junk in proptest::collection::vec(any::<u8>(), 0..96),
        body_len in (MAX_BODY + 1)..u32::MAX,
        version in 0u8..=255,
    ) {
        // Whatever the bytes, the decoder returns; it never panics.
        let _ = decode_frame(&junk);

        let mut hostile = body_len.to_le_bytes().to_vec();
        hostile.extend_from_slice(&[PROTOCOL_VERSION, 1, 0, 0]);
        prop_assert_eq!(decode_frame(&hostile), Err(FrameError::Oversized(body_len)));
        prop_assert_eq!(hostile.len(), HEADER_LEN);

        if version != PROTOCOL_VERSION {
            let mut wrong = 0u32.to_le_bytes().to_vec();
            wrong.extend_from_slice(&[version, 1, 0, 0]);
            prop_assert_eq!(decode_frame(&wrong), Err(FrameError::BadVersion(version)));
        }
    }
}

fn log_entry_strategy() -> impl Strategy<Value = (u8, u64, Vec<MapOp>)> {
    let mutation = (1u8..3, 0u64..32, 0u64..1000).prop_map(|(tag, k, v)| match tag {
        1 => MapOp::Insert(k, v),
        _ => MapOp::Remove(k),
    });
    (0u8..3, 1u64..8, proptest::collection::vec(mutation, 1..4))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Log application composes over prefixes: applying a prefix, then
    /// the remainder — including an arbitrary overlapping re-delivery of
    /// the prefix's tail, as a shipper retrying after a crash would —
    /// yields exactly the state of applying the whole log once. The
    /// follower's durable applied-LSN watermark is what makes the
    /// re-delivered entries no-ops.
    #[test]
    fn log_application_is_prefix_composable(
        raw in proptest::collection::vec(log_entry_strategy(), 1..20),
        split_seed in 0usize..20,
        overlap in 0usize..5,
    ) {
        let entries: Vec<LogEntry> = raw
            .iter()
            .enumerate()
            .map(|(i, (kind, txid, muts))| {
                let (kind, txid, ops) = match kind {
                    0 => (LogKind::Batch, 0, muts.clone()),
                    1 => (LogKind::Prepare, *txid, muts.clone()),
                    // Resolve entries carry no mutations; resolving an
                    // absent marker is legal (idempotent replay).
                    _ => (LogKind::Resolve, *txid, Vec::new()),
                };
                LogEntry { lsn: i as u64 + 1, kind, txid, ops }
            })
            .collect();
        let split = split_seed % (entries.len() + 1);

        let whole = Follower::fresh(1 << 14);
        whole.ingest(&entries);

        let parts = Follower::fresh(1 << 14);
        parts.ingest(&entries[..split]);
        let from = split.saturating_sub(overlap);
        parts.ingest(&entries[from..]);

        prop_assert_eq!(whole.contents(), parts.contents());
        prop_assert_eq!(whole.markers(), parts.markers());
        prop_assert_eq!(whole.applied_lsn(), parts.applied_lsn());
        prop_assert_eq!(whole.applied_lsn(), entries.len() as u64);
    }
}
