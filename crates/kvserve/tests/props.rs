//! Property tests for request routing and the single/cross-shard split.
//!
//! Three properties over random op batches and shard counts:
//! - `partition_by_shard` is a true partition (every op exactly once, in
//!   its key's shard, groups ordered by first appearance);
//! - the service is sequentially equivalent to a `HashMap` model no
//!   matter how batches mix shards (single-shard fast path and 2PC must
//!   agree on semantics);
//! - single-shard batches never engage the 2PC coordinator, and every
//!   multi-shard batch does.

use proptest::prelude::*;
use proptest::proptest;
use std::collections::HashMap;

use kvserve::{
    op_key, partition_by_shard, shard_of_key, Follower, LogEntry, LogKind, MapOp, Service,
    ServiceConfig,
};

fn op_strategy() -> impl Strategy<Value = MapOp> {
    (0u8..3, 0u64..48, 0u64..1000).prop_map(|(tag, k, v)| match tag {
        0 => MapOp::Get(k),
        1 => MapOp::Insert(k, v),
        _ => MapOp::Remove(k),
    })
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<MapOp>>> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..8), 1..16)
}

fn model_apply(model: &mut HashMap<u64, u64>, op: MapOp) -> Option<u64> {
    match op {
        MapOp::Get(k) => model.get(&k).copied(),
        MapOp::Insert(k, v) => model.insert(k, v),
        MapOp::Remove(k) => model.remove(&k),
    }
}

fn small_cfg(shards: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(shards);
    cfg.heap_words_per_shard = 1 << 13;
    cfg.buckets_per_shard = 32;
    cfg.log_heap_words = 1 << 13;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every op index lands in exactly one group, each group's ops all
    /// route to that group's shard, shards are distinct, and groups are
    /// ordered by first appearance.
    #[test]
    fn partition_is_exact(
        shards in 1usize..9,
        ops in proptest::collection::vec(op_strategy(), 0..32),
    ) {
        let groups = partition_by_shard(&ops, shards);
        let mut seen = vec![false; ops.len()];
        let mut first_seen_order = Vec::new();
        for (s, idxs) in &groups {
            prop_assert!(*s < shards);
            prop_assert!(!idxs.is_empty());
            for &i in idxs {
                prop_assert!(!seen[i], "op {} in two groups", i);
                seen[i] = true;
                prop_assert_eq!(shard_of_key(op_key(ops[i]), shards), *s);
            }
            first_seen_order.push(idxs[0]);
        }
        prop_assert!(seen.iter().all(|&b| b), "some op not partitioned");
        let mut sorted = first_seen_order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(first_seen_order, sorted, "groups not in first-appearance order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The service agrees with a sequential `HashMap` model over random
    /// batches regardless of how they split across shards — and the 2PC
    /// coordinator is engaged for exactly the multi-shard batches.
    #[test]
    fn batches_match_model_and_fast_path_bypasses_2pc(
        shards in 1usize..5,
        batches in batches_strategy(),
    ) {
        let svc = Service::new(small_cfg(shards));
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut expect_cross = 0u64;
        for ops in &batches {
            if partition_by_shard(ops, shards).len() > 1 {
                expect_cross += 1;
            }
            let expected: Vec<Option<u64>> =
                ops.iter().map(|&op| model_apply(&mut model, op)).collect();
            let got = svc.batch(ops.clone());
            prop_assert_eq!(got.as_ref(), Ok(&expected));
        }
        let snap = svc.snapshot();
        prop_assert_eq!(snap.coordinator.cross_batches, expect_cross);
        // Final state agrees key by key.
        for k in 0..48u64 {
            prop_assert_eq!(svc.get(k), Ok(model.get(&k).copied()));
        }
    }
}

fn log_entry_strategy() -> impl Strategy<Value = (u8, u64, Vec<MapOp>)> {
    let mutation = (1u8..3, 0u64..32, 0u64..1000).prop_map(|(tag, k, v)| match tag {
        1 => MapOp::Insert(k, v),
        _ => MapOp::Remove(k),
    });
    (0u8..3, 1u64..8, proptest::collection::vec(mutation, 1..4))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Log application composes over prefixes: applying a prefix, then
    /// the remainder — including an arbitrary overlapping re-delivery of
    /// the prefix's tail, as a shipper retrying after a crash would —
    /// yields exactly the state of applying the whole log once. The
    /// follower's durable applied-LSN watermark is what makes the
    /// re-delivered entries no-ops.
    #[test]
    fn log_application_is_prefix_composable(
        raw in proptest::collection::vec(log_entry_strategy(), 1..20),
        split_seed in 0usize..20,
        overlap in 0usize..5,
    ) {
        let entries: Vec<LogEntry> = raw
            .iter()
            .enumerate()
            .map(|(i, (kind, txid, muts))| {
                let (kind, txid, ops) = match kind {
                    0 => (LogKind::Batch, 0, muts.clone()),
                    1 => (LogKind::Prepare, *txid, muts.clone()),
                    // Resolve entries carry no mutations; resolving an
                    // absent marker is legal (idempotent replay).
                    _ => (LogKind::Resolve, *txid, Vec::new()),
                };
                LogEntry { lsn: i as u64 + 1, kind, txid, ops }
            })
            .collect();
        let split = split_seed % (entries.len() + 1);

        let whole = Follower::fresh(1 << 14);
        whole.ingest(&entries);

        let parts = Follower::fresh(1 << 14);
        parts.ingest(&entries[..split]);
        let from = split.saturating_sub(overlap);
        parts.ingest(&entries[from..]);

        prop_assert_eq!(whole.contents(), parts.contents());
        prop_assert_eq!(whole.markers(), parts.markers());
        prop_assert_eq!(whole.applied_lsn(), parts.applied_lsn());
        prop_assert_eq!(whole.applied_lsn(), entries.len() as u64);
    }
}
