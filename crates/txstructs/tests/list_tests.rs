//! Tests for the transactional sorted list: oracle equivalence,
//! long-snapshot behaviour (HTM capacity pressure + software fallback),
//! concurrency, and crash recovery.

use nvhalt::{NvHalt, NvHaltConfig};
use std::collections::BTreeMap;
use tm::stats::Counter;
use tm::Tm;
use txstructs::SortedList;

fn tm(words: usize, threads: usize) -> NvHalt {
    NvHalt::new(NvHaltConfig::test(words, threads))
}

#[test]
fn insert_get_remove_roundtrip() {
    let tm = tm(1 << 12, 1);
    let l = SortedList::create(&tm, 0).unwrap();
    assert_eq!(l.get(&tm, 0, 5).unwrap(), None);
    assert_eq!(l.insert(&tm, 0, 5, 50).unwrap(), None);
    assert_eq!(l.insert(&tm, 0, 3, 30).unwrap(), None);
    assert_eq!(l.insert(&tm, 0, 7, 70).unwrap(), None);
    assert_eq!(l.get(&tm, 0, 5).unwrap(), Some(50));
    assert_eq!(l.insert(&tm, 0, 5, 55).unwrap(), Some(50));
    assert_eq!(l.collect_raw(&tm), vec![(3, 30), (5, 55), (7, 70)]);
    assert_eq!(l.remove(&tm, 0, 5).unwrap(), Some(55));
    assert_eq!(l.remove(&tm, 0, 5).unwrap(), None);
    assert_eq!(l.check_sorted(&tm).unwrap(), 2);
}

#[test]
fn matches_oracle_on_mixed_ops() {
    let tm = tm(1 << 14, 1);
    let l = SortedList::create(&tm, 0).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = 0x1357_9bdf_u64;
    for step in 0..4_000 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = 1 + rng % 128;
        let v = rng >> 32;
        match step % 3 {
            0 | 1 => assert_eq!(l.insert(&tm, 0, k, v).unwrap(), oracle.insert(k, v)),
            _ => assert_eq!(l.remove(&tm, 0, k).unwrap(), oracle.remove(&k)),
        }
    }
    assert_eq!(l.collect_raw(&tm), oracle.into_iter().collect::<Vec<_>>());
    l.check_sorted(&tm).unwrap();
}

#[test]
fn long_snapshot_sum_is_consistent_under_writers() {
    // Writers preserve the total sum; concurrent whole-list snapshots
    // must always observe it.
    let tm = tm(1 << 16, 3);
    let l = SortedList::create(&tm, 0).unwrap();
    const N: u64 = 150;
    for k in 1..=N {
        l.insert(&tm, 0, k, 100).unwrap();
    }
    let expected = N * 100;
    std::thread::scope(|s| {
        for t in 0..2usize {
            let tm = &tm;
            let l = &l;
            s.spawn(move || {
                let mut rng = (t as u64 + 1) * 0x9e37_79b9;
                for _ in 0..400 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    // Move 10 units between two keys (sum-preserving).
                    let a = 1 + rng % N;
                    let b = 1 + (rng >> 16) % N;
                    if a == b {
                        continue;
                    }
                    let _ = tm::txn(tm, t, |tx| {
                        let la = l;
                        // Raw two-key update through the list API is two
                        // txns; do it with one txn via get+insert
                        // combination instead: read both, write both.
                        let _ = la;
                        let va = read_val(tx, l, a)?;
                        let vb = read_val(tx, l, b)?;
                        if va < 10 {
                            return Err(tm::Abort::Cancel);
                        }
                        write_val(tx, l, a, va - 10)?;
                        write_val(tx, l, b, vb + 10)
                    });
                }
            });
        }
        let tm = &tm;
        let l = &l;
        s.spawn(move || {
            for _ in 0..100 {
                assert_eq!(l.sum(tm, 2).unwrap(), expected, "torn snapshot");
            }
        });
    });
    assert_eq!(l.sum(&tm, 0).unwrap(), expected);
}

/// In-transaction helpers for the sum-preserving test: locate a key's
/// node and read/write its value within the caller's transaction.
fn read_val(tx: &mut dyn tm::Txn, l: &SortedList, k: u64) -> Result<u64, tm::Abort> {
    let mut cur = tx.read(l.head_addr().offset(2))?;
    for _ in 0..4096 {
        if cur == 0 {
            return Err(tm::Abort::CONFLICT);
        }
        let node = tm::Addr(cur);
        if tx.read(node)? == k {
            return tx.read(node.offset(1));
        }
        cur = tx.read(node.offset(2))?;
    }
    Err(tm::Abort::CONFLICT)
}

fn write_val(tx: &mut dyn tm::Txn, l: &SortedList, k: u64, v: u64) -> Result<(), tm::Abort> {
    let mut cur = tx.read(l.head_addr().offset(2))?;
    for _ in 0..4096 {
        if cur == 0 {
            return Err(tm::Abort::CONFLICT);
        }
        let node = tm::Addr(cur);
        if tx.read(node)? == k {
            return tx.write(node.offset(1), v);
        }
        cur = tx.read(node.offset(2))?;
    }
    Err(tm::Abort::CONFLICT)
}

#[test]
fn long_list_overflows_htm_and_falls_back() {
    // A whole-list sum over a long list exceeds the HTM read capacity:
    // the transaction must fall back to software and still succeed.
    let mut cfg = NvHaltConfig::test(1 << 16, 1);
    cfg.htm.max_read_entries = 64;
    let tmem = NvHalt::new(cfg);
    let l = SortedList::create(&tmem, 0).unwrap();
    for k in 1..=500u64 {
        l.insert(&tmem, 0, k, 1).unwrap();
    }
    let before_cap = tmem.stats().get(Counter::HwCapacity);
    assert_eq!(l.sum(&tmem, 0).unwrap(), 500);
    let s = tmem.stats();
    assert!(
        s.get(Counter::HwCapacity) > before_cap,
        "expected a capacity abort: {s}"
    );
}

#[test]
fn survives_crash_and_recovery() {
    let cfg = NvHaltConfig::test(1 << 14, 2);
    let tmem = NvHalt::new(cfg.clone());
    let l = SortedList::create(&tmem, 0).unwrap();
    for k in 1..=200u64 {
        l.insert(&tmem, (k % 2) as usize, k, k * 2).unwrap();
    }
    for k in (1..=200u64).step_by(3) {
        l.remove(&tmem, 0, k).unwrap();
    }
    let expected = l.collect_raw(&tmem);
    let head = l.head_addr();
    tmem.crash();
    let rec = NvHalt::recover_with(cfg, &tmem.crash_image());
    let l2 = SortedList::attach(head);
    rec.rebuild_allocator(l2.used_blocks(&rec));
    assert_eq!(l2.collect_raw(&rec), expected);
    l2.check_sorted(&rec).unwrap();
    // Freed nodes were excluded from used_blocks: allocation still works.
    l2.insert(&rec, 0, 1_000, 1).unwrap();
    assert_eq!(l2.get(&rec, 0, 1_000).unwrap(), Some(1));
}
