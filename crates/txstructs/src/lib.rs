//! Transactional data structures over the generic [`tm::Tm`] API — the two
//! micro-benchmark structures of the paper's evaluation (§5):
//!
//! * [`AbTree`] — an (a,b)-tree with a = 4, b = 16 (Figure 8, row 1);
//! * [`HashMapTx`] — a fixed-bucket hashmap whose removes mark nodes
//!   empty instead of freeing (Figure 8, row 2).
//!
//! Because both are written against the `Tm` trait, the same structure
//! code runs unchanged over all three NV-HALT variants, Trinity and SPHT,
//! which is what makes the throughput comparisons apples-to-apples.

pub mod abtree;
pub mod hashmap;
pub mod list;

pub use abtree::AbTree;
pub use hashmap::{HashMapTx, MapOp};
pub use list::SortedList;

#[cfg(test)]
mod tests {
    use super::*;
    use nvhalt::{NvHalt, NvHaltConfig};
    use spht::{Spht, SphtConfig};
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use tm::Tm;
    use trinity::{Trinity, TrinityConfig};

    fn nv(words: usize, threads: usize) -> NvHalt {
        NvHalt::new(NvHaltConfig::test(words, threads))
    }

    // ------------------------------------------------------------------
    // (a,b)-tree
    // ------------------------------------------------------------------

    #[test]
    fn tree_insert_get_remove_roundtrip() {
        let tm = nv(1 << 14, 1);
        let t = AbTree::create(&tm, 0).unwrap();
        assert_eq!(t.get(&tm, 0, 5).unwrap(), None);
        assert_eq!(t.insert(&tm, 0, 5, 50).unwrap(), None);
        assert_eq!(t.get(&tm, 0, 5).unwrap(), Some(50));
        assert_eq!(t.insert(&tm, 0, 5, 55).unwrap(), Some(50));
        assert_eq!(t.remove(&tm, 0, 5).unwrap(), Some(55));
        assert_eq!(t.get(&tm, 0, 5).unwrap(), None);
        assert_eq!(t.remove(&tm, 0, 5).unwrap(), None);
    }

    #[test]
    fn tree_grows_through_many_splits() {
        let tm = nv(1 << 18, 1);
        let t = AbTree::create(&tm, 0).unwrap();
        for k in 0..2_000u64 {
            assert_eq!(t.insert(&tm, 0, k * 7 % 2_000, k).unwrap_or(None), {
                // first time each key appears
                None
            });
        }
        let n = t.check_invariants(&tm).expect("invariants");
        assert_eq!(n, 2_000);
        for k in 0..2_000u64 {
            assert!(t.get(&tm, 0, k).unwrap().is_some(), "missing {k}");
        }
    }

    #[test]
    fn tree_matches_btreemap_oracle_on_mixed_ops() {
        let tm = nv(1 << 18, 1);
        let t = AbTree::create(&tm, 0).unwrap();
        let mut oracle = BTreeMap::new();
        let mut rng = 0x1234_5678_u64;
        for step in 0..8_000 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let k = rng % 512;
            let v = rng >> 32;
            match step % 3 {
                0 | 1 => {
                    let expect = oracle.insert(k, v);
                    assert_eq!(t.insert(&tm, 0, k, v).unwrap(), expect, "insert {k}");
                }
                _ => {
                    let expect = oracle.remove(&k);
                    assert_eq!(t.remove(&tm, 0, k).unwrap(), expect, "remove {k}");
                }
            }
            if step % 1000 == 0 {
                t.check_invariants(&tm).expect("invariants");
            }
        }
        let got = t.collect_raw(&tm);
        let want: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(got, want);
        t.check_invariants(&tm).expect("final invariants");
    }

    #[test]
    fn tree_remove_shrinks_back_to_empty() {
        let tm = nv(1 << 18, 1);
        let t = AbTree::create(&tm, 0).unwrap();
        for k in 0..1_000u64 {
            t.insert(&tm, 0, k, k).unwrap();
        }
        for k in 0..1_000u64 {
            assert_eq!(t.remove(&tm, 0, k).unwrap(), Some(k), "remove {k}");
            if k % 250 == 0 {
                t.check_invariants(&tm).expect("invariants during drain");
            }
        }
        assert_eq!(t.collect_raw(&tm), vec![]);
    }

    #[test]
    fn tree_descending_and_alternating_inserts() {
        let tm = nv(1 << 18, 1);
        let t = AbTree::create(&tm, 0).unwrap();
        for k in (0..500u64).rev() {
            t.insert(&tm, 0, k, k + 1).unwrap();
        }
        for k in 500..1_000u64 {
            let k = if k % 2 == 0 { k } else { 1_500 - k };
            t.insert(&tm, 0, k, k + 1).unwrap();
        }
        assert_eq!(t.check_invariants(&tm).unwrap(), 1_000);
    }

    #[test]
    fn tree_concurrent_disjoint_inserts_all_present() {
        let tm = Arc::new(nv(1 << 20, 4));
        let t = AbTree::create(&*tm, 0).unwrap();
        let mut handles = Vec::new();
        for tid in 0..4usize {
            let tm = tm.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_500u64 {
                    let k = (i * 4) + tid as u64;
                    t.insert(&*tm, tid, k, k * 10).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.check_invariants(&*tm).unwrap(), 6_000);
        for k in 0..6_000u64 {
            assert_eq!(t.get(&*tm, 0, k).unwrap(), Some(k * 10));
        }
    }

    #[test]
    fn tree_concurrent_mixed_ops_keep_invariants() {
        let tm = Arc::new(nv(1 << 20, 4));
        let t = AbTree::create(&*tm, 0).unwrap();
        let mut handles = Vec::new();
        for tid in 0..4usize {
            let tm = tm.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = (tid as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                for _ in 0..3_000 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let k = rng % 400;
                    match rng >> 60 & 3 {
                        0 | 1 => {
                            t.insert(&*tm, tid, k, rng).unwrap();
                        }
                        2 => {
                            t.remove(&*tm, tid, k).unwrap();
                        }
                        _ => {
                            t.get(&*tm, tid, k).unwrap();
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        t.check_invariants(&*tm)
            .expect("invariants after contention");
    }

    #[test]
    fn tree_works_on_trinity_and_spht() {
        // Trinity
        let tr = Trinity::new(TrinityConfig::test(1 << 16, 2));
        let t = AbTree::create(&tr, 0).unwrap();
        for k in 0..500u64 {
            t.insert(&tr, 0, k, k).unwrap();
        }
        assert_eq!(t.check_invariants(&tr).unwrap(), 500);
        assert_eq!(t.get(&tr, 1, 250).unwrap(), Some(250));

        // SPHT
        let sp = Spht::new(SphtConfig::test(1 << 16, 2));
        let t = AbTree::create(&sp, 0).unwrap();
        for k in 0..500u64 {
            t.insert(&sp, 0, k, k).unwrap();
        }
        assert_eq!(t.check_invariants(&sp).unwrap(), 500);
        assert_eq!(t.remove(&sp, 1, 250).unwrap(), Some(250));
        assert_eq!(t.check_invariants(&sp).unwrap(), 499);
    }

    #[test]
    fn tree_survives_crash_and_recovery() {
        let cfg = NvHaltConfig::test(1 << 16, 2);
        let tm = NvHalt::new(cfg.clone());
        let t = AbTree::create(&tm, 0).unwrap();
        for k in 0..800u64 {
            t.insert(&tm, (k % 2) as usize, k, k * 3).unwrap();
        }
        let root_slot = t.root_slot();
        tm.crash();
        let img = tm.crash_image();
        let rec = NvHalt::recover_with(cfg, &img);
        let t2 = AbTree::attach(root_slot);
        rec.rebuild_allocator(t2.used_blocks(&rec));
        assert_eq!(t2.check_invariants(&rec).unwrap(), 800);
        for k in 0..800u64 {
            assert_eq!(t2.get(&rec, 0, k).unwrap(), Some(k * 3), "key {k}");
        }
        // The recovered tree keeps working (allocator rebuilt correctly).
        for k in 800..1_200u64 {
            t2.insert(&rec, 0, k, k).unwrap();
        }
        assert_eq!(t2.check_invariants(&rec).unwrap(), 1_200);
    }

    // ------------------------------------------------------------------
    // hashmap
    // ------------------------------------------------------------------

    #[test]
    fn hashmap_insert_get_remove_roundtrip() {
        let tm = nv(1 << 14, 1);
        let m = HashMapTx::create(&tm, 0, 64).unwrap();
        assert_eq!(m.get(&tm, 0, 9).unwrap(), None);
        assert_eq!(m.insert(&tm, 0, 9, 90).unwrap(), None);
        assert_eq!(m.get(&tm, 0, 9).unwrap(), Some(90));
        assert_eq!(m.insert(&tm, 0, 9, 91).unwrap(), Some(90));
        assert_eq!(m.remove(&tm, 0, 9).unwrap(), Some(91));
        assert_eq!(m.get(&tm, 0, 9).unwrap(), None);
        assert_eq!(m.remove(&tm, 0, 9).unwrap(), None);
    }

    #[test]
    fn hashmap_remove_marks_empty_and_insert_reuses() {
        let tm = nv(1 << 14, 1);
        let m = HashMapTx::create(&tm, 0, 4).unwrap(); // force chains
        for k in 0..64u64 {
            m.insert(&tm, 0, k, k).unwrap();
        }
        let blocks_before = m.used_blocks(&tm).len();
        for k in 0..32u64 {
            m.remove(&tm, 0, k).unwrap();
        }
        // Nodes are marked, not freed: block count unchanged.
        assert_eq!(m.used_blocks(&tm).len(), blocks_before);
        // Re-inserting reuses empties: still no new blocks.
        for k in 0..32u64 {
            m.insert(&tm, 0, k, k + 1).unwrap();
        }
        assert_eq!(m.used_blocks(&tm).len(), blocks_before);
        assert_eq!(m.get(&tm, 0, 5).unwrap(), Some(6));
    }

    #[test]
    fn hashmap_matches_oracle_on_mixed_ops() {
        let tm = nv(1 << 16, 1);
        let m = HashMapTx::create(&tm, 0, 32).unwrap();
        let mut oracle = BTreeMap::new();
        let mut rng = 0xdead_beef_u64;
        for step in 0..8_000 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let k = rng % 256;
            let v = rng >> 32;
            match step % 3 {
                0 | 1 => assert_eq!(m.insert(&tm, 0, k, v).unwrap(), oracle.insert(k, v)),
                _ => assert_eq!(m.remove(&tm, 0, k).unwrap(), oracle.remove(&k)),
            }
        }
        assert_eq!(m.collect_raw(&tm), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn hashmap_concurrent_disjoint_inserts() {
        let tm = Arc::new(nv(1 << 18, 4));
        let m = HashMapTx::create(&*tm, 0, 256).unwrap();
        let mut handles = Vec::new();
        for tid in 0..4usize {
            let tm = tm.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let k = i * 4 + tid as u64;
                    m.insert(&*tm, tid, k, k + 1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.collect_raw(&*tm).len(), 8_000);
        for k in 0..8_000u64 {
            assert_eq!(m.get(&*tm, 0, k).unwrap(), Some(k + 1));
        }
    }

    fn hashmap_battery<T: Tm>(tm: &T) {
        let m = HashMapTx::create(tm, 0, 16).unwrap();
        for k in 0..200u64 {
            m.insert(tm, 0, k, k * 2).unwrap();
        }
        for k in (0..200u64).step_by(2) {
            m.remove(tm, 0, k).unwrap();
        }
        assert_eq!(m.collect_raw(tm).len(), 100, "{}", tm.name());
        assert_eq!(m.get(tm, 0, 3).unwrap(), Some(6), "{}", tm.name());
        assert_eq!(m.get(tm, 0, 4).unwrap(), None, "{}", tm.name());
    }

    #[test]
    fn hashmap_works_on_all_tms() {
        hashmap_battery(&nv(1 << 14, 1));
        hashmap_battery(&Trinity::new(TrinityConfig::test(1 << 14, 1)));
        hashmap_battery(&Spht::new(SphtConfig::test(1 << 14, 1)));
    }

    #[test]
    fn hashmap_survives_crash_and_recovery() {
        let cfg = NvHaltConfig::test(1 << 16, 2);
        let tm = NvHalt::new(cfg.clone());
        let m = HashMapTx::create(&tm, 0, 64).unwrap();
        for k in 0..500u64 {
            m.insert(&tm, (k % 2) as usize, k, k + 7).unwrap();
        }
        for k in 0..100u64 {
            m.remove(&tm, 0, k).unwrap();
        }
        let (buckets, nb) = (m.buckets_addr(), m.nbuckets());
        tm.crash();
        let rec = NvHalt::recover_with(cfg, &tm.crash_image());
        let m2 = HashMapTx::attach(buckets, nb);
        rec.rebuild_allocator(m2.used_blocks(&rec));
        assert_eq!(m2.collect_raw(&rec).len(), 400);
        assert_eq!(m2.get(&rec, 0, 50).unwrap(), None);
        assert_eq!(m2.get(&rec, 0, 450).unwrap(), Some(457));
        // Keeps working post-recovery.
        m2.insert(&rec, 0, 9999, 1).unwrap();
        assert_eq!(m2.get(&rec, 0, 9999).unwrap(), Some(1));
    }
}
