//! A transactional (a,b)-tree with a = 4, b = 16 — the tree micro-benchmark
//! of §5 (Figure 8, row 1).
//!
//! The tree is a B+-tree over `u64 → u64`: internal nodes hold up to 15
//! separator keys (16 children, at least 4), leaves hold up to 16 key/value
//! pairs (at least 4). All operations run inside a single transaction and
//! use *preemptive* restructuring — full children are split and minimal
//! children are fixed (borrow/merge) on the way down — so no parent stack
//! is needed and every operation touches one root-to-leaf path. Updates
//! therefore involve the "expensive rebalancing operations" the paper
//! credits for the tree's larger transaction footprints.
//!
//! Node layout (34 words):
//!
//! ```text
//! word 0      header: (is_leaf << 8) | count
//! words 1..17  keys[16]   (internal nodes use at most 15)
//! words 17..34 slots[17]  (leaf: values aligned with keys; internal: children)
//! ```
//!
//! Traversals carry *fuel*: a doomed hardware transaction can observe an
//! inconsistent snapshot and wander, so loops are bounded and bail out
//! with a retry (real HTM would have aborted the zombie eagerly).

use tm::{Abort, Addr, Tm, TxResult, Txn};

/// Maximum keys in a leaf / children in an internal node (the paper's b).
pub const B: usize = 16;
/// Minimum children of a non-root internal node (the paper's a).
pub const A: usize = 4;

const MAX_IKEYS: usize = B - 1;
const MIN_LEAF: usize = A;
const MIN_IKEYS: usize = A - 1;

/// Words per node.
pub const NODE_WORDS: usize = 34;

const K_OFF: u64 = 1;
const P_OFF: u64 = 17;

/// Traversal fuel: well past any legitimate path length.
const FUEL: usize = 1 << 12;

/// A handle to a transactional (a,b)-tree. The handle itself is plain data
/// (an address); clones refer to the same tree.
#[derive(Clone, Copy, Debug)]
pub struct AbTree {
    root_slot: Addr,
}

type TxRef<'a> = &'a mut dyn Txn;
type EmitFn<'a> = &'a mut dyn FnMut(&mut Vec<(u64, u64)>, u64, u64);

fn hdr(tx: TxRef, node: Addr) -> Result<(bool, usize), Abort> {
    let h = tx.read(node)?;
    let count = (h & 0xff) as usize;
    // Defensive decode: a zombie can read garbage; clamp instead of
    // indexing out of bounds.
    if count > B {
        return Err(Abort::CONFLICT);
    }
    Ok((h >> 8 & 1 == 1, count))
}

fn set_hdr(tx: TxRef, node: Addr, leaf: bool, count: usize) -> Result<(), Abort> {
    tx.write(node, ((leaf as u64) << 8) | count as u64)
}

fn key(tx: TxRef, node: Addr, i: usize) -> Result<u64, Abort> {
    tx.read(node.offset(K_OFF + i as u64))
}

fn set_key(tx: TxRef, node: Addr, i: usize, k: u64) -> Result<(), Abort> {
    tx.write(node.offset(K_OFF + i as u64), k)
}

/// Leaf value or internal child at slot `i`.
fn slot(tx: TxRef, node: Addr, i: usize) -> Result<u64, Abort> {
    tx.read(node.offset(P_OFF + i as u64))
}

fn set_slot(tx: TxRef, node: Addr, i: usize, v: u64) -> Result<(), Abort> {
    tx.write(node.offset(P_OFF + i as u64), v)
}

fn new_node(tx: TxRef, leaf: bool) -> Result<Addr, Abort> {
    let n = tx.alloc(NODE_WORDS)?;
    set_hdr(tx, n, leaf, 0)?;
    Ok(n)
}

/// Child index for `k`: the first separator greater than `k` (child `i`
/// covers keys `< keys[i]`, the last child covers the rest).
fn child_index(tx: TxRef, node: Addr, n: usize, k: u64) -> Result<usize, Abort> {
    for i in 0..n {
        if k < key(tx, node, i)? {
            return Ok(i);
        }
    }
    Ok(n)
}

/// Position of `k` in a leaf: `Ok(i)` if present, `Err(i)` = insert point.
fn leaf_search(tx: TxRef, leaf: Addr, n: usize, k: u64) -> Result<Result<usize, usize>, Abort> {
    for i in 0..n {
        let ki = key(tx, leaf, i)?;
        if ki == k {
            return Ok(Ok(i));
        }
        if ki > k {
            return Ok(Err(i));
        }
    }
    Ok(Err(n))
}

fn is_full(leaf: bool, count: usize) -> bool {
    if leaf {
        count >= B
    } else {
        count >= MAX_IKEYS
    }
}

/// Split the full child at `parent`'s slot `i`. The parent must have room
/// (guaranteed preemptively).
fn split_child(tx: TxRef, parent: Addr, i: usize, pcount: usize) -> Result<(), Abort> {
    let child = Addr(slot(tx, parent, i)?);
    let (cleaf, cn) = hdr(tx, child)?;
    let right = new_node(tx, cleaf)?;
    let sep;
    if cleaf {
        // 16 keys: keep 8, move 8; separator is the right half's first key.
        let keep = cn / 2;
        let moved = cn - keep;
        for j in 0..moved {
            let kk = key(tx, child, keep + j)?;
            set_key(tx, right, j, kk)?;
            let vv = slot(tx, child, keep + j)?;
            set_slot(tx, right, j, vv)?;
        }
        set_hdr(tx, right, true, moved)?;
        set_hdr(tx, child, true, keep)?;
        sep = key(tx, right, 0)?;
    } else {
        // 15 keys / 16 children: key[7] moves up; left keeps keys 0..7 and
        // children 0..=7; right takes keys 8..15 and children 8..=15.
        let mid = cn / 2;
        sep = key(tx, child, mid)?;
        let moved = cn - mid - 1;
        for j in 0..moved {
            let kk = key(tx, child, mid + 1 + j)?;
            set_key(tx, right, j, kk)?;
        }
        for j in 0..=moved {
            let cc = slot(tx, child, mid + 1 + j)?;
            set_slot(tx, right, j, cc)?;
        }
        set_hdr(tx, right, false, moved)?;
        set_hdr(tx, child, false, mid)?;
    }
    // Shift the parent's keys and children right of slot i.
    for j in (i..pcount).rev() {
        let k = key(tx, parent, j)?;
        set_key(tx, parent, j + 1, k)?;
    }
    for j in (i + 1..=pcount).rev() {
        let c = slot(tx, parent, j)?;
        set_slot(tx, parent, j + 1, c)?;
    }
    set_key(tx, parent, i, sep)?;
    set_slot(tx, parent, i + 1, right.0)?;
    set_hdr(tx, parent, false, pcount + 1)?;
    Ok(())
}

impl AbTree {
    /// Create an empty tree on a fresh TM. The root slot is the tree's
    /// stable identity; keep it (or [`AbTree::root_slot`]) for
    /// [`AbTree::attach`] after recovery.
    pub fn create<T: Tm + ?Sized>(tm: &T, tid: usize) -> TxResult<AbTree> {
        let root_slot = tm::txn(tm, tid, |tx| {
            let slot_addr = tx.alloc(1)?;
            let leaf = new_node(tx, true)?;
            tx.write(slot_addr, leaf.0)?;
            Ok(slot_addr)
        })?;
        Ok(AbTree { root_slot })
    }

    /// Re-attach to an existing tree (e.g. after crash recovery).
    pub fn attach(root_slot: Addr) -> AbTree {
        AbTree { root_slot }
    }

    /// The tree's stable root-slot address.
    pub fn root_slot(&self) -> Addr {
        self.root_slot
    }

    /// Look up `k`.
    pub fn get<T: Tm + ?Sized>(&self, tm: &T, tid: usize, k: u64) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| {
            let mut cur = Addr(tx.read(self.root_slot)?);
            for _ in 0..FUEL {
                if cur.is_null() {
                    return Err(Abort::CONFLICT);
                }
                let (leaf, n) = hdr(tx, cur)?;
                if leaf {
                    return match leaf_search(tx, cur, n, k)? {
                        Ok(i) => Ok(Some(slot(tx, cur, i)?)),
                        Err(_) => Ok(None),
                    };
                }
                let i = child_index(tx, cur, n, k)?;
                cur = Addr(slot(tx, cur, i)?);
            }
            Err(Abort::CONFLICT)
        })
    }

    /// Insert or update; returns the previous value if any.
    pub fn insert<T: Tm + ?Sized>(
        &self,
        tm: &T,
        tid: usize,
        k: u64,
        v: u64,
    ) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| {
            let mut root = Addr(tx.read(self.root_slot)?);
            if root.is_null() {
                return Err(Abort::CONFLICT);
            }
            let (rleaf, rn) = hdr(tx, root)?;
            if is_full(rleaf, rn) {
                let new_root = new_node(tx, false)?;
                set_slot(tx, new_root, 0, root.0)?;
                set_hdr(tx, new_root, false, 0)?;
                split_child(tx, new_root, 0, 0)?;
                tx.write(self.root_slot, new_root.0)?;
                root = new_root;
            }
            let mut cur = root;
            for _ in 0..FUEL {
                let (leaf, n) = hdr(tx, cur)?;
                if leaf {
                    return match leaf_search(tx, cur, n, k)? {
                        Ok(i) => {
                            let old = slot(tx, cur, i)?;
                            set_slot(tx, cur, i, v)?;
                            Ok(Some(old))
                        }
                        Err(i) => {
                            for j in (i..n).rev() {
                                let kk = key(tx, cur, j)?;
                                set_key(tx, cur, j + 1, kk)?;
                                let vv = slot(tx, cur, j)?;
                                set_slot(tx, cur, j + 1, vv)?;
                            }
                            set_key(tx, cur, i, k)?;
                            set_slot(tx, cur, i, v)?;
                            set_hdr(tx, cur, true, n + 1)?;
                            Ok(None)
                        }
                    };
                }
                let mut i = child_index(tx, cur, n, k)?;
                let child = Addr(slot(tx, cur, i)?);
                if child.is_null() {
                    return Err(Abort::CONFLICT);
                }
                let (cleaf, cn) = hdr(tx, child)?;
                if is_full(cleaf, cn) {
                    split_child(tx, cur, i, n)?;
                    if k >= key(tx, cur, i)? {
                        i += 1;
                    }
                }
                cur = Addr(slot(tx, cur, i)?);
            }
            Err(Abort::CONFLICT)
        })
    }

    /// Remove `k`; returns its value if it was present.
    pub fn remove<T: Tm + ?Sized>(&self, tm: &T, tid: usize, k: u64) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| {
            let mut cur = Addr(tx.read(self.root_slot)?);
            if cur.is_null() {
                return Err(Abort::CONFLICT);
            }
            for _ in 0..FUEL {
                let (leaf, n) = hdr(tx, cur)?;
                if leaf {
                    return match leaf_search(tx, cur, n, k)? {
                        Ok(i) => {
                            let old = slot(tx, cur, i)?;
                            for j in i + 1..n {
                                let kk = key(tx, cur, j)?;
                                set_key(tx, cur, j - 1, kk)?;
                                let vv = slot(tx, cur, j)?;
                                set_slot(tx, cur, j - 1, vv)?;
                            }
                            set_hdr(tx, cur, true, n - 1)?;
                            Ok(Some(old))
                        }
                        Err(_) => Ok(None),
                    };
                }
                let i = child_index(tx, cur, n, k)?;
                let child = Addr(slot(tx, cur, i)?);
                if child.is_null() {
                    return Err(Abort::CONFLICT);
                }
                let (cleaf, cn) = hdr(tx, child)?;
                let min = if cleaf { MIN_LEAF } else { MIN_IKEYS };
                if cn > min {
                    cur = child;
                    continue;
                }
                // Child is minimal: borrow from a sibling or merge, then
                // re-descend from `cur` (indices may have shifted).
                self.fix_minimal_child(tx, cur, n, i, child, cleaf)?;
                // The root can shrink: if it lost its last key, collapse.
                let (_, n2) = hdr(tx, cur)?;
                if n2 == 0 && cur == Addr(tx.read(self.root_slot)?) {
                    let only = Addr(slot(tx, cur, 0)?);
                    tx.write(self.root_slot, only.0)?;
                    tx.free(cur, NODE_WORDS)?;
                    cur = only;
                }
            }
            Err(Abort::CONFLICT)
        })
    }

    /// Ensure `child` (at index `i` of `parent` with `n` keys) has more
    /// than the minimum, by rotation or merge.
    fn fix_minimal_child(
        &self,
        tx: TxRef,
        parent: Addr,
        n: usize,
        i: usize,
        child: Addr,
        cleaf: bool,
    ) -> Result<(), Abort> {
        let (_, cn) = hdr(tx, child)?;
        let min = if cleaf { MIN_LEAF } else { MIN_IKEYS };
        // Try borrowing from the left sibling.
        if i > 0 {
            let left = Addr(slot(tx, parent, i - 1)?);
            let (_, ln) = hdr(tx, left)?;
            if ln > min {
                if cleaf {
                    // Move left's last pair to child's front.
                    let mk = key(tx, left, ln - 1)?;
                    let mv = slot(tx, left, ln - 1)?;
                    for j in (0..cn).rev() {
                        let kk = key(tx, child, j)?;
                        set_key(tx, child, j + 1, kk)?;
                        let vv = slot(tx, child, j)?;
                        set_slot(tx, child, j + 1, vv)?;
                    }
                    set_key(tx, child, 0, mk)?;
                    set_slot(tx, child, 0, mv)?;
                    set_hdr(tx, child, true, cn + 1)?;
                    set_hdr(tx, left, true, ln - 1)?;
                    set_key(tx, parent, i - 1, mk)?;
                } else {
                    // Rotate through the separator.
                    let sep = key(tx, parent, i - 1)?;
                    for j in (0..cn).rev() {
                        let kk = key(tx, child, j)?;
                        set_key(tx, child, j + 1, kk)?;
                    }
                    for j in (0..=cn).rev() {
                        let cc = slot(tx, child, j)?;
                        set_slot(tx, child, j + 1, cc)?;
                    }
                    set_key(tx, child, 0, sep)?;
                    let moved = slot(tx, left, ln)?;
                    set_slot(tx, child, 0, moved)?;
                    set_hdr(tx, child, false, cn + 1)?;
                    let up = key(tx, left, ln - 1)?;
                    set_key(tx, parent, i - 1, up)?;
                    set_hdr(tx, left, false, ln - 1)?;
                }
                return Ok(());
            }
        }
        // Try borrowing from the right sibling.
        if i < n {
            let right = Addr(slot(tx, parent, i + 1)?);
            let (_, rn) = hdr(tx, right)?;
            if rn > min {
                if cleaf {
                    let mk = key(tx, right, 0)?;
                    let mv = slot(tx, right, 0)?;
                    set_key(tx, child, cn, mk)?;
                    set_slot(tx, child, cn, mv)?;
                    set_hdr(tx, child, true, cn + 1)?;
                    for j in 1..rn {
                        let kk = key(tx, right, j)?;
                        set_key(tx, right, j - 1, kk)?;
                        let vv = slot(tx, right, j)?;
                        set_slot(tx, right, j - 1, vv)?;
                    }
                    set_hdr(tx, right, true, rn - 1)?;
                    let newsep = key(tx, right, 0)?;
                    set_key(tx, parent, i, newsep)?;
                } else {
                    let sep = key(tx, parent, i)?;
                    set_key(tx, child, cn, sep)?;
                    let moved = slot(tx, right, 0)?;
                    set_slot(tx, child, cn + 1, moved)?;
                    set_hdr(tx, child, false, cn + 1)?;
                    let up = key(tx, right, 0)?;
                    set_key(tx, parent, i, up)?;
                    for j in 1..rn {
                        let kk = key(tx, right, j)?;
                        set_key(tx, right, j - 1, kk)?;
                    }
                    for j in 1..=rn {
                        let cc = slot(tx, right, j)?;
                        set_slot(tx, right, j - 1, cc)?;
                    }
                    set_hdr(tx, right, false, rn - 1)?;
                }
                return Ok(());
            }
        }
        // Merge with a sibling (the merged node is `left`; `right` is
        // freed and the separator removed from the parent).
        let (li, left, right) = if i > 0 {
            (i - 1, Addr(slot(tx, parent, i - 1)?), child)
        } else {
            (i, child, Addr(slot(tx, parent, i + 1)?))
        };
        let (_, ln) = hdr(tx, left)?;
        let (_, rn) = hdr(tx, right)?;
        if cleaf {
            for j in 0..rn {
                let kk = key(tx, right, j)?;
                set_key(tx, left, ln + j, kk)?;
                let vv = slot(tx, right, j)?;
                set_slot(tx, left, ln + j, vv)?;
            }
            set_hdr(tx, left, true, ln + rn)?;
        } else {
            let sep = key(tx, parent, li)?;
            set_key(tx, left, ln, sep)?;
            for j in 0..rn {
                let kk = key(tx, right, j)?;
                set_key(tx, left, ln + 1 + j, kk)?;
            }
            for j in 0..=rn {
                let cc = slot(tx, right, j)?;
                set_slot(tx, left, ln + 1 + j, cc)?;
            }
            set_hdr(tx, left, false, ln + 1 + rn)?;
        }
        // Remove separator li and child li+1 from the parent.
        for j in li + 1..n {
            let kk = key(tx, parent, j)?;
            set_key(tx, parent, j - 1, kk)?;
        }
        for j in li + 2..=n {
            let cc = slot(tx, parent, j)?;
            set_slot(tx, parent, j - 1, cc)?;
        }
        set_hdr(tx, parent, false, n - 1)?;
        tx.free(right, NODE_WORDS)?;
        Ok(())
    }

    /// Quiescent full scan via `read_raw` (verification and recovery).
    pub fn collect_raw<T: Tm + ?Sized>(&self, tm: &T) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let root = tm.read_raw(self.root_slot);
        if root != 0 {
            self.walk_raw(tm, Addr(root), &mut out, &mut |out, k, v| out.push((k, v)));
        }
        out.sort_unstable();
        out
    }

    fn walk_raw<T: Tm + ?Sized>(
        &self,
        tm: &T,
        node: Addr,
        out: &mut Vec<(u64, u64)>,
        emit: EmitFn,
    ) {
        let h = tm.read_raw(node);
        let leaf = h >> 8 & 1 == 1;
        let n = (h & 0xff) as usize;
        if leaf {
            for i in 0..n {
                emit(
                    out,
                    tm.read_raw(node.offset(K_OFF + i as u64)),
                    tm.read_raw(node.offset(P_OFF + i as u64)),
                );
            }
        } else {
            for i in 0..=n {
                let c = tm.read_raw(node.offset(P_OFF + i as u64));
                if c != 0 {
                    self.walk_raw(tm, Addr(c), out, emit);
                }
            }
        }
    }

    /// Quiescent walk enumerating every allocated block `(addr, words)` —
    /// the allocator-rebuild iterator required after recovery (§4).
    pub fn used_blocks<T: Tm + ?Sized>(&self, tm: &T) -> Vec<(u64, usize)> {
        let mut blocks = vec![(self.root_slot.0, 1)];
        let root = tm.read_raw(self.root_slot);
        if root != 0 {
            self.blocks_raw(tm, Addr(root), &mut blocks);
        }
        blocks
    }

    fn blocks_raw<T: Tm + ?Sized>(&self, tm: &T, node: Addr, out: &mut Vec<(u64, usize)>) {
        out.push((node.0, NODE_WORDS));
        let h = tm.read_raw(node);
        if h >> 8 & 1 == 0 {
            let n = (h & 0xff) as usize;
            for i in 0..=n {
                let c = tm.read_raw(node.offset(P_OFF + i as u64));
                if c != 0 {
                    self.blocks_raw(tm, Addr(c), out);
                }
            }
        }
    }

    /// Structural invariant check (tests): sortedness, separator bounds,
    /// occupancy bounds, uniform leaf depth. Quiescent.
    pub fn check_invariants<T: Tm + ?Sized>(&self, tm: &T) -> Result<usize, String> {
        let root = tm.read_raw(self.root_slot);
        if root == 0 {
            return Err("null root".into());
        }
        let mut leaf_depth = None;
        let count = self.check_node(tm, Addr(root), 0, None, None, true, &mut leaf_depth)?;
        Ok(count)
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node<T: Tm + ?Sized>(
        &self,
        tm: &T,
        node: Addr,
        depth: usize,
        lo: Option<u64>,
        hi: Option<u64>,
        is_root: bool,
        leaf_depth: &mut Option<usize>,
    ) -> Result<usize, String> {
        let h = tm.read_raw(node);
        let leaf = h >> 8 & 1 == 1;
        let n = (h & 0xff) as usize;
        let keys: Vec<u64> = (0..n)
            .map(|i| tm.read_raw(node.offset(K_OFF + i as u64)))
            .collect();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("unsorted keys at {node}: {keys:?}"));
        }
        for &k in &keys {
            if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                return Err(format!("key {k} out of [{lo:?},{hi:?}) at {node}"));
            }
        }
        if leaf {
            if !is_root && n < MIN_LEAF {
                return Err(format!("leaf underflow at {node}: {n}"));
            }
            if n > B {
                return Err(format!("leaf overflow at {node}: {n}"));
            }
            match *leaf_depth {
                None => *leaf_depth = Some(depth),
                Some(d) if d != depth => return Err(format!("ragged leaves: {d} vs {depth}")),
                _ => {}
            }
            Ok(n)
        } else {
            if !is_root && n < MIN_IKEYS {
                return Err(format!("internal underflow at {node}: {n}"));
            }
            if n > MAX_IKEYS {
                return Err(format!("internal overflow at {node}: {n}"));
            }
            let mut total = 0;
            for i in 0..=n {
                let c = tm.read_raw(node.offset(P_OFF + i as u64));
                if c == 0 {
                    return Err(format!("null child {i} at {node}"));
                }
                let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                let chi = if i == n { hi } else { Some(keys[i]) };
                total += self.check_node(tm, Addr(c), depth + 1, clo, chi, false, leaf_depth)?;
            }
            Ok(total)
        }
    }
}

/// Non-transactional helper: number of pairs via a raw scan.
pub fn raw_len<T: Tm + ?Sized>(tree: &AbTree, tm: &T) -> usize {
    tree.collect_raw(tm).len()
}
