//! A transactional sorted linked list — the classic TM microbenchmark
//! (long read chains, single-point updates). Not part of the paper's
//! Figure 8, but the standard third workload in the benchmark family the
//! paper draws on; useful here because its long traversals stress HTM
//! read-set capacity and the O(read set) software-path validation in a
//! way the tree and hashmap do not.
//!
//! Node layout (4 words): `{key, val, next, pad}`. Keys are strictly
//! increasing along the chain; the list head is a sentinel node stored at
//! a stable address so the structure can be re-attached after recovery.

use tm::{Abort, Addr, Tm, TxResult, Txn};

/// Words per node.
pub const NODE_WORDS: usize = 4;

const N_KEY: u64 = 0;
const N_VAL: u64 = 1;
const N_NEXT: u64 = 2;

/// Traversal fuel (zombie guard); also bounds the list length a single
/// transaction can traverse — long lists are the point of this benchmark.
const FUEL: usize = 1 << 14;

/// Handle to a transactional sorted list; plain data, clones alias.
#[derive(Clone, Copy, Debug)]
pub struct SortedList {
    head: Addr,
}

impl SortedList {
    /// Create an empty list (the head sentinel is allocated fresh).
    pub fn create<T: Tm + ?Sized>(tm: &T, tid: usize) -> TxResult<SortedList> {
        let head = tm::txn(tm, tid, |tx| {
            let head = tx.alloc(NODE_WORDS)?;
            tx.write(head.offset(N_KEY), 0)?;
            tx.write(head.offset(N_NEXT), 0)?;
            Ok(head)
        })?;
        Ok(SortedList { head })
    }

    /// Re-attach after recovery.
    pub fn attach(head: Addr) -> SortedList {
        SortedList { head }
    }

    /// The sentinel address (stable identity).
    pub fn head_addr(&self) -> Addr {
        self.head
    }

    /// Find the node before the position of `k`: returns (prev, cur)
    /// where cur is the first node with key >= k (or null).
    fn locate(&self, tx: &mut dyn Txn, k: u64) -> Result<(Addr, u64), Abort> {
        let mut prev = self.head;
        let mut cur = tx.read(prev.offset(N_NEXT))?;
        for _ in 0..FUEL {
            if cur == 0 {
                return Ok((prev, 0));
            }
            let node = Addr(cur);
            let nk = tx.read(node.offset(N_KEY))?;
            if nk >= k {
                return Ok((prev, cur));
            }
            prev = node;
            cur = tx.read(node.offset(N_NEXT))?;
        }
        Err(Abort::CONFLICT)
    }

    /// Look up `k`.
    pub fn get<T: Tm + ?Sized>(&self, tm: &T, tid: usize, k: u64) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| {
            let (_, cur) = self.locate(tx, k)?;
            if cur != 0 && tx.read(Addr(cur).offset(N_KEY))? == k {
                Ok(Some(tx.read(Addr(cur).offset(N_VAL))?))
            } else {
                Ok(None)
            }
        })
    }

    /// Insert or update; returns the previous value if any.
    pub fn insert<T: Tm + ?Sized>(
        &self,
        tm: &T,
        tid: usize,
        k: u64,
        v: u64,
    ) -> TxResult<Option<u64>> {
        assert!(k > 0, "key 0 is the sentinel");
        tm::txn(tm, tid, |tx| {
            let (prev, cur) = self.locate(tx, k)?;
            if cur != 0 && tx.read(Addr(cur).offset(N_KEY))? == k {
                let old = tx.read(Addr(cur).offset(N_VAL))?;
                tx.write(Addr(cur).offset(N_VAL), v)?;
                return Ok(Some(old));
            }
            let node = tx.alloc(NODE_WORDS)?;
            tx.write(node.offset(N_KEY), k)?;
            tx.write(node.offset(N_VAL), v)?;
            tx.write(node.offset(N_NEXT), cur)?;
            tx.write(prev.offset(N_NEXT), node.0)?;
            Ok(None)
        })
    }

    /// Remove `k`; returns its value if present. The node is freed
    /// (deferred to commit by the allocator hooks).
    pub fn remove<T: Tm + ?Sized>(&self, tm: &T, tid: usize, k: u64) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| {
            let (prev, cur) = self.locate(tx, k)?;
            if cur == 0 || tx.read(Addr(cur).offset(N_KEY))? != k {
                return Ok(None);
            }
            let node = Addr(cur);
            let old = tx.read(node.offset(N_VAL))?;
            let next = tx.read(node.offset(N_NEXT))?;
            tx.write(prev.offset(N_NEXT), next)?;
            tx.free(node, NODE_WORDS)?;
            Ok(Some(old))
        })
    }

    /// Sum of all values in one transaction: a long read-only snapshot —
    /// the op that stresses HTM capacity and incremental validation.
    pub fn sum<T: Tm + ?Sized>(&self, tm: &T, tid: usize) -> TxResult<u64> {
        tm::txn(tm, tid, |tx| {
            let mut cur = tx.read(self.head.offset(N_NEXT))?;
            let mut sum = 0u64;
            for _ in 0..FUEL {
                if cur == 0 {
                    return Ok(sum);
                }
                sum = sum.wrapping_add(tx.read(Addr(cur).offset(N_VAL))?);
                cur = tx.read(Addr(cur).offset(N_NEXT))?;
            }
            Err(Abort::CONFLICT)
        })
    }

    /// Quiescent full scan via `read_raw`.
    pub fn collect_raw<T: Tm + ?Sized>(&self, tm: &T) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cur = tm.read_raw(self.head.offset(N_NEXT));
        while cur != 0 {
            let node = Addr(cur);
            out.push((
                tm.read_raw(node.offset(N_KEY)),
                tm.read_raw(node.offset(N_VAL)),
            ));
            cur = tm.read_raw(node.offset(N_NEXT));
        }
        out
    }

    /// Quiescent allocator-rebuild iterator (§4).
    pub fn used_blocks<T: Tm + ?Sized>(&self, tm: &T) -> Vec<(u64, usize)> {
        let mut blocks = vec![(self.head.0, NODE_WORDS)];
        let mut cur = tm.read_raw(self.head.offset(N_NEXT));
        while cur != 0 {
            blocks.push((cur, NODE_WORDS));
            cur = tm.read_raw(Addr(cur).offset(N_NEXT));
        }
        blocks
    }

    /// Check sortedness (tests). Quiescent.
    pub fn check_sorted<T: Tm + ?Sized>(&self, tm: &T) -> Result<usize, String> {
        let items = self.collect_raw(tm);
        for w in items.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("unsorted: {} before {}", w[0].0, w[1].0));
            }
        }
        Ok(items.len())
    }
}
