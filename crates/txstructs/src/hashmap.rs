//! A transactional fixed-bucket hashmap — the hashmap micro-benchmark of
//! §5 (Figure 8, row 2).
//!
//! The map has a fixed number of buckets (1 million in the paper) with
//! chained nodes of four words `{key, val, next, state}`. Following the
//! paper's methodology, *remove marks nodes as empty rather than freeing
//! them* (so the comparison with SPHT, whose allocator cannot free, is
//! fair); insert reuses an empty node on the key's chain when one exists.
//! Transactions here have small read and write sets, which is why the
//! hashmap is the workload where hardware-path conflicts are rare.

use tm::{Abort, Addr, Tm, TxResult, Txn};

/// Words per chain node.
pub const NODE_WORDS: usize = 4;

const N_KEY: u64 = 0;
const N_VAL: u64 = 1;
const N_NEXT: u64 = 2;
const N_STATE: u64 = 3;

const FULL: u64 = 1;
const EMPTY: u64 = 0;

/// Chain-walk fuel (zombie guard).
const FUEL: usize = 1 << 12;

/// Handle to a transactional hashmap; plain data, clones alias.
#[derive(Clone, Copy, Debug)]
pub struct HashMapTx {
    buckets: Addr,
    nbuckets: usize,
}

/// One map operation, for batched execution via [`HashMapTx::apply_ops`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapOp {
    /// Look up a key.
    Get(u64),
    /// Insert or update a key.
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
}

#[inline]
fn bucket_of(k: u64, n: usize) -> u64 {
    (k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) % n as u64
}

impl HashMapTx {
    /// Create a map with `nbuckets` buckets on a *fresh* TM (the bucket
    /// array must come from never-allocated, zeroed heap).
    pub fn create<T: Tm + ?Sized>(tm: &T, tid: usize, nbuckets: usize) -> TxResult<HashMapTx> {
        let buckets = tm::txn(tm, tid, |tx| tx.alloc(nbuckets))?;
        Ok(HashMapTx { buckets, nbuckets })
    }

    /// Re-attach after recovery.
    pub fn attach(buckets: Addr, nbuckets: usize) -> HashMapTx {
        HashMapTx { buckets, nbuckets }
    }

    /// The bucket array's address (stable identity).
    pub fn buckets_addr(&self) -> Addr {
        self.buckets
    }

    /// Number of buckets.
    pub fn nbuckets(&self) -> usize {
        self.nbuckets
    }

    #[inline]
    fn bucket_addr(&self, k: u64) -> Addr {
        self.buckets.offset(bucket_of(k, self.nbuckets))
    }

    /// Look up `k`.
    pub fn get<T: Tm + ?Sized>(&self, tm: &T, tid: usize, k: u64) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| self.get_in(tx, k))
    }

    /// Look up `k` inside an already-running transaction. Composable
    /// building block: several operations (on one or several maps over the
    /// same TM) can share a single atomic, durable transaction.
    pub fn get_in(&self, tx: &mut dyn Txn, k: u64) -> Result<Option<u64>, Abort> {
        let mut cur = tx.read(self.bucket_addr(k))?;
        for _ in 0..FUEL {
            if cur == 0 {
                return Ok(None);
            }
            let node = Addr(cur);
            if tx.read(node.offset(N_KEY))? == k {
                if tx.read(node.offset(N_STATE))? == FULL {
                    return Ok(Some(tx.read(node.offset(N_VAL))?));
                }
                return Ok(None);
            }
            cur = tx.read(node.offset(N_NEXT))?;
        }
        Err(Abort::CONFLICT)
    }

    /// Insert or update; returns the previous value if any.
    pub fn insert<T: Tm + ?Sized>(
        &self,
        tm: &T,
        tid: usize,
        k: u64,
        v: u64,
    ) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| self.insert_in(tx, k, v))
    }

    /// Insert or update inside an already-running transaction (see
    /// [`HashMapTx::get_in`]).
    pub fn insert_in(&self, tx: &mut dyn Txn, k: u64, v: u64) -> Result<Option<u64>, Abort> {
        let head_addr = self.bucket_addr(k);
        let head = tx.read(head_addr)?;
        let mut cur = head;
        let mut empty_slot = Addr::NULL;
        for _ in 0..FUEL {
            if cur == 0 {
                return if !empty_slot.is_null() {
                    // Reuse a marked-empty node on this chain.
                    tx.write(empty_slot.offset(N_KEY), k)?;
                    tx.write(empty_slot.offset(N_VAL), v)?;
                    tx.write(empty_slot.offset(N_STATE), FULL)?;
                    Ok(None)
                } else {
                    let node = tx.alloc(NODE_WORDS)?;
                    tx.write(node.offset(N_KEY), k)?;
                    tx.write(node.offset(N_VAL), v)?;
                    tx.write(node.offset(N_NEXT), head)?;
                    tx.write(node.offset(N_STATE), FULL)?;
                    tx.write(head_addr, node.0)?;
                    Ok(None)
                };
            }
            let node = Addr(cur);
            let state = tx.read(node.offset(N_STATE))?;
            if state == FULL {
                if tx.read(node.offset(N_KEY))? == k {
                    let old = tx.read(node.offset(N_VAL))?;
                    tx.write(node.offset(N_VAL), v)?;
                    return Ok(Some(old));
                }
            } else if state == EMPTY {
                if tx.read(node.offset(N_KEY))? == k {
                    // The key's own tombstone: revive it in place.
                    tx.write(node.offset(N_VAL), v)?;
                    tx.write(node.offset(N_STATE), FULL)?;
                    return Ok(None);
                }
                if empty_slot.is_null() {
                    empty_slot = node;
                }
            } else {
                // Garbage state: zombie read.
                return Err(Abort::CONFLICT);
            }
            cur = tx.read(node.offset(N_NEXT))?;
        }
        Err(Abort::CONFLICT)
    }

    /// Remove `k` (marking its node empty); returns its value if present.
    pub fn remove<T: Tm + ?Sized>(&self, tm: &T, tid: usize, k: u64) -> TxResult<Option<u64>> {
        tm::txn(tm, tid, |tx| self.remove_in(tx, k))
    }

    /// Remove inside an already-running transaction (see
    /// [`HashMapTx::get_in`]).
    pub fn remove_in(&self, tx: &mut dyn Txn, k: u64) -> Result<Option<u64>, Abort> {
        let mut cur = tx.read(self.bucket_addr(k))?;
        for _ in 0..FUEL {
            if cur == 0 {
                return Ok(None);
            }
            let node = Addr(cur);
            if tx.read(node.offset(N_KEY))? == k {
                if tx.read(node.offset(N_STATE))? == FULL {
                    let old = tx.read(node.offset(N_VAL))?;
                    tx.write(node.offset(N_STATE), EMPTY)?;
                    return Ok(Some(old));
                }
                return Ok(None);
            }
            cur = tx.read(node.offset(N_NEXT))?;
        }
        Err(Abort::CONFLICT)
    }

    /// Apply one [`MapOp`] inside an already-running transaction,
    /// returning the value a standalone call would return.
    pub fn apply_in(&self, tx: &mut dyn Txn, op: MapOp) -> Result<Option<u64>, Abort> {
        match op {
            MapOp::Get(k) => self.get_in(tx, k),
            MapOp::Insert(k, v) => self.insert_in(tx, k, v),
            MapOp::Remove(k) => self.remove_in(tx, k),
        }
    }

    /// Run a whole batch of operations in **one** transaction: the batch
    /// commits (and persists) atomically, amortizing the per-transaction
    /// commit, flush and fence costs across every operation — the
    /// batch-friendly entry point the `kvserve` service layer builds on.
    /// Results line up with `ops` (previous/looked-up value per op).
    pub fn apply_ops<T: Tm + ?Sized>(
        &self,
        tm: &T,
        tid: usize,
        ops: &[MapOp],
    ) -> TxResult<Vec<Option<u64>>> {
        tm::txn(tm, tid, |tx| {
            let mut out = Vec::with_capacity(ops.len());
            for &op in ops {
                out.push(self.apply_in(tx, op)?);
            }
            Ok(out)
        })
    }

    /// Transactionally scan one bucket's chain, returning its live
    /// `(key, value)` pairs. Chunked-snapshot building block: the scan
    /// serializes against every concurrent mutation of keys hashing to
    /// bucket `b`, so each chunk is an atomic cut of that bucket (the
    /// caller stitches chunks into a consistent image by replaying a log
    /// from before the first chunk).
    pub fn scan_bucket_in(&self, tx: &mut dyn Txn, b: usize) -> Result<Vec<(u64, u64)>, Abort> {
        debug_assert!(b < self.nbuckets);
        let mut out = Vec::new();
        let mut cur = tx.read(self.buckets.offset(b as u64))?;
        for _ in 0..FUEL {
            if cur == 0 {
                return Ok(out);
            }
            let node = Addr(cur);
            if tx.read(node.offset(N_STATE))? == FULL {
                out.push((tx.read(node.offset(N_KEY))?, tx.read(node.offset(N_VAL))?));
            }
            cur = tx.read(node.offset(N_NEXT))?;
        }
        Err(Abort::CONFLICT)
    }

    /// Quiescent full scan via `read_raw`.
    pub fn collect_raw<T: Tm + ?Sized>(&self, tm: &T) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for b in 0..self.nbuckets {
            let mut cur = tm.read_raw(self.buckets.offset(b as u64));
            while cur != 0 {
                let node = Addr(cur);
                if tm.read_raw(node.offset(N_STATE)) == FULL {
                    out.push((
                        tm.read_raw(node.offset(N_KEY)),
                        tm.read_raw(node.offset(N_VAL)),
                    ));
                }
                cur = tm.read_raw(node.offset(N_NEXT));
            }
        }
        out.sort_unstable();
        out
    }

    /// Quiescent allocator-rebuild iterator: the bucket array plus every
    /// chain node (including empty-marked ones — they are still owned).
    pub fn used_blocks<T: Tm + ?Sized>(&self, tm: &T) -> Vec<(u64, usize)> {
        let mut blocks = vec![(self.buckets.0, self.nbuckets)];
        for b in 0..self.nbuckets {
            let mut cur = tm.read_raw(self.buckets.offset(b as u64));
            while cur != 0 {
                blocks.push((cur, NODE_WORDS));
                cur = tm.read_raw(Addr(cur).offset(N_NEXT));
            }
        }
        blocks
    }
}
