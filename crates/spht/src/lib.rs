//! SPHT — Scalable Persistent Hardware Transactions (Castro et al.,
//! FAST'21): the state-of-the-art persistent HyTM the paper compares
//! against (§2.1.4, §5.2).
//!
//! Architecture, as the paper describes it:
//!
//! * **Redo logging.** Hardware transactions log their writes (inside the
//!   transaction, to a volatile thread-local buffer); after `xend` the log
//!   record is written to a per-thread *persistent log*, ordered by a
//!   timestamp taken inside the transaction (`rdtsc`-style, no shared
//!   memory traffic).
//! * **Commit ordering.** A transaction's durability must be ordered
//!   relative to concurrent transactions: after persisting its record, a
//!   thread *blocks* until every thread whose current timestamp is smaller
//!   has marked its own record persisted — "transactions can be blocked by
//!   other concurrent transactions even if they access disjoint data",
//!   which is SPHT's structural cost that NV-HALT avoids.
//! * **Persistent marker.** A global marker stores the timestamp up to
//!   which *everything* is durably ordered; recovery replays exactly the
//!   log records at or below it. Threads free-ride on each other's marker
//!   flushes when possible (standing in for SPHT's forward-linking
//!   optimisation).
//! * **Global-lock fallback.** The software path immediately claims a
//!   global lock; hardware transactions subscribe to it and abort while it
//!   is held.
//! * **Log replay.** Logs are bounded and must eventually be replayed into
//!   the persistent checkpoint (here: `{value, timestamp}` per word, so
//!   replay is idempotent and order-free per address). Following the
//!   paper's methodology, benchmarks replay after the measurement period
//!   with a configurable number of replay threads (16 in the paper); a
//!   thread whose log fills mid-run replays its own records in place.
//! * **Trivial allocation.** SPHT's public implementation allocates from
//!   fixed per-thread pools by bumping a pointer and never frees — the
//!   paper keeps this (and points out it is artificially cheap); so do we.

use crossbeam::utils::CachePadded;
use htm::{Htm, HtmConfig, HtmThread, Xabort};
use parking_lot::Mutex;
use pmem::pool::{DurableImage, PmemConfig, PmemPool};
use pmem::LINE_WORDS;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm::policy::{HybridPolicy, PathChoice};
use tm::stats::{Counter, StatsSnapshot, TmStats};
use tm::{Abort, AbortKind, Addr, Cancelled, Tm, TxResult, Txn, Word};

/// xabort code: the global fallback lock is held.
pub const CODE_GL_HELD: u32 = 11;
/// xabort code: body requested retry.
pub const CODE_USER_RETRY: u32 = 12;
/// xabort code: body cancelled.
pub const CODE_CANCEL: u32 = 13;

/// SPHT configuration.
#[derive(Clone, Debug)]
pub struct SphtConfig {
    /// Transactional heap size in words.
    pub heap_words: usize,
    /// Thread slots.
    pub max_threads: usize,
    /// Per-thread persistent log capacity in words.
    pub log_words: usize,
    /// Attempt schedule (hardware attempts before the global-lock path).
    pub policy: HybridPolicy,
    /// If false, remove all work specific to persisting hardware
    /// transactions (Figure 9's third overhead class): no log persistence,
    /// no ordering wait, no marker updates.
    pub persist_hw: bool,
    /// Persistent-memory settings (`words`/`max_threads` overridden).
    pub pm: PmemConfig,
    /// HTM simulator settings.
    pub htm: HtmConfig,
}

impl SphtConfig {
    /// Functional-test defaults.
    pub fn test(heap_words: usize, max_threads: usize) -> Self {
        SphtConfig {
            heap_words,
            max_threads,
            log_words: 1 << 14,
            policy: HybridPolicy::default(),
            persist_hw: true,
            pm: PmemConfig::test(0, max_threads),
            htm: HtmConfig::test(),
        }
    }
}

/// Pool geometry: `[marker line][per-thread logs][checkpoint {val, ts} pairs]`.
#[derive(Clone, Copy, Debug)]
struct Layout {
    heap_words: usize,
    max_threads: usize,
    log_words: usize,
}

impl Layout {
    fn marker_word(&self) -> usize {
        0
    }
    fn log_base(&self, tid: usize) -> usize {
        LINE_WORDS + tid * self.log_words
    }
    fn ckpt_base(&self) -> usize {
        LINE_WORDS + self.max_threads * self.log_words
    }
    fn ckpt_val(&self, a: usize) -> usize {
        self.ckpt_base() + 2 * a
    }
    fn ckpt_ts(&self, a: usize) -> usize {
        self.ckpt_base() + 2 * a + 1
    }
    fn total_words(&self) -> usize {
        self.ckpt_base() + 2 * self.heap_words
    }
}

struct ThreadState {
    htm_th: HtmThread,
    redo: Vec<(u64, u64)>,
    undo: Vec<(u64, u64)>,
    log_head: usize,
    seed: u64,
}

/// The SPHT persistent hybrid TM.
pub struct Spht {
    cfg: SphtConfig,
    layout: Layout,
    vol: Box<[AtomicU64]>,
    global_lock: AtomicU64,
    /// Per-thread `(timestamp << 1) | persisted` slots for commit ordering.
    slots: Vec<CachePadded<AtomicU64>>,
    /// Volatile high-water of the durably ordered timestamp + the durable
    /// value already flushed (threads free-ride on larger flushes).
    marker: Mutex<(u64, u64)>,
    /// Per-thread bump allocators over partitioned pools (no free).
    bumps: Vec<CachePadded<AtomicU64>>,
    pool_chunk: usize,
    htm: Htm,
    pmem: PmemPool,
    stats: Arc<TmStats>,
    threads: Vec<CachePadded<Mutex<ThreadState>>>,
}

impl Spht {
    /// Create a fresh instance.
    pub fn new(cfg: SphtConfig) -> Self {
        let stats = Arc::new(TmStats::new(cfg.max_threads));
        Self::build(cfg, stats, None)
    }

    fn build(cfg: SphtConfig, stats: Arc<TmStats>, image: Option<&DurableImage>) -> Self {
        assert!(cfg.max_threads >= 1);
        assert!(cfg.log_words >= 64);
        let layout = Layout {
            heap_words: cfg.heap_words,
            max_threads: cfg.max_threads,
            log_words: cfg.log_words,
        };
        let pm_cfg = PmemConfig {
            words: layout.total_words(),
            max_threads: cfg.max_threads,
            ..cfg.pm.clone()
        };
        let pmem = match image {
            None => PmemPool::new(&pm_cfg, Some(stats.clone())),
            Some(img) => PmemPool::from_durable(&pm_cfg, img, Some(stats.clone())),
        };
        let htm = Htm::new(cfg.htm);
        let threads: Vec<CachePadded<Mutex<ThreadState>>> = (0..cfg.max_threads)
            .map(|t| {
                let cell = CachePadded::new(Mutex::new(ThreadState {
                    htm_th: HtmThread::new(&htm, t),
                    redo: Vec::with_capacity(64),
                    undo: Vec::with_capacity(64),
                    log_head: 0,
                    seed: (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                }));
                // Held across the redo-log persist by design (the cell
                // is the transaction); exempt for locksan.
                cell.locksan_label("spht::thread_state", true);
                cell
            })
            .collect();
        // Idle threads read as "persisted at ts 0".
        let slots = (0..cfg.max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(1)))
            .collect();
        let reserve = 8u64;
        let pool_chunk = (cfg.heap_words - reserve as usize) / cfg.max_threads;
        let bumps = (0..cfg.max_threads)
            .map(|t| CachePadded::new(AtomicU64::new(reserve + (t * pool_chunk) as u64)))
            .collect();
        Spht {
            vol: (0..cfg.heap_words).map(|_| AtomicU64::new(0)).collect(),
            global_lock: AtomicU64::new(0),
            slots,
            marker: {
                let m = Mutex::new((0, 0));
                // Persisting the marker under this lock is the lock's
                // whole job (advance_marker); exempt for locksan.
                m.locksan_label("spht::marker", true);
                m
            },
            bumps,
            pool_chunk,
            htm,
            pmem,
            stats,
            threads,
            layout,
            cfg,
        }
    }

    /// Access to the persistent pool (crash control).
    pub fn pool(&self) -> &PmemPool {
        &self.pmem
    }

    /// Simulate a power failure.
    pub fn crash(&self) {
        self.pmem.crash();
    }

    /// Capture the durable image after a crash (join workers first).
    pub fn crash_image(&self) -> DurableImage {
        assert!(self.pmem.is_crashed());
        self.pmem.snapshot_durable()
    }

    // ------------------------------------------------------------------
    // Persistent log records: [n][addr val]*n [ts], ts written last.
    // ------------------------------------------------------------------

    /// Append the thread's redo buffer as one durable log record.
    fn write_record(&self, tid: usize, ts: &mut ThreadState, cts: u64) {
        let need = 2 + 2 * ts.redo.len();
        if ts.log_head + need + 1 > self.cfg.log_words {
            // Log full: replay our own (fully ordered) records in place.
            self.replay_own(tid, ts);
        }
        assert!(
            ts.log_head + need < self.cfg.log_words,
            "transaction write set larger than the SPHT log"
        );
        let _psan = self.pmem.psan_scope(tid, "spht::write_record");
        let base = self.layout.log_base(tid) + ts.log_head;
        self.pmem.write(tid, base, ts.redo.len() as u64);
        for (i, &(a, v)) in ts.redo.iter().enumerate() {
            self.pmem.write(tid, base + 1 + 2 * i, a);
            self.pmem.write(tid, base + 2 + 2 * i, v);
        }
        // Truncate the *next* record slot (reads n = 0) and make it
        // durable under the SAME fence as the record body. When the
        // validity marker below lands, recovery's scan must find a zero
        // length in the following slot; flushing the truncation with the
        // marker instead would let their write-backs complete in either
        // order (flush completion is unordered until a fence), so a
        // crash could leave a durable marker behind a stale slot length.
        let next = base + need;
        self.pmem.write(tid, next, 0);
        // One coalesced pass over every line of the record: body words
        // and truncation word (the marker word is written and flushed
        // separately below, after the body is fenced durable).
        let mut w = base - base % LINE_WORDS;
        while w <= next {
            self.pmem.flush_line(tid, w);
            w += LINE_WORDS;
        }
        self.pmem.sfence(tid);
        // Validity marker last: a record is complete iff its ts is set.
        self.pmem.write(tid, base + need - 1, cts);
        self.pmem.flush_line(tid, base + need - 1);
        self.pmem.sfence(tid);
        ts.log_head += need;
    }

    /// Block until every thread whose current timestamp precedes `cts` has
    /// persisted its record — SPHT's commit-ordering negotiation.
    fn ordering_wait(&self, tid: usize, cts: u64) {
        let start = std::time::Instant::now();
        for (t, slot) in self.slots.iter().enumerate() {
            if t == tid {
                continue;
            }
            loop {
                let s = slot.load(Ordering::Acquire);
                if (s >> 1) > cts || s & 1 == 1 {
                    break;
                }
                self.pmem.crash_point(tid);
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        self.stats
            .add(tid, Counter::OrderWaitNs, start.elapsed().as_nanos() as u64);
    }

    /// Advance the durable global marker to at least `cts` before the
    /// commit returns (threads free-ride on larger flushes).
    fn advance_marker(&self, tid: usize, cts: u64) {
        let _psan = self.pmem.psan_scope(tid, "spht::advance_marker");
        let mut m = self.marker.lock();
        if m.0 < cts {
            m.0 = cts;
        }
        if m.1 < cts {
            let target = m.0;
            self.pmem.write(tid, self.layout.marker_word(), target);
            self.pmem.flush_line(tid, self.layout.marker_word());
            self.pmem.sfence(tid);
            m.1 = target;
        }
        // The marker claims every record at or below `cts` durable; nothing
        // of ours may still be sitting unfenced in the cache.
        self.pmem.durability_point(tid, "spht::marker_durable");
    }

    /// The full post-`xend` durability protocol for a writing transaction.
    fn persist_commit(&self, tid: usize, ts: &mut ThreadState, cts: u64) {
        self.write_record(tid, ts, cts);
        // Publish our commit timestamp (still unpersisted) BEFORE waiting:
        // waits then resolve in strict timestamp order — the smallest
        // in-flight timestamp waits on nobody — so the negotiation cannot
        // cycle.
        self.slots[tid].store(cts << 1, Ordering::Release);
        self.ordering_wait(tid, cts);
        self.slots[tid].store(cts << 1 | 1, Ordering::Release);
        self.advance_marker(tid, cts);
    }

    // ------------------------------------------------------------------
    // Replay
    // ------------------------------------------------------------------

    /// Apply one log entry to the checkpoint iff its timestamp is newer.
    fn ckpt_apply(&self, tid: usize, a: u64, v: u64, ts: u64) {
        let a = a as usize;
        if a >= self.cfg.heap_words {
            return;
        }
        let tsw = self.layout.ckpt_ts(a);
        if self.pmem.read(tid, tsw) >= ts {
            return;
        }
        self.pmem.write(tid, self.layout.ckpt_val(a), v);
        self.pmem.write(tid, tsw, ts);
        self.pmem.flush_line(tid, self.layout.ckpt_val(a));
    }

    /// Scan a thread's log, invoking `f(record_ts, entries)` per complete
    /// record.
    fn scan_log(
        &self,
        scanner_tid: usize,
        owner: usize,
        head: usize,
        mut f: impl FnMut(u64, &[(u64, u64)]),
    ) {
        let base = self.layout.log_base(owner);
        let mut off = 0usize;
        let mut entries = Vec::new();
        while off < head {
            let n = self.pmem.read(scanner_tid, base + off) as usize;
            let need = 2 + 2 * n;
            if off + need > self.cfg.log_words {
                break;
            }
            let ts = self.pmem.read(scanner_tid, base + off + need - 1);
            if ts != 0 {
                entries.clear();
                for i in 0..n {
                    entries.push((
                        self.pmem.read(scanner_tid, base + off + 1 + 2 * i),
                        self.pmem.read(scanner_tid, base + off + 2 + 2 * i),
                    ));
                }
                f(ts, &entries);
            }
            off += need;
        }
    }

    /// Replay this thread's own records into the checkpoint and reset its
    /// log (called when the log fills mid-run; our own records are always
    /// complete and durably ordered).
    fn replay_own(&self, tid: usize, ts: &mut ThreadState) {
        let head = ts.log_head;
        let mut replayed = 0u64;
        self.scan_log(tid, tid, head, |rts, entries| {
            for &(a, v) in entries {
                self.ckpt_apply(tid, a, v, rts);
            }
            replayed += entries.len() as u64;
        });
        self.pmem.sfence(tid);
        self.stats.add(tid, Counter::Replayed, replayed);
        ts.log_head = 0;
        let base = self.layout.log_base(tid);
        self.pmem.write(tid, base, 0);
        self.pmem.flush_line(tid, base);
        self.pmem.sfence(tid);
    }

    /// Replay all logs into the checkpoint with `replayers` parallel
    /// workers (address-partitioned), then reset the logs. Must be called
    /// while quiescent — the paper's methodology replays after the
    /// measurement period with 16 replay threads. Returns entries applied.
    pub fn replay(&self, replayers: usize) -> u64 {
        let replayers = replayers.max(1);
        let heads: Vec<usize> = (0..self.cfg.max_threads)
            .map(|t| self.threads[t].lock().log_head)
            .collect();
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for r in 0..replayers {
                let heads = &heads;
                let total = &total;
                s.spawn(move || {
                    let scanner = r % self.cfg.max_threads;
                    let mut mine = 0u64;
                    for (owner, &head) in heads.iter().enumerate() {
                        self.scan_log(scanner, owner, head, |rts, entries| {
                            for &(a, v) in entries {
                                if (a as usize) % replayers == r {
                                    self.ckpt_apply(scanner, a, v, rts);
                                    mine += 1;
                                }
                            }
                        });
                    }
                    self.pmem.sfence(scanner);
                    total.fetch_add(mine, Ordering::Relaxed);
                });
            }
        });
        for t in 0..self.cfg.max_threads {
            let mut ts = self.threads[t].lock();
            ts.log_head = 0;
            let base = self.layout.log_base(t);
            self.pmem.write(t, base, 0);
            self.pmem.flush_line(t, base);
            // Fence per thread: each tid issued its own truncation flush.
            self.pmem.sfence(t);
        }
        let n = total.load(Ordering::Relaxed);
        self.stats.add(0, Counter::Replayed, n);
        n
    }

    /// Recover from a crash image: checkpoint plus every complete log
    /// record at or below the durable marker.
    pub fn recover(cfg: SphtConfig, image: &DurableImage) -> Spht {
        let stats = Arc::new(TmStats::new(cfg.max_threads));
        let tm = Self::build(cfg, stats, Some(image));
        let marker = tm.pmem.read(0, tm.layout.marker_word());
        // Collect all complete, covered records, apply in timestamp order
        // (the ts-guard makes order irrelevant per address, but gathering
        // lets us also reset the logs afterwards).
        let mut records: Vec<(u64, Vec<(u64, u64)>)> = Vec::new();
        for owner in 0..tm.cfg.max_threads {
            tm.scan_log(0, owner, tm.cfg.log_words, |rts, entries| {
                if rts <= marker {
                    records.push((rts, entries.to_vec()));
                }
            });
        }
        records.sort_by_key(|r| r.0);
        for (rts, entries) in &records {
            for &(a, v) in entries {
                tm.ckpt_apply(0, a, v, *rts);
            }
        }
        tm.pmem.sfence(0);
        // Volatile heap := checkpoint; reset logs.
        for a in 0..tm.cfg.heap_words {
            let v = tm.pmem.read(0, tm.layout.ckpt_val(a));
            tm.vol[a].store(v, Ordering::Relaxed);
        }
        for t in 0..tm.cfg.max_threads {
            let base = tm.layout.log_base(t);
            tm.pmem.write(0, base, 0);
            tm.pmem.flush_line(0, base);
        }
        tm.pmem.sfence(0);
        tm
    }

    // ------------------------------------------------------------------
    // Attempts
    // ------------------------------------------------------------------

    fn attempt_hw<R>(
        &self,
        ts: &mut ThreadState,
        tid: usize,
        attempt: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> Out<R> {
        ts.redo.clear();
        let mut cancelled = false;
        let mut oom = false;
        // Pre-mark: concurrent committers must wait for us (or see our
        // timestamp move past theirs).
        if self.cfg.persist_hw {
            let pre = self.htm.rdtsc();
            self.slots[tid].store(pre << 1, Ordering::Release);
        }
        let res = {
            let redo = &mut ts.redo;
            let htm_th = &mut ts.htm_th;
            let cancelled = &mut cancelled;
            let oom = &mut oom;
            self.htm.execute(htm_th, |htx| {
                // Subscribe to the fallback lock (abort while held).
                if htx.read(&self.global_lock)? != 0 {
                    return Err(htx.xabort(CODE_GL_HELD));
                }
                let mut tx = HwTxn {
                    tm: self,
                    tid,
                    attempt,
                    htx,
                    redo,
                    oom,
                    htm_aborted: false,
                };
                let r = match body(&mut tx) {
                    Ok(r) => r,
                    Err(Abort::Retry(_)) if tx.htm_aborted => return Err(Xabort),
                    Err(Abort::Retry(_)) => return Err(tx.htx.xabort(CODE_USER_RETRY)),
                    Err(Abort::Cancel) => {
                        *cancelled = true;
                        return Err(tx.htx.xabort(CODE_CANCEL));
                    }
                };
                // Commit timestamp, taken inside the transaction.
                let cts = htx.rdtsc();
                Ok((r, cts))
            })
        };
        match res {
            Ok((r, cts)) => {
                if self.cfg.persist_hw {
                    if ts.redo.is_empty() {
                        // Read-only: nothing to persist or order.
                        self.slots[tid].store(cts << 1 | 1, Ordering::Release);
                    } else {
                        self.persist_commit(tid, ts, cts);
                    }
                }
                self.stats.bump(tid, Counter::HwCommit);
                Out::Committed(r)
            }
            Err(kind) => {
                if self.cfg.persist_hw {
                    // Back to idle-persisted so nobody waits on us.
                    let s = self.slots[tid].load(Ordering::Relaxed);
                    self.slots[tid].store(s | 1, Ordering::Release);
                }
                if oom {
                    panic!("SPHT thread pool exhausted (hardware path)");
                }
                if cancelled {
                    self.stats.bump(tid, Counter::Cancelled);
                    return Out::Cancelled;
                }
                let c = match kind {
                    AbortKind::Conflict => Counter::HwConflict,
                    AbortKind::Capacity => Counter::HwCapacity,
                    AbortKind::Spurious => Counter::HwSpurious,
                    AbortKind::Explicit(CODE_GL_HELD | CODE_USER_RETRY) => Counter::HwConflict,
                    AbortKind::Explicit(_) => Counter::HwExplicit,
                };
                self.stats.bump(tid, c);
                Out::Aborted(kind)
            }
        }
    }

    fn attempt_sw<R>(
        &self,
        ts: &mut ThreadState,
        tid: usize,
        attempt: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> Out<R> {
        // Claim the global lock (hardware transactions subscribe and
        // abort). The nt_cas bumps the lock's HTM slot, dooming in-flight
        // subscribers — exactly the coherence effect on real hardware.
        loop {
            self.pmem.crash_point(tid);
            if self.htm.nt_cas(&self.global_lock, 0, 1).is_ok() {
                break;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        ts.redo.clear();
        ts.undo.clear();
        if self.cfg.persist_hw {
            let pre = self.htm.rdtsc();
            self.slots[tid].store(pre << 1, Ordering::Release);
        }
        let res = {
            let mut tx = SwTxn {
                tm: self,
                tid,
                attempt,
                redo: &mut ts.redo,
                undo: &mut ts.undo,
            };
            body(&mut tx)
        };
        let out = match res {
            Ok(r) => {
                let cts = self.htm.rdtsc();
                if self.cfg.persist_hw {
                    if ts.redo.is_empty() {
                        self.slots[tid].store(cts << 1 | 1, Ordering::Release);
                    } else {
                        self.persist_commit(tid, ts, cts);
                    }
                }
                self.stats.bump(tid, Counter::SwCommit);
                Out::Committed(r)
            }
            Err(abort) => {
                // Roll back in-place writes.
                for &(a, old) in ts.undo.iter().rev() {
                    self.vol[a as usize].store(old, Ordering::Release);
                }
                if self.cfg.persist_hw {
                    let s = self.slots[tid].load(Ordering::Relaxed);
                    self.slots[tid].store(s | 1, Ordering::Release);
                }
                match abort {
                    Abort::Cancel => {
                        self.stats.bump(tid, Counter::Cancelled);
                        Out::Cancelled
                    }
                    Abort::Retry(k) => {
                        self.stats.bump(tid, Counter::SwAbort);
                        Out::Aborted(k)
                    }
                }
            }
        };
        self.htm.nt_store(&self.global_lock, 0);
        out
    }

    /// Raw bump allocation (setup code outside transactions).
    pub fn alloc_raw(&self, tid: usize, words: usize) -> Addr {
        self.bump(tid, words).expect("SPHT thread pool exhausted")
    }

    fn bump(&self, tid: usize, words: usize) -> Option<Addr> {
        let limit = 8 + ((tid + 1) * self.pool_chunk) as u64;
        let got = self.bumps[tid].fetch_add(words as u64, Ordering::Relaxed);
        if got + words as u64 <= limit {
            Some(Addr(got))
        } else {
            self.bumps[tid].fetch_sub(words as u64, Ordering::Relaxed);
            None
        }
    }
}

enum Out<R> {
    Committed(R),
    Aborted(AbortKind),
    Cancelled,
}

impl Tm for Spht {
    fn txn<R>(
        &self,
        tid: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> TxResult<R> {
        assert!(tid < self.cfg.max_threads);
        let mut guard = self.threads[tid].lock();
        let ts = &mut *guard;
        let mut attempt = 0usize;
        let mut capacity_aborts = 0usize;
        loop {
            self.pmem.crash_point(tid);
            let choice = self.cfg.policy.choose(attempt, capacity_aborts);
            let out = match choice {
                PathChoice::Hw => self.attempt_hw(ts, tid, attempt, body),
                PathChoice::Sw => self.attempt_sw(ts, tid, attempt, body),
            };
            match out {
                Out::Committed(r) => return Ok(r),
                Out::Cancelled => return Err(Cancelled),
                Out::Aborted(kind) => {
                    if kind == AbortKind::Capacity {
                        capacity_aborts += 1;
                    }
                    ts.seed = ts.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    self.cfg.policy.backoff(ts.seed, attempt);
                }
            }
            attempt += 1;
        }
    }

    fn max_threads(&self) -> usize {
        self.cfg.max_threads
    }

    fn read_raw(&self, a: Addr) -> Word {
        self.vol[a.index()].load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn name(&self) -> &'static str {
        "spht"
    }
}

struct HwTxn<'a, 'env, 't> {
    tm: &'env Spht,
    tid: usize,
    attempt: usize,
    htx: &'a mut htm::HtmTxn<'env, 't>,
    redo: &'a mut Vec<(u64, u64)>,
    oom: &'a mut bool,
    htm_aborted: bool,
}

impl<'a, 'env, 't> HwTxn<'a, 'env, 't> {
    #[inline]
    fn lift<T>(&mut self, r: Result<T, Xabort>) -> Result<T, Abort> {
        r.map_err(|Xabort| {
            self.htm_aborted = true;
            Abort::CONFLICT
        })
    }
}

impl<'a, 'env, 't> Txn for HwTxn<'a, 'env, 't> {
    fn read(&mut self, a: Addr) -> Result<Word, Abort> {
        let idx = a.index();
        if idx == 0 || idx >= self.tm.cfg.heap_words {
            return Err(Abort::CONFLICT);
        }
        // Uninstrumented read: no per-address metadata (SPHT's advantage
        // in read-dominated workloads).
        let r = self.htx.read(&self.tm.vol[idx]);
        self.lift(r)
    }

    fn write(&mut self, a: Addr, v: Word) -> Result<(), Abort> {
        let idx = a.index();
        if idx == 0 || idx >= self.tm.cfg.heap_words {
            return Err(Abort::CONFLICT);
        }
        let r = self.htx.write(&self.tm.vol[idx], v);
        self.lift(r)?;
        if self.tm.cfg.persist_hw {
            if let Some(e) = self.redo.iter_mut().rev().find(|e| e.0 == a.0) {
                e.1 = v;
            } else {
                self.redo.push((a.0, v));
            }
        }
        Ok(())
    }

    fn alloc(&mut self, words: usize) -> Result<Addr, Abort> {
        // Bump allocation, never rolled back (SPHT never frees; an aborted
        // transaction's block is simply leaked, as in the original).
        match self.tm.bump(self.tid, words) {
            Some(a) => Ok(a),
            None => {
                *self.oom = true;
                let Xabort = self.htx.xabort(CODE_USER_RETRY);
                self.htm_aborted = true;
                Err(Abort::CONFLICT)
            }
        }
    }

    fn free(&mut self, _a: Addr, _words: usize) -> Result<(), Abort> {
        // No-op: SPHT's allocator does not implement freeing.
        Ok(())
    }

    fn is_hw(&self) -> bool {
        true
    }

    fn attempt(&self) -> usize {
        self.attempt
    }
}

struct SwTxn<'a> {
    tm: &'a Spht,
    tid: usize,
    attempt: usize,
    redo: &'a mut Vec<(u64, u64)>,
    undo: &'a mut Vec<(u64, u64)>,
}

impl<'a> Txn for SwTxn<'a> {
    fn read(&mut self, a: Addr) -> Result<Word, Abort> {
        let idx = a.index();
        if idx == 0 || idx >= self.tm.cfg.heap_words {
            return Err(Abort::CONFLICT);
        }
        Ok(self.tm.vol[idx].load(Ordering::Acquire))
    }

    fn write(&mut self, a: Addr, v: Word) -> Result<(), Abort> {
        let idx = a.index();
        if idx == 0 || idx >= self.tm.cfg.heap_words {
            return Err(Abort::CONFLICT);
        }
        // Exclusive (global lock): write in place, log undo and redo.
        self.undo
            .push((a.0, self.tm.vol[idx].load(Ordering::Acquire)));
        self.tm.vol[idx].store(v, Ordering::Release);
        if self.tm.cfg.persist_hw {
            if let Some(e) = self.redo.iter_mut().rev().find(|e| e.0 == a.0) {
                e.1 = v;
            } else {
                self.redo.push((a.0, v));
            }
        }
        Ok(())
    }

    fn alloc(&mut self, words: usize) -> Result<Addr, Abort> {
        match self.tm.bump(self.tid, words) {
            Some(a) => Ok(a),
            None => panic!("SPHT thread pool exhausted"),
        }
    }

    fn free(&mut self, _a: Addr, _words: usize) -> Result<(), Abort> {
        Ok(())
    }

    fn is_hw(&self) -> bool {
        false
    }

    fn attempt(&self) -> usize {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm::txn;

    fn small() -> Spht {
        Spht::new(SphtConfig::test(1 << 12, 4))
    }

    #[test]
    fn read_write_roundtrip() {
        let t = small();
        let r = txn(&t, 0, |tx| {
            tx.write(Addr(5), 9)?;
            tx.read(Addr(5))
        });
        assert_eq!(r, Ok(9));
        assert_eq!(t.read_raw(Addr(5)), 9);
    }

    #[test]
    fn hardware_path_commits_uncontended() {
        let t = small();
        for i in 0..50 {
            txn(&t, 0, |tx| tx.write(Addr(1), i)).unwrap();
        }
        assert_eq!(t.stats().get(Counter::HwCommit), 50);
    }

    #[test]
    fn fallback_lock_blocks_hardware() {
        // While the global lock is held, hardware attempts abort.
        let t = small();
        t.htm.nt_store(&t.global_lock, 1);
        let mut th = HtmThread::new(&t.htm, 0);
        let r: Result<(), AbortKind> = t.htm.execute(&mut th, |htx| {
            if htx.read(&t.global_lock)? != 0 {
                return Err(htx.xabort(CODE_GL_HELD));
            }
            Ok(())
        });
        assert_eq!(r, Err(AbortKind::Explicit(CODE_GL_HELD)));
        t.htm.nt_store(&t.global_lock, 0);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let t = Arc::new(small());
        let mut handles = Vec::new();
        for tid in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..3_000 {
                    txn(&*t, tid, |tx| {
                        let v = tx.read(Addr(1))?;
                        tx.write(Addr(1), v + 1)
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.read_raw(Addr(1)), 12_000);
    }

    #[test]
    fn committed_transactions_survive_crash_via_log_replay() {
        let cfg = SphtConfig::test(1 << 10, 2);
        let t = Spht::new(cfg.clone());
        txn(&t, 0, |tx| tx.write(Addr(4), 44)).unwrap();
        txn(&t, 1, |tx| {
            tx.write(Addr(5), 55)?;
            tx.write(Addr(6), 66)
        })
        .unwrap();
        t.crash();
        let rec = Spht::recover(cfg, &t.crash_image());
        assert_eq!(rec.read_raw(Addr(4)), 44);
        assert_eq!(rec.read_raw(Addr(5)), 55);
        assert_eq!(rec.read_raw(Addr(6)), 66);
    }

    #[test]
    fn last_writer_wins_after_recovery() {
        let cfg = SphtConfig::test(1 << 10, 2);
        let t = Spht::new(cfg.clone());
        for i in 1..=20u64 {
            txn(&t, (i % 2) as usize, |tx| tx.write(Addr(7), i)).unwrap();
        }
        t.crash();
        let rec = Spht::recover(cfg, &t.crash_image());
        assert_eq!(rec.read_raw(Addr(7)), 20);
    }

    #[test]
    fn replay_compacts_logs_and_preserves_state() {
        let cfg = SphtConfig::test(1 << 10, 2);
        let t = Spht::new(cfg.clone());
        for i in 1..=10u64 {
            txn(&t, 0, |tx| tx.write(Addr(3), i)).unwrap();
        }
        let replayed = t.replay(4);
        assert!(replayed >= 10);
        // After replay the checkpoint alone must carry the state.
        t.crash();
        let rec = Spht::recover(cfg, &t.crash_image());
        assert_eq!(rec.read_raw(Addr(3)), 10);
    }

    #[test]
    fn log_overflow_triggers_self_replay() {
        let mut cfg = SphtConfig::test(1 << 10, 1);
        cfg.log_words = 64; // tiny: each record is 5 words
        let t = Spht::new(cfg.clone());
        for i in 1..=100u64 {
            txn(&t, 0, |tx| tx.write(Addr(2), i)).unwrap();
        }
        assert!(t.stats().get(Counter::Replayed) > 0);
        t.crash();
        let rec = Spht::recover(cfg, &t.crash_image());
        assert_eq!(rec.read_raw(Addr(2)), 100);
    }

    #[test]
    fn alloc_is_bump_only_and_free_is_noop() {
        let t = small();
        let a = txn(&t, 0, |tx| tx.alloc(8)).unwrap();
        txn(&t, 0, |tx| tx.free(a, 8)).unwrap();
        let b = txn(&t, 0, |tx| tx.alloc(8)).unwrap();
        assert_ne!(a, b, "no recycling in SPHT's allocator");
        // Different threads draw from disjoint pools.
        let c = txn(&t, 1, |tx| tx.alloc(8)).unwrap();
        assert!(c.0 >= b.0 + 8 || c.0 + 8 <= a.0);
    }

    #[test]
    fn cancel_rolls_back_software_path_writes() {
        let mut cfg = SphtConfig::test(1 << 10, 1);
        cfg.policy = HybridPolicy::stm_only();
        let t = Spht::new(cfg);
        txn(&t, 0, |tx| tx.write(Addr(2), 5)).unwrap();
        let r: Result<(), Cancelled> = txn(&t, 0, |tx| {
            tx.write(Addr(2), 99)?;
            Err(Abort::Cancel)
        });
        assert!(r.is_err());
        assert_eq!(t.read_raw(Addr(2)), 5);
        // The lock was released: new transactions proceed.
        txn(&t, 0, |tx| tx.write(Addr(2), 6)).unwrap();
        assert_eq!(t.read_raw(Addr(2)), 6);
    }

    #[test]
    fn ordering_wait_is_recorded_under_concurrency() {
        let t = Arc::new(small());
        let mut handles = Vec::new();
        for tid in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    // Disjoint writes: SPHT still orders their durability.
                    txn(&*t, tid, |tx| tx.write(Addr(100 + tid as u64), i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.stats().commits(), 8_000);
    }
}
