//! Targeted tests of SPHT's distinguishing mechanisms: the global-lock
//! fallback's effect on hardware transactions, the timestamp-ordered
//! durability negotiation, marker free-riding, and the paper's point that
//! SPHT blocks *disjoint* transactions.

use pmem::pool::{EvictionPolicy, FlushPolicy};
use pmem::{Diagnostic, PsanMode};
use spht::{Spht, SphtConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use tm::policy::HybridPolicy;
use tm::stats::Counter;
use tm::{txn, Abort, Addr, Tm};

fn correctness(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.into_iter().filter(|d| !d.class.is_perf()).collect()
}

/// While one thread sits in the software fallback (global lock held),
/// other threads' transactions cannot commit in hardware — they wait or
/// fall back, and throughput collapses to the serial path. This is the
/// structural bottleneck the paper contrasts NV-HALT against.
#[test]
fn fallback_serializes_everyone() {
    let tmem = Spht::new(SphtConfig::test(1 << 12, 2));
    let in_fallback = AtomicBool::new(false);
    let observed_block = AtomicBool::new(false);
    let start = Barrier::new(2);
    std::thread::scope(|s| {
        // Thread 0: a long software-path transaction (forced by retrying
        // away every hardware attempt).
        s.spawn(|| {
            start.wait();
            txn(&tmem, 0, |tx| {
                if tx.is_hw() {
                    return Err(Abort::CONFLICT);
                }
                in_fallback.store(true, Ordering::Release);
                tx.write(Addr(1), 7)?;
                // Hold the global lock for a while.
                let t0 = std::time::Instant::now();
                while t0.elapsed() < std::time::Duration::from_millis(30) {
                    std::thread::yield_now();
                }
                in_fallback.store(false, Ordering::Release);
                Ok(())
            })
            .unwrap();
        });
        // Thread 1: hardware transactions on DISJOINT data during the
        // fallback window must abort (they subscribe to the lock).
        s.spawn(|| {
            start.wait();
            while !in_fallback.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let before = tmem.stats().get(Counter::HwConflict);
            // This transaction touches only Addr(2); it still cannot run.
            txn(&tmem, 1, |tx| tx.write(Addr(2), 9)).unwrap();
            let after = tmem.stats().get(Counter::HwConflict);
            if after > before {
                observed_block.store(true, Ordering::Release);
            }
        });
    });
    assert!(
        observed_block.load(Ordering::Acquire),
        "disjoint hardware transaction was not blocked by the fallback lock"
    );
    assert_eq!(tmem.read_raw(Addr(1)), 7);
    assert_eq!(tmem.read_raw(Addr(2)), 9);
}

/// Durability ordering: a transaction's commit does not return until the
/// durable marker covers it, so after any prefix of committed writes a
/// crash recovers exactly a prefix-consistent state (checked via a chain
/// where each value embeds its predecessor).
#[test]
fn commit_order_is_durability_order() {
    let cfg = SphtConfig::test(1 << 10, 1);
    let tmem = Spht::new(cfg.clone());
    // A dependency chain: slot i+1 is written only after slot i's commit
    // returned. Recovery must never show slot i+1 set while slot i is 0.
    for i in 0..40u64 {
        txn(&tmem, 0, |tx| tx.write(Addr(1 + i), i + 1)).unwrap();
    }
    tmem.crash();
    let rec = Spht::recover(cfg, &tmem.crash_image());
    let mut seen_zero = false;
    for i in 0..40u64 {
        let v = rec.read_raw(Addr(1 + i));
        if v == 0 {
            seen_zero = true;
        } else {
            assert!(
                !seen_zero,
                "slot {i} durable but an earlier slot is not — ordering violated"
            );
            assert_eq!(v, i + 1);
        }
    }
    assert!(
        !seen_zero,
        "all committed writes were fence-ordered durable"
    );
}

/// Read-only transactions skip the whole durability protocol: no log
/// growth, no ordering waits, no marker traffic.
#[test]
fn read_only_transactions_skip_persistence() {
    let tmem = Spht::new(SphtConfig::test(1 << 10, 1));
    txn(&tmem, 0, |tx| tx.write(Addr(1), 5)).unwrap();
    let flushes_before = tmem.stats().get(Counter::Flush);
    for _ in 0..100 {
        assert_eq!(txn(&tmem, 0, |tx| tx.read(Addr(1))).unwrap(), 5);
    }
    assert_eq!(
        tmem.stats().get(Counter::Flush),
        flushes_before,
        "read-only transactions issued flushes"
    );
}

/// Concurrent writers to disjoint data all commit and all survive a
/// crash (the ordering negotiation may stall them, but must not wedge or
/// lose anything).
#[test]
fn concurrent_disjoint_writers_recover_completely() {
    let cfg = SphtConfig::test(1 << 12, 4);
    let tmem = Spht::new(cfg.clone());
    std::thread::scope(|s| {
        for t in 0..4usize {
            let tmem = &tmem;
            s.spawn(move || {
                for i in 1..=500u64 {
                    txn(tmem, t, |tx| tx.write(Addr(100 + t as u64), i)).unwrap();
                }
            });
        }
    });
    tmem.crash();
    let rec = Spht::recover(cfg, &tmem.crash_image());
    for t in 0..4u64 {
        assert_eq!(rec.read_raw(Addr(100 + t)), 500, "thread {t}");
    }
}

/// Log-record persist ordering under the sanitizer, covering both
/// next-slot truncation layouts: a 1-write record (`need = 4`) leaves
/// the truncation word on the *same* cache line as the validity marker,
/// a 3-write record (`need = 8`) pushes it onto the *next* line. In
/// both layouts the record body and the truncation zero must be fenced
/// durable before the marker is declared, and psan must see a clean
/// store→flush→fence discipline throughout commit, crash, and recovery.
#[test]
fn record_truncation_layouts_are_clean_under_record() {
    let mut cfg = SphtConfig::test(1 << 10, 1);
    cfg.pm.psan = PsanMode::Record;
    let tm = Spht::new(cfg.clone());
    // Alternate 1-write (same-line truncation) and 3-write (cross-line
    // truncation) records; the log head walks through both phases of
    // every line-alignment class.
    for i in 0..32u64 {
        if i % 2 == 0 {
            txn(&tm, 0, |tx| tx.write(Addr(1 + i), i + 1)).unwrap();
        } else {
            txn(&tm, 0, |tx| {
                tx.write(Addr(1 + i), i + 1)?;
                tx.write(Addr(100 + i), i + 1)?;
                tx.write(Addr(200 + i), i + 1)
            })
            .unwrap();
        }
    }
    tm.crash();
    let pre = tm
        .pool()
        .psan()
        .map(|s| correctness(s.take_diagnostics()))
        .unwrap_or_default();
    assert!(pre.is_empty(), "pre-crash diagnostics: {pre:?}");

    let rec = Spht::recover(cfg, &tm.crash_image());
    for i in 0..32u64 {
        assert_eq!(rec.read_raw(Addr(1 + i)), i + 1, "slot {i}");
    }
    let post = rec
        .pool()
        .psan()
        .map(|s| correctness(s.take_diagnostics()))
        .unwrap_or_default();
    assert!(post.is_empty(), "post-recovery diagnostics: {post:?}");
}

/// Adversarial persist schedule for the truncation-ordering fix: with
/// `Seeded` flush completion (write-backs complete immediately or at
/// the next fence, per-flush at random) plus random eviction, a
/// truncation store whose durability is not ordered *before* the
/// validity marker's would eventually leave a durable marker behind a
/// stale next-slot length — and a tiny log forces wraps, so stale
/// bytes really are sitting in the next slot. Every committed write
/// must still be recovered.
#[test]
fn truncation_survives_reordered_writebacks_and_wraps() {
    for round in 0..8u64 {
        let mut cfg = SphtConfig::test(1 << 10, 2);
        cfg.log_words = 64; // wraps every few records
        cfg.pm.flush = FlushPolicy::Seeded { num: 128 };
        cfg.pm.eviction = EvictionPolicy::Random { prob_log2: 6 };
        cfg.pm.seed = 0x5eed_0000 + round;
        let tm = Spht::new(cfg.clone());
        let committed: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..2usize {
                let committed = &committed;
                let tm = &tm;
                s.spawn(move || {
                    tm::crash::run_crashable(|| {
                        for i in 1..u64::MAX {
                            let slot = 1 + t as u64;
                            if txn(tm, t, |tx| tx.write(Addr(slot), i)).is_ok() {
                                committed.lock().unwrap().push((slot, i));
                            } else {
                                break;
                            }
                        }
                    });
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(15));
            tm.crash();
        });
        let rec = Spht::recover(cfg, &tm.crash_image());
        for (slot, v) in committed.into_inner().unwrap() {
            let got = rec.read_raw(Addr(slot));
            assert!(
                got >= v,
                "round {round} slot {slot}: durable {got} older than committed {v}"
            );
        }
    }
}

/// The STM-only policy (always the global lock) is correct, just slow —
/// the degenerate configuration the paper contrasts with NV-HALT's
/// non-trivial fallback.
#[test]
fn stm_only_spht_is_a_global_lock_tm() {
    let mut cfg = SphtConfig::test(1 << 10, 2);
    cfg.policy = HybridPolicy::stm_only();
    let tmem = Spht::new(cfg);
    std::thread::scope(|s| {
        for t in 0..2usize {
            let tmem = &tmem;
            s.spawn(move || {
                for _ in 0..2_000 {
                    txn(tmem, t, |tx| {
                        let v = tx.read(Addr(1))?;
                        tx.write(Addr(1), v + 1)
                    })
                    .unwrap();
                }
            });
        }
    });
    assert_eq!(tmem.read_raw(Addr(1)), 4_000);
    assert_eq!(tmem.stats().get(Counter::HwCommit), 0);
}
