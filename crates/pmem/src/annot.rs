//! Trinity's colocated-undo persistent layout (§2.1.2, used by NV-HALT §3.2).
//!
//! Every transactional word is augmented, *in persistent memory only*, with
//! an adjacent replica word (`back`) and a sequence word (`meta`), all
//! within one cache line. Volatile memory holds just the user word; the
//! annotated entry exists purely for recovery (the optimisation Trinity
//! describes and NV-HALT adopts).
//!
//! Persisting a write stores `back = old value`, then `meta = {tid, pver}`,
//! then `data = new value`, then `pad = meta` (the completion witness),
//! and flushes the line — in that order, so any store-order-consistent
//! prefix that reaches the media is recoverable:
//!
//! * `meta` old → `data` is old too (kept as is);
//! * `meta` new → `back` is definitely the pre-transaction value, and the
//!   word is reverted to it iff the owning thread's durable persistent
//!   version number says transaction `pver` did not fully persist;
//! * `pad == meta` → the whole entry (data included) reached the media —
//!   the witness that lets a *counted* commit marker certify an entire
//!   write set with a single fence (see below).
//!
//! # Counted commit markers (one-fence group commit)
//!
//! The classic protocol needs two fences per committed writer: one after
//! the entries (so the marker store cannot become durable before them)
//! and one after the marker (so the ack is durable). The counted marker
//! folds both into one: the pver word packs `(count << 48) | version`,
//! where `count` is the number of entries the committing transaction
//! stamped with `version - 1`. Entries and marker are flushed together
//! under a *single* fence; recovery re-derives the ordering the first
//! fence used to provide by counting durable entries of the marker's
//! generation — `pad == meta == {tid, version-1}` — and rolling the
//! generation back if any are missing (a torn, unacknowledged commit).
//! A count of 0 or [`PVER_COUNT_TRUSTED`] means "trust the marker":
//! the writer used the legacy two-fence order (prepared-transaction
//! decisions, oversized write sets, pre-diet images).
//!
//! The pool region is laid out as one line per thread for the persistent
//! version numbers (avoiding line-lock contention between threads),
//! followed by a 4-word entry per user word (two entries per line):
//!
//! ```text
//! [ pver line, thread 0 ][ pver line, thread 1 ] ... [ entries: {data, back, meta, pad} per word ]
//! ```

use crate::pool::{DurableImage, PmemConfig, PmemPool, LINE_WORDS};
use psan::EntryRole;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tm::stats::TmStats;

/// Words per annotated entry (`{data, back, meta, pad}`).
pub const ENTRY_WORDS: usize = 4;

const F_DATA: usize = 0;
const F_BACK: usize = 1;
const F_META: usize = 2;
const F_PAD: usize = 3;

/// Low 48 bits of the pver word: the version itself.
const PVER_VER_MASK: u64 = (1 << 48) - 1;

/// Pver-word count field meaning "trust the marker" — the writer fenced
/// its entries *before* the marker store (legacy two-fence order), so no
/// recovery-time count check applies. Also the saturation fallback for
/// write sets of 2^16-1 entries or more.
pub const PVER_COUNT_TRUSTED: u64 = 0xFFFF;

/// Pack a pver word: entry count of the committing generation in the top
/// 16 bits, version in the low 48.
#[inline]
pub fn pack_pver(ver: u64, count: u64) -> u64 {
    debug_assert!(ver <= PVER_VER_MASK);
    debug_assert!(count <= PVER_COUNT_TRUSTED);
    (count << 48) | ver
}

/// The version field of a pver word.
#[inline]
pub fn pver_version(word: u64) -> u64 {
    word & PVER_VER_MASK
}

/// The count field of a pver word (0 and [`PVER_COUNT_TRUSTED`] both mean
/// "no count check").
#[inline]
pub fn pver_count(word: u64) -> u64 {
    word >> 48
}

/// The `{tid, pver}` tuple stored in an entry's sequence word. Thread id in
/// the top 16 bits, persistent version number in the low 48 (the paper
/// combines them because different threads may share version values).
///
/// Version wrap-around would take 2^48 committed writing transactions per
/// thread; out of reach in any run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Meta(pub u64);

impl Meta {
    /// Pack a thread id and version.
    #[inline]
    pub fn pack(tid: usize, ver: u64) -> Meta {
        debug_assert!(tid < (1 << 16));
        debug_assert!(ver < (1 << 48));
        Meta(((tid as u64) << 48) | ver)
    }

    /// Owning thread id.
    #[inline]
    pub fn tid(self) -> usize {
        (self.0 >> 48) as usize
    }

    /// Persistent version number.
    #[inline]
    pub fn ver(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

/// Geometry of the annotated region: pure arithmetic, usable against both a
/// live pool and a crash image.
#[derive(Clone, Copy, Debug)]
pub struct AnnotLayout {
    /// Number of user words.
    pub heap_words: usize,
    /// Number of thread slots (one pver line each).
    pub max_threads: usize,
}

impl AnnotLayout {
    /// Total pool words this layout needs.
    pub fn total_words(&self) -> usize {
        self.max_threads * LINE_WORDS + self.heap_words * ENTRY_WORDS
    }

    /// Pool word holding thread `tid`'s persistent version number.
    #[inline]
    pub fn pver_word(&self, tid: usize) -> usize {
        debug_assert!(tid < self.max_threads);
        tid * LINE_WORDS
    }

    /// Pool word where user word `a`'s entry begins.
    #[inline]
    pub fn entry_base(&self, a: usize) -> usize {
        debug_assert!(a < self.heap_words);
        self.max_threads * LINE_WORDS + a * ENTRY_WORDS
    }

    /// Read an entry `{data, back, meta}` from a crash image.
    pub fn image_entry(&self, img: &DurableImage, a: usize) -> (u64, u64, Meta) {
        let base = self.entry_base(a);
        (
            img.word(base + F_DATA),
            img.word(base + F_BACK),
            Meta(img.word(base + F_META)),
        )
    }

    /// Read an entry's pad (completion witness) word from a crash image.
    pub fn image_entry_pad(&self, img: &DurableImage, a: usize) -> u64 {
        img.word(self.entry_base(a) + F_PAD)
    }

    /// Read thread `tid`'s durable pver (the version field) from a crash
    /// image.
    pub fn image_pver(&self, img: &DurableImage, tid: usize) -> u64 {
        pver_version(img.word(self.pver_word(tid)))
    }

    /// Read thread `tid`'s durable pver *count* field from a crash image
    /// (0 / [`PVER_COUNT_TRUSTED`] mean "trust the marker").
    pub fn image_pver_count(&self, img: &DurableImage, tid: usize) -> u64 {
        pver_count(img.word(self.pver_word(tid)))
    }

    /// Per-thread revert thresholds for recovery: entries stamped `{t, v}`
    /// with `v >= thresholds[t]` belong to transactions whose persist phase
    /// did not provably complete, and must be rolled back.
    ///
    /// For a trusted marker the threshold is simply the durable version
    /// `V` (the legacy rule). For a *counted* marker `(V, N)` the one-fence
    /// commit of generation `V - 1` may itself be torn — marker durable,
    /// entries not — so the generation is re-validated by counting its
    /// durable completion witnesses (`pad == meta == {t, V-1}`):
    ///
    /// * a *stray* entry with `ver >= V` exists → a later transaction of
    ///   `t` stored it, which it can only have done after the commit's
    ///   fence completed — generation `V - 1` is provably durable and the
    ///   threshold stays `V` (the stray itself is then ≥ the threshold and
    ///   gets reverted as usual);
    /// * otherwise, exactly `N` witnesses → complete, threshold `V`;
    /// * otherwise → torn: the threshold drops to `V - 1`, rolling the
    ///   whole (never-acknowledged) generation back.
    pub fn revert_thresholds(&self, img: &DurableImage) -> Vec<u64> {
        let mut thresholds = Vec::with_capacity(self.max_threads);
        // (generation meta word, expected witness count) per counted thread.
        let mut counted: Vec<Option<(u64, u64)>> = Vec::with_capacity(self.max_threads);
        for t in 0..self.max_threads {
            let v = self.image_pver(img, t);
            let c = self.image_pver_count(img, t);
            thresholds.push(v);
            let gen = if v > 0 { Meta::pack(t, v - 1).0 } else { 0 };
            // gen == 0 (thread 0, generation 0) is indistinguishable from a
            // fresh zeroed entry, so writers never use a counted marker for
            // it; treat it as trusted if an image claims otherwise.
            counted.push((c != 0 && c != PVER_COUNT_TRUSTED && gen != 0).then_some((gen, c)));
        }
        if counted.iter().any(Option::is_some) {
            let mut found = vec![0u64; self.max_threads];
            let mut stray = vec![false; self.max_threads];
            for a in 0..self.heap_words {
                let meta = Meta(img.word(self.entry_base(a) + F_META));
                if meta.0 == 0 || meta.tid() >= self.max_threads {
                    continue;
                }
                let t = meta.tid();
                if let Some((gen, _)) = counted[t] {
                    if meta.0 == gen && self.image_entry_pad(img, a) == gen {
                        found[t] += 1;
                    } else if meta.ver() >= thresholds[t] {
                        stray[t] = true;
                    }
                }
            }
            for t in 0..self.max_threads {
                if let Some((_, c)) = counted[t] {
                    if !stray[t] && found[t] != c {
                        thresholds[t] -= 1;
                    }
                }
            }
        }
        thresholds
    }
}

/// A [`PmemPool`] wrapped in the annotated layout.
pub struct AnnotPmem {
    layout: AnnotLayout,
    pool: PmemPool,
    /// Volatile memo per thread slot: the highest marker version known to
    /// be durably upgraded to trusted by a witness-preservation pass, so
    /// repeated overwrites of the same foreign generation pay the upgrade
    /// flush + fence once. Lost on crash — recovery just re-upgrades.
    upgraded: Box<[AtomicU64]>,
}

impl AnnotPmem {
    /// Create a fresh annotated pool. `template.words` is ignored; the size
    /// is computed from `layout`.
    pub fn new(layout: AnnotLayout, template: &PmemConfig, stats: Option<Arc<TmStats>>) -> Self {
        let cfg = PmemConfig {
            words: layout.total_words(),
            max_threads: layout.max_threads,
            ..template.clone()
        };
        AnnotPmem {
            layout,
            pool: PmemPool::new(&cfg, stats),
            upgraded: (0..layout.max_threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Rebuild an annotated pool from a crash image (recovery).
    pub fn from_image(
        layout: AnnotLayout,
        template: &PmemConfig,
        image: &DurableImage,
        stats: Option<Arc<TmStats>>,
    ) -> Self {
        let cfg = PmemConfig {
            words: layout.total_words(),
            max_threads: layout.max_threads,
            ..template.clone()
        };
        AnnotPmem {
            layout,
            pool: PmemPool::from_durable(&cfg, image, stats),
            upgraded: (0..layout.max_threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The layout geometry.
    pub fn layout(&self) -> AnnotLayout {
        self.layout
    }

    /// The underlying pool (crash control, snapshots).
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// Persist one write-set entry: `back = old`, `meta`, `data = new`,
    /// `pad = meta`, then flush the entry's line — Figure 1 lines 17–19
    /// plus the completion witness.
    ///
    /// Built from the role-typed store building blocks below so the
    /// persist-order sanitizer can enforce the epoch protocol (and so
    /// adversarial fixtures can call them out of order on purpose).
    pub fn persist_entry(&self, tid: usize, a: usize, old: u64, new: u64, meta: Meta) {
        self.stage_entry(tid, a, old, new, meta);
        self.flush_entry(tid, a);
    }

    /// Stage one write-set entry's four stores *without* flushing — the
    /// group-commit building block: stage every entry of the write set,
    /// then flush each distinct entry line exactly once via
    /// [`AnnotPmem::flush_lines`].
    pub fn stage_entry(&self, tid: usize, a: usize, old: u64, new: u64, meta: Meta) {
        self.store_back(tid, a, old);
        self.store_meta(tid, a, meta);
        self.store_data(tid, a, new);
        self.store_pad(tid, a, meta);
    }

    /// Witness preservation — call with the write-set addresses *before*
    /// the first staging store of a commit/prepare.
    ///
    /// Staging over an entry that belongs to another thread's *latest
    /// counted* generation would deplete the witness count that thread's
    /// marker relies on, making a complete (possibly acknowledged) commit
    /// look torn to recovery. Holding the lock on the address proves that
    /// generation's fence completed (its owner released the lock only
    /// after it), so the marker is safely upgraded to a trusted one —
    /// CAS so a concurrent *newer* marker by the owner is never clobbered
    /// — and the upgrade is flushed and fenced durable before the caller
    /// overwrites the evidence. One upgrade converts the whole
    /// generation; a volatile memo makes repeats free.
    pub fn preserve_witnesses<I: IntoIterator<Item = usize>>(&self, tid: usize, addrs: I) {
        let mut fence = false;
        for a in addrs {
            let meta = Meta(self.pool.cache_word(self.layout.entry_base(a) + F_META));
            if meta.0 == 0 || meta.tid() == tid || meta.tid() >= self.layout.max_threads {
                continue;
            }
            let need = meta.ver() + 1;
            let victim = meta.tid();
            if self.upgraded[victim].load(Ordering::Acquire) >= need {
                continue;
            }
            let w = self.layout.pver_word(victim);
            let cur = self.pool.cache_word(w);
            if pver_version(cur) != need || pver_count(cur) == 0 {
                // The owner moved past this generation (or never counted
                // it): the entry is not a witness of its latest marker.
                continue;
            }
            if pver_count(cur) != PVER_COUNT_TRUSTED {
                // A failed CAS means the owner concurrently published a
                // newer marker or a racing upgrader won; either way the
                // flush below pushes whatever trusted/newer word is in
                // the cache — a racing upgrader may not have fenced yet,
                // so we cannot skip it.
                let _ = self
                    .pool
                    .cas_word(tid, w, cur, pack_pver(need, PVER_COUNT_TRUSTED));
            }
            self.pool.flush_line(tid, w);
            self.upgraded[victim].fetch_max(need, Ordering::Release);
            fence = true;
        }
        if fence {
            self.pool.sfence(tid);
        }
    }

    /// Pin recovery verdicts durably: every *counted* marker in the image
    /// is rewritten as a trusted marker at its effective (post-verdict)
    /// version from `thresholds`, flushed, and fenced — BEFORE any entry
    /// is neutralized. Neutralization destroys the strays and witnesses
    /// the counted verdict was derived from; without pinning, a crash
    /// mid-recovery could flip a "complete" verdict to "torn" on the next
    /// attempt and roll back an acknowledged commit.
    pub fn pin_recovery_verdicts(&self, img: &DurableImage, thresholds: &[u64]) {
        let mut any = false;
        for (t, &thr) in thresholds.iter().enumerate().take(self.layout.max_threads) {
            let c = self.layout.image_pver_count(img, t);
            if c != 0 && c != PVER_COUNT_TRUSTED {
                let w = self.layout.pver_word(t);
                self.pool.write(0, w, pack_pver(thr, PVER_COUNT_TRUSTED));
                self.pool.flush_line(0, w);
                any = true;
            }
        }
        if any {
            self.pool.sfence(0);
        }
    }

    /// Store user word `a`'s `back` (undo replica) word — step one of the
    /// entry protocol.
    pub fn store_back(&self, tid: usize, a: usize, old: u64) {
        let base = self.layout.entry_base(a);
        self.pool
            .write_role(tid, base + F_BACK, old, EntryRole::Back);
    }

    /// Store user word `a`'s `meta` (`{tid, pver}`) word — step two.
    pub fn store_meta(&self, tid: usize, a: usize, meta: Meta) {
        let base = self.layout.entry_base(a);
        self.pool
            .write_role(tid, base + F_META, meta.0, EntryRole::Meta);
    }

    /// Store user word `a`'s `data` (new value) word — step three.
    pub fn store_data(&self, tid: usize, a: usize, new: u64) {
        let base = self.layout.entry_base(a);
        self.pool
            .write_role(tid, base + F_DATA, new, EntryRole::Data);
    }

    /// Store user word `a`'s `pad` (completion witness) word — step four,
    /// always last. Recovery counts an entry toward a counted commit
    /// marker only when `pad == meta`, so a write-back that evicts the
    /// line mid-entry can never present a phantom "complete" entry.
    pub fn store_pad(&self, tid: usize, a: usize, meta: Meta) {
        let base = self.layout.entry_base(a);
        self.pool
            .write_role(tid, base + F_PAD, meta.0, EntryRole::Pad);
    }

    /// Flush user word `a`'s entry line — the final step of the protocol.
    pub fn flush_entry(&self, tid: usize, a: usize) {
        let base = self.layout.entry_base(a);
        self.pool.flush_line(tid, base);
    }

    /// The line-aligned pool word of user word `a`'s entry, for collecting
    /// distinct lines before a coalesced [`AnnotPmem::flush_lines`] pass.
    #[inline]
    pub fn entry_line(&self, a: usize) -> usize {
        let base = self.layout.entry_base(a);
        base - base % LINE_WORDS
    }

    /// Flush a set of entry lines, each distinct line exactly once: the
    /// group-commit flush pass. Sorts and dedups `lines` in place (callers
    /// keep a reusable scratch vector of [`AnnotPmem::entry_line`] values).
    pub fn flush_lines(&self, tid: usize, lines: &mut Vec<usize>) {
        lines.sort_unstable();
        lines.dedup();
        for &w in lines.iter() {
            self.pool.flush_line(tid, w);
        }
    }

    /// Write the recovered value of user word `a` during recovery
    /// (both layers already equal; this refreshes an entry whose data word
    /// was reverted). Flushes so the revert itself is durable.
    pub fn recovery_store(&self, a: usize, v: u64) {
        let base = self.layout.entry_base(a);
        self.pool.write(0, base + F_DATA, v);
        self.pool.flush_line(0, base);
    }

    /// Neutralize a reverted entry during recovery so its stale `meta`
    /// cannot pollute a future counted commit's generation count: the data
    /// word takes the back value, the pad witness is broken, and the meta
    /// is cleared — in that store order, so a crash mid-neutralization
    /// leaves the entry either still revertible (meta intact, back intact)
    /// or already neutral. Idempotent under re-crash.
    pub fn recovery_neutralize(&self, a: usize, back_value: u64) {
        let base = self.layout.entry_base(a);
        self.pool.write(0, base + F_DATA, back_value);
        self.pool.write(0, base + F_PAD, 1);
        self.pool.write(0, base + F_META, 0);
        self.pool.flush_line(0, base);
    }

    /// Persist thread `tid`'s new persistent version number (Figure 1
    /// line 21) with a *trusted* marker: store + flush. The caller orders
    /// it with a fence, having already fenced the entries (legacy
    /// two-fence order).
    ///
    /// This is the commit-marker store — the moment recovery semantics
    /// flip from "roll the staged entries back" to "keep them" — so it is
    /// a strict sanitizer durability point: every line `tid` persisted
    /// for this transaction must already be fenced.
    pub fn persist_pver(&self, tid: usize, ver: u64) {
        self.pool.durability_point(tid, "annot::persist_pver");
        let w = self.layout.pver_word(tid);
        self.pool.write(tid, w, pack_pver(ver, PVER_COUNT_TRUSTED));
        self.pool.flush_line(tid, w);
    }

    /// Persist thread `tid`'s new persistent version number as a *counted*
    /// marker: `count` entries were stamped `ver - 1` and flushed (but not
    /// yet fenced) by the committing transaction. The caller issues ONE
    /// fence after this — entries and marker drain together, and recovery
    /// distinguishes "marker without entries" by re-counting durable
    /// `pad == meta` witnesses of generation `ver - 1`.
    ///
    /// No pre-store durability point: the single-fence order means the
    /// entry lines are deliberately *not* fenced yet. Callers place a
    /// post-fence durability point instead.
    pub fn persist_pver_counted(&self, tid: usize, ver: u64, count: u64) {
        debug_assert!(count > 0 && count < PVER_COUNT_TRUSTED);
        let w = self.layout.pver_word(tid);
        self.pool.write(tid, w, pack_pver(ver, count));
        self.pool.flush_line(tid, w);
    }

    /// `sfence` for thread `tid`.
    pub fn sfence(&self, tid: usize) {
        self.pool.sfence(tid);
    }

    /// Entry `{data, back, meta}` as currently durable (quiescent).
    pub fn durable_entry(&self, a: usize) -> (u64, u64, Meta) {
        let base = self.layout.entry_base(a);
        (
            self.pool.durable_word(base + F_DATA),
            self.pool.durable_word(base + F_BACK),
            Meta(self.pool.durable_word(base + F_META)),
        )
    }

    /// Entry `{data, back, meta}` in the cache layer (quiescent).
    pub fn cache_entry(&self, a: usize) -> (u64, u64, Meta) {
        let base = self.layout.entry_base(a);
        (
            self.pool.cache_word(base + F_DATA),
            self.pool.cache_word(base + F_BACK),
            Meta(self.pool.cache_word(base + F_META)),
        )
    }

    /// Entry `pad` (completion witness) word as currently durable
    /// (quiescent).
    pub fn durable_entry_pad(&self, a: usize) -> u64 {
        self.pool.durable_word(self.layout.entry_base(a) + F_PAD)
    }

    /// Thread `tid`'s durable pver — the version field only (quiescent).
    pub fn durable_pver(&self, tid: usize) -> u64 {
        pver_version(self.pool.durable_word(self.layout.pver_word(tid)))
    }

    /// Thread `tid`'s durable pver count field (quiescent).
    pub fn durable_pver_count(&self, tid: usize) -> u64 {
        pver_count(self.pool.durable_word(self.layout.pver_word(tid)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{FlushPolicy, PmemMode};
    use crate::EvictionPolicy;
    use crate::LatencyModel;

    fn settings() -> PmemConfig {
        PmemConfig {
            words: 0,
            max_threads: 0,
            mode: PmemMode::Nvram,
            lat: LatencyModel::zero(),
            flush: FlushPolicy::Eager,
            eviction: EvictionPolicy::None,
            seed: 7,
            psan: crate::PsanMode::Off,
        }
    }

    #[test]
    fn meta_pack_roundtrip() {
        let m = Meta::pack(12, 0x1234_5678_9abc);
        assert_eq!(m.tid(), 12);
        assert_eq!(m.ver(), 0x1234_5678_9abc);
        let zero = Meta(0);
        assert_eq!(zero.tid(), 0);
        assert_eq!(zero.ver(), 0);
    }

    #[test]
    fn layout_geometry() {
        let l = AnnotLayout {
            heap_words: 10,
            max_threads: 3,
        };
        assert_eq!(l.pver_word(0), 0);
        assert_eq!(l.pver_word(2), 16);
        assert_eq!(l.entry_base(0), 3 * LINE_WORDS);
        assert_eq!(l.entry_base(1), 3 * LINE_WORDS + ENTRY_WORDS);
        assert_eq!(l.total_words(), 3 * LINE_WORDS + 10 * ENTRY_WORDS);
    }

    #[test]
    fn persist_entry_becomes_durable() {
        let l = AnnotLayout {
            heap_words: 4,
            max_threads: 2,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_entry(1, 2, 10, 20, Meta::pack(1, 5));
        let (data, back, meta) = ap.durable_entry(2);
        assert_eq!((data, back), (20, 10));
        assert_eq!(meta, Meta::pack(1, 5));
    }

    #[test]
    fn pver_persists_per_thread() {
        let l = AnnotLayout {
            heap_words: 1,
            max_threads: 2,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_pver(0, 3);
        ap.persist_pver(1, 9);
        ap.sfence(0);
        ap.sfence(1);
        assert_eq!(ap.durable_pver(0), 3);
        assert_eq!(ap.durable_pver(1), 9);
    }

    #[test]
    fn image_accessors_match_pool_accessors() {
        let l = AnnotLayout {
            heap_words: 4,
            max_threads: 1,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_entry(0, 3, 1, 2, Meta::pack(0, 7));
        ap.sfence(0);
        ap.persist_pver(0, 8);
        ap.pool().crash();
        let img = ap.pool().snapshot_durable();
        assert_eq!(l.image_entry(&img, 3), ap.durable_entry(3));
        assert_eq!(l.image_pver(&img, 0), 8);
    }

    #[test]
    fn eviction_prefix_is_recoverable() {
        // Simulate the adversarial eviction the module docs discuss: the
        // line is written back after `back` and `meta` stores but before
        // `data`. Recovery must still see a revertible state.
        let l = AnnotLayout {
            heap_words: 2,
            max_threads: 1,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        // Initial committed value 5 for word 0 (fully persisted, pver -> 2).
        ap.persist_entry(0, 0, 0, 5, Meta::pack(0, 1));
        ap.sfence(0);
        ap.persist_pver(0, 2);
        ap.sfence(0);
        // A new transaction (pver 2) starts persisting 5 -> 6 but the pool
        // only sees `back` and `meta` hit the media (forced eviction),
        // never the data store or the flush.
        let base = l.entry_base(0);
        ap.pool().write(0, base + 1, 5); // back = old
        ap.pool().write(0, base + 2, Meta::pack(0, 2).0); // meta = {0, 2}
        ap.pool().force_evict(base);
        // data store happens in cache only, then crash.
        ap.pool().write(0, base, 6);
        ap.pool().crash();
        let img = ap.pool().snapshot_durable();
        let (data, back, meta) = l.image_entry(&img, 0);
        assert_eq!(data, 5, "new data never reached the media");
        assert_eq!(back, 5);
        assert_eq!(meta, Meta::pack(0, 2));
        // Recovery logic (meta.ver >= durable pver) reverts to back = 5:
        // the committed pre-crash value. Either way the word reads 5.
        assert!(meta.ver() >= l.image_pver(&img, 0));
    }

    #[test]
    fn pver_word_pack_roundtrip() {
        let w = pack_pver(0x1234_5678_9abc, 7);
        assert_eq!(pver_version(w), 0x1234_5678_9abc);
        assert_eq!(pver_count(w), 7);
        let trusted = pack_pver(3, PVER_COUNT_TRUSTED);
        assert_eq!(pver_version(trusted), 3);
        assert_eq!(pver_count(trusted), PVER_COUNT_TRUSTED);
        assert_eq!(pver_version(0), 0);
        assert_eq!(pver_count(0), 0);
    }

    #[test]
    fn counted_marker_round_trips_through_image() {
        let l = AnnotLayout {
            heap_words: 2,
            max_threads: 2,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_pver_counted(1, 4, 2);
        ap.sfence(1);
        assert_eq!(ap.durable_pver(1), 4);
        assert_eq!(ap.durable_pver_count(1), 2);
        ap.pool().crash();
        let img = ap.pool().snapshot_durable();
        assert_eq!(l.image_pver(&img, 1), 4);
        assert_eq!(l.image_pver_count(&img, 1), 2);
    }

    #[test]
    fn flush_lines_dedups_shared_lines() {
        let l = AnnotLayout {
            heap_words: 6,
            max_threads: 1,
        };
        let stats = Arc::new(TmStats::new(1));
        let ap = AnnotPmem::new(l, &settings(), Some(Arc::clone(&stats)));
        // Words 0 and 1 share an entry line (2 entries per line); word 4
        // lives two lines later.
        for &a in &[0usize, 1, 4] {
            ap.stage_entry(0, a, 0, a as u64 + 10, Meta::pack(0, 1));
        }
        let mut lines: Vec<usize> = [0usize, 1, 4, 1, 0]
            .iter()
            .map(|&a| ap.entry_line(a))
            .collect();
        let before = stats.snapshot().get(tm::stats::Counter::Flush);
        ap.flush_lines(0, &mut lines);
        let after = stats.snapshot().get(tm::stats::Counter::Flush);
        assert_eq!(after - before, 2, "two distinct lines, two flushes");
        ap.sfence(0);
        assert_eq!(ap.durable_entry(0).0, 10);
        assert_eq!(ap.durable_entry(1).0, 11);
        assert_eq!(ap.durable_entry(4).0, 14);
        assert_eq!(ap.durable_entry_pad(4), Meta::pack(0, 1).0);
    }

    #[test]
    fn recovery_neutralize_clears_meta_and_witness() {
        let l = AnnotLayout {
            heap_words: 1,
            max_threads: 1,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_entry(0, 0, 3, 9, Meta::pack(0, 1));
        ap.sfence(0);
        ap.recovery_neutralize(0, 3);
        let (data, _back, meta) = ap.durable_entry(0);
        assert_eq!(data, 3, "data reverted to back value");
        assert_eq!(meta, Meta(0), "meta cleared");
        assert_ne!(ap.durable_entry_pad(0), 0, "witness broken, not zero");
    }

    #[test]
    fn recovery_store_updates_data_durably() {
        let l = AnnotLayout {
            heap_words: 1,
            max_threads: 1,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_entry(0, 0, 0, 9, Meta::pack(0, 1));
        ap.recovery_store(0, 4);
        assert_eq!(ap.durable_entry(0).0, 4);
    }
}
