//! Trinity's colocated-undo persistent layout (§2.1.2, used by NV-HALT §3.2).
//!
//! Every transactional word is augmented, *in persistent memory only*, with
//! an adjacent replica word (`back`) and a sequence word (`meta`), all
//! within one cache line. Volatile memory holds just the user word; the
//! annotated entry exists purely for recovery (the optimisation Trinity
//! describes and NV-HALT adopts).
//!
//! Persisting a write stores `back = old value`, then `meta = {tid, pver}`,
//! then `data = new value`, and flushes the line — in that order, so any
//! store-order-consistent prefix that reaches the media is recoverable:
//!
//! * `meta` old → `data` is old too (kept as is);
//! * `meta` new → `back` is definitely the pre-transaction value, and the
//!   word is reverted to it iff the owning thread's durable persistent
//!   version number says transaction `pver` did not fully persist.
//!
//! The pool region is laid out as one line per thread for the persistent
//! version numbers (avoiding line-lock contention between threads),
//! followed by a 4-word entry per user word (two entries per line):
//!
//! ```text
//! [ pver line, thread 0 ][ pver line, thread 1 ] ... [ entries: {data, back, meta, pad} per word ]
//! ```

use crate::pool::{DurableImage, PmemConfig, PmemPool, LINE_WORDS};
use psan::EntryRole;
use std::sync::Arc;
use tm::stats::TmStats;

/// Words per annotated entry (`{data, back, meta, pad}`).
pub const ENTRY_WORDS: usize = 4;

const F_DATA: usize = 0;
const F_BACK: usize = 1;
const F_META: usize = 2;

/// The `{tid, pver}` tuple stored in an entry's sequence word. Thread id in
/// the top 16 bits, persistent version number in the low 48 (the paper
/// combines them because different threads may share version values).
///
/// Version wrap-around would take 2^48 committed writing transactions per
/// thread; out of reach in any run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Meta(pub u64);

impl Meta {
    /// Pack a thread id and version.
    #[inline]
    pub fn pack(tid: usize, ver: u64) -> Meta {
        debug_assert!(tid < (1 << 16));
        debug_assert!(ver < (1 << 48));
        Meta(((tid as u64) << 48) | ver)
    }

    /// Owning thread id.
    #[inline]
    pub fn tid(self) -> usize {
        (self.0 >> 48) as usize
    }

    /// Persistent version number.
    #[inline]
    pub fn ver(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

/// Geometry of the annotated region: pure arithmetic, usable against both a
/// live pool and a crash image.
#[derive(Clone, Copy, Debug)]
pub struct AnnotLayout {
    /// Number of user words.
    pub heap_words: usize,
    /// Number of thread slots (one pver line each).
    pub max_threads: usize,
}

impl AnnotLayout {
    /// Total pool words this layout needs.
    pub fn total_words(&self) -> usize {
        self.max_threads * LINE_WORDS + self.heap_words * ENTRY_WORDS
    }

    /// Pool word holding thread `tid`'s persistent version number.
    #[inline]
    pub fn pver_word(&self, tid: usize) -> usize {
        debug_assert!(tid < self.max_threads);
        tid * LINE_WORDS
    }

    /// Pool word where user word `a`'s entry begins.
    #[inline]
    pub fn entry_base(&self, a: usize) -> usize {
        debug_assert!(a < self.heap_words);
        self.max_threads * LINE_WORDS + a * ENTRY_WORDS
    }

    /// Read an entry `{data, back, meta}` from a crash image.
    pub fn image_entry(&self, img: &DurableImage, a: usize) -> (u64, u64, Meta) {
        let base = self.entry_base(a);
        (
            img.word(base + F_DATA),
            img.word(base + F_BACK),
            Meta(img.word(base + F_META)),
        )
    }

    /// Read thread `tid`'s durable pver from a crash image.
    pub fn image_pver(&self, img: &DurableImage, tid: usize) -> u64 {
        img.word(self.pver_word(tid))
    }
}

/// A [`PmemPool`] wrapped in the annotated layout.
pub struct AnnotPmem {
    layout: AnnotLayout,
    pool: PmemPool,
}

impl AnnotPmem {
    /// Create a fresh annotated pool. `template.words` is ignored; the size
    /// is computed from `layout`.
    pub fn new(layout: AnnotLayout, template: &PmemConfig, stats: Option<Arc<TmStats>>) -> Self {
        let cfg = PmemConfig {
            words: layout.total_words(),
            max_threads: layout.max_threads,
            ..template.clone()
        };
        AnnotPmem {
            layout,
            pool: PmemPool::new(&cfg, stats),
        }
    }

    /// Rebuild an annotated pool from a crash image (recovery).
    pub fn from_image(
        layout: AnnotLayout,
        template: &PmemConfig,
        image: &DurableImage,
        stats: Option<Arc<TmStats>>,
    ) -> Self {
        let cfg = PmemConfig {
            words: layout.total_words(),
            max_threads: layout.max_threads,
            ..template.clone()
        };
        AnnotPmem {
            layout,
            pool: PmemPool::from_durable(&cfg, image, stats),
        }
    }

    /// The layout geometry.
    pub fn layout(&self) -> AnnotLayout {
        self.layout
    }

    /// The underlying pool (crash control, snapshots).
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// Persist one write-set entry: `back = old`, `meta`, `data = new`,
    /// then flush the entry's line — Figure 1 lines 17–19.
    ///
    /// Built from the role-typed store building blocks below so the
    /// persist-order sanitizer can enforce the epoch protocol (and so
    /// adversarial fixtures can call them out of order on purpose).
    pub fn persist_entry(&self, tid: usize, a: usize, old: u64, new: u64, meta: Meta) {
        self.store_back(tid, a, old);
        self.store_meta(tid, a, meta);
        self.store_data(tid, a, new);
        self.flush_entry(tid, a);
    }

    /// Store user word `a`'s `back` (undo replica) word — step one of the
    /// entry protocol.
    pub fn store_back(&self, tid: usize, a: usize, old: u64) {
        let base = self.layout.entry_base(a);
        self.pool
            .write_role(tid, base + F_BACK, old, EntryRole::Back);
    }

    /// Store user word `a`'s `meta` (`{tid, pver}`) word — step two.
    pub fn store_meta(&self, tid: usize, a: usize, meta: Meta) {
        let base = self.layout.entry_base(a);
        self.pool
            .write_role(tid, base + F_META, meta.0, EntryRole::Meta);
    }

    /// Store user word `a`'s `data` (new value) word — step three.
    pub fn store_data(&self, tid: usize, a: usize, new: u64) {
        let base = self.layout.entry_base(a);
        self.pool
            .write_role(tid, base + F_DATA, new, EntryRole::Data);
    }

    /// Flush user word `a`'s entry line — the final step of the protocol.
    pub fn flush_entry(&self, tid: usize, a: usize) {
        let base = self.layout.entry_base(a);
        self.pool.flush_line(tid, base);
    }

    /// Write the recovered value of user word `a` during recovery
    /// (both layers already equal; this refreshes an entry whose data word
    /// was reverted). Flushes so the revert itself is durable.
    pub fn recovery_store(&self, a: usize, v: u64) {
        let base = self.layout.entry_base(a);
        self.pool.write(0, base + F_DATA, v);
        self.pool.flush_line(0, base);
    }

    /// Persist thread `tid`'s new persistent version number (Figure 1
    /// line 21): store + flush. The caller orders it with a fence.
    ///
    /// This is the commit-marker store — the moment recovery semantics
    /// flip from "roll the staged entries back" to "keep them" — so it is
    /// a strict sanitizer durability point: every line `tid` persisted
    /// for this transaction must already be fenced.
    pub fn persist_pver(&self, tid: usize, ver: u64) {
        self.pool.durability_point(tid, "annot::persist_pver");
        let w = self.layout.pver_word(tid);
        self.pool.write(tid, w, ver);
        self.pool.flush_line(tid, w);
    }

    /// `sfence` for thread `tid`.
    pub fn sfence(&self, tid: usize) {
        self.pool.sfence(tid);
    }

    /// Entry `{data, back, meta}` as currently durable (quiescent).
    pub fn durable_entry(&self, a: usize) -> (u64, u64, Meta) {
        let base = self.layout.entry_base(a);
        (
            self.pool.durable_word(base + F_DATA),
            self.pool.durable_word(base + F_BACK),
            Meta(self.pool.durable_word(base + F_META)),
        )
    }

    /// Entry `{data, back, meta}` in the cache layer (quiescent).
    pub fn cache_entry(&self, a: usize) -> (u64, u64, Meta) {
        let base = self.layout.entry_base(a);
        (
            self.pool.cache_word(base + F_DATA),
            self.pool.cache_word(base + F_BACK),
            Meta(self.pool.cache_word(base + F_META)),
        )
    }

    /// Thread `tid`'s durable pver (quiescent).
    pub fn durable_pver(&self, tid: usize) -> u64 {
        self.pool.durable_word(self.layout.pver_word(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{FlushPolicy, PmemMode};
    use crate::EvictionPolicy;
    use crate::LatencyModel;

    fn settings() -> PmemConfig {
        PmemConfig {
            words: 0,
            max_threads: 0,
            mode: PmemMode::Nvram,
            lat: LatencyModel::zero(),
            flush: FlushPolicy::Eager,
            eviction: EvictionPolicy::None,
            seed: 7,
            psan: crate::PsanMode::Off,
        }
    }

    #[test]
    fn meta_pack_roundtrip() {
        let m = Meta::pack(12, 0x1234_5678_9abc);
        assert_eq!(m.tid(), 12);
        assert_eq!(m.ver(), 0x1234_5678_9abc);
        let zero = Meta(0);
        assert_eq!(zero.tid(), 0);
        assert_eq!(zero.ver(), 0);
    }

    #[test]
    fn layout_geometry() {
        let l = AnnotLayout {
            heap_words: 10,
            max_threads: 3,
        };
        assert_eq!(l.pver_word(0), 0);
        assert_eq!(l.pver_word(2), 16);
        assert_eq!(l.entry_base(0), 3 * LINE_WORDS);
        assert_eq!(l.entry_base(1), 3 * LINE_WORDS + ENTRY_WORDS);
        assert_eq!(l.total_words(), 3 * LINE_WORDS + 10 * ENTRY_WORDS);
    }

    #[test]
    fn persist_entry_becomes_durable() {
        let l = AnnotLayout {
            heap_words: 4,
            max_threads: 2,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_entry(1, 2, 10, 20, Meta::pack(1, 5));
        let (data, back, meta) = ap.durable_entry(2);
        assert_eq!((data, back), (20, 10));
        assert_eq!(meta, Meta::pack(1, 5));
    }

    #[test]
    fn pver_persists_per_thread() {
        let l = AnnotLayout {
            heap_words: 1,
            max_threads: 2,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_pver(0, 3);
        ap.persist_pver(1, 9);
        ap.sfence(0);
        ap.sfence(1);
        assert_eq!(ap.durable_pver(0), 3);
        assert_eq!(ap.durable_pver(1), 9);
    }

    #[test]
    fn image_accessors_match_pool_accessors() {
        let l = AnnotLayout {
            heap_words: 4,
            max_threads: 1,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_entry(0, 3, 1, 2, Meta::pack(0, 7));
        ap.sfence(0);
        ap.persist_pver(0, 8);
        ap.pool().crash();
        let img = ap.pool().snapshot_durable();
        assert_eq!(l.image_entry(&img, 3), ap.durable_entry(3));
        assert_eq!(l.image_pver(&img, 0), 8);
    }

    #[test]
    fn eviction_prefix_is_recoverable() {
        // Simulate the adversarial eviction the module docs discuss: the
        // line is written back after `back` and `meta` stores but before
        // `data`. Recovery must still see a revertible state.
        let l = AnnotLayout {
            heap_words: 2,
            max_threads: 1,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        // Initial committed value 5 for word 0 (fully persisted, pver -> 2).
        ap.persist_entry(0, 0, 0, 5, Meta::pack(0, 1));
        ap.sfence(0);
        ap.persist_pver(0, 2);
        ap.sfence(0);
        // A new transaction (pver 2) starts persisting 5 -> 6 but the pool
        // only sees `back` and `meta` hit the media (forced eviction),
        // never the data store or the flush.
        let base = l.entry_base(0);
        ap.pool().write(0, base + 1, 5); // back = old
        ap.pool().write(0, base + 2, Meta::pack(0, 2).0); // meta = {0, 2}
        ap.pool().force_evict(base);
        // data store happens in cache only, then crash.
        ap.pool().write(0, base, 6);
        ap.pool().crash();
        let img = ap.pool().snapshot_durable();
        let (data, back, meta) = l.image_entry(&img, 0);
        assert_eq!(data, 5, "new data never reached the media");
        assert_eq!(back, 5);
        assert_eq!(meta, Meta::pack(0, 2));
        // Recovery logic (meta.ver >= durable pver) reverts to back = 5:
        // the committed pre-crash value. Either way the word reads 5.
        assert!(meta.ver() >= l.image_pver(&img, 0));
    }

    #[test]
    fn recovery_store_updates_data_durably() {
        let l = AnnotLayout {
            heap_words: 1,
            max_threads: 1,
        };
        let ap = AnnotPmem::new(l, &settings(), None);
        ap.persist_entry(0, 0, 0, 9, Meta::pack(0, 1));
        ap.recovery_store(0, 4);
        assert_eq!(ap.durable_entry(0).0, 4);
    }
}
