//! A simulator for byte-addressable non-volatile main memory (NVM).
//!
//! The paper targets Intel Optane DC persistent memory on an ADR platform:
//! NVM exists only as main memory, writes take effect in the volatile CPU
//! cache first, `clflushopt` asynchronously writes a cache line back,
//! `sfence` blocks until previously initiated flushes complete, and the
//! processor may also write any line back *at any time* on its own. On a
//! power failure, exactly the lines that reached the media survive.
//!
//! [`PmemPool`] reproduces that model in software with two word arrays per
//! pool — a *cache layer* (volatile) and a *durable layer* (the media) —
//! plus per-line spinlocks that make every line write-back a point-in-time
//! snapshot (hardware lines write back atomically; see `pool.rs`).
//!
//! What the model preserves, and why it is a faithful substitute:
//!
//! * **Durability boundary.** Data becomes durable only at `flush_line` /
//!   `sfence` (policy-dependent) or through arbitrary eviction, at line
//!   granularity, preserving intra-line store order — the exact guarantees
//!   Trinity's colocated-undo scheme (§2.1.2) and NV-HALT's persistence
//!   mechanism (§3) rely on.
//! * **Crash semantics.** [`PmemPool::crash`] poisons the pool: every later
//!   operation unwinds its thread via [`tm::crash`], and the durable layer
//!   at that instant is the recovery image — the full-system-crash model of
//!   §2.
//! * **Cost structure.** A spin-based [`LatencyModel`] charges NVM reads,
//!   writes, flushes and fences, so the ablation of Figure 9 (overhead
//!   classes 1 and 2) is reproducible via [`PmemMode`].
//!
//! The [`annot`] module implements the Trinity persistent line layout
//! (`{data, back, {tid, pver}}` colocated in one line) shared by NV-HALT
//! and the Trinity baseline.

pub mod annot;
pub mod latency;
pub mod pool;

pub use annot::{AnnotPmem, Meta, ENTRY_WORDS};
pub use latency::LatencyModel;
pub use pool::{
    DurableImage, EvictionPolicy, FlushPolicy, PmemConfig, PmemMode, PmemPool, PsanScope,
    LINE_WORDS,
};
pub use psan::{DiagClass, Diagnostic, EntryRole, Psan, PsanMode};
