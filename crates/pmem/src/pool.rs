//! The persistent-memory pool: cache layer, durable layer, flush/fence,
//! arbitrary eviction, and crash simulation.
//!
//! # Model
//!
//! A pool is an array of 64-bit words grouped into 64-byte lines
//! ([`LINE_WORDS`] words each). Every word exists in two layers:
//!
//! * the **cache layer** — what stores and loads operate on; volatile;
//! * the **durable layer** — the media; the only thing that survives
//!   [`PmemPool::crash`].
//!
//! A line moves cache → durable through *write-back*: explicitly via
//! [`PmemPool::flush_line`] + [`PmemPool::sfence`] (per the configured
//! [`FlushPolicy`]), or spontaneously via [`EvictionPolicy`] — the
//! "processor may arbitrarily flush data to NVM" clause of §2.
//!
//! # Write-back atomicity
//!
//! On real hardware a line write-back transfers a coherent point-in-time
//! snapshot of the line, so stores to one line are never persisted out of
//! order — the property Trinity's undo scheme depends on (citation 11 in the
//! paper). The simulator guarantees the same by taking a per-line spinlock
//! around both stores and write-backs; a write-back therefore copies a
//! snapshot that lies exactly on a store boundary.
//!
//! # Crashes
//!
//! [`PmemPool::crash`] poisons the pool. Every subsequent store, load,
//! flush or fence unwinds its thread with [`tm::crash::CrashSignal`],
//! freezing each thread at an arbitrary point of its protocol. Once all
//! worker threads are joined, [`PmemPool::snapshot_durable`] yields the
//! recovery image. Lines whose flush was still pending (Deferred/Seeded
//! policies) are lost, exactly like `clflushopt`s that never completed
//! before the power failed.

use crate::latency::{spin_ns, LatencyModel};
use crossbeam::utils::CachePadded;
use psan::{EntryRole, Psan, PsanMode};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tm::crash::crash_unwind;
use tm::stats::{Counter, TmStats};

/// Words per 64-byte cache line.
pub const LINE_WORDS: usize = 8;

/// Operating mode, mirroring the ablation of Figure 9 plus an eADR
/// platform model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PmemMode {
    /// Full NVM semantics: flushes/fences do real work and all latencies
    /// apply (the BASE configuration).
    Nvram,
    /// An eADR platform (§1): the cache is flushed to NVM on power
    /// failure, so explicit flushes/fences are unnecessary no-ops — but
    /// everything *stored* survives a crash, and programmers must still
    /// order their stores correctly. `snapshot_durable` returns the cache
    /// layer.
    Eadr,
    /// Overhead class 1 removed: flush and fence are complete no-ops.
    /// The durable layer is no longer maintained — recovery is meaningless
    /// in this mode, which is fine: it exists only for throughput ablation.
    NoFlushFence,
    /// Overhead classes 1 and 2 removed: additionally, no NVM access
    /// latency is charged (the pool behaves like DRAM).
    Dram,
}

/// When a flushed line actually reaches the durable layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushPolicy {
    /// `flush_line` writes back immediately. The common, fast configuration;
    /// durability is never *later* than the algorithms assume.
    Eager,
    /// `flush_line` only queues; `sfence` performs the write-backs. The
    /// adversarial extreme: a crash between flush and fence loses the line
    /// (a `clflushopt` that never completed).
    Deferred,
    /// `flush_line` writes back immediately with probability
    /// `num / 256`, otherwise queues for the next fence. Randomised
    /// middle ground for crash fuzzing.
    Seeded {
        /// Numerator of the immediate-writeback probability (out of 256).
        num: u8,
    },
}

/// Spontaneous write-back of dirty lines by the "processor".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvictionPolicy {
    /// Lines are only written back by flush/fence.
    None,
    /// After each store, the stored line is written back with probability
    /// `2^-prob_log2`.
    Random {
        /// Negative log2 of the per-store eviction probability.
        prob_log2: u32,
    },
}

/// Pool construction parameters.
#[derive(Clone, Debug)]
pub struct PmemConfig {
    /// Pool size in words (rounded up to a whole line).
    pub words: usize,
    /// Number of thread slots (for pending-flush queues and RNG streams).
    pub max_threads: usize,
    /// Operating mode (see [`PmemMode`]).
    pub mode: PmemMode,
    /// Injected NVM latencies.
    pub lat: LatencyModel,
    /// Flush completion policy.
    pub flush: FlushPolicy,
    /// Spontaneous eviction policy.
    pub eviction: EvictionPolicy,
    /// Seed for the per-thread RNG streams.
    pub seed: u64,
    /// Persist-order sanitizer mode. `Off` (the default) costs nothing;
    /// the `PSAN` environment variable upgrades `Off` at construction
    /// (see [`PsanMode::env_upgraded`]).
    pub psan: PsanMode,
}

impl PmemConfig {
    /// Functional-test defaults: full NVM semantics, no latency, eager
    /// flushes, no eviction.
    pub fn test(words: usize, max_threads: usize) -> Self {
        PmemConfig {
            words,
            max_threads,
            mode: PmemMode::Nvram,
            lat: LatencyModel::zero(),
            flush: FlushPolicy::Eager,
            eviction: EvictionPolicy::None,
            seed: 0x5eed_1234,
            psan: PsanMode::Off,
        }
    }
}

/// The durable layer captured after a crash: the recovery image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurableImage {
    words: Vec<u64>,
}

impl DurableImage {
    /// Word at index `w`.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Pool size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

struct PerThread {
    /// Lines flushed but not yet fenced (Deferred/Seeded policies), plus —
    /// under Eager — just a count for fence-latency accounting.
    pending: Mutex<Vec<usize>>,
    pending_count: AtomicU32,
    rng: AtomicU64,
    /// One bit per line: set by this thread's stores, cleared by its
    /// flushes. A flush of a clear bit did no work — the native
    /// `RedundantFlush` signal, independent of the sanitizer (which only
    /// diagnoses; release bench runs carry no psan instance).
    dirty: Box<[AtomicU64]>,
}

impl PerThread {
    #[inline]
    fn mark_dirty(&self, line: usize) {
        self.dirty[line / 64].fetch_or(1 << (line % 64), Ordering::Relaxed);
    }

    /// Clear the line's dirty bit, returning whether it was set.
    #[inline]
    fn take_dirty(&self, line: usize) -> bool {
        let mask = 1u64 << (line % 64);
        self.dirty[line / 64].fetch_and(!mask, Ordering::Relaxed) & mask != 0
    }
}

/// The simulated persistent-memory pool. See the module docs.
pub struct PmemPool {
    cache: Box<[AtomicU64]>,
    durable: Box<[AtomicU64]>,
    line_locks: Box<[AtomicU32]>,
    per_thread: Vec<CachePadded<PerThread>>,
    crashed: AtomicBool,
    mode: PmemMode,
    lat: LatencyModel,
    flush: FlushPolicy,
    eviction: EvictionPolicy,
    stats: Option<Arc<TmStats>>,
    /// The persist-order sanitizer, when enabled. `None` keeps the hot
    /// paths at a single never-taken branch.
    psan: Option<Arc<Psan>>,
}

impl PmemPool {
    /// Create a zero-initialised pool.
    pub fn new(cfg: &PmemConfig, stats: Option<Arc<TmStats>>) -> Self {
        let words = cfg.words.div_ceil(LINE_WORDS) * LINE_WORDS;
        Self::with_layers(
            cfg,
            stats,
            (0..words).map(|_| AtomicU64::new(0)).collect(),
            (0..words).map(|_| AtomicU64::new(0)).collect(),
        )
    }

    /// Recover a pool from a crash image: both layers start as the image
    /// (recovery code re-reads NVM into cache).
    pub fn from_durable(
        cfg: &PmemConfig,
        image: &DurableImage,
        stats: Option<Arc<TmStats>>,
    ) -> Self {
        let words = cfg.words.div_ceil(LINE_WORDS) * LINE_WORDS;
        assert_eq!(
            image.len(),
            words,
            "durable image size does not match pool config"
        );
        Self::with_layers(
            cfg,
            stats,
            image.words.iter().map(|&w| AtomicU64::new(w)).collect(),
            image.words.iter().map(|&w| AtomicU64::new(w)).collect(),
        )
    }

    fn with_layers(
        cfg: &PmemConfig,
        stats: Option<Arc<TmStats>>,
        cache: Box<[AtomicU64]>,
        durable: Box<[AtomicU64]>,
    ) -> Self {
        let lines = cache.len() / LINE_WORDS;
        PmemPool {
            cache,
            durable,
            line_locks: (0..lines).map(|_| AtomicU32::new(0)).collect(),
            per_thread: (0..cfg.max_threads.max(1))
                .map(|t| {
                    CachePadded::new(PerThread {
                        pending: Mutex::new(Vec::new()),
                        pending_count: AtomicU32::new(0),
                        rng: AtomicU64::new(
                            cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        ),
                        dirty: (0..lines.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
                    })
                })
                .collect(),
            crashed: AtomicBool::new(false),
            mode: cfg.mode,
            lat: if cfg.mode == PmemMode::Dram {
                LatencyModel::zero()
            } else {
                cfg.lat
            },
            flush: cfg.flush,
            eviction: cfg.eviction,
            stats,
            psan: match cfg.psan.env_upgraded() {
                PsanMode::Off => None,
                mode => Some(Arc::new(Psan::new(mode, cfg.max_threads.max(1)))),
            },
        }
    }

    /// Pool size in words.
    pub fn words(&self) -> usize {
        self.cache.len()
    }

    #[inline]
    fn check_crash(&self) {
        if self.crashed.load(Ordering::Relaxed) {
            crash_unwind();
        }
    }

    #[inline]
    fn lock_line(&self, line: usize) {
        let lk = &self.line_locks[line];
        let mut tries = 0u32;
        while lk
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
            tries += 1;
            if tries & 0x3f == 0 {
                std::thread::yield_now();
            }
        }
    }

    #[inline]
    fn unlock_line(&self, line: usize) {
        self.line_locks[line].store(0, Ordering::Release);
    }

    /// Copy a line's cache snapshot to the durable layer (the "media
    /// write"). Takes the line lock so the copy lies on a store boundary.
    fn write_back(&self, line: usize) {
        self.lock_line(line);
        let base = line * LINE_WORDS;
        for i in 0..LINE_WORDS {
            let v = self.cache[base + i].load(Ordering::Relaxed);
            self.durable[base + i].store(v, Ordering::Relaxed);
        }
        self.unlock_line(line);
    }

    #[inline]
    fn next_rand(&self, tid: usize) -> u64 {
        let cell = &self.per_thread[tid].rng;
        let mut x = cell.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cell.store(x, Ordering::Relaxed);
        x
    }

    /// Store `v` to persistent word `w` (takes effect in the cache layer).
    pub fn write(&self, tid: usize, w: usize, v: u64) {
        self.check_crash();
        if let Some(p) = &self.psan {
            p.on_store(tid, w);
        }
        self.write_unsanitized(tid, w, v);
    }

    /// Store `v` to word `w` playing `role` in a colocated-undo entry, so
    /// the sanitizer can enforce the `back` → `meta` → `data` epoch
    /// protocol. Identical to [`PmemPool::write`] when the sanitizer is
    /// off.
    pub fn write_role(&self, tid: usize, w: usize, v: u64, role: EntryRole) {
        self.check_crash();
        if let Some(p) = &self.psan {
            p.on_entry_store(tid, w, role);
        }
        self.write_unsanitized(tid, w, v);
    }

    fn write_unsanitized(&self, tid: usize, w: usize, v: u64) {
        spin_ns(self.lat.pm_write_ns);
        let line = w / LINE_WORDS;
        self.per_thread[tid].mark_dirty(line);
        self.lock_line(line);
        self.cache[w].store(v, Ordering::Release);
        self.unlock_line(line);
        if let Some(s) = &self.stats {
            s.bump(tid, Counter::PmWords);
        }
        if let EvictionPolicy::Random { prob_log2 } = self.eviction {
            if self.mode == PmemMode::Nvram {
                let mask = (1u64 << prob_log2.min(63)) - 1;
                if self.next_rand(tid) & mask == 0 {
                    self.write_back(line);
                }
            }
        }
    }

    /// Atomically replace word `w` with `new` iff it currently holds
    /// `expect` (takes effect in the cache layer, like [`PmemPool::write`]).
    /// Returns whether the swap happened.
    ///
    /// Exists for cross-thread commit-marker upgrades: a plain store could
    /// clobber a *newer* marker the owning thread is concurrently
    /// publishing, losing its commit.
    pub fn cas_word(&self, tid: usize, w: usize, expect: u64, new: u64) -> bool {
        self.check_crash();
        spin_ns(self.lat.pm_write_ns);
        let line = w / LINE_WORDS;
        self.lock_line(line);
        let cur = self.cache[w].load(Ordering::Relaxed);
        let swapped = cur == expect;
        if swapped {
            self.cache[w].store(new, Ordering::Release);
        }
        self.unlock_line(line);
        if swapped {
            if let Some(p) = &self.psan {
                p.on_store(tid, w);
            }
            self.per_thread[tid].mark_dirty(line);
            if let Some(s) = &self.stats {
                s.bump(tid, Counter::PmWords);
            }
        }
        swapped
    }

    /// Load persistent word `w` from the cache layer.
    pub fn read(&self, tid: usize, w: usize) -> u64 {
        self.check_crash();
        if let Some(p) = &self.psan {
            p.on_load(tid, w);
        }
        spin_ns(self.lat.pm_read_ns);
        self.cache[w].load(Ordering::Acquire)
    }

    /// `clflushopt` the line containing word `w`: asynchronously initiate
    /// its write-back (completion per [`FlushPolicy`]).
    pub fn flush_line(&self, tid: usize, w: usize) {
        self.check_crash();
        // The sanitizer tracks call discipline in every mode (eADR
        // programs must still order their stores), before the mode
        // early-outs below.
        if let Some(p) = &self.psan {
            p.on_flush(tid, w);
        }
        #[cfg(feature = "locksan")]
        locksan::on_persist("flush");
        if self.mode != PmemMode::Nvram {
            return;
        }
        spin_ns(self.lat.flush_ns);
        let line = w / LINE_WORDS;
        let pt = &self.per_thread[tid];
        // Native redundancy signal: a flush of a line this thread has not
        // stored to since its last flush did no work. Tracked in the pool
        // itself (not just psan) so release runs report real numbers.
        let redundant = !pt.take_dirty(line);
        if let Some(s) = &self.stats {
            s.bump(tid, Counter::Flush);
            if redundant {
                s.bump(tid, Counter::RedundantFlush);
            }
        }
        let immediate = match self.flush {
            FlushPolicy::Eager => true,
            FlushPolicy::Deferred => false,
            FlushPolicy::Seeded { num } => (self.next_rand(tid) & 0xff) < num as u64,
        };
        if immediate {
            self.write_back(line);
            // Track outstanding-line count for fence latency accounting.
            pt.pending_count.fetch_add(1, Ordering::Relaxed);
        } else {
            pt.pending.lock().unwrap().push(line);
            pt.pending_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `sfence`: block until this thread's initiated flushes are durable.
    pub fn sfence(&self, tid: usize) {
        self.check_crash();
        if let Some(p) = &self.psan {
            p.on_fence(tid);
        }
        #[cfg(feature = "locksan")]
        locksan::on_persist("fence");
        if self.mode != PmemMode::Nvram {
            return;
        }
        let pt = &self.per_thread[tid];
        {
            let mut pending = pt.pending.lock().unwrap();
            for line in pending.drain(..) {
                self.write_back(line);
            }
        }
        let outstanding = pt.pending_count.swap(0, Ordering::Relaxed);
        spin_ns(
            self.lat
                .fence_base_ns
                .saturating_add(self.lat.fence_per_line_ns.saturating_mul(outstanding)),
        );
        if let Some(s) = &self.stats {
            s.bump(tid, Counter::Fence);
        }
    }

    /// Deterministically evict the line containing word `w` (test hook for
    /// adversarial schedules).
    pub fn force_evict(&self, w: usize) {
        self.write_back(w / LINE_WORDS);
    }

    /// Simulate a power failure: poison the pool. Every subsequent
    /// operation unwinds its thread with a crash signal. Pending (unfenced)
    /// flushes are lost.
    pub fn crash(&self) {
        // A crash legitimately strands unfenced lines on every thread;
        // the sanitizer stops checking.
        if let Some(p) = &self.psan {
            p.on_crash();
        }
        self.crashed.store(true, Ordering::SeqCst);
    }

    /// True once [`crash`](PmemPool::crash) has been called.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Unwind the calling thread if the pool has crashed. TMs call this at
    /// transaction boundaries and inside spin loops so that threads blocked
    /// on volatile synchronization also go down with the power failure.
    ///
    /// A crash point is also a (relaxed) durability claim: the calling
    /// thread is at a protocol boundary and must own no stored-but-never-
    /// flushed lines, which the sanitizer checks when enabled.
    #[inline]
    pub fn crash_point(&self, tid: usize) {
        self.check_crash();
        if let Some(p) = &self.psan {
            p.relaxed_point(tid, "crash_point");
        }
    }

    /// Assert a **strict** durability point for `tid`: the program is
    /// about to treat everything this thread persisted as durable (e.g.
    /// a commit-marker store or prepared-transaction staging), so the
    /// sanitizer demands all its lines fenced and all its cross-thread
    /// dependencies resolved. A no-op when the sanitizer is off.
    #[inline]
    pub fn durability_point(&self, tid: usize, site: &'static str) {
        if let Some(p) = &self.psan {
            p.durability_point(tid, site);
        }
    }

    /// Push sanitizer site label `site` for `tid`, popped when the guard
    /// drops. Diagnostics report the innermost label active at the
    /// offending store. Returns `None` (no tracking) when the sanitizer
    /// is off.
    pub fn psan_scope(&self, tid: usize, site: &'static str) -> Option<PsanScope<'_>> {
        let p = self.psan.as_deref()?;
        p.push_site(tid, site);
        Some(PsanScope { psan: p, tid })
    }

    /// The sanitizer, when enabled (tests drain its diagnostics).
    pub fn psan(&self) -> Option<&Arc<Psan>> {
        self.psan.as_ref()
    }

    /// Capture the durable layer. Callers must have joined all worker
    /// threads first (the image of a crashed pool is only meaningful once
    /// every thread has unwound). On an eADR platform the cache survives
    /// the power failure, so the image is the cache layer itself.
    pub fn snapshot_durable(&self) -> DurableImage {
        // On a live NVM pool this is a whole-pool durability claim: any
        // unfenced line would silently vanish from the image. (After a
        // crash the sanitizer is disabled; on eADR everything stored
        // survives, so there is nothing to check.)
        if self.mode == PmemMode::Nvram && !self.is_crashed() {
            if let Some(p) = &self.psan {
                p.quiescent_check("snapshot_durable");
            }
        }
        let layer = if self.mode == PmemMode::Eadr {
            &self.cache
        } else {
            &self.durable
        };
        DurableImage {
            words: layer.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Read a durable word directly (recovery-time, quiescent). On eADR
    /// the cache layer is the durable one.
    pub fn durable_word(&self, w: usize) -> u64 {
        if self.mode == PmemMode::Eadr {
            self.cache[w].load(Ordering::Relaxed)
        } else {
            self.durable[w].load(Ordering::Relaxed)
        }
    }

    /// Read a cache word without latency or crash checks (verification).
    pub fn cache_word(&self, w: usize) -> u64 {
        self.cache[w].load(Ordering::Relaxed)
    }
}

/// RAII guard for a sanitizer site label (see [`PmemPool::psan_scope`]).
pub struct PsanScope<'a> {
    psan: &'a Psan,
    tid: usize,
}

impl Drop for PsanScope<'_> {
    fn drop(&mut self) {
        self.psan.pop_site(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm::crash::run_crashable;

    fn pool(words: usize) -> PmemPool {
        PmemPool::new(&PmemConfig::test(words, 2), None)
    }

    #[test]
    fn rounds_up_to_whole_lines() {
        let p = pool(3);
        assert_eq!(p.words(), LINE_WORDS);
    }

    #[test]
    fn write_then_read_roundtrips_in_cache() {
        let p = pool(16);
        p.write(0, 5, 42);
        assert_eq!(p.read(0, 5), 42);
        // Not yet durable: no flush happened.
        assert_eq!(p.durable_word(5), 0);
    }

    #[test]
    fn eager_flush_makes_line_durable() {
        let p = pool(16);
        p.write(0, 5, 42);
        p.write(0, 6, 43);
        p.flush_line(0, 5);
        assert_eq!(p.durable_word(5), 42);
        assert_eq!(p.durable_word(6), 43, "whole line written back");
        assert_eq!(p.durable_word(8), 0, "other lines untouched");
    }

    #[test]
    fn deferred_flush_needs_fence() {
        let cfg = PmemConfig {
            flush: FlushPolicy::Deferred,
            ..PmemConfig::test(16, 2)
        };
        let p = PmemPool::new(&cfg, None);
        p.write(0, 1, 7);
        p.flush_line(0, 1);
        assert_eq!(p.durable_word(1), 0, "flush alone does not persist");
        p.sfence(0);
        assert_eq!(p.durable_word(1), 7);
    }

    #[test]
    fn deferred_flush_lost_on_crash() {
        let cfg = PmemConfig {
            flush: FlushPolicy::Deferred,
            ..PmemConfig::test(16, 2)
        };
        let p = PmemPool::new(&cfg, None);
        p.write(0, 1, 7);
        p.flush_line(0, 1);
        p.crash();
        assert_eq!(p.snapshot_durable().word(1), 0);
    }

    #[test]
    fn fences_are_per_thread() {
        let cfg = PmemConfig {
            flush: FlushPolicy::Deferred,
            ..PmemConfig::test(32, 2)
        };
        let p = PmemPool::new(&cfg, None);
        p.write(0, 1, 10);
        p.write(1, 9, 20);
        p.flush_line(0, 1);
        p.flush_line(1, 9);
        p.sfence(0);
        assert_eq!(p.durable_word(1), 10);
        assert_eq!(p.durable_word(9), 0, "thread 1's flush still pending");
        p.sfence(1);
        assert_eq!(p.durable_word(9), 20);
    }

    #[test]
    fn crash_poisons_every_operation() {
        let p = pool(16);
        p.write(0, 0, 1);
        p.crash();
        assert!(p.is_crashed());
        assert_eq!(run_crashable(|| p.write(0, 0, 2)), None);
        assert_eq!(run_crashable(|| p.read(0, 0)), None);
        assert_eq!(run_crashable(|| p.flush_line(0, 0)), None);
        assert_eq!(run_crashable(|| p.sfence(0)), None);
    }

    #[test]
    fn force_evict_persists_without_flush() {
        let p = pool(16);
        p.write(0, 3, 99);
        p.force_evict(3);
        assert_eq!(p.durable_word(3), 99);
    }

    #[test]
    fn random_eviction_eventually_persists() {
        let cfg = PmemConfig {
            eviction: EvictionPolicy::Random { prob_log2: 2 },
            ..PmemConfig::test(16, 1)
        };
        let p = PmemPool::new(&cfg, None);
        for i in 0..200 {
            p.write(0, 0, i);
        }
        assert_ne!(p.durable_word(0), 0, "some store should have evicted");
    }

    #[test]
    fn no_flush_fence_mode_skips_durability() {
        let cfg = PmemConfig {
            mode: PmemMode::NoFlushFence,
            ..PmemConfig::test(16, 1)
        };
        let p = PmemPool::new(&cfg, None);
        p.write(0, 0, 5);
        p.flush_line(0, 0);
        p.sfence(0);
        assert_eq!(p.durable_word(0), 0, "flush is a no-op in this mode");
        assert_eq!(p.read(0, 0), 5, "cache layer still works");
    }

    #[test]
    fn from_durable_restores_both_layers() {
        let p = pool(16);
        p.write(0, 2, 11);
        p.flush_line(0, 2);
        p.crash();
        let img = p.snapshot_durable();
        let p2 = PmemPool::from_durable(&PmemConfig::test(16, 2), &img, None);
        assert_eq!(p2.read(0, 2), 11);
        assert_eq!(p2.durable_word(2), 11);
        assert!(!p2.is_crashed());
    }

    #[test]
    fn seeded_flush_mixes_immediate_and_deferred() {
        let cfg = PmemConfig {
            flush: FlushPolicy::Seeded { num: 128 },
            ..PmemConfig::test(1024, 1)
        };
        let p = PmemPool::new(&cfg, None);
        let mut durable_now = 0;
        for line in 0..128 {
            let w = line * LINE_WORDS;
            p.write(0, w, 1);
            p.flush_line(0, w);
            if p.durable_word(w) == 1 {
                durable_now += 1;
            }
        }
        assert!(durable_now > 10, "some flushes should be immediate");
        assert!(durable_now < 118, "some flushes should be deferred");
        p.sfence(0);
        for line in 0..128 {
            assert_eq!(p.durable_word(line * LINE_WORDS), 1);
        }
    }

    #[test]
    fn stats_count_flushes_and_fences() {
        let stats = Arc::new(TmStats::new(1));
        let p = PmemPool::new(&PmemConfig::test(16, 1), Some(stats.clone()));
        p.write(0, 0, 1);
        p.flush_line(0, 0);
        p.sfence(0);
        let s = stats.snapshot();
        assert_eq!(s.get(Counter::PmWords), 1);
        assert_eq!(s.get(Counter::Flush), 1);
        assert_eq!(s.get(Counter::Fence), 1);
    }

    #[test]
    fn concurrent_writes_to_one_line_stay_word_atomic() {
        let p = Arc::new(pool(LINE_WORDS));
        let mut handles = Vec::new();
        for t in 0..2usize {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    p.write(t, t, i);
                    if i % 64 == 0 {
                        p.flush_line(t, t);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Each word holds the last value its owning thread wrote.
        assert_eq!(p.read(0, 0), 4_999);
        assert_eq!(p.read(0, 1), 4_999);
    }
}
