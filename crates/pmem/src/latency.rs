//! Spin-based latency injection modelling NVM device costs.
//!
//! Optane DC persistent memory is markedly slower than DRAM: media reads
//! take ~170–300 ns (vs ~80 ns DRAM), sustained writes are bandwidth-limited,
//! and making data durable costs a `clflushopt` per line plus an `sfence`
//! that waits for the write-pending queue. These costs are what Figure 9's
//! overhead classes 1 (flush/fence) and 2 (NVRAM read/write) measure, so
//! the simulator must be able to charge — and selectively remove — them.
//!
//! Latency is injected by spinning a calibrated busy-loop; calibration maps
//! `spin_loop` iterations to nanoseconds once per process.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanosecond costs charged by the pool, per operation class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Reading a persistent word (media read, cache-miss path).
    pub pm_read_ns: u32,
    /// Writing a persistent word (store to the NVM-backed line).
    pub pm_write_ns: u32,
    /// Issuing one `clflushopt` (asynchronous, so cheap on its own).
    pub flush_ns: u32,
    /// Base cost of an `sfence` draining the write-pending queue.
    pub fence_base_ns: u32,
    /// Additional `sfence` cost per outstanding flushed line.
    pub fence_per_line_ns: u32,
}

impl LatencyModel {
    /// No injected latency (functional testing).
    pub const fn zero() -> Self {
        LatencyModel {
            pm_read_ns: 0,
            pm_write_ns: 0,
            flush_ns: 0,
            fence_base_ns: 0,
            fence_per_line_ns: 0,
        }
    }

    /// Costs approximating an Optane DCPMM in app-direct mode, scaled for
    /// a software simulator (absolute values are not the point; the ratio
    /// NVM:DRAM and the flush/fence share of commit cost are).
    pub const fn optane() -> Self {
        LatencyModel {
            pm_read_ns: 150,
            pm_write_ns: 90,
            flush_ns: 30,
            fence_base_ns: 120,
            fence_per_line_ns: 60,
        }
    }

    /// True if every cost is zero (lets hot paths skip the spin entirely).
    pub fn is_zero(&self) -> bool {
        *self == LatencyModel::zero()
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::zero()
    }
}

/// `spin_loop` iterations per nanosecond, calibrated once per process.
fn iters_per_ns() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(|| {
        // Warm up, then time a fixed iteration count.
        for _ in 0..10_000 {
            std::hint::spin_loop();
        }
        let iters: u64 = 2_000_000;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::spin_loop();
        }
        let ns = start.elapsed().as_nanos().max(1) as f64;
        (iters as f64 / ns).max(0.01)
    })
}

/// Busy-wait for approximately `ns` nanoseconds.
#[inline]
pub fn spin_ns(ns: u32) {
    if ns == 0 {
        return;
    }
    let iters = (ns as f64 * iters_per_ns()) as u64;
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_zero() {
        assert!(LatencyModel::zero().is_zero());
        assert!(!LatencyModel::optane().is_zero());
        assert!(LatencyModel::default().is_zero());
    }

    #[test]
    fn spin_zero_returns_immediately() {
        spin_ns(0);
    }

    #[test]
    fn spin_scales_roughly_with_ns() {
        // Calibration on a noisy shared box is coarse; just check that a
        // long spin takes measurably longer than a short one.
        let t = Instant::now();
        for _ in 0..100 {
            spin_ns(50);
        }
        let short = t.elapsed();
        let t = Instant::now();
        for _ in 0..100 {
            spin_ns(5_000);
        }
        let long = t.elapsed();
        assert!(long > short, "long={long:?} short={short:?}");
    }

    #[test]
    fn calibration_is_positive() {
        assert!(iters_per_ns() > 0.0);
    }
}
