//! Property-based tests of the persistent-memory pool: durability is
//! exactly "last written-back value", under arbitrary interleavings of
//! stores, flushes, fences, forced evictions and a final crash.

use pmem::pool::{EvictionPolicy, FlushPolicy, PmemConfig, PmemMode, PmemPool};
use pmem::{LatencyModel, LINE_WORDS};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum PoolOp {
    Write(usize, u64),
    Flush(usize),
    Fence,
    Evict(usize),
}

fn op_strategy(words: usize) -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (0..words, any::<u64>()).prop_map(|(w, v)| PoolOp::Write(w, v)),
        (0..words).prop_map(PoolOp::Flush),
        Just(PoolOp::Fence),
        (0..words).prop_map(PoolOp::Evict),
    ]
}

/// A reference model of the pool: cache + durable word arrays with the
/// same write-back rules.
struct Model {
    cache: Vec<u64>,
    durable: Vec<u64>,
    pending: Vec<usize>,
    deferred: bool,
}

impl Model {
    fn write_back(&mut self, line: usize) {
        let base = line * LINE_WORDS;
        for i in 0..LINE_WORDS {
            self.durable[base + i] = self.cache[base + i];
        }
    }

    fn apply(&mut self, op: &PoolOp) {
        match *op {
            PoolOp::Write(w, v) => self.cache[w] = v,
            PoolOp::Flush(w) => {
                if self.deferred {
                    self.pending.push(w / LINE_WORDS);
                } else {
                    self.write_back(w / LINE_WORDS);
                }
            }
            PoolOp::Fence => {
                let pending = std::mem::take(&mut self.pending);
                for line in pending {
                    self.write_back(line);
                }
            }
            PoolOp::Evict(w) => self.write_back(w / LINE_WORDS),
        }
    }
}

fn run_against_model(ops: &[PoolOp], flush: FlushPolicy, words: usize) {
    let cfg = PmemConfig {
        words,
        max_threads: 1,
        mode: PmemMode::Nvram,
        lat: LatencyModel::zero(),
        flush,
        eviction: EvictionPolicy::None,
        seed: 1,
        psan: pmem::PsanMode::Off,
    };
    let pool = PmemPool::new(&cfg, None);
    let mut model = Model {
        cache: vec![0; words],
        durable: vec![0; words],
        pending: Vec::new(),
        deferred: matches!(flush, FlushPolicy::Deferred),
    };
    for op in ops {
        match *op {
            PoolOp::Write(w, v) => pool.write(0, w, v),
            PoolOp::Flush(w) => pool.flush_line(0, w),
            PoolOp::Fence => pool.sfence(0),
            PoolOp::Evict(w) => pool.force_evict(w),
        }
        model.apply(op);
    }
    pool.crash();
    let img = pool.snapshot_durable();
    for w in 0..words {
        assert_eq!(img.word(w), model.durable[w], "durable mismatch at {w}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Eager flushes: write-back happens at flush time.
    #[test]
    fn durable_matches_model_eager(ops in proptest::collection::vec(op_strategy(32), 1..200)) {
        run_against_model(&ops, FlushPolicy::Eager, 32);
    }

    /// Deferred flushes: write-back happens at the fence; unfenced
    /// flushes are lost at the crash.
    #[test]
    fn durable_matches_model_deferred(ops in proptest::collection::vec(op_strategy(32), 1..200)) {
        run_against_model(&ops, FlushPolicy::Deferred, 32);
    }

    /// The cache layer always reflects the last store regardless of
    /// flush traffic.
    #[test]
    fn cache_reflects_last_store(ops in proptest::collection::vec(op_strategy(16), 1..100)) {
        let cfg = PmemConfig::test(16, 1);
        let pool = PmemPool::new(&cfg, None);
        let mut last = [0u64; 16];
        for op in &ops {
            match *op {
                PoolOp::Write(w, v) => { pool.write(0, w, v); last[w] = v; }
                PoolOp::Flush(w) => pool.flush_line(0, w),
                PoolOp::Fence => pool.sfence(0),
                PoolOp::Evict(w) => pool.force_evict(w),
            }
        }
        for (w, &v) in last.iter().enumerate() {
            prop_assert_eq!(pool.read(0, w), v);
        }
    }

    /// Durability is monotone in write-back events: a durable word always
    /// holds a value that was in the cache at some earlier point (never a
    /// made-up value, never a torn 64-bit word).
    #[test]
    fn durable_values_are_historical(ops in proptest::collection::vec(op_strategy(8), 1..100)) {
        let cfg = PmemConfig {
            flush: FlushPolicy::Seeded { num: 128 },
            ..PmemConfig::test(8, 1)
        };
        let pool = PmemPool::new(&cfg, None);
        let mut history: Vec<std::collections::HashSet<u64>> =
            (0..8).map(|_| [0u64].into_iter().collect()).collect();
        for op in &ops {
            match *op {
                PoolOp::Write(w, v) => { pool.write(0, w, v); history[w].insert(v); }
                PoolOp::Flush(w) => pool.flush_line(0, w),
                PoolOp::Fence => pool.sfence(0),
                PoolOp::Evict(w) => pool.force_evict(w),
            }
        }
        pool.crash();
        let img = pool.snapshot_durable();
        for (w, hist) in history.iter().enumerate() {
            prop_assert!(
                hist.contains(&img.word(w)),
                "word {} holds {} which was never written", w, img.word(w)
            );
        }
    }
}
