//! Minimal JSON emitter for benchmark artifacts (`BENCH_*.json`).
//!
//! The container has no serde; this is the small, ordered subset the
//! bench binaries need: objects keep insertion order so the artifacts
//! diff cleanly, numbers are emitted as integers when they are
//! integral, and non-finite floats become `null` (JSON has no NaN).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned counter — emitted without a decimal point.
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or append) a field; builder-style.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

fn write_value(v: &Json, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    match v {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Int(n) => write!(f, "{n}"),
        Json::Num(n) if !n.is_finite() => f.write_str("null"),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => write!(f, "{}", *n as i64),
        Json::Num(n) => write!(f, "{n}"),
        Json::Str(s) => escape(s, f),
        Json::Arr(items) if items.is_empty() => f.write_str("[]"),
        Json::Arr(items) => {
            f.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                indent(f, depth + 1)?;
                write_value(item, f, depth + 1)?;
                f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
            }
            indent(f, depth)?;
            f.write_str("]")
        }
        Json::Obj(fields) if fields.is_empty() => f.write_str("{}"),
        Json::Obj(fields) => {
            f.write_str("{\n")?;
            for (i, (k, v)) in fields.iter().enumerate() {
                indent(f, depth + 1)?;
                escape(k, f)?;
                f.write_str(": ")?;
                write_value(v, f, depth + 1)?;
                f.write_str(if i + 1 < fields.len() { ",\n" } else { "\n" })?;
            }
            indent(f, depth)?;
            f.write_str("}")
        }
    }
}

/// Pretty-printed with two-space indentation.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_nested_objects() {
        let j = Json::obj()
            .field("schema", "kvserve-bench-v1")
            .field("n", 3u64)
            .field("tput", 1234.5)
            .field("flags", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .field("inner", Json::obj().field("p50", 0.5));
        let s = j.to_string();
        assert!(s.starts_with("{\n  \"schema\": \"kvserve-bench-v1\""));
        let ni = s.find("\"n\"").unwrap();
        let ti = s.find("\"tput\"").unwrap();
        assert!(ni < ti, "insertion order preserved");
        assert!(s.contains("\"tput\": 1234.5"));
        assert!(s.contains("\"p50\": 0.5"));
    }

    #[test]
    fn integral_floats_and_nan_are_normalized() {
        assert_eq!(Json::Num(50000.0).to_string(), "50000");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Int(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\n".to_string()).to_string(),
            "\"a\\\"b\\\\c\\n\""
        );
    }
}
