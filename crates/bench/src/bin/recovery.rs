//! Recovery-cost benchmark (extension; the paper discusses recovery
//! qualitatively in §3.5 and notes SPHT's replay does not scale).
//!
//! Measures, as a function of heap size and committed-transaction count:
//!
//! * NV-HALT / Trinity: the annotated-image scan-and-revert time;
//! * SPHT: log-replay time at several replayer counts (reproducing the
//!   paper's observation that replay parallelism saturates).
//!
//! ```text
//! cargo run --release -p bench --bin recovery [-- --words 1048576 --txns 20000]
//! ```

use bench::Args;
use nvhalt::{NvHalt, NvHaltConfig};
use spht::{Spht, SphtConfig};
use std::time::Instant;
use tm::{txn, Addr, Tm};
use trinity::{Trinity, TrinityConfig};

fn main() {
    let args = Args::parse();
    let words: usize = args.get_or("words", 1 << 20);
    let txns: u64 = args.get_or("txns", 20_000);

    println!("# Recovery cost; heap={words} words, {txns} committed writing txns\n");

    // --- NV-HALT ---
    let cfg = NvHaltConfig::test(words, 1);
    let tm = NvHalt::new(cfg.clone());
    let spread = (words as u64 - 16).max(1);
    for i in 0..txns {
        txn(&tm, 0, |tx| tx.write(Addr(1 + i % spread), i + 1)).unwrap();
    }
    tm.crash();
    let img = tm.crash_image();
    let t0 = Instant::now();
    let rec = NvHalt::recover(cfg, &img, []);
    let nv_time = t0.elapsed();
    assert_eq!(rec.read_raw(Addr(1)), {
        // last write to address 1
        let last = (txns - 1) / spread * spread;
        last + 1
    });
    println!(
        "nv-halt  scan-and-revert: {nv_time:?} ({:.1} Mwords/s)",
        words as f64 / nv_time.as_secs_f64() / 1e6
    );

    // --- Trinity ---
    let cfg = TrinityConfig::test(words, 1);
    let tm = Trinity::new(cfg.clone());
    for i in 0..txns {
        txn(&tm, 0, |tx| tx.write(Addr(1 + i % spread), i + 1)).unwrap();
    }
    tm.crash();
    let img = tm.crash_image();
    let t0 = Instant::now();
    let _rec = Trinity::recover(cfg, &img, []);
    let tr_time = t0.elapsed();
    println!(
        "trinity  scan-and-revert: {tr_time:?} ({:.1} Mwords/s)",
        words as f64 / tr_time.as_secs_f64() / 1e6
    );

    // --- SPHT: replay scaling ---
    println!("\nspht log replay (crash-free, {txns} records):");
    for replayers in [1usize, 2, 4, 8, 16] {
        let mut cfg = SphtConfig::test(words, 1);
        cfg.log_words = (txns as usize * 6).next_power_of_two().max(1 << 14);
        let tm = Spht::new(cfg);
        for i in 0..txns {
            txn(&tm, 0, |tx| tx.write(Addr(1 + i % spread), i + 1)).unwrap();
        }
        let t0 = Instant::now();
        let applied = tm.replay(replayers);
        let el = t0.elapsed();
        println!(
            "  {replayers:>2} replayers: {el:?} ({applied} entries, {:.2} Mentries/s)",
            applied as f64 / el.as_secs_f64() / 1e6
        );
    }
    println!("\n(the paper reports SPHT's replay stops scaling around 16 threads;\n on this 1-CPU host parallel replay cannot speed up at all — the\n saturation is structural, the flat line here is the substrate)");
}
