//! Regenerates **Figure 8**: throughput of NV-HALT, NV-HALT-SP,
//! NV-HALT-CL, Trinity and SPHT on the (a,b)-tree (row 1) and the
//! fixed-bucket hashmap (row 2), across workloads (99%/90%/50% read-only
//! and update-only) and thread counts.
//!
//! Paper parameters: 1M keys, 50% prefill, uniform access, 20 s trials,
//! average of 5. Defaults here are scaled for a small container; restore
//! the paper's scale with
//! `--keys 1000000 --seconds 20 --trials 5 --threads 1,2,4,8`.
//!
//! Usage:
//! ```text
//! fig8 [--structure abtree|hashmap|both] [--keys N] [--seconds S]
//!      [--threads 1,2,4,8] [--updates 1,10,50,100] [--trials T]
//!      [--tms nv-halt,nv-halt-sp,nv-halt-cl,trinity,spht] [--csv]
//! ```

use bench::{fmt_tput, run_cell, workload_name, Args, Cell, Structure, TmKind};

fn main() {
    let args = Args::parse();
    let keys: u64 = args.get_or("keys", 1 << 17);
    let seconds: f64 = args.get_or("seconds", 1.0);
    let trials: usize = args.get_or("trials", 1);
    let threads: Vec<usize> = args
        .list("threads")
        .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let updates: Vec<u32> = args
        .list("updates")
        .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 10, 50, 100]);
    let kinds: Vec<TmKind> = args
        .list("tms")
        .map(|v| v.iter().filter_map(|s| TmKind::parse(s)).collect())
        .unwrap_or_else(|| TmKind::ALL.to_vec());
    let structures = match args.get("structure").unwrap_or("both") {
        "abtree" => vec![Structure::AbTree],
        "hashmap" => vec![Structure::HashMap],
        _ => vec![Structure::AbTree, Structure::HashMap],
    };
    let csv = args.get("csv").is_some();
    let (instr_ns, clock_ns) = if args.get("raw-costs").is_some() {
        (0, 0)
    } else {
        (
            args.get_or("instr", bench::DEFAULT_INSTR_NS),
            args.get_or("clock", bench::DEFAULT_CLOCK_NS),
        )
    };

    println!(
        "# Figure 8 — throughput (ops/sec); keys={keys} prefill=50% seconds={seconds} trials={trials} instr_ns={instr_ns} clock_ns={clock_ns}"
    );
    if csv {
        println!("structure,workload,tm,threads,trial,ops_per_sec,hw_commit_ratio,aborts");
    }

    for structure in &structures {
        // Per-workload best-throughput tracking for the headline summary.
        let mut best: Vec<(String, f64, f64, f64)> = Vec::new();
        for &u in &updates {
            if !csv {
                println!(
                    "\n## {} — workload {} ({}% read-only)",
                    structure.label(),
                    workload_name(u),
                    100 - u
                );
                print!("{:<12}", "tm\\threads");
                for t in &threads {
                    print!(" {t:>10}");
                }
                println!("  (hw-ratio at max threads)");
            }
            let mut nvhalt_best = 0.0f64;
            let mut trinity_best = 0.0f64;
            let mut spht_best = 0.0f64;
            for &kind in &kinds {
                if !csv {
                    print!("{:<12}", kind.label());
                }
                let mut last_ratio = 0.0;
                for &t in &threads {
                    let mut sum = 0.0;
                    for trial in 0..trials {
                        let cell = Cell {
                            kind,
                            structure: *structure,
                            threads: t,
                            update_pct: u,
                            keys,
                            seconds,
                            seed: 0xbe7c_5eed ^ (trial as u64) << 32,
                            instr_ns,
                            clock_ns,
                            zipf_theta: args.get_or("zipf", 0.0),
                            ..Cell::new(kind, *structure)
                        };
                        let r = run_cell(&cell);
                        sum += r.throughput();
                        last_ratio = r.stats.hw_commit_ratio();
                        if csv {
                            println!(
                                "{},{},{},{},{},{:.0},{:.3},{}",
                                structure.label(),
                                workload_name(u),
                                kind.label(),
                                t,
                                trial,
                                r.throughput(),
                                r.stats.hw_commit_ratio(),
                                r.stats.aborts()
                            );
                        }
                    }
                    let avg = sum / trials as f64;
                    match kind {
                        TmKind::NvHalt | TmKind::NvHaltSp | TmKind::NvHaltCl => {
                            nvhalt_best = nvhalt_best.max(avg)
                        }
                        TmKind::Trinity => trinity_best = trinity_best.max(avg),
                        TmKind::Spht => spht_best = spht_best.max(avg),
                    }
                    if !csv {
                        print!(" {:>10}", fmt_tput(avg));
                    }
                }
                if !csv {
                    println!("  ({last_ratio:.2})");
                }
            }
            best.push((workload_name(u), nvhalt_best, trinity_best, spht_best));
        }
        if !csv {
            println!(
                "\n## {} — NV-HALT speedups (best variant)",
                structure.label()
            );
            for (w, nv, tr, sp) in &best {
                let vs_tr = if *tr > 0.0 { nv / tr } else { f64::NAN };
                let vs_sp = if *sp > 0.0 { nv / sp } else { f64::NAN };
                println!("  {w}: {vs_tr:.2}x vs trinity, {vs_sp:.2}x vs spht");
            }
        }
    }
}
