//! Closed-loop load generator for the `kvserve` durable KV service.
//!
//! Runs four YCSB-style mixes — read-heavy (95% get / 5% put),
//! update-heavy (50% get / 50% put), scan (atomic same-shard multi-get
//! windows) and cross-shard (atomic multi-puts spanning several shards,
//! committed via the 2PC coordinator) — across a sweep of shard counts
//! and batch-size caps, printing per-shard throughput, latency
//! percentiles, abort rates, mean committed batch sizes and a
//! per-outcome tally (ok / overloaded / timeout / aborted) so rejected
//! requests are reported as distinct outcomes rather than treated as
//! errors.
//!
//! The persistent-memory latency model defaults to Optane so the
//! flush/fence amortization from batching is visible (update-heavy
//! throughput should rise with `batch_max`); pass `--fast` to zero the
//! latency model for a quick functional sweep.
//!
//! `--repl` runs every cell with per-shard follower replication and
//! semi-synchronous acks: the report gains the replication lag (entries
//! the followers' applied state is behind the primaries) and each cell
//! ends with a full failover — every primary pool dropped, the followers
//! promoted — reporting the measured failover time.
//!
//! ```text
//! cargo run -p bench --release --bin service -- \
//!     --shards 1,2,4 --batch 1,8 --clients 8 --seconds 0.4
//! cargo run -p bench --release --bin service -- \
//!     --mixes update-heavy --repl --fast
//! ```

use bench::{fmt_tput, Args};
use kvserve::{MapOp, ServeError, Service, ServiceConfig};
use pmem::LatencyModel;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tm::stats::Counter;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    ReadHeavy,
    UpdateHeavy,
    Scan,
    CrossShard,
}

impl Mix {
    const ALL: [Mix; 4] = [Mix::ReadHeavy, Mix::UpdateHeavy, Mix::Scan, Mix::CrossShard];

    fn label(self) -> &'static str {
        match self {
            Mix::ReadHeavy => "read-heavy",
            Mix::UpdateHeavy => "update-heavy",
            Mix::Scan => "scan",
            Mix::CrossShard => "cross-shard",
        }
    }

    fn parse(s: &str) -> Option<Mix> {
        Mix::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// Keys an atomic scan window may span before filtering to one shard.
const SCAN_SPAN: u64 = 32;
/// Ops per scan request after same-shard filtering (upper bound).
const SCAN_WINDOW: usize = 8;
/// Shards an atomic cross-shard multi-put spans (upper bound).
const XSHARD_SPAN: usize = 4;

/// Per-cell request outcome tally. Backpressure, deadline and conflict
/// rejections are expected service responses under load, not failures,
/// so they are counted and reported instead of aborting the run.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    overloaded: AtomicU64,
    timeout: AtomicU64,
    aborted: AtomicU64,
}

struct Sweep {
    mixes: Vec<Mix>,
    shard_counts: Vec<usize>,
    batch_caps: Vec<usize>,
    clients: usize,
    seconds: f64,
    keys: u64,
    fast: bool,
    repl: bool,
}

fn main() {
    let args = Args::parse();
    let sweep = Sweep {
        mixes: args
            .list("mixes")
            .map(|v| v.iter().filter_map(|s| Mix::parse(s)).collect())
            .unwrap_or_else(|| Mix::ALL.to_vec()),
        shard_counts: args
            .list("shards")
            .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
            .unwrap_or_else(|| vec![1, 2, 4]),
        batch_caps: args
            .list("batch")
            .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
            .unwrap_or_else(|| vec![1, 8]),
        clients: args.get_or("clients", 8),
        seconds: args.get_or("seconds", 0.4),
        keys: args.get_or("keys", 1u64 << 13),
        fast: args.get("fast").is_some(),
        repl: args.get("repl").is_some(),
    };
    println!(
        "kvserve service benchmark: {} keys, {} clients, {:.2}s per cell, pm={}{}",
        sweep.keys,
        sweep.clients,
        sweep.seconds,
        if sweep.fast { "zero-latency" } else { "optane" },
        if sweep.repl {
            ", replication=semi-sync"
        } else {
            ""
        },
    );
    for &mix in &sweep.mixes {
        for &shards in &sweep.shard_counts {
            for &batch in &sweep.batch_caps {
                run_cell(&sweep, mix, shards, batch);
            }
        }
    }
}

fn service_config(sweep: &Sweep, shards: usize, batch: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(shards);
    cfg.batch_max = batch;
    cfg.queue_depth = 4096;
    cfg.buckets_per_shard = ((sweep.keys as usize / shards).next_power_of_two()).max(64);
    cfg.heap_words_per_shard = (sweep.keys as usize * 8 / shards).max(1 << 16);
    cfg.default_deadline = Duration::from_secs(2);
    cfg.replication = sweep.repl;
    if !sweep.fast {
        cfg.nvhalt.pm.lat = LatencyModel::optane();
    }
    cfg
}

fn run_cell(sweep: &Sweep, mix: Mix, shards: usize, batch: usize) {
    let svc = Service::new(service_config(sweep, shards, batch));

    // Prefill half the key range, then zero the service metrics so the
    // measurement window starts clean.
    for k in 0..sweep.keys {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == 0 {
            svc.put(k, k + 1).expect("prefill write");
        }
    }
    svc.reset_metrics();
    let tm_before: Vec<_> = svc.snapshot().shards.iter().map(|s| s.tm).collect();

    let stop = AtomicBool::new(false);
    let outcomes = Outcomes::default();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..sweep.clients {
            let (svc, stop, outcomes) = (&svc, &stop, &outcomes);
            scope.spawn(move || client_loop(svc, stop, outcomes, mix, sweep.keys, c as u64));
        }
        while start.elapsed().as_secs_f64() < sweep.seconds {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let secs = start.elapsed().as_secs_f64();

    // Report with TM statistics windowed to the measurement period.
    let mut snap = svc.snapshot();
    for (s, before) in snap.shards.iter_mut().zip(&tm_before) {
        s.tm = s.tm.since(before);
    }
    println!(
        "\n== mix={} shards={} batch_max={} ==",
        mix.label(),
        shards,
        batch
    );
    for s in &snap.shards {
        println!("  {s}  tput={}/s", fmt_tput(s.ops() as f64 / secs));
    }
    println!(
        "  total: tput={}/s mean_batch={:.2} p50={:?} p99={:?} abort_rate={:.3}",
        fmt_tput((snap.ops() + snap.coordinator.cross_ops) as f64 / secs),
        snap.mean_batch(),
        snap.latency_quantile(0.50).unwrap_or_default(),
        snap.latency_quantile(0.99).unwrap_or_default(),
        snap.abort_rate(),
    );
    println!(
        "  outcomes: ok={} overloaded={} timeout={} aborted={}",
        outcomes.ok.load(Ordering::Relaxed),
        outcomes.overloaded.load(Ordering::Relaxed),
        outcomes.timeout.load(Ordering::Relaxed),
        outcomes.aborted.load(Ordering::Relaxed),
    );
    // Persist-overhead for the measurement window, summed over the shard
    // TMs: flushes and fences per committed transaction show how well
    // batching amortizes the persist cost, and redundant flushes (lines
    // flushed with no store since their last flush) are pure waste the
    // sanitizer's perf class counts.
    let (mut flushes, mut redundant, mut fences, mut commits) = (0u64, 0u64, 0u64, 0u64);
    for s in &snap.shards {
        flushes += s.tm.get(Counter::Flush);
        redundant += s.tm.get(Counter::RedundantFlush);
        fences += s.tm.get(Counter::Fence);
        commits += s.tm.commits();
    }
    let per_commit = |n: u64| {
        if commits == 0 {
            0.0
        } else {
            n as f64 / commits as f64
        }
    };
    println!(
        "  persist: flushes={flushes} ({:.2}/commit) redundant={redundant} fences={fences} ({:.2}/commit)",
        per_commit(flushes),
        per_commit(fences),
    );
    if snap.coordinator.cross_batches > 0 {
        println!("  {}", snap.coordinator);
    }
    if let Some(repl) = &snap.replication {
        println!("  {repl}");
    }
    if sweep.repl {
        // End the cell with the failure shape replication exists for:
        // every primary pool is lost and the followers take over. The
        // reported duration covers log recovery, the receive-log tail
        // apply, the durable promotion, and the 2PC decision replay.
        let (promoted, report) = Service::promote(svc.fail_over());
        println!(
            "  failover: promoted in {:.3?} (tail_applied={} replayed={})",
            report.duration, report.tail_applied, report.replayed
        );
        drop(promoted);
    }
}

fn client_loop(
    svc: &Service,
    stop: &AtomicBool,
    outcomes: &Outcomes,
    mix: Mix,
    keys: u64,
    client: u64,
) {
    let mut rng = 0xbe7c_5eed ^ (client + 1).wrapping_mul(0x2545_f491_4f6c_dd1d);
    while !stop.load(Ordering::Relaxed) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = (rng >> 16) % keys;
        let req = match mix {
            Mix::ReadHeavy if (rng & 0xffff) % 100 < 95 => Req::One(MapOp::Get(k)),
            Mix::ReadHeavy => Req::One(MapOp::Insert(k, rng)),
            Mix::UpdateHeavy if rng >> 63 == 0 => Req::One(MapOp::Get(k)),
            Mix::UpdateHeavy => Req::One(MapOp::Insert(k, rng)),
            Mix::Scan => {
                // An atomic multi-get over the keys of a contiguous
                // window that live on the first key's shard.
                let shard = svc.shard_of(k);
                let ops: Vec<MapOp> = (k..k + SCAN_SPAN)
                    .filter(|&x| x < keys && svc.shard_of(x) == shard)
                    .take(SCAN_WINDOW)
                    .map(MapOp::Get)
                    .collect();
                Req::Many(ops)
            }
            Mix::CrossShard => {
                // An atomic multi-put spanning several shards — one key
                // per distinct shard walking forward from k — committed
                // through the 2PC coordinator (single-shard services
                // degrade to the fast path).
                let span = svc.num_shards().min(XSHARD_SPAN);
                let mut seen = vec![false; svc.num_shards()];
                let ops: Vec<MapOp> = (k..k + SCAN_SPAN)
                    .filter(|&x| !std::mem::replace(&mut seen[svc.shard_of(x % keys)], true))
                    .take(span)
                    .map(|x| MapOp::Insert(x % keys, rng))
                    .collect();
                Req::Many(ops)
            }
        };
        let outcome = match req {
            Req::One(op) => svc.apply(op).map(|_| ()),
            Req::Many(ops) => svc.batch(ops).map(|_| ()),
        };
        match outcome {
            Ok(()) => {
                outcomes.ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServeError::Overloaded { retry_after }) => {
                outcomes.overloaded.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(retry_after);
            }
            Err(ServeError::Timeout) => {
                outcomes.timeout.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServeError::Aborted) => {
                outcomes.aborted.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => panic!("service failed under load: {e}"),
        }
    }
}

enum Req {
    One(MapOp),
    Many(Vec<MapOp>),
}
