//! Closed-loop load generator for the `kvserve` durable KV service.
//!
//! Runs four YCSB-style mixes — read-heavy (95% get / 5% put),
//! update-heavy (50% get / 50% put), scan (atomic same-shard multi-get
//! windows) and cross-shard (atomic multi-puts spanning several shards,
//! committed via the 2PC coordinator) — across a sweep of shard counts
//! and batch-size caps, printing per-shard throughput, latency
//! percentiles, abort rates, mean committed batch sizes and a
//! per-outcome tally (ok / overloaded / timeout / aborted) so rejected
//! requests are reported as distinct outcomes rather than treated as
//! errors.
//!
//! The persistent-memory latency model defaults to Optane so the
//! flush/fence amortization from batching is visible (update-heavy
//! throughput should rise with `batch_max`); pass `--fast` to zero the
//! latency model for a quick functional sweep.
//!
//! `--repl` runs every cell with per-shard follower replication and
//! semi-synchronous acks: the report gains the replication lag (entries
//! the followers' applied state is behind the primaries) and each cell
//! ends with a full failover — every primary pool dropped, the followers
//! promoted — reporting the measured failover time.
//!
//! `--open-loop` switches from the closed-loop regime (in-flight depth
//! = client threads, each blocking per request) to an **open-loop**
//! load generator over the completion ring: a single submitting thread
//! offers requests at a controlled arrival rate (`--rates`, Poisson or
//! fixed-interval gaps via `--arrival`), reaps completions without ever
//! parking per request, and reports latency percentiles *at that
//! offered rate* — the methodology that exposes coordinated omission.
//! Keys draw YCSB-Zipfian with `--zipf <theta>` (0 = uniform). Each
//! open-loop report starts with a sequential in-memory baseline (a
//! plain `std` HashMap on one thread — no durability, no concurrency)
//! as the upper bound the durable service is amortizing toward.
//!
//! `--net` runs the open-loop generator **through the wire-protocol
//! front end**: the service is served over loopback TCP
//! (`Service::serve_net`), and a single submitting thread drives framed
//! request batches through one `NetClient` at the offered rate, reaping
//! response frames opportunistically — never parking per request — so
//! the socket path is measured under the same coordinated-omission-free
//! methodology as `--open-loop`. Latency percentiles are *client-side*
//! (send-to-response on the wire, queueing included); explicit `Busy`
//! frames — the wire rendering of ring backpressure — are counted as
//! their own outcome, and the report carries the server's frame/byte
//! counters alongside the ring and persist numbers.
//!
//! `--migrate` measures **elastic resharding under load**: each cell
//! runs the closed-loop clients through ring handles, splits shard 0
//! live mid-run (streaming its moving slots to a newly provisioned
//! shard and flipping the routing table), and reports the throughput
//! before / during / after the migration, the measured write-pause at
//! the flip, and how many requests saw a reroute retry — the dip is the
//! cost of elasticity, the pause is the only moment writes wait.
//!
//! `--out FILE` writes the run as a `kvserve-bench-v1` JSON artifact
//! (see docs/benchmarking.md) in either mode; CI schema-validates the
//! committed `BENCH_*.json` files with `cargo xtask check-bench`.
//!
//! ```text
//! cargo run -p bench --release --bin service -- \
//!     --shards 1,2,4 --batch 1,8 --clients 8 --seconds 0.4
//! cargo run -p bench --release --bin service -- \
//!     --mixes update-heavy --repl --fast
//! cargo run -p bench --release --bin service -- \
//!     --open-loop --rates 5000,20000,80000 --zipf 0.99 \
//!     --mixes update-heavy --shards 2 --batch 8 --out BENCH_ring.json
//! ```

use bench::json::Json;
use bench::{fmt_tput, Args};
use kvserve::{
    MapOp, MigrateSpec, NetClient, NetConfig, Ring, ServeError, Service, ServiceConfig, Ticket,
};
use pmem::LatencyModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tm::stats::Counter;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    ReadHeavy,
    UpdateHeavy,
    Scan,
    CrossShard,
}

impl Mix {
    const ALL: [Mix; 4] = [Mix::ReadHeavy, Mix::UpdateHeavy, Mix::Scan, Mix::CrossShard];

    fn label(self) -> &'static str {
        match self {
            Mix::ReadHeavy => "read-heavy",
            Mix::UpdateHeavy => "update-heavy",
            Mix::Scan => "scan",
            Mix::CrossShard => "cross-shard",
        }
    }

    fn parse(s: &str) -> Option<Mix> {
        Mix::ALL.into_iter().find(|m| m.label() == s)
    }
}

/// Keys an atomic scan window may span before filtering to one shard.
const SCAN_SPAN: u64 = 32;
/// Ops per scan request after same-shard filtering (upper bound).
const SCAN_WINDOW: usize = 8;
/// Shards an atomic cross-shard multi-put spans (upper bound).
const XSHARD_SPAN: usize = 4;

/// Per-cell request outcome tally. Backpressure, deadline and conflict
/// rejections are expected service responses under load, not failures,
/// so they are counted and reported instead of aborting the run.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    overloaded: AtomicU64,
    timeout: AtomicU64,
    aborted: AtomicU64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Arrival {
    /// Exponentially distributed inter-arrival gaps (Poisson process).
    Poisson,
    /// Fixed inter-arrival gaps (deterministic pacing).
    Fixed,
}

impl Arrival {
    fn label(self) -> &'static str {
        match self {
            Arrival::Poisson => "poisson",
            Arrival::Fixed => "fixed",
        }
    }
}

struct Sweep {
    mixes: Vec<Mix>,
    shard_counts: Vec<usize>,
    batch_caps: Vec<usize>,
    clients: usize,
    seconds: f64,
    keys: u64,
    fast: bool,
    repl: bool,
    /// Open-loop offered rates (requests/sec).
    rates: Vec<f64>,
    arrival: Arrival,
    /// Zipfian skew for open-loop key draws; 0 = uniform.
    zipf_theta: f64,
    /// Shipper group-commit window in microseconds (0 = disabled): how
    /// long a woken shipper lingers so more op-log entries ride one
    /// follower commit. Trades ack latency for persist traffic.
    ship_coalesce_us: u64,
}

fn main() {
    let args = Args::parse();
    let open_loop = args.get("open-loop").is_some();
    let migrate = args.get("migrate").is_some();
    let net = args.get("net").is_some();
    let sweep = Sweep {
        mixes: args
            .list("mixes")
            .map(|v| v.iter().filter_map(|s| Mix::parse(s)).collect())
            .unwrap_or_else(|| Mix::ALL.to_vec()),
        shard_counts: args
            .list("shards")
            .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
            .unwrap_or_else(|| vec![1, 2, 4]),
        batch_caps: args
            .list("batch")
            .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
            .unwrap_or_else(|| vec![1, 8]),
        clients: args.get_or("clients", 8),
        seconds: args.get_or("seconds", 0.4),
        keys: args.get_or("keys", 1u64 << 13),
        fast: args.get("fast").is_some(),
        repl: args.get("repl").is_some(),
        rates: args
            .list("rates")
            .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
            .unwrap_or_else(|| vec![5_000.0, 20_000.0, 80_000.0]),
        arrival: match args.get("arrival") {
            Some("fixed") => Arrival::Fixed,
            _ => Arrival::Poisson,
        },
        zipf_theta: args.get_or("zipf", 0.0),
        ship_coalesce_us: args.get_or("ship-coalesce", 0u64),
    };
    let cells = if migrate {
        run_migrate(&sweep)
    } else if net {
        run_net_loop(&sweep)
    } else if open_loop {
        run_open_loop(&sweep)
    } else {
        run_closed_loop(&sweep)
    };
    if let Some(path) = args.get("out") {
        let report = Json::obj()
            .field("schema", "kvserve-bench-v1")
            .field(
                "mode",
                if migrate {
                    "migrate"
                } else if net {
                    "net-open-loop"
                } else if open_loop {
                    "open-loop"
                } else {
                    "closed-loop"
                },
            )
            .field("pm", if sweep.fast { "zero-latency" } else { "optane" })
            .field("keys", sweep.keys)
            .field("zipf_theta", sweep.zipf_theta)
            .field("arrival", sweep.arrival.label())
            .field("replication", sweep.repl)
            .field("baseline", baseline_json(&sweep))
            .field("summary", summary_json(&cells))
            .field("cells", Json::Arr(cells));
        std::fs::write(path, format!("{report}\n")).expect("write bench artifact");
        println!("\nwrote {path}");
    }
}

fn run_closed_loop(sweep: &Sweep) -> Vec<Json> {
    println!(
        "kvserve service benchmark: {} keys, {} clients, {:.2}s per cell, pm={}{}",
        sweep.keys,
        sweep.clients,
        sweep.seconds,
        if sweep.fast { "zero-latency" } else { "optane" },
        if sweep.repl {
            ", replication=semi-sync"
        } else {
            ""
        },
    );
    let mut cells = Vec::new();
    for &mix in &sweep.mixes {
        for &shards in &sweep.shard_counts {
            for &batch in &sweep.batch_caps {
                cells.push(run_cell(sweep, mix, shards, batch));
            }
        }
    }
    cells
}

/// Peak achieved throughput, in-flight depth, and worst-case persist
/// overhead across the run's cells. The persist maxima are what
/// `cargo xtask check-bench --max-flushes-per-op` gates: no cell of the
/// committed artifact may spend more flushes (or fences) per completed
/// operation than the threshold.
fn summary_json(cells: &[Json]) -> Json {
    let mut max_in_flight = 0u64;
    let mut peak = 0.0f64;
    let (mut max_flushes, mut max_fences) = (0.0f64, 0.0f64);
    for c in cells {
        let Json::Obj(fields) = c else { continue };
        for (k, v) in fields {
            match (k.as_str(), v) {
                ("max_in_flight", Json::Int(n)) => max_in_flight = max_in_flight.max(*n),
                ("tput_ops_per_sec", Json::Num(t)) => peak = peak.max(*t),
                ("persist", Json::Obj(p)) => {
                    for (pk, pv) in p {
                        match (pk.as_str(), pv) {
                            ("flushes_per_op", Json::Num(f)) => max_flushes = max_flushes.max(*f),
                            ("fences_per_op", Json::Num(f)) => max_fences = max_fences.max(*f),
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Json::obj()
        .field("max_in_flight", max_in_flight)
        .field("peak_tput_ops_per_sec", peak)
        .field("max_flushes_per_op", max_flushes)
        .field("max_fences_per_op", max_fences)
}

fn service_config(sweep: &Sweep, shards: usize, batch: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(shards);
    cfg.batch_max = batch;
    cfg.queue_depth = 4096;
    cfg.ring_slots = 4096;
    cfg.buckets_per_shard = ((sweep.keys as usize / shards).next_power_of_two()).max(64);
    cfg.heap_words_per_shard = (sweep.keys as usize * 8 / shards).max(1 << 16);
    cfg.default_deadline = Duration::from_secs(2);
    cfg.replication = sweep.repl;
    cfg.ship_coalesce = Duration::from_micros(sweep.ship_coalesce_us);
    if !sweep.fast {
        cfg.nvhalt.pm.lat = LatencyModel::optane();
    }
    cfg
}

fn run_cell(sweep: &Sweep, mix: Mix, shards: usize, batch: usize) -> Json {
    let svc = Service::new(service_config(sweep, shards, batch));

    // Prefill half the key range, then zero the service metrics so the
    // measurement window starts clean.
    for k in 0..sweep.keys {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == 0 {
            svc.put(k, k + 1).expect("prefill write");
        }
    }
    svc.reset_metrics();
    let before = svc.snapshot();
    let tm_before: Vec<_> = before.shards.iter().map(|s| s.tm).collect();
    let coord_before = before.coordinator.tm;

    let stop = AtomicBool::new(false);
    let outcomes = Outcomes::default();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..sweep.clients {
            let (svc, stop, outcomes) = (&svc, &stop, &outcomes);
            scope.spawn(move || client_loop(svc, stop, outcomes, mix, sweep.keys, c as u64));
        }
        while start.elapsed().as_secs_f64() < sweep.seconds {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let secs = start.elapsed().as_secs_f64();

    // Report with TM statistics windowed to the measurement period.
    let mut snap = svc.snapshot();
    for (s, before) in snap.shards.iter_mut().zip(&tm_before) {
        s.tm = s.tm.since(before);
    }
    snap.coordinator.tm = snap.coordinator.tm.since(&coord_before);
    println!(
        "\n== mix={} shards={} batch_max={} ==",
        mix.label(),
        shards,
        batch
    );
    for s in &snap.shards {
        println!("  {s}  tput={}/s", fmt_tput(s.ops() as f64 / secs));
    }
    println!(
        "  total: tput={}/s mean_batch={:.2} p50={:?} p99={:?} abort_rate={:.3}",
        fmt_tput((snap.ops() + snap.coordinator.cross_ops) as f64 / secs),
        snap.mean_batch(),
        snap.latency_quantile(0.50).unwrap_or_default(),
        snap.latency_quantile(0.99).unwrap_or_default(),
        snap.abort_rate(),
    );
    println!(
        "  outcomes: ok={} overloaded={} timeout={} aborted={}",
        outcomes.ok.load(Ordering::Relaxed),
        outcomes.overloaded.load(Ordering::Relaxed),
        outcomes.timeout.load(Ordering::Relaxed),
        outcomes.aborted.load(Ordering::Relaxed),
    );
    // The blocking calls ride the internal completion ring, so the ring
    // line shows queue-inclusive submit-to-complete latency and the
    // closed-loop in-flight depth (≈ client threads).
    println!("  {}", snap.ring);
    // Persist-overhead for the measurement window, summed over the shard
    // TMs *and* the 2PC coordinator's decision-log TM (its decision and
    // resolve commits are part of every cross-shard batch's persistence
    // bill): flushes and fences per committed transaction show how well
    // batching amortizes the persist cost, and redundant flushes (lines
    // flushed with no store since their last flush) are pure waste the
    // sanitizer's perf class counts.
    let (mut flushes, mut redundant, mut fences, mut commits) = (0u64, 0u64, 0u64, 0u64);
    for tm in snap
        .shards
        .iter()
        .map(|s| &s.tm)
        .chain(std::iter::once(&snap.coordinator.tm))
    {
        flushes += tm.get(Counter::Flush);
        redundant += tm.get(Counter::RedundantFlush);
        fences += tm.get(Counter::Fence);
        commits += tm.commits();
    }
    let per_commit = |n: u64| {
        if commits == 0 {
            0.0
        } else {
            n as f64 / commits as f64
        }
    };
    println!(
        "  persist: flushes={flushes} ({:.2}/commit) redundant={redundant} fences={fences} ({:.2}/commit)",
        per_commit(flushes),
        per_commit(fences),
    );
    // Lock-discipline observability: fast-path stripe contention always;
    // held-lock depth and service-lock contention when locksan is on.
    if snap.lock_held_hwm > 0 || snap.lock_contended > 0 || snap.stripe_contended() > 0 {
        println!(
            "  locks: held_hwm={} contended={} stripe_contended={}",
            snap.lock_held_hwm,
            snap.lock_contended,
            snap.stripe_contended(),
        );
    }
    if snap.coordinator.cross_batches > 0 {
        println!("  {}", snap.coordinator);
    }
    if let Some(repl) = &snap.replication {
        println!("  {repl}");
    }
    if sweep.repl {
        // End the cell with the failure shape replication exists for:
        // every primary pool is lost and the followers take over. The
        // reported duration covers log recovery, the receive-log tail
        // apply, the durable promotion, and the 2PC decision replay.
        let (promoted, report) = Service::promote(svc.fail_over());
        println!(
            "  failover: promoted in {:.3?} (tail_applied={} replayed={})",
            report.duration, report.tail_applied, report.replayed
        );
        drop(promoted);
    }

    let total_ops = snap.ops() + snap.coordinator.cross_ops;
    let per_op = |n: u64| {
        if total_ops == 0 {
            0.0
        } else {
            n as f64 / total_ops as f64
        }
    };
    Json::obj()
        .field("mix", mix.label())
        .field("shards", shards)
        .field("batch_max", batch)
        .field("clients", sweep.clients)
        .field("duration_secs", secs)
        .field("tput_ops_per_sec", total_ops as f64 / secs)
        .field("ok", outcomes.ok.load(Ordering::Relaxed))
        .field("overloaded", outcomes.overloaded.load(Ordering::Relaxed))
        .field("timeout", outcomes.timeout.load(Ordering::Relaxed))
        .field("aborted", outcomes.aborted.load(Ordering::Relaxed))
        .field("ring_full", snap.ring.ring_full)
        .field("max_in_flight", snap.ring.in_flight_hwm)
        .field("latency_us", latency_json(&snap.ring.latency))
        .field(
            "persist",
            Json::obj()
                .field("flushes_per_op", per_op(flushes))
                .field("redundant_flushes", redundant)
                .field("fences_per_op", per_op(fences)),
        )
        .field(
            "locks",
            Json::obj()
                .field("held_hwm", snap.lock_held_hwm)
                .field("contended", snap.lock_contended)
                .field("stripe_contended", snap.stripe_contended()),
        )
}

/// Submit-to-complete percentiles in microseconds.
fn latency_json(h: &kvserve::HistogramSnapshot) -> Json {
    let us = |q: f64| {
        h.quantile(q)
            .map_or(Json::Null, |d| Json::Num(d.as_secs_f64() * 1e6))
    };
    Json::obj()
        .field("p50", us(0.50))
        .field("p95", us(0.95))
        .field("p99", us(0.99))
        .field("p999", us(0.999))
}

/// xorshift64 PRNG for the generators.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// YCSB-style Zipfian key generator (`theta = 0` → uniform). The rank
/// is scrambled with a multiplicative hash so the hottest keys spread
/// across shards instead of clustering on one.
struct KeyGen {
    keys: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl KeyGen {
    fn new(keys: u64, theta: f64) -> KeyGen {
        if theta <= 0.0 {
            return KeyGen {
                keys,
                theta: 0.0,
                zetan: 0.0,
                alpha: 0.0,
                eta: 0.0,
            };
        }
        assert!(theta < 1.0, "zipf theta must be in [0, 1)");
        let zetan: f64 = (1..=keys).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        KeyGen {
            keys,
            theta,
            zetan,
            alpha: 1.0 / (1.0 - theta),
            eta: (1.0 - (2.0 / keys as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn draw(&self, rng: &mut Rng) -> u64 {
        if self.theta <= 0.0 {
            return rng.next() % self.keys;
        }
        let u = rng.unit();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.keys as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        rank.min(self.keys - 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) % self.keys
    }
}

/// One request's ops for `mix` — same shapes as the closed-loop client
/// but built from the free routing function, so the sequential baseline
/// can generate identical streams without a service.
fn gen_ops(mix: Mix, keys: u64, shards: usize, rng: &mut Rng, kg: &KeyGen) -> Vec<MapOp> {
    let k = kg.draw(rng);
    let r = rng.next();
    match mix {
        Mix::ReadHeavy if r % 100 < 95 => vec![MapOp::Get(k)],
        Mix::ReadHeavy => vec![MapOp::Insert(k, r)],
        Mix::UpdateHeavy if r.is_multiple_of(2) => vec![MapOp::Get(k)],
        Mix::UpdateHeavy => vec![MapOp::Insert(k, r)],
        Mix::Scan => {
            let shard = kvserve::shard_of_key(k, shards);
            (k..k + SCAN_SPAN)
                .filter(|&x| x < keys && kvserve::shard_of_key(x, shards) == shard)
                .take(SCAN_WINDOW)
                .map(MapOp::Get)
                .collect()
        }
        Mix::CrossShard => {
            let span = shards.min(XSHARD_SPAN);
            let mut seen = vec![false; shards];
            (k..k + SCAN_SPAN)
                .filter(|&x| {
                    !std::mem::replace(&mut seen[kvserve::shard_of_key(x % keys, shards)], true)
                })
                .take(span)
                .map(|x| MapOp::Insert(x % keys, r))
                .collect()
        }
    }
}

fn run_migrate(sweep: &Sweep) -> Vec<Json> {
    println!(
        "kvserve live-migration benchmark: {} keys, {} clients, {:.2}s windows, pm={}",
        sweep.keys,
        sweep.clients,
        sweep.seconds,
        if sweep.fast { "zero-latency" } else { "optane" },
    );
    let mut cells = Vec::new();
    for &mix in &sweep.mixes {
        for &shards in &sweep.shard_counts {
            for &batch in &sweep.batch_caps {
                cells.push(run_migrate_cell(sweep, mix, shards, batch));
            }
        }
    }
    cells
}

/// One live-migration cell: closed-loop clients over ring handles (the
/// handles survive the flip — the shared router re-targets them), a
/// pre-migration window, the split of shard 0, and a post-migration
/// window on the grown deployment.
fn run_migrate_cell(sweep: &Sweep, mix: Mix, shards: usize, batch: usize) -> Json {
    let svc = Service::new(service_config(sweep, shards, batch));
    for k in 0..sweep.keys {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == 0 {
            svc.put(k, k + 1).expect("prefill write");
        }
    }
    svc.reset_metrics();

    let ring = svc.ring();
    let stop = AtomicBool::new(false);
    let oks = AtomicU64::new(0);
    let rerouted = AtomicU64::new(0);
    let window = Duration::from_secs_f64(sweep.seconds.max(0.05));

    let (svc, report, pre_rate, mig_rate, post_rate) = std::thread::scope(|scope| {
        for c in 0..sweep.clients {
            let ring = ring.clone();
            let (stop, oks, rerouted) = (&stop, &oks, &rerouted);
            scope.spawn(move || {
                migrate_client_loop(
                    &ring, stop, oks, rerouted, mix, sweep.keys, shards, c as u64,
                )
            });
        }
        // Pre-migration window on the original topology.
        let t0 = Instant::now();
        std::thread::sleep(window);
        let pre_ok = oks.load(Ordering::Relaxed);
        let pre_rate = pre_ok as f64 / t0.elapsed().as_secs_f64();

        // The split, live under the clients' load.
        let t1 = Instant::now();
        let spec = MigrateSpec::split(&svc.routing(), 0);
        let (svc, report) = svc.migrate(spec);
        let mig_secs = t1.elapsed().as_secs_f64();
        let mig_rate = (oks.load(Ordering::Relaxed) - pre_ok) as f64 / mig_secs;

        // Post-migration window on the grown topology.
        let t2 = Instant::now();
        let base = oks.load(Ordering::Relaxed);
        std::thread::sleep(window);
        let post_rate = (oks.load(Ordering::Relaxed) - base) as f64 / t2.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        (svc, report, pre_rate, mig_rate, post_rate)
    });

    let snap = svc.snapshot();
    println!(
        "\n== migrate mix={} shards={}->{} batch_max={} ==",
        mix.label(),
        shards,
        shards + 1,
        batch
    );
    println!(
        "  tput: pre={}/s during={}/s post={}/s (dip {:.0}%)",
        fmt_tput(pre_rate),
        fmt_tput(mig_rate),
        fmt_tput(post_rate),
        if pre_rate > 0.0 {
            (1.0 - mig_rate / pre_rate).max(0.0) * 100.0
        } else {
            0.0
        },
    );
    println!(
        "  migration: total={:.3?} flip_pause={:.3?} base_keys={} catchup_entries={} epoch={}",
        report.duration, report.flip_pause, report.base_keys, report.catchup_entries, report.epoch,
    );
    println!(
        "  rerouted: client-visible={} worker-shed={}",
        rerouted.load(Ordering::Relaxed),
        snap.shards.iter().map(|s| s.rerouted).sum::<u64>(),
    );

    Json::obj()
        .field("mix", mix.label())
        .field("shards", shards)
        .field("shards_after", shards + 1)
        .field("batch_max", batch)
        .field("clients", sweep.clients)
        .field("tput_pre_ops_per_sec", pre_rate)
        .field("tput_during_ops_per_sec", mig_rate)
        .field("tput_post_ops_per_sec", post_rate)
        .field("migrate_secs", report.duration.as_secs_f64())
        .field("flip_pause_us", report.flip_pause.as_secs_f64() * 1e6)
        .field("base_keys", report.base_keys)
        .field("catchup_entries", report.catchup_entries)
        .field("routing_epoch", report.epoch)
        .field("rerouted", rerouted.load(Ordering::Relaxed))
}

/// Closed-loop client over a ring handle: the handle (not the consumed
/// `Service`) is what survives the migration. Reroute and flip-window
/// verdicts retry; they are the migration's client-visible cost and are
/// counted, not hidden.
#[allow(clippy::too_many_arguments)]
fn migrate_client_loop(
    ring: &Ring,
    stop: &AtomicBool,
    oks: &AtomicU64,
    rerouted: &AtomicU64,
    mix: Mix,
    keys: u64,
    shards: usize,
    client: u64,
) {
    let kg = KeyGen::new(keys, 0.0);
    let mut rng = Rng(0xbe7c_5eed ^ (client + 1).wrapping_mul(0x2545_f491_4f6c_dd1d) | 1);
    while !stop.load(Ordering::Relaxed) {
        let ops = gen_ops(mix, keys, shards, &mut rng, &kg);
        if ops.is_empty() {
            continue;
        }
        let verdict = ring.submit_batch(ops).and_then(|t| ring.wait(t));
        match verdict {
            Ok(_) => {
                oks.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServeError::Overloaded { retry_after }) => std::thread::sleep(retry_after),
            Err(ServeError::Rerouted) => {
                rerouted.fetch_add(1, Ordering::Relaxed);
            }
            // Flip-window sheds: never acked, safe to drop and move on.
            Err(ServeError::Timeout) | Err(ServeError::Stopped) | Err(ServeError::Aborted) => {}
            Err(e) => panic!("client under migration: {e}"),
        }
    }
}

fn run_open_loop(sweep: &Sweep) -> Vec<Json> {
    println!(
        "kvserve open-loop benchmark: {} keys, zipf theta={}, arrival={}, {:.2}s per cell, pm={}",
        sweep.keys,
        sweep.zipf_theta,
        sweep.arrival.label(),
        sweep.seconds,
        if sweep.fast { "zero-latency" } else { "optane" },
    );
    let mut cells = Vec::new();
    for &mix in &sweep.mixes {
        for &shards in &sweep.shard_counts {
            for &batch in &sweep.batch_caps {
                for &rate in &sweep.rates {
                    cells.push(run_open_cell(sweep, mix, shards, batch, rate));
                }
            }
        }
    }
    cells
}

/// Completion tally for one open-loop cell.
#[derive(Default)]
struct OpenTally {
    ok_reqs: u64,
    ok_ops: u64,
    timeout: u64,
    aborted: u64,
    stopped: u64,
}

impl OpenTally {
    fn record(&mut self, result: &Result<Vec<Option<u64>>, ServeError>, nops: usize) {
        match result {
            Ok(_) => {
                self.ok_reqs += 1;
                self.ok_ops += nops as u64;
            }
            Err(ServeError::Timeout) => self.timeout += 1,
            Err(ServeError::Aborted) => self.aborted += 1,
            Err(ServeError::Stopped) => self.stopped += 1,
            Err(e) => panic!("unexpected completion verdict: {e}"),
        }
    }
}

fn run_open_cell(sweep: &Sweep, mix: Mix, shards: usize, batch: usize, rate: f64) -> Json {
    let svc = Service::new(service_config(sweep, shards, batch));
    for k in 0..sweep.keys {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == 0 {
            svc.put(k, k + 1).expect("prefill write");
        }
    }
    svc.reset_metrics();
    let before = svc.snapshot();
    let tm_before: Vec<_> = before.shards.iter().map(|s| s.tm).collect();
    let coord_before = before.coordinator.tm;

    let ring = svc.ring();
    let kg = KeyGen::new(sweep.keys, sweep.zipf_theta);
    let mut rng = Rng(0x0be7_ca11 ^ (rate as u64) | 1);
    let period = 1.0 / rate;
    // Submitted tickets still awaiting their completion, with the op
    // count each carries.
    let mut inflight: HashMap<Ticket, usize> = HashMap::new();
    let mut tally = OpenTally::default();
    let (mut offered, mut ring_full, mut overloaded) = (0u64, 0u64, 0u64);

    // The open loop proper: ONE submitting thread. Arrivals follow the
    // virtual schedule regardless of how the service keeps up — when it
    // falls behind, depth (and then RingFull drops) absorb the excess,
    // which is exactly the signal a closed loop hides.
    let start = Instant::now();
    let mut next = 0.0f64;
    loop {
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= sweep.seconds {
            break;
        }
        if elapsed >= next {
            offered += 1;
            let ops = gen_ops(mix, sweep.keys, shards, &mut rng, &kg);
            let nops = ops.len();
            match ring.submit_batch(ops) {
                Ok(t) => {
                    inflight.insert(t, nops);
                }
                Err(ServeError::RingFull) => ring_full += 1,
                Err(ServeError::Overloaded { .. }) => overloaded += 1,
                Err(e) => panic!("submit failed: {e}"),
            }
            next += match sweep.arrival {
                Arrival::Fixed => period,
                // Exponential gap: a Poisson arrival process.
                Arrival::Poisson => -rng.unit().ln() * period,
            };
            // Reap opportunistically between arrivals; never park.
            if let Some(c) = ring.complete() {
                let nops = inflight.remove(&c.ticket).expect("unknown ticket");
                tally.record(&c.result, nops);
            }
        } else {
            let mut idle = true;
            for c in ring.drain() {
                let nops = inflight.remove(&c.ticket).expect("unknown ticket");
                tally.record(&c.result, nops);
                idle = false;
            }
            if idle {
                let gap = (next - start.elapsed().as_secs_f64()).min(200e-6);
                if gap > 20e-6 {
                    std::thread::sleep(Duration::from_secs_f64(gap));
                }
            }
        }
    }
    // Drain: every accepted ticket resolves (deadlines bound the wait).
    let grace = Instant::now() + Duration::from_secs(5);
    while !inflight.is_empty() && Instant::now() < grace {
        for c in ring.drain() {
            let nops = inflight.remove(&c.ticket).expect("unknown ticket");
            tally.record(&c.result, nops);
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(
        inflight.is_empty(),
        "tickets unresolved after drain: {}",
        inflight.len()
    );

    let mut snap = svc.snapshot();
    for (s, before) in snap.shards.iter_mut().zip(&tm_before) {
        s.tm = s.tm.since(before);
    }
    snap.coordinator.tm = snap.coordinator.tm.since(&coord_before);
    let (mut flushes, mut redundant, mut fences) = (0u64, 0u64, 0u64);
    for tm in snap
        .shards
        .iter()
        .map(|s| &s.tm)
        .chain(std::iter::once(&snap.coordinator.tm))
    {
        flushes += tm.get(Counter::Flush);
        redundant += tm.get(Counter::RedundantFlush);
        fences += tm.get(Counter::Fence);
    }
    let total_ops = snap.ops() + snap.coordinator.cross_ops;
    let per_op = |n: u64| {
        if total_ops == 0 {
            0.0
        } else {
            n as f64 / total_ops as f64
        }
    };
    let us = |q: f64| {
        snap.ring
            .latency
            .quantile(q)
            .map_or(f64::NAN, |d| d.as_secs_f64() * 1e6)
    };
    println!(
        "\n== open-loop mix={} shards={} batch_max={} rate={}/s ==",
        mix.label(),
        shards,
        batch,
        fmt_tput(rate),
    );
    println!(
        "  offered={offered} ok={} timeout={} aborted={} stopped={} dropped(ring_full={ring_full} overloaded={overloaded})",
        tally.ok_reqs, tally.timeout, tally.aborted, tally.stopped,
    );
    println!(
        "  tput={}/s max_in_flight={} s2c p50={:.0}us p95={:.0}us p99={:.0}us p999={:.0}us",
        fmt_tput(tally.ok_ops as f64 / secs),
        snap.ring.in_flight_hwm,
        us(0.50),
        us(0.95),
        us(0.99),
        us(0.999),
    );
    println!(
        "  persist: flushes/op={:.2} fences/op={:.2} redundant={redundant}",
        per_op(flushes),
        per_op(fences),
    );

    Json::obj()
        .field("mix", mix.label())
        .field("shards", shards)
        .field("batch_max", batch)
        .field("offered_rate", rate)
        .field("duration_secs", secs)
        .field("offered", offered)
        .field("ok", tally.ok_reqs)
        .field("timeout", tally.timeout)
        .field("aborted", tally.aborted)
        .field("stopped", tally.stopped)
        .field("ring_full", ring_full)
        .field("overloaded", overloaded)
        .field("tput_ops_per_sec", tally.ok_ops as f64 / secs)
        .field("max_in_flight", snap.ring.in_flight_hwm)
        .field("latency_us", latency_json(&snap.ring.latency))
        .field(
            "persist",
            Json::obj()
                .field("flushes_per_op", per_op(flushes))
                .field("redundant_flushes", redundant)
                .field("fences_per_op", per_op(fences)),
        )
        .field(
            "locks",
            Json::obj()
                .field("held_hwm", snap.lock_held_hwm)
                .field("contended", snap.lock_contended)
                .field("stripe_contended", snap.stripe_contended()),
        )
}

fn run_net_loop(sweep: &Sweep) -> Vec<Json> {
    println!(
        "kvserve wire-protocol open-loop benchmark: {} keys, zipf theta={}, arrival={}, {:.2}s per cell, pm={}",
        sweep.keys,
        sweep.zipf_theta,
        sweep.arrival.label(),
        sweep.seconds,
        if sweep.fast { "zero-latency" } else { "optane" },
    );
    let mut cells = Vec::new();
    for &mix in &sweep.mixes {
        for &shards in &sweep.shard_counts {
            for &batch in &sweep.batch_caps {
                for &rate in &sweep.rates {
                    cells.push(run_net_cell(sweep, mix, shards, batch, rate));
                }
            }
        }
    }
    cells
}

/// Resolve one response frame against the in-flight table: OK acks add
/// their client-side send-to-response latency sample; every error frame
/// is a definite verdict tallied by class (`Busy` is the wire rendering
/// of both backpressure rejections).
fn reap_frame(
    resp: kvserve::net::ResponseFrame,
    inflight: &mut HashMap<u64, (usize, Instant)>,
    tally: &mut OpenTally,
    busy: &mut u64,
    lat_us: &mut Vec<f64>,
) {
    let (nops, sent) = inflight.remove(&resp.corr).expect("unknown correlation id");
    match &resp.reply {
        Ok(_) => {
            tally.ok_reqs += 1;
            tally.ok_ops += nops as u64;
            lat_us.push(sent.elapsed().as_secs_f64() * 1e6);
        }
        Err(ServeError::Overloaded { .. }) => *busy += 1,
        Err(ServeError::Timeout) => tally.timeout += 1,
        Err(ServeError::Aborted) => tally.aborted += 1,
        Err(ServeError::Stopped) => tally.stopped += 1,
        Err(e) => panic!("unexpected wire verdict: {e}"),
    }
}

/// Percentile of an already-sorted client-side latency sample set.
fn sample_quantile(sorted: &[f64], q: f64) -> Json {
    if sorted.is_empty() {
        return Json::Null;
    }
    Json::Num(sorted[((sorted.len() - 1) as f64 * q).round() as usize])
}

/// One open-loop cell through the wire: same virtual arrival schedule
/// as [`run_open_cell`], but every request crosses loopback TCP as a
/// framed batch and every verdict comes back as a response frame. The
/// server multiplexes onto its 4096-slot ring; when the offered rate
/// outruns the service, depth absorbs the excess until the ring (or the
/// connection cap) is full and the overflow comes back as `Busy`.
fn run_net_cell(sweep: &Sweep, mix: Mix, shards: usize, batch: usize, rate: f64) -> Json {
    let svc = Service::new(service_config(sweep, shards, batch));
    for k in 0..sweep.keys {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == 0 {
            svc.put(k, k + 1).expect("prefill write");
        }
    }
    svc.reset_metrics();
    let before = svc.snapshot();
    let tm_before: Vec<_> = before.shards.iter().map(|s| s.tm).collect();
    let coord_before = before.coordinator.tm;

    let server = svc.serve_net(NetConfig::default()).expect("bind loopback");
    let mut client = NetClient::connect(server.local_addr()).expect("connect loopback");

    let kg = KeyGen::new(sweep.keys, sweep.zipf_theta);
    let mut rng = Rng(0x6e7_ca11 ^ (rate as u64) | 1);
    let period = 1.0 / rate;
    // corr → (op count, send instant) for requests still on the wire.
    let mut inflight: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut tally = OpenTally::default();
    let (mut offered, mut busy) = (0u64, 0u64);
    let mut lat_us: Vec<f64> = Vec::new();

    let start = Instant::now();
    let mut next = 0.0f64;
    loop {
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= sweep.seconds {
            break;
        }
        if elapsed >= next {
            offered += 1;
            let ops = gen_ops(mix, sweep.keys, shards, &mut rng, &kg);
            let nops = ops.len();
            let corr = client.send_batch(&ops).expect("send over loopback");
            inflight.insert(corr, (nops, Instant::now()));
            next += match sweep.arrival {
                Arrival::Fixed => period,
                Arrival::Poisson => -rng.unit().ln() * period,
            };
            // Reap opportunistically between arrivals; never park.
            if let Some(resp) = client.try_recv().expect("reap response") {
                reap_frame(resp, &mut inflight, &mut tally, &mut busy, &mut lat_us);
            }
        } else {
            let mut idle = true;
            while let Some(resp) = client.try_recv().expect("reap response") {
                reap_frame(resp, &mut inflight, &mut tally, &mut busy, &mut lat_us);
                idle = false;
            }
            if idle {
                let gap = (next - start.elapsed().as_secs_f64()).min(200e-6);
                if gap > 20e-6 {
                    std::thread::sleep(Duration::from_secs_f64(gap));
                }
            }
        }
    }
    // Drain: every request on the wire resolves to a frame (deadlines
    // bound the wait server-side).
    let grace = Instant::now() + Duration::from_secs(5);
    while !inflight.is_empty() && Instant::now() < grace {
        match client.try_recv().expect("drain response") {
            Some(resp) => reap_frame(resp, &mut inflight, &mut tally, &mut busy, &mut lat_us),
            None => std::thread::sleep(Duration::from_micros(100)),
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(
        inflight.is_empty(),
        "requests unresolved after drain: {}",
        inflight.len()
    );
    let net = server.metrics();
    drop(client);
    server.stop();

    let mut snap = svc.snapshot();
    for (s, before) in snap.shards.iter_mut().zip(&tm_before) {
        s.tm = s.tm.since(before);
    }
    snap.coordinator.tm = snap.coordinator.tm.since(&coord_before);
    let (mut flushes, mut redundant, mut fences) = (0u64, 0u64, 0u64);
    for tm in snap
        .shards
        .iter()
        .map(|s| &s.tm)
        .chain(std::iter::once(&snap.coordinator.tm))
    {
        flushes += tm.get(Counter::Flush);
        redundant += tm.get(Counter::RedundantFlush);
        fences += tm.get(Counter::Fence);
    }
    let total_ops = snap.ops() + snap.coordinator.cross_ops;
    let per_op = |n: u64| {
        if total_ops == 0 {
            0.0
        } else {
            n as f64 / total_ops as f64
        }
    };
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let us = |q: f64| match sample_quantile(&lat_us, q) {
        Json::Num(v) => v,
        _ => f64::NAN,
    };
    println!(
        "\n== net mix={} shards={} batch_max={} rate={}/s ==",
        mix.label(),
        shards,
        batch,
        fmt_tput(rate),
    );
    println!(
        "  offered={offered} ok={} timeout={} aborted={} stopped={} busy={busy}",
        tally.ok_reqs, tally.timeout, tally.aborted, tally.stopped,
    );
    println!(
        "  tput={}/s max_in_flight={} wire p50={:.0}us p95={:.0}us p99={:.0}us p999={:.0}us",
        fmt_tput(tally.ok_ops as f64 / secs),
        snap.ring.in_flight_hwm,
        us(0.50),
        us(0.95),
        us(0.99),
        us(0.999),
    );
    println!("  {net}");
    println!(
        "  persist: flushes/op={:.2} fences/op={:.2} redundant={redundant}",
        per_op(flushes),
        per_op(fences),
    );

    Json::obj()
        .field("mix", mix.label())
        .field("shards", shards)
        .field("batch_max", batch)
        .field("offered_rate", rate)
        .field("duration_secs", secs)
        .field("offered", offered)
        .field("ok", tally.ok_reqs)
        .field("timeout", tally.timeout)
        .field("aborted", tally.aborted)
        .field("stopped", tally.stopped)
        .field("busy", busy)
        .field("tput_ops_per_sec", tally.ok_ops as f64 / secs)
        .field("max_in_flight", snap.ring.in_flight_hwm)
        .field(
            "latency_us",
            Json::obj()
                .field("p50", sample_quantile(&lat_us, 0.50))
                .field("p95", sample_quantile(&lat_us, 0.95))
                .field("p99", sample_quantile(&lat_us, 0.99))
                .field("p999", sample_quantile(&lat_us, 0.999)),
        )
        .field(
            "net",
            Json::obj()
                .field("frames_in", net.frames_in)
                .field("frames_out", net.frames_out)
                .field("bytes_in", net.bytes_in)
                .field("bytes_out", net.bytes_out)
                .field("busy_frames", net.busy),
        )
        .field(
            "persist",
            Json::obj()
                .field("flushes_per_op", per_op(flushes))
                .field("redundant_flushes", redundant)
                .field("fences_per_op", per_op(fences)),
        )
        .field(
            "locks",
            Json::obj()
                .field("held_hwm", snap.lock_held_hwm)
                .field("contended", snap.lock_contended)
                .field("stripe_contended", snap.stripe_contended()),
        )
}

/// Sequential in-memory executor: the same op stream against a plain
/// `std` HashMap on one thread — no transactions, no flush/fence, no
/// queues. The upper bound batching amortizes the durable service
/// toward, recorded alongside every artifact.
fn sequential_baseline(sweep: &Sweep, mix: Mix) -> f64 {
    let shards = sweep.shard_counts.first().copied().unwrap_or(1);
    let kg = KeyGen::new(sweep.keys, sweep.zipf_theta);
    let mut rng = Rng(0xba5e_11e5);
    let mut map: HashMap<u64, u64> = HashMap::new();
    for k in 0..sweep.keys {
        if k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == 0 {
            map.insert(k, k + 1);
        }
    }
    let dur = sweep.seconds.min(0.2);
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed().as_secs_f64() < dur {
        for _ in 0..64 {
            for op in gen_ops(mix, sweep.keys, shards, &mut rng, &kg) {
                let out = match op {
                    MapOp::Get(k) => map.get(&k).copied(),
                    MapOp::Insert(k, v) => map.insert(k, v),
                    MapOp::Remove(k) => map.remove(&k),
                };
                std::hint::black_box(out);
                ops += 1;
            }
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

fn baseline_json(sweep: &Sweep) -> Json {
    let mut tputs = Json::obj();
    for &mix in &sweep.mixes {
        tputs = tputs.field(mix.label(), sequential_baseline(sweep, mix));
    }
    Json::obj()
        .field("mode", "sequential-inmemory")
        .field("tput_ops_per_sec", tputs)
}

fn client_loop(
    svc: &Service,
    stop: &AtomicBool,
    outcomes: &Outcomes,
    mix: Mix,
    keys: u64,
    client: u64,
) {
    let mut rng = 0xbe7c_5eed ^ (client + 1).wrapping_mul(0x2545_f491_4f6c_dd1d);
    while !stop.load(Ordering::Relaxed) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = (rng >> 16) % keys;
        let req = match mix {
            Mix::ReadHeavy if (rng & 0xffff) % 100 < 95 => Req::One(MapOp::Get(k)),
            Mix::ReadHeavy => Req::One(MapOp::Insert(k, rng)),
            Mix::UpdateHeavy if rng >> 63 == 0 => Req::One(MapOp::Get(k)),
            Mix::UpdateHeavy => Req::One(MapOp::Insert(k, rng)),
            Mix::Scan => {
                // An atomic multi-get over the keys of a contiguous
                // window that live on the first key's shard.
                let shard = svc.shard_of(k);
                let ops: Vec<MapOp> = (k..k + SCAN_SPAN)
                    .filter(|&x| x < keys && svc.shard_of(x) == shard)
                    .take(SCAN_WINDOW)
                    .map(MapOp::Get)
                    .collect();
                Req::Many(ops)
            }
            Mix::CrossShard => {
                // An atomic multi-put spanning several shards — one key
                // per distinct shard walking forward from k — committed
                // through the 2PC coordinator (single-shard services
                // degrade to the fast path).
                let span = svc.num_shards().min(XSHARD_SPAN);
                let mut seen = vec![false; svc.num_shards()];
                let ops: Vec<MapOp> = (k..k + SCAN_SPAN)
                    .filter(|&x| !std::mem::replace(&mut seen[svc.shard_of(x % keys)], true))
                    .take(span)
                    .map(|x| MapOp::Insert(x % keys, rng))
                    .collect();
                Req::Many(ops)
            }
        };
        let outcome = match req {
            Req::One(op) => svc.apply(op).map(|_| ()),
            Req::Many(ops) => svc.batch(ops).map(|_| ()),
        };
        match outcome {
            Ok(()) => {
                outcomes.ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServeError::Overloaded { retry_after }) => {
                outcomes.overloaded.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(retry_after);
            }
            Err(ServeError::Timeout) => {
                outcomes.timeout.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServeError::Aborted) => {
                outcomes.aborted.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => panic!("service failed under load: {e}"),
        }
    }
}

enum Req {
    One(MapOp),
    Many(Vec<MapOp>),
}
