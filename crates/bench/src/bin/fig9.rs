//! Regenerates **Figure 9**: the ablation study comparing NV-HALT-CL and
//! SPHT with progressively fewer enabled features, on the same (a,b)-tree
//! as Figure 8 row 1.
//!
//! Bars per TM, most to least featureful:
//!   * `BASE`              — everything enabled;
//!   * `NO-FLUSH-FENCE`    — flush/fence are no-ops (overhead class 1);
//!   * `NO-NVRAM`          — memory behaves like DRAM (classes 1–2);
//!   * `NO-PERSISTENT-HTX` — additionally drop all synchronization needed
//!     to persist hardware transactions (classes 1–3).
//!
//! Usage:
//! ```text
//! fig9 [--keys N] [--seconds S] [--threads 1,2,4,8]
//!      [--updates 1,10,50,100] [--trials T] [--csv]
//! ```

use bench::{fmt_tput, run_cell, workload_name, Ablation, Args, Cell, Structure, TmKind};

fn main() {
    let args = Args::parse();
    let keys: u64 = args.get_or("keys", 1 << 17);
    let seconds: f64 = args.get_or("seconds", 1.0);
    let trials: usize = args.get_or("trials", 1);
    let threads: Vec<usize> = args
        .list("threads")
        .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let updates: Vec<u32> = args
        .list("updates")
        .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 10, 50, 100]);
    let csv = args.get("csv").is_some();
    let (instr_ns, clock_ns) = if args.get("raw-costs").is_some() {
        (0, 0)
    } else {
        (
            args.get_or("instr", bench::DEFAULT_INSTR_NS),
            args.get_or("clock", bench::DEFAULT_CLOCK_NS),
        )
    };

    println!(
        "# Figure 9 — ablation, (a,b)-tree; keys={keys} prefill=50% seconds={seconds} trials={trials} instr_ns={instr_ns} clock_ns={clock_ns}"
    );
    if csv {
        println!("workload,tm,ablation,threads,trial,ops_per_sec");
    }

    for &u in &updates {
        if !csv {
            println!(
                "\n## workload {} ({}% read-only)",
                workload_name(u),
                100 - u
            );
        }
        for kind in [TmKind::NvHaltCl, TmKind::Spht] {
            if !csv {
                println!("  {}:", kind.label());
                print!("  {:<18}", "config\\threads");
                for t in &threads {
                    print!(" {t:>10}");
                }
                println!();
            }
            for ablation in Ablation::ALL {
                if !csv {
                    print!("  {:<18}", ablation.label());
                }
                for &t in &threads {
                    let mut sum = 0.0;
                    for trial in 0..trials {
                        let cell = Cell {
                            kind,
                            structure: Structure::AbTree,
                            threads: t,
                            update_pct: u,
                            keys,
                            seconds,
                            ablation,
                            seed: 0x0ab1_a7e5 ^ (trial as u64) << 32,
                            instr_ns,
                            clock_ns,
                            zipf_theta: 0.0,
                        };
                        let r = run_cell(&cell);
                        sum += r.throughput();
                        if csv {
                            println!(
                                "{},{},{},{},{},{:.0}",
                                workload_name(u),
                                kind.label(),
                                ablation.label(),
                                t,
                                trial,
                                r.throughput()
                            );
                        }
                    }
                    if !csv {
                        print!(" {:>10}", fmt_tput(sum / trials as f64));
                    }
                }
                if !csv {
                    println!();
                }
            }
        }
    }
}
