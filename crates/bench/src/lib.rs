//! Benchmark harness regenerating the paper's evaluation (§5).
//!
//! The methodology follows the paper: each trial prefills the data
//! structure to 50% of the key range, then measures throughput
//! (operations per second) for a fixed wall-clock period with keys drawn
//! uniformly at random. Workloads are named by their update percentage —
//! `u1` = 99% read-only, `u10` = 90% read-only, `u50`, and `u100` (update
//! only); updates split evenly between inserts and removes.
//!
//! Differences from the paper's testbed, recorded in EXPERIMENTS.md: the
//! hardware (2×24-core Xeon + Optane) is simulated, this container has a
//! single CPU (threads timeslice), and the default measurement period is
//! shorter than the paper's 20 s (configurable with `--seconds`).

use nvhalt::{LockStrategy, NvHalt, NvHaltConfig, Progress};
use pmem::pool::PmemMode;
use pmem::LatencyModel;
use spht::{Spht, SphtConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
use tm::stats::StatsSnapshot;
use tm::Tm;
use trinity::{Trinity, TrinityConfig};
use txstructs::{AbTree, HashMapTx};

/// Which TM a cell runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TmKind {
    /// NV-HALT (weak progressive, lock table).
    NvHalt,
    /// NV-HALT-SP (strong progressive, lock table).
    NvHaltSp,
    /// NV-HALT-CL (weak progressive, colocated locks).
    NvHaltCl,
    /// TrinityVR-TL2 (persistent STM baseline).
    Trinity,
    /// SPHT (persistent HyTM baseline).
    Spht,
}

impl TmKind {
    /// All kinds, in the order figures list them.
    pub const ALL: [TmKind; 5] = [
        TmKind::NvHalt,
        TmKind::NvHaltSp,
        TmKind::NvHaltCl,
        TmKind::Trinity,
        TmKind::Spht,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TmKind::NvHalt => "nv-halt",
            TmKind::NvHaltSp => "nv-halt-sp",
            TmKind::NvHaltCl => "nv-halt-cl",
            TmKind::Trinity => "trinity",
            TmKind::Spht => "spht",
        }
    }

    /// Parse a `--tms` item.
    pub fn parse(s: &str) -> Option<TmKind> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Which structure a cell runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Structure {
    /// The (a,b)-tree (Figure 8 row 1).
    AbTree,
    /// The fixed-bucket hashmap (Figure 8 row 2).
    HashMap,
}

impl Structure {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Structure::AbTree => "abtree",
            Structure::HashMap => "hashmap",
        }
    }
}

/// Figure 9 ablation configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ablation {
    /// All features enabled.
    Base,
    /// Overhead class 1 removed: flush/fence are no-ops.
    NoFlushFence,
    /// Classes 1–2 removed: memory behaves like DRAM.
    NoNvram,
    /// Classes 1–3 removed: additionally no synchronization for
    /// persisting hardware transactions.
    NoPersistHtx,
}

impl Ablation {
    /// All configurations, most to least featureful.
    pub const ALL: [Ablation; 4] = [
        Ablation::Base,
        Ablation::NoFlushFence,
        Ablation::NoNvram,
        Ablation::NoPersistHtx,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Ablation::Base => "BASE",
            Ablation::NoFlushFence => "NO-FLUSH-FENCE",
            Ablation::NoNvram => "NO-NVRAM",
            Ablation::NoPersistHtx => "NO-PERSISTENT-HTX",
        }
    }

    fn mode(self) -> PmemMode {
        match self {
            Ablation::Base => PmemMode::Nvram,
            Ablation::NoFlushFence => PmemMode::NoFlushFence,
            Ablation::NoNvram | Ablation::NoPersistHtx => PmemMode::Dram,
        }
    }

    fn persist_hw(self) -> bool {
        self != Ablation::NoPersistHtx
    }
}

/// One benchmark cell's parameters.
#[derive(Clone, Debug)]
pub struct Cell {
    /// TM under test.
    pub kind: TmKind,
    /// Data structure.
    pub structure: Structure,
    /// Worker threads.
    pub threads: usize,
    /// Percentage of operations that update (insert/remove).
    pub update_pct: u32,
    /// Key range; the structure is prefilled to 50% of it.
    pub keys: u64,
    /// Measurement period in seconds.
    pub seconds: f64,
    /// Ablation configuration (Base for Figure 8).
    pub ablation: Ablation,
    /// RNG seed.
    pub seed: u64,
    /// Cost model: ns per instrumented software-path access (see
    /// `NvHaltConfig::instr_ns`). The default models the instruction and
    /// metadata-cache overhead of STM instrumentation; `--raw-costs`
    /// zeroes it.
    pub instr_ns: u32,
    /// Cost model: ns per global-clock RMW (multi-socket contended line).
    pub clock_ns: u32,
    /// Key-distribution skew: 0.0 = uniform (the paper's setting);
    /// 0 < θ < 1 selects a power-law approximation of a Zipfian
    /// distribution with parameter θ (extension for contention studies).
    pub zipf_theta: f64,
}

/// Default calibrated cost model (documented in EXPERIMENTS.md).
pub const DEFAULT_INSTR_NS: u32 = 20;
/// Default calibrated global-clock RMW cost.
pub const DEFAULT_CLOCK_NS: u32 = 80;

impl Cell {
    /// Default cell: small enough for smoke runs.
    pub fn new(kind: TmKind, structure: Structure) -> Cell {
        Cell {
            kind,
            structure,
            threads: 2,
            update_pct: 10,
            keys: 1 << 16,
            seconds: 0.5,
            ablation: Ablation::Base,
            seed: 0xbe7c_5eed,
            instr_ns: DEFAULT_INSTR_NS,
            clock_ns: DEFAULT_CLOCK_NS,
            zipf_theta: 0.0,
        }
    }
}

/// One cell's measured result.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Committed operations during the measurement period.
    pub ops: u64,
    /// Actual measured seconds.
    pub secs: f64,
    /// Seconds spent replaying persistent logs after the period (SPHT).
    pub replay_secs: f64,
    /// TM statistics accumulated during the measurement period.
    pub stats: StatsSnapshot,
}

impl CellResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

enum AnyStruct {
    Tree(AbTree),
    Map(HashMapTx),
}

impl AnyStruct {
    fn get<T: Tm>(&self, tm: &T, tid: usize, k: u64) {
        let _ = match self {
            AnyStruct::Tree(t) => t.get(tm, tid, k),
            AnyStruct::Map(m) => m.get(tm, tid, k),
        };
    }

    fn insert<T: Tm>(&self, tm: &T, tid: usize, k: u64, v: u64) {
        let _ = match self {
            AnyStruct::Tree(t) => t.insert(tm, tid, k, v),
            AnyStruct::Map(m) => m.insert(tm, tid, k, v),
        };
    }

    fn remove<T: Tm>(&self, tm: &T, tid: usize, k: u64) {
        let _ = match self {
            AnyStruct::Tree(t) => t.remove(tm, tid, k),
            AnyStruct::Map(m) => m.remove(tm, tid, k),
        };
    }
}

fn heap_words_for(structure: Structure, keys: u64) -> usize {
    let per_key = match structure {
        // ~40-word nodes at ~11 keys each, plus churn slack.
        Structure::AbTree => 10,
        // bucket word + up to one 4-word node per key, plus slack.
        Structure::HashMap => 8,
    };
    ((keys as usize) * per_key).max(1 << 16)
}

/// Build, prefill and measure one cell. This is the harness's core; the
/// `fig8`/`fig9` binaries and the Criterion benches all call it.
pub fn run_cell(cell: &Cell) -> CellResult {
    let heap_words = heap_words_for(cell.structure, cell.keys);
    let lat = match cell.ablation.mode() {
        PmemMode::Dram => LatencyModel::zero(),
        _ => LatencyModel::optane(),
    };
    match cell.kind {
        TmKind::NvHalt | TmKind::NvHaltSp | TmKind::NvHaltCl => {
            let mut cfg = NvHaltConfig::test(heap_words, cell.threads);
            cfg.progress = if cell.kind == TmKind::NvHaltSp {
                Progress::Strong
            } else {
                Progress::Weak
            };
            cfg.locks = if cell.kind == TmKind::NvHaltCl {
                LockStrategy::Colocated
            } else {
                LockStrategy::Table { locks_log2: 20 }
            };
            cfg.persist_hw = cell.ablation.persist_hw();
            cfg.pm.mode = cell.ablation.mode();
            cfg.pm.lat = lat;
            cfg.htm = htm::HtmConfig::default();
            cfg.instr_ns = cell.instr_ns;
            cfg.clock_ns = cell.clock_ns;
            let tm = NvHalt::new(cfg);
            run_on(&tm, cell, |_| 0.0)
        }
        TmKind::Trinity => {
            let mut cfg = TrinityConfig::test(heap_words, cell.threads);
            cfg.locks_log2 = 20;
            cfg.pm.mode = cell.ablation.mode();
            cfg.pm.lat = lat;
            cfg.instr_ns = cell.instr_ns;
            cfg.clock_ns = cell.clock_ns;
            let tm = Trinity::new(cfg);
            run_on(&tm, cell, |_| 0.0)
        }
        TmKind::Spht => {
            // SPHT's bump allocator never frees, so aborted transactions
            // leak their allocations; give it extra headroom (the paper's
            // SPHT sizes its per-thread pools generously for the same
            // reason).
            let mut cfg = SphtConfig::test(heap_words * 3, cell.threads);
            cfg.log_words = 1 << 20;
            cfg.persist_hw = cell.ablation.persist_hw();
            cfg.pm.mode = cell.ablation.mode();
            cfg.pm.lat = lat;
            cfg.htm = htm::HtmConfig::default();
            let tm = Spht::new(cfg);
            // Following the paper: replay with 16 threads after the
            // measurement period, timed separately.
            run_on(&tm, cell, |t: &Spht| {
                let start = Instant::now();
                t.replay(16);
                start.elapsed().as_secs_f64()
            })
        }
    }
}

fn run_on<T: Tm>(tm: &T, cell: &Cell, epilogue: impl FnOnce(&T) -> f64) -> CellResult {
    // Prefill to 50% of the key range (§5 methodology), striped over the
    // worker threads so per-thread allocator arenas are warm.
    let st = match cell.structure {
        Structure::AbTree => AnyStruct::Tree(AbTree::create(tm, 0).unwrap()),
        Structure::HashMap => AnyStruct::Map(HashMapTx::create(tm, 0, cell.keys as usize).unwrap()),
    };
    std::thread::scope(|s| {
        for t in 0..cell.threads {
            let st = &st;
            s.spawn(move || {
                let mut k = t as u64;
                while k < cell.keys {
                    // Deterministic 50% subset.
                    if k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == 0 {
                        st.insert(tm, t, k, k + 1);
                    }
                    k += cell.threads as u64;
                }
            });
        }
    });

    let stats_before = tm.stats();
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..cell.threads {
            let st = &st;
            let stop = &stop;
            let total_ops = &total_ops;
            s.spawn(move || {
                let mut rng = cell.seed ^ (t as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d);
                let mut ops = 0u64;
                // Power-law exponent approximating Zipf(θ); 1.0 = uniform.
                let zipf_exp = if cell.zipf_theta > 0.0 {
                    1.0 / (1.0 - cell.zipf_theta.min(0.99))
                } else {
                    1.0
                };
                'outer: loop {
                    for _ in 0..128 {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let k = if zipf_exp == 1.0 {
                            (rng >> 16) % cell.keys
                        } else {
                            let u = ((rng >> 11) & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64;
                            ((cell.keys as f64 * u.powf(zipf_exp)) as u64).min(cell.keys - 1)
                        };
                        let roll = (rng & 0xffff) % 100;
                        if (roll as u32) < cell.update_pct {
                            if rng >> 63 == 0 {
                                st.insert(tm, t, k, rng);
                            } else {
                                st.remove(tm, t, k);
                            }
                        } else {
                            st.get(tm, t, k);
                        }
                        ops += 1;
                    }
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        // Timer: the main thread ends the measurement period.
        while start.elapsed().as_secs_f64() < cell.seconds {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let secs = start.elapsed().as_secs_f64();
    let replay_secs = epilogue(tm);
    CellResult {
        ops: total_ops.load(Ordering::Relaxed),
        secs,
        replay_secs,
        stats: tm.stats().since(&stats_before),
    }
}

pub mod json;

/// Human-readable workload name (`u10` = 10% updates = 90% read-only).
pub fn workload_name(update_pct: u32) -> String {
    format!("u{update_pct}")
}

/// Format a throughput in ops/sec compactly.
pub fn fmt_tput(t: f64) -> String {
    if t >= 1e6 {
        format!("{:.2}M", t / 1e6)
    } else if t >= 1e3 {
        format!("{:.1}k", t / 1e3)
    } else {
        format!("{t:.0}")
    }
}

/// Tiny argv parser for the figure binaries: `--key value` pairs.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args` (skipping the binary name).
    pub fn parse() -> Args {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let k = raw[i].trim_start_matches('-').to_string();
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                pairs.push((k, raw[i + 1].clone()));
                i += 2;
            } else {
                pairs.push((k, String::new()));
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Look up a flag's value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Typed lookup with default.
    pub fn get_or<V: std::str::FromStr>(&self, key: &str, default: V) -> V {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated list lookup.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key)
            .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cell_every_tm_kind() {
        for kind in TmKind::ALL {
            let cell = Cell {
                keys: 1 << 10,
                seconds: 0.05,
                threads: 2,
                update_pct: 50,
                ..Cell::new(kind, Structure::HashMap)
            };
            let r = run_cell(&cell);
            assert!(r.ops > 0, "{}: no ops", kind.label());
            assert!(r.stats.commits() > 0, "{}: no commits", kind.label());
        }
    }

    #[test]
    fn smoke_cell_tree_ablation() {
        for ab in Ablation::ALL {
            let cell = Cell {
                keys: 1 << 10,
                seconds: 0.05,
                ablation: ab,
                ..Cell::new(TmKind::NvHaltCl, Structure::AbTree)
            };
            let r = run_cell(&cell);
            assert!(r.ops > 0, "{}: no ops", ab.label());
        }
    }

    #[test]
    fn labels_parse_back() {
        for k in TmKind::ALL {
            assert_eq!(TmKind::parse(k.label()), Some(k));
        }
        assert_eq!(TmKind::parse("nonsense"), None);
    }

    #[test]
    fn fmt_tput_ranges() {
        assert_eq!(fmt_tput(12.0), "12");
        assert_eq!(fmt_tput(1_500.0), "1.5k");
        assert_eq!(fmt_tput(2_500_000.0), "2.50M");
    }
}
