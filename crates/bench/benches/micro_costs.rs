//! Criterion micro-benchmarks for the per-operation costs that explain
//! the figures: substrate primitives (pmem persist, HTM commit) and
//! single-threaded transaction latencies on each TM.

use criterion::{criterion_group, criterion_main, Criterion};
use htm::{Htm, HtmConfig, HtmThread};
use nvhalt::{NvHalt, NvHaltConfig};
use pmem::annot::AnnotLayout;
use pmem::pool::PmemConfig;
use pmem::{AnnotPmem, LatencyModel, Meta};
use spht::{Spht, SphtConfig};
use std::hint::black_box;
use tm::{txn, Addr, Tm};
use trinity::{Trinity, TrinityConfig};

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

fn pmem_costs(c: &mut Criterion) {
    let c = quick(c);
    let layout = AnnotLayout {
        heap_words: 1 << 10,
        max_threads: 1,
    };
    let mut pm_cfg = PmemConfig::test(0, 1);
    pm_cfg.lat = LatencyModel::optane();
    let ap = AnnotPmem::new(layout, &pm_cfg, None);
    let mut v = 0u64;
    c.bench_function("pmem/persist_entry+fence (optane lat)", |b| {
        b.iter(|| {
            v += 1;
            ap.persist_entry(0, 5, v, v + 1, Meta::pack(0, v));
            ap.sfence(0);
        })
    });
    let pm_cfg0 = PmemConfig::test(0, 1);
    let ap0 = AnnotPmem::new(layout, &pm_cfg0, None);
    c.bench_function("pmem/persist_entry+fence (zero lat)", |b| {
        b.iter(|| {
            v += 1;
            ap0.persist_entry(0, 5, v, v + 1, Meta::pack(0, v));
            ap0.sfence(0);
        })
    });
}

fn htm_costs(c: &mut Criterion) {
    let c = quick(c);
    let htm = Htm::new(HtmConfig::test());
    let mut th = HtmThread::new(&htm, 0);
    let cells: Vec<std::sync::atomic::AtomicU64> =
        (0..64).map(std::sync::atomic::AtomicU64::new).collect();
    c.bench_function("htm/read-only txn (8 reads)", |b| {
        b.iter(|| {
            htm.execute(&mut th, |tx| {
                let mut s = 0;
                for cell in cells.iter().take(8) {
                    s += tx.read(cell)?;
                }
                Ok(black_box(s))
            })
            .unwrap()
        })
    });
    c.bench_function("htm/writer txn (4 writes)", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            htm.execute(&mut th, |tx| {
                for cell in cells.iter().take(4) {
                    tx.write(cell, i)?;
                }
                Ok(())
            })
            .unwrap()
        })
    });
    c.bench_function("htm/nt_store", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            htm.nt_store(&cells[0], i)
        })
    });
}

fn txn_latency<T: Tm>(c: &mut Criterion, tm: &T, label: &str) {
    c.bench_function(format!("txn/{label}/read-8"), |b| {
        b.iter(|| {
            txn(tm, 0, |tx| {
                let mut s = 0;
                for a in 1..9u64 {
                    s += tx.read(Addr(a))?;
                }
                Ok(black_box(s))
            })
            .unwrap()
        })
    });
    c.bench_function(format!("txn/{label}/write-4"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            txn(tm, 0, |tx| {
                for a in 1..5u64 {
                    tx.write(Addr(a), i)?;
                }
                Ok(())
            })
            .unwrap()
        })
    });
}

fn tm_costs(c: &mut Criterion) {
    let c = quick(c);
    let mut nv_cfg = NvHaltConfig::test(1 << 12, 1);
    nv_cfg.pm.lat = LatencyModel::optane();
    let nv = NvHalt::new(nv_cfg);
    txn_latency(c, &nv, "nv-halt");

    let mut tr_cfg = TrinityConfig::test(1 << 12, 1);
    tr_cfg.pm.lat = LatencyModel::optane();
    let tr = Trinity::new(tr_cfg);
    txn_latency(c, &tr, "trinity");

    let mut sp_cfg = SphtConfig::test(1 << 12, 1);
    sp_cfg.pm.lat = LatencyModel::optane();
    let sp = Spht::new(sp_cfg);
    txn_latency(c, &sp, "spht");
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = pmem_costs, htm_costs, tm_costs
}
criterion_main!(benches);
