//! Criterion rendition of **Figure 8, row 2** (hashmap): per-op latency of
//! a mixed workload batch on every TM. The multi-threaded throughput
//! curves come from the `fig8` binary.

use bench::{run_cell, Cell, Structure, TmKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_hashmap(c: &mut Criterion) {
    for kind in TmKind::ALL {
        for update_pct in [10u32, 100] {
            c.bench_function(
                format!("fig8/hashmap/{}/u{update_pct}", kind.label()),
                |b| {
                    b.iter_custom(|iters| {
                        let cell = Cell {
                            threads: 1,
                            update_pct,
                            keys: 1 << 12,
                            seconds: 0.25,
                            ..Cell::new(kind, Structure::HashMap)
                        };
                        let r = run_cell(&cell);
                        let per_op = std::time::Duration::from_secs_f64(r.secs / r.ops as f64);
                        per_op * iters as u32
                    })
                },
            );
        }
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hashmap
}
criterion_main!(benches);
