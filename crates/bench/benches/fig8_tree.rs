//! Criterion rendition of **Figure 8, row 1** ((a,b)-tree): per-op latency
//! of a mixed workload batch on every TM, at two workload mixes. The
//! multi-threaded throughput curves come from the `fig8` binary; this
//! bench tracks the single-thread costs that drive them.

use bench::{run_cell, Cell, Structure, TmKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tree(c: &mut Criterion) {
    for kind in TmKind::ALL {
        for update_pct in [10u32, 100] {
            c.bench_function(format!("fig8/abtree/{}/u{update_pct}", kind.label()), |b| {
                b.iter_custom(|iters| {
                    // One measured cell per sample set: ops/sec scaled
                    // to the requested iteration count.
                    let cell = Cell {
                        threads: 1,
                        update_pct,
                        keys: 1 << 12,
                        seconds: 0.25,
                        ..Cell::new(kind, Structure::AbTree)
                    };
                    let r = run_cell(&cell);
                    let per_op = std::time::Duration::from_secs_f64(r.secs / r.ops as f64);
                    per_op * iters as u32
                })
            });
        }
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tree
}
criterion_main!(benches);
