//! Criterion rendition of **Figure 9** (ablation): per-op latency of
//! NV-HALT-CL and SPHT on the (a,b)-tree as overhead classes are removed.
//! The multi-threaded bars come from the `fig9` binary.

use bench::{run_cell, Ablation, Cell, Structure, TmKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablation(c: &mut Criterion) {
    for kind in [TmKind::NvHaltCl, TmKind::Spht] {
        for ablation in Ablation::ALL {
            c.bench_function(
                format!("fig9/abtree-u50/{}/{}", kind.label(), ablation.label()),
                |b| {
                    b.iter_custom(|iters| {
                        let cell = Cell {
                            threads: 1,
                            update_pct: 50,
                            keys: 1 << 12,
                            seconds: 0.25,
                            ablation,
                            ..Cell::new(kind, Structure::AbTree)
                        };
                        let r = run_cell(&cell);
                        let per_op = std::time::Duration::from_secs_f64(r.secs / r.ops as f64);
                        per_op * iters as u32
                    })
                },
            );
        }
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ablation
}
criterion_main!(benches);
