//! `cargo xtask check-bench FILE... [--min-depth N]` — schema-validate
//! `kvserve-bench-v1` benchmark artifacts (`BENCH_*.json`).
//!
//! CI runs this over the committed artifacts and over a fresh open-loop
//! smoke run, so the artifact schema cannot drift from what the bench
//! binary emits: every cell must carry a throughput, the p50/p95/p99
//! submit-to-complete percentiles, and the flushes/fences-per-committed-
//! op persist accounting; the file-level summary must record the peak
//! in-flight depth. `--min-depth N` additionally requires
//! `summary.max_in_flight >= N` — the acceptance gate proving the
//! open-loop generator actually sustained N requests in flight from a
//! single submitting thread. `--max-flushes-per-op X` requires every
//! cell that committed work to stay at or under X flushes per committed
//! op — the persist-path efficiency gate: a regression that re-inflates
//! flush traffic (losing the group-commit coalescing) fails CI like a
//! latency regression would.
//!
//! Dependency-free by design (the workspace has no serde): a ~100-line
//! recursive-descent parser over the JSON subset the bench emits.

use std::process::ExitCode;

/// Parsed JSON value (the subset the artifacts use).
#[derive(Debug, PartialEq)]
pub enum Val {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

impl Val {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Val> {
        match self {
            Val::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("byte {}: {what}", self.pos)
    }

    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.bytes.get(self.pos).copied()
    }

    fn lit(&mut self, s: &str, v: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{s}`")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(b) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated utf8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("bad utf8"))?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Val::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'{') => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Val::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'[') => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Val::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.lit("true", Val::Bool(true)),
            Some(b'f') => self.lit("false", Val::Bool(false)),
            Some(b'n') => self.lit("null", Val::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parse a JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Val, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

fn require_num(v: &Val, path: &str, errors: &mut Vec<String>) -> f64 {
    let mut cur = v;
    for seg in path.split('.') {
        match cur.get(seg) {
            Some(next) => cur = next,
            None => {
                errors.push(format!("missing `{path}`"));
                return f64::NAN;
            }
        }
    }
    match cur.num() {
        Some(n) => n,
        None => {
            errors.push(format!("`{path}` is not a number"));
            f64::NAN
        }
    }
}

/// Validate one parsed artifact against the `kvserve-bench-v1` schema.
/// Returns the violations (empty = valid).
pub fn validate(doc: &Val, min_depth: Option<u64>, max_flushes: Option<f64>) -> Vec<String> {
    let mut errors = Vec::new();
    match doc.get("schema").and_then(Val::str) {
        Some("kvserve-bench-v1") => {}
        Some(other) => errors.push(format!("unknown schema `{other}`")),
        None => errors.push("missing `schema`".into()),
    }
    match doc.get("mode").and_then(Val::str) {
        // `net-open-loop` is the open-loop generator driving the
        // wire-protocol front end over loopback TCP; its cells carry
        // the same throughput/latency/persist obligations.
        Some("open-loop" | "closed-loop" | "net-open-loop") => {}
        Some(other) => errors.push(format!("unknown mode `{other}`")),
        None => errors.push("missing `mode`".into()),
    }
    match doc.get("baseline").and_then(|b| b.get("tput_ops_per_sec")) {
        Some(Val::Obj(mixes)) if !mixes.is_empty() => {
            for (mix, tput) in mixes {
                if tput.num().is_none_or(|t| t.is_nan() || t <= 0.0) {
                    errors.push(format!("baseline tput for `{mix}` not positive"));
                }
            }
        }
        _ => errors.push("missing `baseline.tput_ops_per_sec`".into()),
    }
    match doc.get("cells") {
        Some(Val::Arr(cells)) if !cells.is_empty() => {
            for (i, cell) in cells.iter().enumerate() {
                let mut cell_errors = Vec::new();
                let tput = require_num(cell, "tput_ops_per_sec", &mut cell_errors);
                if tput < 0.0 {
                    cell_errors.push("negative throughput".into());
                }
                for q in ["p50", "p95", "p99"] {
                    // Null is legal (an idle cell has no samples), but the
                    // field itself must exist.
                    match cell.get("latency_us").and_then(|l| l.get(q)) {
                        Some(Val::Num(_) | Val::Null) => {}
                        _ => cell_errors.push(format!("missing `latency_us.{q}`")),
                    }
                }
                let flushes = require_num(cell, "persist.flushes_per_op", &mut cell_errors);
                require_num(cell, "persist.fences_per_op", &mut cell_errors);
                require_num(cell, "max_in_flight", &mut cell_errors);
                if let Some(max) = max_flushes {
                    // Idle cells report 0 and pass trivially; NaN from a
                    // missing field is already an error above.
                    if flushes > max {
                        cell_errors.push(format!(
                            "persist.flushes_per_op = {flushes} above \
                             required --max-flushes-per-op {max}"
                        ));
                    }
                }
                errors.extend(cell_errors.into_iter().map(|e| format!("cell {i}: {e}")));
            }
        }
        _ => errors.push("missing or empty `cells`".into()),
    }
    let depth = require_num(doc, "summary.max_in_flight", &mut errors);
    if let Some(min) = min_depth {
        if depth.is_nan() || depth < min as f64 {
            errors.push(format!(
                "summary.max_in_flight = {depth} below required --min-depth {min}"
            ));
        }
    }
    errors
}

/// Entry point for `cargo xtask check-bench`.
pub fn run(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut min_depth = None;
    let mut max_flushes = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--min-depth" {
            min_depth = args.get(i + 1).and_then(|s| s.parse().ok());
            if min_depth.is_none() {
                eprintln!("--min-depth needs an integer");
                return ExitCode::FAILURE;
            }
            i += 2;
        } else if args[i] == "--max-flushes-per-op" {
            max_flushes = args.get(i + 1).and_then(|s| s.parse().ok());
            if max_flushes.is_none() {
                eprintln!("--max-flushes-per-op needs a number");
                return ExitCode::FAILURE;
            }
            i += 2;
        } else {
            files.push(args[i].clone());
            i += 1;
        }
    }
    if files.is_empty() {
        eprintln!(
            "usage: cargo xtask check-bench FILE... [--min-depth N] \
             [--max-flushes-per-op X]"
        );
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                println!("{file}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let errors = match parse(&text) {
            Ok(doc) => validate(&doc, min_depth, max_flushes),
            Err(e) => vec![format!("not valid JSON: {e}")],
        };
        if errors.is_empty() {
            println!("{file}: ok");
        } else {
            for e in &errors {
                println!("{file}: {e}");
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(summary_depth: u64) -> String {
        format!(
            r#"{{
  "schema": "kvserve-bench-v1",
  "mode": "open-loop",
  "baseline": {{"tput_ops_per_sec": {{"update-heavy": 1e6}}}},
  "summary": {{"max_in_flight": {summary_depth}}},
  "cells": [
    {{
      "tput_ops_per_sec": 20000.5,
      "max_in_flight": {summary_depth},
      "latency_us": {{"p50": 10.2, "p95": 41.0, "p99": null}},
      "persist": {{"flushes_per_op": 1.29, "fences_per_op": 0.86}}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn valid_artifact_passes() {
        let v = parse(&doc(4096)).unwrap();
        assert_eq!(validate(&v, None, None), Vec::<String>::new());
        assert_eq!(validate(&v, Some(1024), None), Vec::<String>::new());
    }

    #[test]
    fn net_open_loop_mode_accepted() {
        let text = doc(4096).replace("\"open-loop\"", "\"net-open-loop\"");
        let v = parse(&text).unwrap();
        assert_eq!(validate(&v, Some(1024), None), Vec::<String>::new());
        let bogus = doc(4096).replace("\"open-loop\"", "\"net-closed-loop\"");
        let errs = validate(&parse(&bogus).unwrap(), None, None);
        assert!(errs.iter().any(|e| e.contains("unknown mode")), "{errs:?}");
    }

    #[test]
    fn min_depth_gate_enforced() {
        let v = parse(&doc(512)).unwrap();
        assert!(validate(&v, None, None).is_empty());
        let errs = validate(&v, Some(1024), None);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("below required"), "{errs:?}");
    }

    #[test]
    fn max_flushes_gate_enforced() {
        // The fixture cell reports 1.29 flushes per op.
        let v = parse(&doc(4096)).unwrap();
        assert!(validate(&v, None, Some(4.0)).is_empty());
        let errs = validate(&v, None, Some(1.0));
        assert_eq!(errs.len(), 1);
        assert!(
            errs[0].contains("above required --max-flushes-per-op"),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_percentile_and_persist_fields_flagged() {
        let text = r#"{
  "schema": "kvserve-bench-v1",
  "mode": "closed-loop",
  "baseline": {"tput_ops_per_sec": {"scan": 5e5}},
  "summary": {"max_in_flight": 8},
  "cells": [{"tput_ops_per_sec": 100, "max_in_flight": 8, "latency_us": {"p50": 1}}]
}"#;
        let errs = validate(&parse(text).unwrap(), None, None);
        assert!(
            errs.iter().any(|e| e.contains("latency_us.p95")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("persist.flushes_per_op")),
            "{errs:?}"
        );
    }

    #[test]
    fn wrong_schema_and_empty_cells_flagged() {
        let text = r#"{"schema": "v0", "mode": "open-loop", "cells": []}"#;
        let errs = validate(&parse(text).unwrap(), None, None);
        assert!(errs.iter().any(|e| e.contains("unknown schema")));
        assert!(errs.iter().any(|e| e.contains("cells")));
    }

    #[test]
    fn parser_handles_nesting_escapes_and_rejects_garbage() {
        let v = parse(r#"{"a": [1, -2.5, "x\n\"y\"", true, null], "b": {}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Val::Arr(vec![
                Val::Num(1.0),
                Val::Num(-2.5),
                Val::Str("x\n\"y\"".into()),
                Val::Bool(true),
                Val::Null,
            ])
        );
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("{\"a\": }").is_err());
    }
}
