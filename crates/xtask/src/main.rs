//! `cargo xtask lint` — static workspace invariant checks.
//!
//! A deliberately dumb, dependency-free token scanner over the workspace's
//! Rust sources. It does not parse Rust; it enforces four *textual*
//! discipline rules that the dynamic persist-order sanitizer (`psan`)
//! cannot check because they are about what the source is allowed to say,
//! not what an execution did:
//!
//! 1. **No `Ordering::Relaxed` on lock or clock words.** The versioned
//!    locks and the global clocks are the synchronization backbone of
//!    every protocol here; a relaxed load or store on one is a latent
//!    memory-ordering bug even if current tests pass. The failure
//!    ordering of a `compare_exchange` is exempt (it is a failed CAS's
//!    load), as is anything inside a `#[cfg(test)]` region.
//! 2. **No raw `PmemPool::write` outside the annotated-entry modules.**
//!    Protocol crates must go through `pmem::annot`'s entry building
//!    blocks (which carry persist-order roles the sanitizer checks);
//!    only the pmem crate itself and SPHT's redo log (whose record
//!    format is not entry-shaped by design) may issue raw pool stores.
//! 3. **No `flush_line`/`sfence` inside hardware-transaction bodies.**
//!    On real HTM a flush aborts the transaction; the simulator would
//!    happily allow it and silently destroy the fidelity argument. The
//!    whole `htm` crate is flush-free, and closures passed to
//!    `.execute(` anywhere else must be too.
//! 4. **Every `unsafe` needs a `SAFETY:` comment** on the same line or
//!    within the three lines above it.
//! 5. **No blocking `recv` on reply channels inside kvserve's service
//!    sources.** The service front end is completion-based: submission
//!    paths hand a `RingCompletion` sink to the workers and reap
//!    results through the ring (`complete`/`wait`/`drain`). A
//!    `reply...recv()` reintroduces per-request thread parking, the
//!    exact pattern the ring replaced.
//! 6. **No raw `shard_of_key` in kvserve's routing-dependent modules.**
//!    Since live migration, shard ownership is the *versioned routing
//!    table's* call (`RoutingTable::route` via `Router::load`), not a
//!    pure function of the key and the shard count. A raw
//!    `shard_of_key(key, shards)` in `ring`/`shard`/`coord`/`repl`/
//!    `migrate` silently routes with the epoch-0 assignment and
//!    misdirects every key whose slot has moved. Only `lib.rs` (which
//!    defines it and uses it as the slot hash) may name it.
//! 7. **No direct `std::sync::{Mutex,RwLock,Condvar}` outside the shim.**
//!    The `parking_lot` shim is where the lock-discipline sanitizer
//!    (`locksan`) hooks acquire/release; a raw `std::sync` lock is
//!    invisible to deadlock-cycle detection and to the held-lock
//!    counters. Exempt: the shim itself, the sanitizers (`locksan`,
//!    `psan` — they must not instrument their own internals), `pmem`
//!    (which sits *below* the persist layer the sanitizer watches),
//!    `tm::check`'s test-support recorder, and tests/examples.
//! 8. **No `.lock()` inside a transaction closure body.** Blocking on a
//!    service lock while a `tm::txn(` speculation is open inverts the
//!    lock hierarchy (stripe locks are acquired at commit, below every
//!    service lock) and can deadlock against a holder waiting for the
//!    stripes — and the closure may rerun on abort, re-acquiring
//!    arbitrarily often. Take the lock before entering the
//!    transaction, or hand the data in by value.
//! 9. **No raw socket writes in kvserve outside the framed writer.**
//!    The wire contract — a response on the socket IS the durability
//!    ack — holds only if every byte crosses through `net.rs`'s
//!    `FramedWriter`, where the dead-connection check and the crash
//!    hook's partial-flush injection live. A bare `write_all` anywhere
//!    else in `crates/kvserve/src/` can leak an ack around the
//!    suppression path (or a whole frame past a `MidWrite` crash) and
//!    silently break every fault-injection sweep.
//!
//! `cargo xtask check-bench` (see `bench_check`) validates
//! `kvserve-bench-v1` benchmark artifacts instead of sources.
//!
//! Scanned roots: `crates/` (minus `xtask` itself), `src/`, `tests/`,
//! `examples/`. Skipped everywhere: `target/`, `shims/` (vendored
//! stand-ins), comment-only lines, and — for rules 1–3 — everything at
//! or below a `#[cfg(test)]` marker (test modules trail their file in
//! this codebase).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench_check;

/// One lint violation.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Identifiers that name lock or clock words (rule 1).
const LOCK_CLOCK_TOKENS: &[&str] = &["gclock", "gvc", "global_lock", "lock_cell"];

/// Raw-pool-store call patterns (rule 2).
const POOL_WRITE_TOKENS: &[&str] = &["pmem.write(", "pool.write(", "pool().write("];

/// File-path substrings allowed to issue raw pool stores (rule 2).
const POOL_WRITE_ALLOWLIST: &[&str] = &["crates/pmem/", "crates/spht/"];

/// Lock-type names that must come from the shim, not `std::sync` (rule 7).
const STD_SYNC_LOCK_TOKENS: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// File-path prefixes allowed to name `std::sync` locks directly (rule 7).
/// The shim wraps std; locksan must not instrument its own internals;
/// `tm::check` is a test-support recorder deliberately outside the
/// tracked hierarchy; integration tests and examples are harness code.
const STD_SYNC_ALLOWLIST: &[&str] = &[
    "crates/locksan/",
    "crates/psan/",
    "crates/pmem/",
    "crates/tm/src/check.rs",
    "tests/",
    "examples/",
];

/// Every lint rule, for `cargo xtask lint --rules`.
const RULES: &[(&str, &str)] = &[
    (
        "relaxed-lock-word",
        "no `Ordering::Relaxed` on lock or clock words (CAS failure ordering exempt)",
    ),
    (
        "raw-pool-write",
        "no raw `PmemPool::write` outside pmem/spht; go through `pmem::annot`",
    ),
    (
        "flush-in-htm",
        "no flush/fence in the htm crate or inside `.execute(` closures",
    ),
    (
        "safety-comment",
        "every `unsafe` needs a `SAFETY:` comment within 3 lines above",
    ),
    (
        "reply-channel-recv",
        "no blocking `recv` on reply channels in kvserve; reap via the completion ring",
    ),
    (
        "raw-shard-of-key",
        "no raw `shard_of_key` in kvserve's routing-dependent modules; use the `RoutingTable`",
    ),
    (
        "std-sync-lock",
        "no direct `std::sync::{Mutex,RwLock,Condvar}` outside the shim; use `parking_lot`",
    ),
    (
        "lock-in-txn",
        "no `.lock()` inside a `tm::txn(` closure body; acquire before the transaction",
    ),
    (
        "raw-tcp-write",
        "no raw `write_all` in kvserve outside `net.rs`'s `FramedWriter`; frame every byte",
    ),
];

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("*")
}

/// `unsafe` as a code token (not part of a longer identifier).
fn has_unsafe_token(line: &str) -> bool {
    for (i, _) in line.match_indices("unsafe") {
        let before_ok = i == 0
            || !line.as_bytes()[i - 1].is_ascii_alphanumeric() && line.as_bytes()[i - 1] != b'_';
        let after = i + "unsafe".len();
        let after_ok = after >= line.len()
            || !line.as_bytes()[after].is_ascii_alphanumeric() && line.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0i64;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Scan one file's text. `file` is the workspace-relative path used both
/// for reporting and for the path-based allowlists.
fn lint_file(file: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let in_htm = file.starts_with("crates/htm/");
    let pool_writes_allowed = POOL_WRITE_ALLOWLIST.iter().any(|p| file.starts_with(p));
    // Harness code (top-level and per-crate test dirs, examples) may
    // record results under std locks inside txn closures; the hierarchy
    // rules 7-8 enforce are about production lock discipline.
    let harness =
        STD_SYNC_ALLOWLIST.iter().any(|p| file.starts_with(p)) || file.contains("/tests/");
    let mut in_test = false;
    // Brace depth of an open `.execute(` closure region; None outside.
    let mut execute_depth: Option<i64> = None;
    // Brace depth of an open `tm::txn(` closure region; None outside.
    let mut txn_depth: Option<i64> = None;
    // Brace depth of the open `impl FramedWriter` block (rule 9's one
    // sanctioned home for raw socket writes); None outside.
    let mut framed_depth: Option<i64> = None;
    for (i, &line) in lines.iter().enumerate() {
        let lineno = i + 1;
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_test = true;
        }
        if is_comment(line) {
            continue;
        }

        // Rule 4 applies everywhere, test code included.
        if has_unsafe_token(line) {
            let covered = (i.saturating_sub(3)..=i).any(|j| lines[j].contains("SAFETY:"));
            if !covered {
                findings.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule: "safety-comment",
                    message: "`unsafe` without a `SAFETY:` comment within 3 lines above".into(),
                });
            }
        }

        if in_test {
            continue;
        }

        // Rule 1: Relaxed on lock/clock words.
        if line.contains("Ordering::Relaxed")
            && LOCK_CLOCK_TOKENS.iter().any(|t| line.contains(t))
            && !line.contains("compare_exchange")
        {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "relaxed-lock-word",
                message: "`Ordering::Relaxed` on a lock/clock word".into(),
            });
        }

        // Rule 2: raw pool stores outside the annotated-entry modules.
        if !pool_writes_allowed && POOL_WRITE_TOKENS.iter().any(|t| line.contains(t)) {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "raw-pool-write",
                message: "raw `PmemPool::write` outside pmem/spht; use `pmem::annot`".into(),
            });
        }

        // Rule 3: flushes/fences inside hardware-transaction bodies.
        let flushy = line.contains("flush_line(") || line.contains(".sfence(");
        if in_htm && flushy {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "flush-in-htm",
                message: "flush/fence in the htm crate (aborts real hardware txns)".into(),
            });
        }
        // Rule 5: blocking recv on a reply channel in kvserve's service
        // sources — submission paths must use RingCompletion sinks.
        if file.starts_with("crates/kvserve/src/")
            && line.contains("reply")
            && (line.contains(".recv(") || line.contains(".recv_timeout("))
        {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "reply-channel-recv",
                message: "blocking `recv` on a reply channel; reap via the completion ring".into(),
            });
        }

        // Rule 6: raw shard_of_key in routing-dependent kvserve modules —
        // ownership must come from the versioned routing table.
        if file.starts_with("crates/kvserve/src/")
            && file != "crates/kvserve/src/lib.rs"
            && line.contains("shard_of_key(")
        {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "raw-shard-of-key",
                message: "raw `shard_of_key`; route through the versioned `RoutingTable`".into(),
            });
        }

        // Rule 7: std::sync locks outside the instrumented shim.
        if !harness
            && line.contains("std::sync::")
            && STD_SYNC_LOCK_TOKENS.iter().any(|t| line.contains(t))
        {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "std-sync-lock",
                message:
                    "direct `std::sync` lock; use the `parking_lot` shim (locksan hooks there)"
                        .into(),
            });
        }

        // Rule 9: raw socket writes in kvserve must live inside the
        // framed writer, where ack suppression and crash injection sit.
        if file.starts_with("crates/kvserve/src/") {
            match framed_depth {
                Some(depth) => {
                    let d = depth + brace_delta(line);
                    framed_depth = if d > 0 { Some(d) } else { None };
                }
                None => {
                    if line.contains("impl FramedWriter") {
                        let d = brace_delta(line);
                        framed_depth = Some(if d > 0 { d } else { 0 });
                    } else if line.contains("write_all(") {
                        findings.push(Finding {
                            file: file.to_string(),
                            line: lineno,
                            rule: "raw-tcp-write",
                            message: "raw `write_all` outside `FramedWriter`; frame every byte"
                                .into(),
                        });
                    }
                }
            }
        }

        // Rule 8: blocking lock acquisition inside a transaction closure.
        match txn_depth {
            Some(depth) => {
                if line.contains(".lock(") || line.contains(".try_lock(") {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: lineno,
                        rule: "lock-in-txn",
                        message: "`.lock()` inside a `tm::txn(` closure; acquire before the txn"
                            .into(),
                    });
                }
                let d = depth + brace_delta(line);
                txn_depth = if d > 0 { Some(d) } else { None };
            }
            None => {
                if !harness && (line.contains("tm::txn(") || line.contains("tm.txn(")) {
                    let d = brace_delta(line);
                    if d > 0 {
                        txn_depth = Some(d);
                    }
                }
            }
        }

        match execute_depth {
            Some(depth) => {
                if flushy {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: lineno,
                        rule: "flush-in-htm",
                        message: "flush/fence inside an `.execute(` closure".into(),
                    });
                }
                let d = depth + brace_delta(line);
                execute_depth = if d > 0 { Some(d) } else { None };
            }
            None => {
                if line.contains(".execute(") {
                    let d = brace_delta(line);
                    if d > 0 {
                        execute_depth = Some(d);
                    }
                }
            }
        }
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask -> workspace root is two levels up.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    let mut p = PathBuf::from(manifest);
    p.pop();
    p.pop();
    p
}

fn print_rules() -> ExitCode {
    for (name, desc) in RULES {
        println!("{name}: {desc}");
    }
    ExitCode::SUCCESS
}

fn run_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        return print_rules();
    }
    let root = workspace_root();
    let mut files = Vec::new();
    for sub in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(sub), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/xtask/") || rel.starts_with("shims/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        scanned += 1;
        findings.extend(lint_file(&rel, &text));
    }
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {scanned} files",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let task = args.first().map(String::as_str).unwrap_or("lint");
    match task {
        "lint" => run_lint(&args[1..]),
        "check-bench" => bench_check::run(&args[1..]),
        other => {
            eprintln!("unknown task `{other}`; available: lint, check-bench");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(file: &str, src: &str) -> Vec<&'static str> {
        lint_file(file, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn relaxed_on_clock_word_flagged() {
        let src = "let v = self.gclock.load(Ordering::Relaxed);\n";
        assert_eq!(
            rules("crates/core/src/engine.rs", src),
            ["relaxed-lock-word"]
        );
    }

    #[test]
    fn relaxed_failure_ordering_of_cas_exempt() {
        let src =
            "self.gclock.compare_exchange(rv, rv + 1, Ordering::AcqRel, Ordering::Relaxed);\n";
        assert!(rules("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn relaxed_on_plain_counter_not_flagged() {
        let src = "self.commits.fetch_add(1, Ordering::Relaxed);\n";
        assert!(rules("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_skips_lock_rules() {
        let src = "#[cfg(test)]\nmod tests {\n let v = gvc.load(Ordering::Relaxed);\n}\n";
        assert!(rules("crates/trinity/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_pool_write_flagged_outside_allowlist() {
        let src = "self.pmem.write(tid, w, v);\n";
        assert_eq!(rules("crates/core/src/engine.rs", src), ["raw-pool-write"]);
    }

    #[test]
    fn raw_pool_write_allowed_in_spht_and_pmem() {
        let src = "self.pmem.write(tid, w, v);\n";
        assert!(rules("crates/spht/src/lib.rs", src).is_empty());
        assert!(rules("crates/pmem/src/annot.rs", src).is_empty());
    }

    #[test]
    fn flush_in_htm_crate_flagged() {
        let src = "self.pool.flush_line(tid, w);\n";
        assert_eq!(rules("crates/htm/src/txn.rs", src), ["flush-in-htm"]);
    }

    #[test]
    fn flush_inside_execute_closure_flagged() {
        let src = "self.htm.execute(th, |htx| {\n    pmem2.flush_line(tid, w);\n    Ok(())\n})\n";
        let got = lint_file("crates/core/src/engine.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "flush-in-htm");
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn flush_after_execute_closure_closes_not_flagged() {
        let src = "self.htm.execute(th, |htx| {\n    Ok(())\n});\nself.pmem2.sfence(tid);\n";
        assert!(rules("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_flagged() {
        let src = "unsafe { ptr.read() }\n";
        assert_eq!(rules("crates/htm/src/txn.rs", src), ["safety-comment"]);
    }

    #[test]
    fn unsafe_with_safety_comment_ok() {
        let src = "// SAFETY: the pointer outlives the call.\nunsafe { ptr.read() }\n";
        assert!(rules("crates/htm/src/txn.rs", src).is_empty());
    }

    #[test]
    fn unsafe_flagged_even_in_test_regions() {
        let src = "#[cfg(test)]\nmod tests {\n unsafe { ptr.read() }\n}\n";
        assert_eq!(rules("crates/htm/src/txn.rs", src), ["safety-comment"]);
    }

    #[test]
    fn unsafe_substring_of_identifier_not_flagged() {
        let src = "let not_unsafe_here = 1;\n";
        assert!(rules("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn reply_channel_recv_in_kvserve_flagged() {
        let src = "let r = reply_rx.recv().unwrap();\n";
        assert_eq!(
            rules("crates/kvserve/src/lib.rs", src),
            ["reply-channel-recv"]
        );
        let src = "match req.reply_rx.recv_timeout(grace) {\n";
        assert_eq!(
            rules("crates/kvserve/src/shard.rs", src),
            ["reply-channel-recv"]
        );
    }

    #[test]
    fn request_queue_recv_in_kvserve_not_flagged() {
        // The worker's request-queue poll is fine — it is not a reply channel.
        let src = "match ctx.rx.recv_timeout(POLL) {\n";
        assert!(rules("crates/kvserve/src/shard.rs", src).is_empty());
    }

    #[test]
    fn reply_recv_outside_kvserve_src_not_flagged() {
        let src = "let r = reply_rx.recv().unwrap();\n";
        assert!(rules("crates/bench/src/bin/service.rs", src).is_empty());
        assert!(rules("tests/kvserve_ring.rs", src).is_empty());
        // Test regions inside kvserve are exempt like rules 1-3.
        let test_src = "#[cfg(test)]\nmod tests {\n let r = reply_rx.recv().unwrap();\n}\n";
        assert!(rules("crates/kvserve/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn raw_shard_of_key_in_kvserve_modules_flagged() {
        let src = "let s = shard_of_key(key, self.shards);\n";
        assert_eq!(
            rules("crates/kvserve/src/ring.rs", src),
            ["raw-shard-of-key"]
        );
        assert_eq!(
            rules("crates/kvserve/src/shard.rs", src),
            ["raw-shard-of-key"]
        );
        assert_eq!(
            rules("crates/kvserve/src/coord.rs", src),
            ["raw-shard-of-key"]
        );
        assert_eq!(
            rules("crates/kvserve/src/migrate.rs", src),
            ["raw-shard-of-key"]
        );
    }

    #[test]
    fn shard_of_key_allowed_in_lib_bench_and_tests() {
        let src = "let s = shard_of_key(key, self.shards);\n";
        // lib.rs defines it and uses it as the slot hash.
        assert!(rules("crates/kvserve/src/lib.rs", src).is_empty());
        // Outside kvserve's sources it is a legitimate free function.
        assert!(rules("crates/bench/src/bin/service.rs", src).is_empty());
        assert!(rules("tests/kvserve_crash.rs", src).is_empty());
        // Test regions inside the modules are exempt like rules 1-3 and 5.
        let test_src = "#[cfg(test)]\nmod tests {\n let s = shard_of_key(k, 4);\n}\n";
        assert!(rules("crates/kvserve/src/ring.rs", test_src).is_empty());
    }

    #[test]
    fn std_sync_lock_flagged_outside_shim() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(rules("crates/kvserve/src/ring.rs", src), ["std-sync-lock"]);
        let src = "use std::sync::{Arc, Condvar, Mutex};\n";
        assert_eq!(rules("crates/kvserve/src/repl.rs", src), ["std-sync-lock"]);
        let src = "let g: std::sync::RwLock<u64> = std::sync::RwLock::new(0);\n";
        assert_eq!(rules("crates/core/src/engine.rs", src), ["std-sync-lock"]);
    }

    #[test]
    fn std_sync_lock_exemptions() {
        let src = "use std::sync::Mutex;\n";
        // The sanitizers must not instrument their own internals.
        assert!(rules("crates/locksan/src/lib.rs", src).is_empty());
        assert!(rules("crates/psan/src/lib.rs", src).is_empty());
        // pmem sits below the persist layer the sanitizer watches.
        assert!(rules("crates/pmem/src/pool.rs", src).is_empty());
        // tm::check's recorder is test-support outside the hierarchy.
        assert!(rules("crates/tm/src/check.rs", src).is_empty());
        // Integration tests (top-level or per-crate) and examples are harness code.
        assert!(rules("tests/kvserve_crash.rs", src).is_empty());
        assert!(rules("crates/spht/tests/ordering.rs", src).is_empty());
        assert!(rules("examples/durable_index.rs", src).is_empty());
        // Test regions are exempt like rules 1-3.
        let test_src = "#[cfg(test)]\nmod tests {\n use std::sync::Mutex;\n}\n";
        assert!(rules("crates/kvserve/src/ring.rs", test_src).is_empty());
        // std::sync::Arc and atomics are not locks.
        let src = "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n";
        assert!(rules("crates/kvserve/src/ring.rs", src).is_empty());
    }

    #[test]
    fn lock_inside_txn_closure_flagged() {
        let src =
            "tm::txn(&*self.log, ltid, |tx| {\n    let g = self.free.lock();\n    Ok(())\n})\n";
        let got = lint_file("crates/kvserve/src/coord.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "lock-in-txn");
        assert_eq!(got[0].line, 2);
        let src = "tm.txn(0, |tx| {\n    let g = cell.try_lock();\n    Ok(())\n})\n";
        assert_eq!(rules("crates/core/src/engine.rs", src), ["lock-in-txn"]);
    }

    #[test]
    fn lock_outside_txn_closure_not_flagged() {
        // Acquire-before-txn is the sanctioned pattern.
        let src = "let g = self.free.lock();\ntm::txn(&*self.log, ltid, |tx| {\n    Ok(())\n});\nlet h = self.group.lock();\n";
        assert!(rules("crates/kvserve/src/coord.rs", src).is_empty());
        // Single-line txn bodies never open a region.
        let src = "let v = tm::txn(&*stm, tid, |tx| tx.read(addr)).unwrap();\nlet g = self.free.lock();\n";
        assert!(rules("crates/kvserve/src/migrate.rs", src).is_empty());
        // `.unlock(` is not `.lock(`.
        let src = "tm::txn(&*stm, tid, |tx| {\n    cell.unlock();\n    Ok(())\n})\n";
        assert!(rules("crates/kvserve/src/coord.rs", src).is_empty());
        // Harness code may record results under a lock inside the closure.
        let src = "tm::txn(tm, t, |tx| {\n    committed.lock().unwrap().push(i);\n    Ok(())\n})\n";
        assert!(rules("tests/crash_recovery.rs", src).is_empty());
    }

    #[test]
    fn raw_tcp_write_in_kvserve_flagged() {
        let src = "self.stream.write_all(&buf)?;\n";
        assert_eq!(rules("crates/kvserve/src/net.rs", src), ["raw-tcp-write"]);
        assert_eq!(rules("crates/kvserve/src/lib.rs", src), ["raw-tcp-write"]);
    }

    #[test]
    fn write_all_inside_framed_writer_allowed() {
        let src = "impl FramedWriter {\n    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {\n        self.stream.write_all(frame)?;\n        Ok(())\n    }\n}\n";
        assert!(rules("crates/kvserve/src/net.rs", src).is_empty());
        // The region closes with the impl block: a later raw write is
        // back to being a violation.
        let src =
            "impl FramedWriter {\n    fn write_frame(&mut self) {}\n}\nstream.write_all(&buf)?;\n";
        let got = lint_file("crates/kvserve/src/net.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "raw-tcp-write");
        assert_eq!(got[0].line, 4);
    }

    #[test]
    fn write_all_outside_kvserve_src_not_flagged() {
        let src = "self.stream.write_all(&buf)?;\n";
        assert!(rules("crates/bench/src/bin/service.rs", src).is_empty());
        assert!(rules("tests/kvserve_net.rs", src).is_empty());
        // Test regions inside kvserve are exempt like rules 1-3.
        let test_src = "#[cfg(test)]\nmod tests {\n stream.write_all(&buf).unwrap();\n}\n";
        assert!(rules("crates/kvserve/src/net.rs", test_src).is_empty());
    }

    #[test]
    fn comment_lines_are_skipped() {
        let src = "// mentions gclock.load(Ordering::Relaxed) and pmem.write( in prose\n";
        assert!(rules("crates/core/src/engine.rs", src).is_empty());
    }
}
