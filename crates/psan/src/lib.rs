//! `psan` — a pmemcheck-style dynamic persist-order sanitizer.
//!
//! Every persistence protocol in this workspace (NV-HALT, Trinity's
//! colocated-undo entries, SPHT's redo logs) is correct only because its
//! stores to persistent memory are flushed and fenced in a precise order
//! before each durability point. The sanitizer tracks that discipline at
//! the call level: each `(thread, cache line)` pair moves through a small
//! state machine —
//!
//! ```text
//!             store              flush              fence
//! (untracked) ─────▶ Dirty ────────────▶ FlushedPending ─────▶ (untracked)
//!                      ▲                       │
//!                      └──────── store ────────┘        (re-dirtied)
//! ```
//!
//! — and violations of the protocol are reported as [`Diagnostic`]s in
//! four classes:
//!
//! * **(a) unfenced durability point** — a point where the program treats
//!   prior stores as durable (commit-marker store, `crash_point`,
//!   `snapshot_durable`, prepared-transaction staging) is reached while
//!   the thread still owns unfenced lines;
//! * **(b) entry-protocol epoch violations** — the Trinity colocated-undo
//!   entry must be written `back` → `meta` → `data` → `pad` (the pad
//!   word is the completion witness counted commit markers rely on) and
//!   only then flushed; stores out of that order, a flush of an
//!   incomplete entry, or a store into an entry already flushed this
//!   epoch are reported;
//! * **(c) redundant flushes** — a flush of a line with no store since its
//!   last flush does no work but costs full flush latency; counted as a
//!   performance diagnostic (never fatal);
//! * **(d) cross-thread persist races** — a thread reads another thread's
//!   unfenced line and then reaches a durability point: its durable
//!   decision depends on data that a crash can still lose.
//!
//! The sanitizer is wired into `pmem::PmemPool` behind an
//! `Option<Arc<Psan>>` hook: when off (the default) the pool carries
//! `None` and the hot paths pay nothing but a branch. Enable it per pool
//! via `PmemConfig::psan` or globally with the `PSAN=1` (panic on first
//! diagnostic) / `PSAN=record` (collect silently) environment variable.
//!
//! Diagnostics carry **site labels**: protocols push a label for the
//! protocol step they are executing (e.g. `nvhalt::sw_commit`,
//! `kvserve::coord::log_decision`) and each diagnostic reports both the
//! label where it fired and the label under which the offending line was
//! last stored.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Words per 64-byte cache line (mirrors `pmem::LINE_WORDS`; the crate is
/// dependency-free so the constant is repeated here).
const LINE_WORDS: usize = 8;

/// How the sanitizer reacts to diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PsanMode {
    /// Not tracking anything (the pool carries no sanitizer at all).
    Off,
    /// Track and collect diagnostics; never panic. Fixture tests use this
    /// to inspect what fired.
    Record,
    /// Track and panic on the first non-perf diagnostic (redundant
    /// flushes are only counted). Test suites run under this mode so an
    /// ordering bug fails the offending test at the point of the bug.
    Panic,
}

impl PsanMode {
    /// The mode requested by the `PSAN` environment variable: `1`/`panic`
    /// mean [`PsanMode::Panic`], `record` means [`PsanMode::Record`],
    /// anything else (or unset) means [`PsanMode::Off`]. Parsed once.
    pub fn from_env() -> PsanMode {
        static ENV: OnceLock<PsanMode> = OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("PSAN").as_deref() {
            Ok("1") | Ok("panic") => PsanMode::Panic,
            Ok("record") => PsanMode::Record,
            _ => PsanMode::Off,
        })
    }

    /// This mode, upgraded by the environment: an explicit configuration
    /// wins, `Off` defers to `PSAN`.
    pub fn env_upgraded(self) -> PsanMode {
        match self {
            PsanMode::Off => PsanMode::from_env(),
            explicit => explicit,
        }
    }
}

/// Which word of a Trinity colocated-undo entry a store targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryRole {
    /// The `back` (undo replica) word — must be stored first.
    Back,
    /// The `meta` (`{tid, pver}`) word — after `back`, before `data`.
    Meta,
    /// The `data` (new value) word — after `meta`, before `pad`.
    Data,
    /// The `pad` (completion witness) word — last, immediately before the
    /// flush. Counted commit markers rely on `pad == meta` to certify
    /// that the whole entry (data included) reached the media.
    Pad,
}

/// What kind of violation a [`Diagnostic`] reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiagClass {
    /// Class (a): a durability point reached with unfenced lines.
    UnfencedDurabilityPoint,
    /// Class (b): entry stored out of `back` → `meta` → `data` order.
    EntryStoreOrder,
    /// Class (b): entry line flushed before its `data` store.
    FlushBeforeStore,
    /// Class (b): store into an entry already flushed this epoch.
    StoreAfterFlush,
    /// Class (c): flush of a line with no store since its last flush.
    RedundantFlush,
    /// Class (d): a durable decision depends on another thread's
    /// unfenced line.
    CrossThreadRace,
}

impl DiagClass {
    /// Short label used in reports and assertions.
    pub fn label(self) -> &'static str {
        match self {
            DiagClass::UnfencedDurabilityPoint => "unfenced-durability-point",
            DiagClass::EntryStoreOrder => "entry-store-order",
            DiagClass::FlushBeforeStore => "flush-before-store",
            DiagClass::StoreAfterFlush => "store-after-flush",
            DiagClass::RedundantFlush => "redundant-flush",
            DiagClass::CrossThreadRace => "cross-thread-race",
        }
    }

    /// True for purely performance-related diagnostics (never panic).
    pub fn is_perf(self) -> bool {
        matches!(self, DiagClass::RedundantFlush)
    }
}

/// One sanitizer finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The violation class.
    pub class: DiagClass,
    /// Thread that triggered the diagnostic.
    pub tid: usize,
    /// Cache line (index, not word) the diagnostic is about.
    pub line: usize,
    /// Site label active where the diagnostic fired (for durability
    /// points, the point's own label).
    pub site: String,
    /// Site label under which the offending line was last stored.
    pub store_site: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "psan[{}] tid={} line={} at `{}` (stored at `{}`): {}",
            self.class.label(),
            self.tid,
            self.line,
            self.site,
            self.store_site,
            self.detail
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LineState {
    Dirty,
    FlushedPending,
}

struct LineTrack {
    state: LineState,
    /// Innermost site label at the time of the last store.
    store_site: &'static str,
    /// Generation stamp distinguishing re-uses of the same `(tid, line)`
    /// slot, so stale cross-thread dependencies do not misfire.
    generation: u64,
}

#[derive(Default)]
struct EntryEpoch {
    back: bool,
    meta: bool,
    data: bool,
    pad: bool,
    flushed: bool,
}

struct Dep {
    writer: usize,
    line: usize,
    generation: u64,
    store_site: &'static str,
}

struct State {
    /// Per-thread stack of site labels (innermost last).
    sites: Vec<Vec<&'static str>>,
    /// `(tid, line)` → tracked state.
    lines: HashMap<(usize, usize), LineTrack>,
    /// `(tid, entry base word)` → per-epoch entry protocol progress.
    entries: HashMap<(usize, usize), EntryEpoch>,
    /// Per-thread cross-thread dependencies collected by loads.
    deps: Vec<Vec<Dep>>,
    /// Monotone generation counter for [`LineTrack::generation`].
    next_generation: u64,
}

/// The sanitizer: one per [`pmem` pool], shared by all its threads.
pub struct Psan {
    mode: PsanMode,
    state: Mutex<State>,
    /// Per-thread count of lines in `Dirty` state (fast path for the very
    /// hot relaxed checks in spin loops).
    dirty: Vec<AtomicU32>,
    /// Per-thread count of tracked (dirty or flushed-pending) lines.
    tracked: Vec<AtomicU32>,
    /// Per-thread "has recorded cross-thread deps" flag.
    has_deps: Vec<AtomicBool>,
    /// Total tracked lines across all threads (fast path for loads).
    total_tracked: AtomicU32,
    /// Count of redundant flushes observed (performance class).
    redundant: AtomicU64,
    diags: Mutex<Vec<Diagnostic>>,
    /// Set on pool crash: a poisoned pool legitimately strands unfenced
    /// lines on every thread, so checking stops.
    disabled: AtomicBool,
}

impl Psan {
    /// A sanitizer for `max_threads` thread slots.
    pub fn new(mode: PsanMode, max_threads: usize) -> Psan {
        let n = max_threads.max(1);
        Psan {
            mode,
            state: Mutex::new(State {
                sites: vec![Vec::new(); n],
                lines: HashMap::new(),
                entries: HashMap::new(),
                deps: (0..n).map(|_| Vec::new()).collect(),
                next_generation: 1,
            }),
            dirty: (0..n).map(|_| AtomicU32::new(0)).collect(),
            tracked: (0..n).map(|_| AtomicU32::new(0)).collect(),
            has_deps: (0..n).map(|_| AtomicBool::new(false)).collect(),
            total_tracked: AtomicU32::new(0),
            redundant: AtomicU64::new(0),
            diags: Mutex::new(Vec::new()),
            disabled: AtomicBool::new(false),
        }
    }

    /// The configured reaction mode.
    pub fn mode(&self) -> PsanMode {
        self.mode
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A Panic-mode diagnostic unwinds through this mutex; keep later
        // hooks (and test teardown) working instead of cascading poison.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    fn off(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// Push a site label for thread `tid`; diagnostics report the
    /// innermost label. Balance with [`Psan::pop_site`].
    pub fn push_site(&self, tid: usize, site: &'static str) {
        if self.off() {
            return;
        }
        self.lock().sites[tid].push(site);
    }

    /// Pop the innermost site label of thread `tid`.
    pub fn pop_site(&self, tid: usize) {
        if self.off() {
            return;
        }
        self.lock().sites[tid].pop();
    }

    fn site_of(state: &State, tid: usize) -> &'static str {
        state.sites[tid].last().copied().unwrap_or("?")
    }

    /// Record `diag`; returns the panic message if the mode demands one
    /// (the caller panics after dropping its locks).
    fn record(&self, diag: Diagnostic) -> Option<String> {
        let fatal = self.mode == PsanMode::Panic && !diag.class.is_perf();
        let msg = fatal.then(|| diag.to_string());
        self.diags
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(diag);
        msg
    }

    fn track_store(&self, state: &mut State, tid: usize, line: usize) {
        let site = Self::site_of(state, tid);
        let generation = state.next_generation;
        match state.lines.entry((tid, line)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let t = e.get_mut();
                if t.state == LineState::FlushedPending {
                    // Re-dirtied between flush and fence: legitimate
                    // (e.g. SPHT's checkpoint re-stores), just tracked.
                    t.state = LineState::Dirty;
                    self.dirty[tid].fetch_add(1, Ordering::Relaxed);
                }
                t.store_site = site;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(LineTrack {
                    state: LineState::Dirty,
                    store_site: site,
                    generation,
                });
                state.next_generation += 1;
                self.dirty[tid].fetch_add(1, Ordering::Relaxed);
                self.tracked[tid].fetch_add(1, Ordering::Relaxed);
                self.total_tracked.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A plain store by `tid` to pool word `w`.
    pub fn on_store(&self, tid: usize, w: usize) {
        if self.off() {
            return;
        }
        let mut state = self.lock();
        self.track_store(&mut state, tid, w / LINE_WORDS);
    }

    /// A store by `tid` to word `w` playing `role` in a colocated-undo
    /// entry (the Trinity protocol's `back` → `meta` → `data` epochs).
    pub fn on_entry_store(&self, tid: usize, w: usize, role: EntryRole) {
        if self.off() {
            return;
        }
        let base = match role {
            EntryRole::Data => w,
            EntryRole::Back => w - 1,
            EntryRole::Meta => w - 2,
            EntryRole::Pad => w - 3,
        };
        let mut state = self.lock();
        let site = Self::site_of(&state, tid);
        let epoch = state.entries.entry((tid, base)).or_default();
        let mut violation: Option<(DiagClass, String)> = None;
        if epoch.flushed {
            violation = Some((
                DiagClass::StoreAfterFlush,
                format!("{role:?} store into entry @{base} already flushed this epoch"),
            ));
        } else {
            match role {
                EntryRole::Back => {}
                EntryRole::Meta if !epoch.back => {
                    violation = Some((
                        DiagClass::EntryStoreOrder,
                        format!("meta stored before back in entry @{base}"),
                    ));
                }
                EntryRole::Data if !epoch.meta => {
                    violation = Some((
                        DiagClass::EntryStoreOrder,
                        format!("data stored before meta in entry @{base}"),
                    ));
                }
                EntryRole::Pad if !epoch.data => {
                    violation = Some((
                        DiagClass::EntryStoreOrder,
                        format!("pad witness stored before data in entry @{base}"),
                    ));
                }
                _ => {}
            }
        }
        match role {
            EntryRole::Back => epoch.back = true,
            EntryRole::Meta => epoch.meta = true,
            EntryRole::Data => epoch.data = true,
            EntryRole::Pad => epoch.pad = true,
        }
        self.track_store(&mut state, tid, w / LINE_WORDS);
        drop(state);
        if let Some((class, detail)) = violation {
            let msg = self.record(Diagnostic {
                class,
                tid,
                line: w / LINE_WORDS,
                site: site.to_string(),
                store_site: site.to_string(),
                detail,
            });
            if let Some(m) = msg {
                panic!("{m}");
            }
        }
    }

    /// A flush by `tid` of the line containing word `w`. Returns `true`
    /// if the flush was redundant (no store since the last flush), so
    /// the pool can count it into its statistics.
    pub fn on_flush(&self, tid: usize, w: usize) -> bool {
        if self.off() {
            return false;
        }
        let line = w / LINE_WORDS;
        let lo = line * LINE_WORDS;
        let hi = lo + LINE_WORDS;
        let mut state = self.lock();
        let site = Self::site_of(&state, tid);
        // Entry epochs living on this line: flushing before the data
        // store persists a half-written entry.
        let mut violation: Option<(DiagClass, String)> = None;
        for ((t, base), epoch) in state.entries.iter_mut() {
            if *t == tid && (lo..hi).contains(base) {
                let complete = epoch.back && epoch.meta && epoch.data && epoch.pad;
                if !complete && violation.is_none() {
                    let missing = if !epoch.back {
                        "back"
                    } else if !epoch.meta {
                        "meta"
                    } else if !epoch.data {
                        "data"
                    } else {
                        "pad witness"
                    };
                    violation = Some((
                        DiagClass::FlushBeforeStore,
                        format!("entry @{base} flushed before its {missing} store"),
                    ));
                }
                epoch.flushed = true;
            }
        }
        let redundant = match state.lines.get_mut(&(tid, line)) {
            Some(t) if t.state == LineState::Dirty => {
                t.state = LineState::FlushedPending;
                self.dirty[tid].fetch_sub(1, Ordering::Relaxed);
                false
            }
            _ => true,
        };
        let store_site = state
            .lines
            .get(&(tid, line))
            .map(|t| t.store_site)
            .unwrap_or("?");
        drop(state);
        if redundant {
            self.redundant.fetch_add(1, Ordering::Relaxed);
            // Perf class: recorded, never fatal.
            self.record(Diagnostic {
                class: DiagClass::RedundantFlush,
                tid,
                line,
                site: site.to_string(),
                store_site: store_site.to_string(),
                detail: "flush of a line with no store since its last flush".to_string(),
            });
        }
        if let Some((class, detail)) = violation {
            let msg = self.record(Diagnostic {
                class,
                tid,
                line,
                site: site.to_string(),
                store_site: store_site.to_string(),
                detail,
            });
            if let Some(m) = msg {
                panic!("{m}");
            }
        }
        redundant
    }

    /// A persist fence by `tid`: its flushed-pending lines become
    /// durable (untracked); dirty lines survive the fence. Entry epochs
    /// end here.
    pub fn on_fence(&self, tid: usize) {
        if self.off() {
            return;
        }
        let mut state = self.lock();
        let mut fenced = 0u32;
        state.lines.retain(|&(t, _), track| {
            if t == tid && track.state == LineState::FlushedPending {
                fenced += 1;
                false
            } else {
                true
            }
        });
        state.entries.retain(|&(t, _), _| t != tid);
        drop(state);
        if fenced > 0 {
            self.tracked[tid].fetch_sub(fenced, Ordering::Relaxed);
            self.total_tracked.fetch_sub(fenced, Ordering::Relaxed);
        }
    }

    /// A load by `tid` of pool word `w`: if another thread currently owns
    /// the line unfenced, `tid`'s next durable decision depends on data a
    /// crash can still lose — remember the dependency.
    pub fn on_load(&self, tid: usize, w: usize) {
        if self.off() || self.total_tracked.load(Ordering::Relaxed) == 0 {
            return;
        }
        let line = w / LINE_WORDS;
        let mut state = self.lock();
        let found = state.iter_writers(tid, line);
        if let Some((writer, generation, store_site)) = found {
            let deps = &mut state.deps[tid];
            if !deps
                .iter()
                .any(|d| d.writer == writer && d.line == line && d.generation == generation)
            {
                deps.push(Dep {
                    writer,
                    line,
                    generation,
                    store_site,
                });
                self.has_deps[tid].store(true, Ordering::Relaxed);
            }
        }
    }

    /// A **relaxed** durability point for `tid` (`crash_point`): the
    /// thread is at a protocol boundary and must not own lines it stored
    /// but never even flushed. Flushed-pending lines are tolerated (the
    /// protocol may batch several flushes before one fence).
    pub fn relaxed_point(&self, tid: usize, site: &'static str) {
        if self.off() || self.dirty[tid].load(Ordering::Relaxed) == 0 {
            return;
        }
        let state = self.lock();
        let offender = state
            .lines
            .iter()
            .find(|(&(t, _), track)| t == tid && track.state == LineState::Dirty)
            .map(|(&(_, line), track)| (line, track.store_site));
        drop(state);
        if let Some((line, store_site)) = offender {
            let msg = self.record(Diagnostic {
                class: DiagClass::UnfencedDurabilityPoint,
                tid,
                line,
                site: site.to_string(),
                store_site: store_site.to_string(),
                detail: "crash-consistency boundary reached with an unflushed line".to_string(),
            });
            if let Some(m) = msg {
                panic!("{m}");
            }
        }
    }

    /// A **strict** durability point for `tid` (commit-marker store,
    /// prepared-transaction staging): everything this thread stored must
    /// be fenced, and every cross-thread line it depends on must be too.
    pub fn durability_point(&self, tid: usize, site: &'static str) {
        if self.off() {
            return;
        }
        if self.tracked[tid].load(Ordering::Relaxed) == 0
            && !self.has_deps[tid].load(Ordering::Relaxed)
        {
            return;
        }
        let mut state = self.lock();
        let own = state
            .lines
            .iter()
            .find(|(&(t, _), _)| t == tid)
            .map(|(&(_, line), track)| (line, track.store_site));
        let race = {
            let deps = std::mem::take(&mut state.deps[tid]);
            self.has_deps[tid].store(false, Ordering::Relaxed);
            deps.into_iter().find(|d| {
                state
                    .lines
                    .get(&(d.writer, d.line))
                    .is_some_and(|t| t.generation == d.generation)
            })
        };
        drop(state);
        let mut msgs = Vec::new();
        if let Some((line, store_site)) = own {
            if let Some(m) = self.record(Diagnostic {
                class: DiagClass::UnfencedDurabilityPoint,
                tid,
                line,
                site: site.to_string(),
                store_site: store_site.to_string(),
                detail: "durability point reached with an unfenced line".to_string(),
            }) {
                msgs.push(m);
            }
        }
        if let Some(d) = race {
            if let Some(m) = self.record(Diagnostic {
                class: DiagClass::CrossThreadRace,
                tid,
                line: d.line,
                site: site.to_string(),
                store_site: d.store_site.to_string(),
                detail: format!(
                    "durable decision depends on thread {}'s unfenced line",
                    d.writer
                ),
            }) {
                msgs.push(m);
            }
        }
        if let Some(m) = msgs.into_iter().next() {
            panic!("{m}");
        }
    }

    /// A whole-pool durability claim (`snapshot_durable` on a live,
    /// non-crashed pool): no thread may own unfenced lines.
    pub fn quiescent_check(&self, site: &'static str) {
        if self.off() || self.total_tracked.load(Ordering::Relaxed) == 0 {
            return;
        }
        let state = self.lock();
        let offender = state
            .lines
            .iter()
            .next()
            .map(|(&(tid, line), track)| (tid, line, track.store_site));
        drop(state);
        if let Some((tid, line, store_site)) = offender {
            let msg = self.record(Diagnostic {
                class: DiagClass::UnfencedDurabilityPoint,
                tid,
                line,
                site: site.to_string(),
                store_site: store_site.to_string(),
                detail: "durable snapshot taken while a line is unfenced".to_string(),
            });
            if let Some(m) = msg {
                panic!("{m}");
            }
        }
    }

    /// The pool crashed: every thread legitimately strands its in-flight
    /// lines, so tracking stops for good.
    pub fn on_crash(&self) {
        self.disabled.store(true, Ordering::Relaxed);
    }

    /// True once [`Psan::on_crash`] ran.
    pub fn is_disabled(&self) -> bool {
        self.off()
    }

    /// Redundant flushes observed so far (performance class (c)).
    pub fn redundant_flushes(&self) -> u64 {
        self.redundant.load(Ordering::Relaxed)
    }

    /// Number of diagnostics collected so far.
    pub fn diag_count(&self) -> usize {
        self.diags.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Drain and return the collected diagnostics.
    pub fn take_diagnostics(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.diags.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl State {
    /// The first other thread currently owning `line` unfenced, if any.
    fn iter_writers(&self, reader: usize, line: usize) -> Option<(usize, u64, &'static str)> {
        self.lines.iter().find_map(|(&(t, l), track)| {
            (t != reader && l == line).then_some((t, track.generation, track.store_site))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psan() -> Psan {
        Psan::new(PsanMode::Record, 4)
    }

    fn classes(p: &Psan) -> Vec<DiagClass> {
        p.take_diagnostics().iter().map(|d| d.class).collect()
    }

    #[test]
    fn clean_store_flush_fence_cycle_has_no_diagnostics() {
        let p = psan();
        p.on_store(0, 3);
        p.on_flush(0, 3);
        p.on_fence(0);
        p.durability_point(0, "test");
        assert!(classes(&p).is_empty());
        assert_eq!(p.redundant_flushes(), 0);
    }

    #[test]
    fn strict_point_reports_unfenced_line() {
        let p = psan();
        p.push_site(0, "writer");
        p.on_store(0, 3);
        p.pop_site(0);
        p.durability_point(0, "marker");
        let d = p.take_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class, DiagClass::UnfencedDurabilityPoint);
        assert_eq!(d[0].site, "marker");
        assert_eq!(d[0].store_site, "writer");
    }

    #[test]
    fn flushed_but_unfenced_still_fails_strict_point() {
        let p = psan();
        p.on_store(0, 3);
        p.on_flush(0, 3);
        p.durability_point(0, "marker");
        assert_eq!(classes(&p), vec![DiagClass::UnfencedDurabilityPoint]);
    }

    #[test]
    fn relaxed_point_tolerates_flushed_pending() {
        let p = psan();
        p.on_store(0, 3);
        p.on_flush(0, 3);
        p.relaxed_point(0, "crash_point");
        assert!(classes(&p).is_empty());
        p.on_store(0, 11);
        p.relaxed_point(0, "crash_point");
        assert_eq!(classes(&p), vec![DiagClass::UnfencedDurabilityPoint]);
    }

    #[test]
    fn fence_clears_only_flushed_lines() {
        let p = psan();
        p.on_store(0, 0); // line 0, flushed below
        p.on_store(0, 8); // line 1, left dirty
        p.on_flush(0, 0);
        p.on_fence(0);
        p.relaxed_point(0, "crash_point");
        let d = p.take_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn entry_epoch_order_enforced() {
        let p = psan();
        // Correct order: back (base+1), meta (base+2), data (base),
        // pad witness (base+3).
        p.on_entry_store(0, 41, EntryRole::Back);
        p.on_entry_store(0, 42, EntryRole::Meta);
        p.on_entry_store(0, 40, EntryRole::Data);
        p.on_entry_store(0, 43, EntryRole::Pad);
        p.on_flush(0, 40);
        p.on_fence(0);
        assert!(classes(&p).is_empty());
        // Data before meta.
        p.on_entry_store(0, 41, EntryRole::Back);
        p.on_entry_store(0, 40, EntryRole::Data);
        assert_eq!(classes(&p), vec![DiagClass::EntryStoreOrder]);
        // Meta before back (new epoch after a fence).
        p.on_fence(0);
        p.on_entry_store(0, 42, EntryRole::Meta);
        assert_eq!(classes(&p), vec![DiagClass::EntryStoreOrder]);
        // Pad witness before data (new epoch after a fence).
        p.on_fence(0);
        p.on_entry_store(0, 41, EntryRole::Back);
        p.on_entry_store(0, 42, EntryRole::Meta);
        p.on_entry_store(0, 43, EntryRole::Pad);
        assert_eq!(classes(&p), vec![DiagClass::EntryStoreOrder]);
    }

    #[test]
    fn flush_before_data_store_detected() {
        let p = psan();
        p.on_entry_store(0, 41, EntryRole::Back);
        p.on_entry_store(0, 42, EntryRole::Meta);
        p.on_flush(0, 40);
        assert_eq!(classes(&p), vec![DiagClass::FlushBeforeStore]);
    }

    #[test]
    fn flush_before_pad_witness_detected() {
        let p = psan();
        p.on_entry_store(0, 41, EntryRole::Back);
        p.on_entry_store(0, 42, EntryRole::Meta);
        p.on_entry_store(0, 40, EntryRole::Data);
        p.on_flush(0, 40);
        let d = p.take_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class, DiagClass::FlushBeforeStore);
        assert!(d[0].detail.contains("pad witness"), "{}", d[0].detail);
    }

    #[test]
    fn store_after_flush_detected() {
        let p = psan();
        p.on_entry_store(0, 41, EntryRole::Back);
        p.on_entry_store(0, 42, EntryRole::Meta);
        p.on_entry_store(0, 40, EntryRole::Data);
        p.on_entry_store(0, 43, EntryRole::Pad);
        p.on_flush(0, 40);
        p.on_entry_store(0, 40, EntryRole::Data);
        assert_eq!(classes(&p), vec![DiagClass::StoreAfterFlush]);
    }

    #[test]
    fn redundant_flush_counted_not_fatal() {
        let p = Psan::new(PsanMode::Panic, 1);
        p.on_store(0, 3);
        assert!(!p.on_flush(0, 3));
        assert!(p.on_flush(0, 3), "second flush with no store is redundant");
        assert_eq!(p.redundant_flushes(), 1);
        assert_eq!(classes(&p), vec![DiagClass::RedundantFlush]);
    }

    #[test]
    fn flush_of_untouched_line_is_redundant() {
        let p = psan();
        assert!(p.on_flush(0, 64));
        assert_eq!(p.redundant_flushes(), 1);
    }

    #[test]
    fn redirty_between_flush_and_fence_is_legitimate() {
        let p = psan();
        p.on_store(0, 3);
        p.on_flush(0, 3);
        p.on_store(0, 4); // same line, re-dirty
        assert!(!p.on_flush(0, 4), "re-dirtied line needs its flush");
        p.on_fence(0);
        p.durability_point(0, "marker");
        assert!(classes(&p).is_empty());
    }

    #[test]
    fn cross_thread_race_detected_and_cleared() {
        let p = psan();
        p.push_site(1, "writer-site");
        p.on_store(1, 8);
        p.pop_site(1);
        p.on_load(0, 8);
        p.durability_point(0, "decision");
        let d = p.take_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class, DiagClass::CrossThreadRace);
        assert_eq!(d[0].site, "decision");
        assert_eq!(d[0].store_site, "writer-site");
        // Deps were consumed by the check.
        p.durability_point(0, "decision");
        assert!(classes(&p).is_empty());
    }

    #[test]
    fn no_race_when_writer_fenced_first() {
        let p = psan();
        p.on_store(1, 8);
        p.on_load(0, 8);
        p.on_flush(1, 8);
        p.on_fence(1);
        p.durability_point(0, "decision");
        assert!(classes(&p).is_empty());
    }

    #[test]
    fn stale_generation_does_not_misfire() {
        let p = psan();
        p.on_store(1, 8);
        p.on_load(0, 8);
        p.on_flush(1, 8);
        p.on_fence(1);
        // Writer re-dirties the same line with a *new* store; the old dep
        // must not blame the new store.
        p.on_store(1, 8);
        p.durability_point(0, "decision");
        assert!(classes(&p).is_empty());
    }

    #[test]
    fn quiescent_check_sees_any_thread() {
        let p = psan();
        p.on_store(2, 8);
        p.quiescent_check("snapshot_durable");
        let d = p.take_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].tid, 2);
        assert_eq!(d[0].site, "snapshot_durable");
    }

    #[test]
    fn crash_disables_checking() {
        let p = psan();
        p.on_store(0, 3);
        p.on_crash();
        assert!(p.is_disabled());
        p.durability_point(0, "marker");
        p.quiescent_check("snapshot");
        assert!(classes(&p).is_empty());
    }

    #[test]
    fn panic_mode_panics_on_violation() {
        let p = Psan::new(PsanMode::Panic, 1);
        p.on_store(0, 3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.durability_point(0, "marker");
        }));
        let err = r.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("unfenced-durability-point"), "{msg}");
        assert!(msg.contains("marker"), "{msg}");
    }

    #[test]
    fn site_stack_nests() {
        let p = psan();
        p.push_site(0, "outer");
        p.push_site(0, "inner");
        p.on_store(0, 3);
        p.pop_site(0);
        p.pop_site(0);
        p.durability_point(0, "point");
        let d = p.take_diagnostics();
        assert_eq!(d[0].store_site, "inner");
    }

    #[test]
    fn env_upgrade_only_applies_to_off() {
        assert_eq!(PsanMode::Record.env_upgraded(), PsanMode::Record);
        assert_eq!(PsanMode::Panic.env_upgraded(), PsanMode::Panic);
        // `Off.env_upgraded()` depends on the environment; both outcomes
        // are consistent with `from_env`.
        assert_eq!(PsanMode::Off.env_upgraded(), PsanMode::from_env());
    }
}
