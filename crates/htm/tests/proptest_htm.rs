//! Property-based tests of the HTM simulator: committed transactions are
//! exactly sequential, interleaved with non-transactional operations.

use htm::{Htm, HtmConfig, HtmThread};
use proptest::prelude::*;
use std::sync::atomic::AtomicU64;

#[derive(Clone, Debug)]
enum HtmOp {
    TxnReadWrite(Vec<(usize, Option<u64>)>), // per cell: read (None) or write (Some)
    NtStore(usize, u64),
    NtCas(usize, u64, u64),
}

fn txn_strategy(cells: usize) -> impl Strategy<Value = HtmOp> {
    prop_oneof![
        proptest::collection::vec((0..cells, proptest::option::of(any::<u64>())), 1..8)
            .prop_map(HtmOp::TxnReadWrite),
        (0..cells, any::<u64>()).prop_map(|(c, v)| HtmOp::NtStore(c, v)),
        (0..cells, 0u64..4, any::<u64>()).prop_map(|(c, e, v)| HtmOp::NtCas(c, e, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Single-threaded: every committed transaction and nt op applies
    /// exactly as in a sequential model (reads see the model's values,
    /// writes update it).
    #[test]
    fn sequential_equivalence(ops in proptest::collection::vec(txn_strategy(8), 1..120)) {
        let htm = Htm::new(HtmConfig::test());
        let cells: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        let mut model = [0u64; 8];
        let mut th = HtmThread::new(&htm, 0);
        for op in &ops {
            match op {
                HtmOp::TxnReadWrite(accesses) => {
                    let model_snapshot = model;
                    let mut expected = model_snapshot;
                    let r = htm.execute(&mut th, |tx| {
                        let mut seen = Vec::new();
                        for &(c, w) in accesses {
                            match w {
                                None => seen.push(tx.read(&cells[c])?),
                                Some(v) => tx.write(&cells[c], v)?,
                            }
                        }
                        Ok(seen)
                    });
                    // Uncontended transactions must commit.
                    let seen = r.expect("no concurrent conflicts exist");
                    let mut it = seen.into_iter();
                    for &(c, w) in accesses {
                        match w {
                            None => prop_assert_eq!(it.next().unwrap(), expected[c]),
                            Some(v) => expected[c] = v,
                        }
                    }
                    model = expected;
                }
                HtmOp::NtStore(c, v) => {
                    htm.nt_store(&cells[*c], *v);
                    model[*c] = *v;
                }
                HtmOp::NtCas(c, e, v) => {
                    let r = htm.nt_cas(&cells[*c], *e, *v);
                    if model[*c] == *e {
                        prop_assert!(r.is_ok());
                        model[*c] = *v;
                    } else {
                        prop_assert_eq!(r, Err(model[*c]));
                    }
                }
            }
        }
        for (c, cell) in cells.iter().enumerate() {
            prop_assert_eq!(htm.nt_load(cell), model[c]);
        }
    }

    /// read2 on same-line cells is equivalent to two reads.
    #[test]
    fn read2_equivalence(vals in proptest::collection::vec(any::<u64>(), 8)) {
        #[repr(align(64))]
        struct Line([AtomicU64; 8]);
        let line = Line(std::array::from_fn(|i| AtomicU64::new(vals[i])));
        let htm = Htm::new(HtmConfig::test());
        let mut th = HtmThread::new(&htm, 0);
        for i in 0..7 {
            let r = htm.execute(&mut th, |tx| tx.read2(&line.0[i], &line.0[i + 1]));
            prop_assert_eq!(r, Ok((vals[i], vals[i + 1])));
        }
    }

    /// Aborted transactions (explicit) never leak writes, whatever the
    /// buffered state was.
    #[test]
    fn aborts_leak_nothing(
        writes in proptest::collection::vec((0usize..8, any::<u64>()), 1..20),
        code in 0u32..16,
    ) {
        let htm = Htm::new(HtmConfig::test());
        let cells: Vec<AtomicU64> = (0..8).map(|i| AtomicU64::new(i as u64)).collect();
        let mut th = HtmThread::new(&htm, 0);
        let r: Result<(), _> = htm.execute(&mut th, |tx| {
            for &(c, v) in &writes {
                tx.write(&cells[c], v)?;
            }
            Err(tx.xabort(code))
        });
        prop_assert!(r.is_err());
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(htm.nt_load(cell), i as u64);
        }
    }
}
