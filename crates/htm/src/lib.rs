//! A best-effort hardware transactional memory simulator with Intel RTM
//! semantics (§2 "Hardware TM").
//!
//! Real RTM gives transactions a *tracking set* maintained by the cache
//! coherence protocol: if a concurrent thread writes an address in the
//! tracking set of an ongoing transaction, at least one of the conflicting
//! transactions aborts; transactions may also abort for *any* reason
//! (capacity, interrupts, ...), and a `flush` instruction always aborts
//! them. This crate reproduces those semantics in software:
//!
//! * **Tracking sets** are word-granularity read/write sets. Conflicts are
//!   detected through a global table of per-address *seqlock slots* (the
//!   simulated coherence directory): every committing transaction bumps the
//!   slots it wrote, and every transaction validates the slots it read.
//!   Addresses map to slots by hashing, so unrelated addresses can collide
//!   — false conflicts, which best-effort HTM is allowed to have.
//! * **Non-transactional conflicting accesses**: [`Htm::nt_store`] and a
//!   successful [`Htm::nt_cas`] bump the target's slot, aborting any
//!   transaction that read it — "a non-transactional access can also abort
//!   a transaction".
//! * **Bounded capacity**: read/write sets have configurable entry limits
//!   modelling the L1-bounded tracking sets (capacity aborts can occur for
//!   quite small sets on real hardware; the limits default generously but
//!   finitely).
//! * **Spurious aborts**: a configurable per-access probability.
//! * **Explicit aborts**: [`txn::HtmTxn::xabort`] with a user code.
//!
//! # Atomicity and publication order
//!
//! Buffered writes are published at commit while all written slots are
//! seqlocked, so transactional readers always see an all-or-nothing
//! transaction. For *non-transactional* observers the simulator publishes
//! in **program order** (first-write order). Real HTM publishes atomically;
//! program order is the weaker guarantee every protocol in this workspace
//! is already robust to, because each writes protecting metadata (locks)
//! before the data it guards, and non-transactional readers validate
//! metadata after reading data. This requirement is inherited from the
//! paper's own protocols (e.g. NV-HALT acquires a word's lock before
//! writing the word, Figure 5).
//!
//! # What cannot happen inside a transaction
//!
//! Persistent-memory flushes abort real hardware transactions, which is the
//! paper's central difficulty. The TMs built on this simulator therefore
//! never touch the pmem crate inside [`Htm::execute`]; the simulator
//! supports that discipline by keeping its API disjoint from `pmem` (there
//! is deliberately no way to reach a pool from a transaction).

pub mod txn;

pub use txn::{HtmThread, HtmTxn, Xabort};

use std::sync::atomic::{AtomicU64, Ordering};
use tm::AbortKind;

/// Configuration for an [`Htm`] instance.
#[derive(Clone, Copy, Debug)]
pub struct HtmConfig {
    /// log2 of the slot-table size (the simulated coherence directory).
    pub slots_log2: u32,
    /// Maximum read-set entries before a capacity abort.
    pub max_read_entries: usize,
    /// Maximum write-set entries before a capacity abort.
    pub max_write_entries: usize,
    /// If nonzero, each transactional access aborts spuriously with
    /// probability `2^-spurious_log2`. Zero disables spurious aborts.
    pub spurious_log2: u32,
    /// Seed for per-thread RNG streams.
    pub seed: u64,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            slots_log2: 20,
            max_read_entries: 4096,
            max_write_entries: 512,
            spurious_log2: 18,
            seed: 0x51ab_5eed,
        }
    }
}

impl HtmConfig {
    /// Deterministic functional-test configuration: no spurious aborts.
    pub fn test() -> Self {
        HtmConfig {
            spurious_log2: 0,
            slots_log2: 14,
            ..Default::default()
        }
    }
}

/// The simulated HTM unit: slot table plus a timestamp counter.
pub struct Htm {
    slots: Box<[AtomicU64]>,
    mask: usize,
    tsc: AtomicU64,
    pub(crate) cfg: HtmConfig,
}

impl Htm {
    /// Create an HTM unit.
    pub fn new(cfg: HtmConfig) -> Self {
        let n = 1usize << cfg.slots_log2;
        Htm {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mask: n - 1,
            tsc: AtomicU64::new(0),
            cfg,
        }
    }

    /// The configuration this unit was created with.
    pub fn config(&self) -> &HtmConfig {
        &self.cfg
    }

    /// Slot index for a cell: the simulated cache-line-to-directory map.
    /// Tracking is **line-granular** (64 bytes), as in real RTM — eight
    /// adjacent words share a slot, so sequential scans occupy one
    /// tracking-set entry per line and false sharing between neighbouring
    /// words conflicts, exactly like the hardware.
    #[inline]
    pub(crate) fn slot_of(&self, cell: &AtomicU64) -> usize {
        let line = cell as *const AtomicU64 as usize >> 6;
        (line.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - self.cfg.slots_log2)) & self.mask
    }

    #[inline]
    pub(crate) fn slot(&self, idx: usize) -> &AtomicU64 {
        &self.slots[idx]
    }

    /// Lock a slot for a non-transactional operation; returns the
    /// pre-lock (even) value.
    #[inline]
    fn nt_lock_slot(&self, idx: usize) -> u64 {
        let slot = &self.slots[idx];
        let mut tries = 0u32;
        loop {
            let cur = slot.load(Ordering::Relaxed);
            if cur & 1 == 0
                && slot
                    .compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return cur;
            }
            std::hint::spin_loop();
            tries += 1;
            if tries & 0x3f == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Non-transactional store. Conflicts with — and will abort — any
    /// ongoing transaction whose tracking set covers `cell`.
    pub fn nt_store(&self, cell: &AtomicU64, v: u64) {
        let idx = self.slot_of(cell);
        let pre = self.nt_lock_slot(idx);
        cell.store(v, Ordering::Release);
        self.slots[idx].store(pre + 2, Ordering::Release);
    }

    /// Non-transactional compare-and-swap. On success returns `Ok(prev)`
    /// and conflicts with ongoing transactions covering `cell`; on failure
    /// returns `Err(observed)` and leaves the slot version unchanged (the
    /// cell was not modified).
    pub fn nt_cas(&self, cell: &AtomicU64, expected: u64, new: u64) -> Result<u64, u64> {
        // Test-first: avoid dirtying the slot when the CAS cannot succeed.
        let cur = cell.load(Ordering::Acquire);
        if cur != expected {
            return Err(cur);
        }
        let idx = self.slot_of(cell);
        let pre = self.nt_lock_slot(idx);
        let cur = cell.load(Ordering::Acquire);
        if cur == expected {
            cell.store(new, Ordering::Release);
            self.slots[idx].store(pre + 2, Ordering::Release);
            Ok(cur)
        } else {
            self.slots[idx].store(pre, Ordering::Release);
            Err(cur)
        }
    }

    /// Non-transactional load. Never conflicts (word stores are atomic, so
    /// a single-word load is always safe against the publication protocol).
    #[inline]
    pub fn nt_load(&self, cell: &AtomicU64) -> u64 {
        cell.load(Ordering::Acquire)
    }

    /// A monotonically increasing timestamp, usable inside transactions
    /// without entering any tracking set — the simulator's `rdtsc` (SPHT
    /// orders commits with such timestamps).
    #[inline]
    pub fn rdtsc(&self) -> u64 {
        self.tsc.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Run one hardware transaction attempt. `f` runs speculatively; on
    /// `Ok`, the simulator attempts to commit. Any abort (conflict,
    /// capacity, spurious, explicit) is reported as `Err` with all
    /// speculative state discarded — control "returns to `xbegin`".
    ///
    /// Cells passed to the transaction's operations must outlive the whole
    /// `execute` call (they are published at commit, after `f` returns);
    /// the `'env` lifetime enforces this.
    pub fn execute<'env, R>(
        &self,
        th: &mut HtmThread,
        f: impl FnOnce(&mut HtmTxn<'env, '_>) -> Result<R, Xabort>,
    ) -> Result<R, AbortKind> {
        txn::execute(self, th, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn nt_store_and_load_roundtrip() {
        let htm = Htm::new(HtmConfig::test());
        let cell = AtomicU64::new(0);
        htm.nt_store(&cell, 7);
        assert_eq!(htm.nt_load(&cell), 7);
    }

    #[test]
    fn nt_cas_success_and_failure() {
        let htm = Htm::new(HtmConfig::test());
        let cell = AtomicU64::new(5);
        assert_eq!(htm.nt_cas(&cell, 5, 6), Ok(5));
        assert_eq!(htm.nt_load(&cell), 6);
        assert_eq!(htm.nt_cas(&cell, 5, 9), Err(6));
        assert_eq!(htm.nt_load(&cell), 6);
    }

    #[test]
    fn nt_store_bumps_slot_version() {
        let htm = Htm::new(HtmConfig::test());
        let cell = AtomicU64::new(0);
        let idx = htm.slot_of(&cell);
        let before = htm.slot(idx).load(Ordering::Relaxed);
        htm.nt_store(&cell, 1);
        let after = htm.slot(idx).load(Ordering::Relaxed);
        assert_eq!(after, before + 2);
        assert_eq!(after & 1, 0);
    }

    #[test]
    fn failed_nt_cas_does_not_bump_slot() {
        let htm = Htm::new(HtmConfig::test());
        let cell = AtomicU64::new(3);
        let idx = htm.slot_of(&cell);
        let before = htm.slot(idx).load(Ordering::Relaxed);
        assert!(htm.nt_cas(&cell, 99, 100).is_err());
        assert_eq!(htm.slot(idx).load(Ordering::Relaxed), before);
    }

    #[test]
    fn rdtsc_is_monotonic_and_unique() {
        let htm = Arc::new(Htm::new(HtmConfig::test()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = htm.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| h.rdtsc()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| {
                let v = h.join().unwrap();
                assert!(v.windows(2).all(|w| w[0] < w[1]), "per-thread monotone");
                v
            })
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "globally unique");
    }

    #[test]
    fn concurrent_nt_stores_leave_slots_free() {
        let htm = Arc::new(Htm::new(HtmConfig::test()));
        let cell = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let htm = htm.clone();
            let cell = cell.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000 {
                    htm.nt_store(&cell, t * 100_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let idx = htm.slot_of(&cell);
        assert_eq!(htm.slot(idx).load(Ordering::Relaxed) & 1, 0, "slot free");
    }
}
