//! Hardware-transaction execution: speculative tracking sets, commit-time
//! slot locking, validation, and program-order publication.
//!
//! One call to [`crate::Htm::execute`] is one `xbegin`/`xend` attempt.
//! The body runs speculatively: reads are validated against their slot at
//! access time (per-location consistency) and again, all together, at
//! commit; writes are buffered in the thread's write set and published only
//! if commit succeeds. Any failure discards all speculative state and
//! reports the abort kind — exactly the control flow of RTM, where an
//! aborted transaction transfers control back to `xbegin` with a status
//! code.
//!
//! A panic inside the body that is not a crash signal is converted into a
//! conflict abort: with lazy conflict detection, a doomed transaction can
//! observe an inconsistent snapshot before it is caught at commit, and the
//! well-defined failure mode for such zombies in this simulator is a Rust
//! panic (e.g. a bounds check). Real RTM would have aborted the
//! transaction eagerly via coherence; converting the panic reproduces that
//! outcome. Crash signals are re-raised untouched.

use crate::Htm;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use tm::AbortKind;

/// Zero-sized marker returned by transactional operations when the attempt
/// has aborted; the actual abort kind lives in the thread context. Must be
/// propagated out of the body (with `?`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Xabort;

struct ReadEntry {
    slot: u32,
    ver: u64,
}

struct WriteEntry {
    cell: *const AtomicU64,
    val: u64,
    slot: u32,
}

/// Per-thread reusable transaction state (tracking sets, RNG).
pub struct HtmThread {
    reads: Vec<ReadEntry>,
    writes: Vec<WriteEntry>,
    locked: Vec<(u32, u64)>,
    rng: u64,
    abort_kind: AbortKind,
}

// SAFETY: the raw cell pointers in the write set are only dereferenced
// inside `execute`, under the `'env` bound that guarantees the cells
// outlive the call; the buffers are cleared before `execute` returns.
unsafe impl Send for HtmThread {}

impl HtmThread {
    /// Create a thread context. `tid` seeds this thread's RNG stream.
    pub fn new(htm: &Htm, tid: usize) -> Self {
        HtmThread {
            reads: Vec::with_capacity(htm.cfg.max_read_entries.min(1 << 12)),
            writes: Vec::with_capacity(htm.cfg.max_write_entries.min(1 << 9)),
            locked: Vec::with_capacity(64),
            rng: htm.cfg.seed ^ (tid as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
            abort_kind: AbortKind::Conflict,
        }
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

/// An ongoing hardware transaction attempt. `'env` is the lifetime of the
/// memory the transaction may access; `'t` borrows the thread context.
pub struct HtmTxn<'env, 't> {
    htm: &'t Htm,
    th: &'t mut HtmThread,
    _env: std::marker::PhantomData<&'env ()>,
}

impl<'env, 't> HtmTxn<'env, 't> {
    #[cold]
    fn fail(&mut self, kind: AbortKind) -> Xabort {
        self.th.abort_kind = kind;
        Xabort
    }

    #[inline]
    fn spurious_check(&mut self) -> Result<(), Xabort> {
        let bits = self.htm.cfg.spurious_log2;
        if bits != 0 && self.th.next_rand() & ((1 << bits) - 1) == 0 {
            return Err(self.fail(AbortKind::Spurious));
        }
        Ok(())
    }

    /// Transactionally read `cell` (entering its line into the read set).
    ///
    /// The cost model matters here: real RTM tracks reads for free in the
    /// L1 cache, so the simulator keeps this path as close to a plain
    /// load as it can — one slot load, one value load, and a tracking
    /// push that is skipped when the previous read hit the same line
    /// (sequential scans record one entry per line, as the hardware
    /// would). Consistency is enforced at commit; mid-transaction zombies
    /// are handled by the panic safety net (see module docs).
    pub fn read(&mut self, cell: &'env AtomicU64) -> Result<u64, Xabort> {
        // Read-own-writes: the most recent buffered value wins.
        if !self.th.writes.is_empty() {
            let ptr = cell as *const AtomicU64;
            if let Some(w) = self.th.writes.iter().rev().find(|w| w.cell == ptr) {
                return Ok(w.val);
            }
        }
        let idx = self.htm.slot_of(cell);
        let v1 = self.htm.slot(idx).load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return Err(self.fail(AbortKind::Conflict));
        }
        let val = cell.load(Ordering::Acquire);
        // Line-dedupe against the two most recent entries: protocols that
        // interleave metadata and data reads (lock line / data line /
        // lock line / ...) still record one entry per line touched.
        let n = self.th.reads.len();
        for e in &self.th.reads[n.saturating_sub(2)..] {
            if e.slot == idx as u32 {
                if e.ver == v1 {
                    return Ok(val);
                }
                // The line changed since this very transaction read it.
                return Err(self.fail(AbortKind::Conflict));
            }
        }
        self.spurious_check()?;
        if self.th.reads.len() >= self.htm.cfg.max_read_entries {
            return Err(self.fail(AbortKind::Capacity));
        }
        self.th.reads.push(ReadEntry {
            slot: idx as u32,
            ver: v1,
        });
        Ok(val)
    }

    /// Transactionally read two cells that live on the **same cache
    /// line** with a single tracking check — the hardware fetches the
    /// line once, so colocated metadata (e.g. a lock next to its data
    /// word, NV-HALT-CL) is tracked and validated together. Falls back to
    /// two independent reads when the cells are on different lines.
    pub fn read2(&mut self, a: &'env AtomicU64, b: &'env AtomicU64) -> Result<(u64, u64), Xabort> {
        let idx = self.htm.slot_of(a);
        if idx != self.htm.slot_of(b) || !self.th.writes.is_empty() {
            return Ok((self.read(a)?, self.read(b)?));
        }
        let v1 = self.htm.slot(idx).load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return Err(self.fail(AbortKind::Conflict));
        }
        let va = a.load(Ordering::Acquire);
        let vb = b.load(Ordering::Acquire);
        let n = self.th.reads.len();
        for e in &self.th.reads[n.saturating_sub(2)..] {
            if e.slot == idx as u32 {
                if e.ver == v1 {
                    return Ok((va, vb));
                }
                return Err(self.fail(AbortKind::Conflict));
            }
        }
        self.spurious_check()?;
        if self.th.reads.len() >= self.htm.cfg.max_read_entries {
            return Err(self.fail(AbortKind::Capacity));
        }
        self.th.reads.push(ReadEntry {
            slot: idx as u32,
            ver: v1,
        });
        Ok((va, vb))
    }

    /// Transactionally write `v` to `cell` (buffered until commit).
    pub fn write(&mut self, cell: &'env AtomicU64, v: u64) -> Result<(), Xabort> {
        let ptr = cell as *const AtomicU64;
        if let Some(w) = self.th.writes.iter_mut().rev().find(|w| w.cell == ptr) {
            w.val = v;
            return Ok(());
        }
        self.spurious_check()?;
        if self.th.writes.len() >= self.htm.cfg.max_write_entries {
            return Err(self.fail(AbortKind::Capacity));
        }
        let idx = self.htm.slot_of(cell);
        self.th.writes.push(WriteEntry {
            cell: ptr,
            val: v,
            slot: idx as u32,
        });
        Ok(())
    }

    /// Explicitly abort (`xabort`) with a user code.
    pub fn xabort(&mut self, code: u32) -> Xabort {
        self.fail(AbortKind::Explicit(code))
    }

    /// `rdtsc` inside the transaction: monotone, does not enter any
    /// tracking set.
    #[inline]
    pub fn rdtsc(&self) -> u64 {
        self.htm.rdtsc()
    }

    /// Current write-set size (entries). Lets TMs bound their logs.
    pub fn write_set_len(&self) -> usize {
        self.th.writes.len()
    }
}

fn clear(th: &mut HtmThread) {
    th.reads.clear();
    th.writes.clear();
    th.locked.clear();
}

/// Release commit-time slot locks, restoring (`abort`) or advancing
/// (`commit`) their versions.
fn release_slots(htm: &Htm, locked: &[(u32, u64)], commit: bool) {
    for &(slot, pre) in locked {
        let v = if commit { pre + 2 } else { pre };
        htm.slot(slot as usize).store(v, Ordering::Release);
    }
}

fn try_commit(htm: &Htm, th: &mut HtmThread) -> Result<(), AbortKind> {
    if th.writes.is_empty() {
        // Read-only: validate the whole read set; success means every read
        // is still current, i.e. the transaction's snapshot is the memory
        // state right now — a valid serialization point.
        for r in &th.reads {
            if htm.slot(r.slot as usize).load(Ordering::Acquire) != r.ver {
                return Err(AbortKind::Conflict);
            }
        }
        return Ok(());
    }

    // Lock written slots in sorted unique order (no deadlock among
    // committers).
    let mut slots: Vec<u32> = th.writes.iter().map(|w| w.slot).collect();
    slots.sort_unstable();
    slots.dedup();
    for &slot in &slots {
        let cell = htm.slot(slot as usize);
        let cur = cell.load(Ordering::Relaxed);
        if cur & 1 == 1
            || cell
                .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            release_slots(htm, &th.locked, false);
            return Err(AbortKind::Conflict);
        }
        th.locked.push((slot, cur));
    }

    // Validate the read set: each slot unchanged, or locked by us with its
    // pre-lock version matching what we read.
    for r in &th.reads {
        let cur = htm.slot(r.slot as usize).load(Ordering::Acquire);
        if cur == r.ver {
            continue;
        }
        let ours = th
            .locked
            .binary_search_by(|&(s, _)| s.cmp(&r.slot))
            .is_ok_and(|i| th.locked[i].1 == r.ver);
        if !ours {
            release_slots(htm, &th.locked, false);
            return Err(AbortKind::Conflict);
        }
    }

    // Publish in program order (see crate docs), then release.
    for w in &th.writes {
        // SAFETY: `'env` on the transaction ops guarantees the cell
        // outlives this `execute` call.
        unsafe { (*w.cell).store(w.val, Ordering::Release) };
    }
    release_slots(htm, &th.locked, true);
    Ok(())
}

pub(crate) fn execute<'env, R>(
    htm: &Htm,
    th: &mut HtmThread,
    f: impl FnOnce(&mut HtmTxn<'env, '_>) -> Result<R, Xabort>,
) -> Result<R, AbortKind> {
    clear(th);
    th.abort_kind = AbortKind::Conflict;
    let body = catch_unwind(AssertUnwindSafe(|| {
        let mut tx = HtmTxn {
            htm,
            th,
            _env: std::marker::PhantomData,
        };
        f(&mut tx)
    }));
    let outcome = match body {
        Ok(Ok(r)) => match try_commit(htm, th) {
            Ok(()) => Ok(r),
            Err(kind) => Err(kind),
        },
        Ok(Err(Xabort)) => Err(th.abort_kind),
        Err(payload) => {
            if tm::crash::is_crash(&*payload) {
                clear(th);
                resume_unwind(payload);
            }
            // A zombie transaction tripped a safety net; real hardware
            // would have aborted it eagerly.
            Err(AbortKind::Conflict)
        }
    };
    clear(th);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HtmConfig;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn htm() -> Htm {
        Htm::new(HtmConfig::test())
    }

    #[test]
    fn empty_txn_commits() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        assert_eq!(h.execute(&mut th, |_tx| Ok(42)), Ok(42));
    }

    #[test]
    fn writes_publish_on_commit_only() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        let cell = AtomicU64::new(1);
        let r = h.execute(&mut th, |tx| {
            tx.write(&cell, 9)?;
            assert_eq!(cell.load(Ordering::Relaxed), 1, "buffered, not in place");
            Ok(())
        });
        assert_eq!(r, Ok(()));
        assert_eq!(cell.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn read_own_writes() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        let cell = AtomicU64::new(1);
        let r = h.execute(&mut th, |tx| {
            tx.write(&cell, 5)?;
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)?;
            tx.read(&cell)
        });
        assert_eq!(r, Ok(6));
        assert_eq!(cell.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn explicit_abort_discards_writes() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        let cell = AtomicU64::new(1);
        let r: Result<(), AbortKind> = h.execute(&mut th, |tx| {
            tx.write(&cell, 9)?;
            Err(tx.xabort(3))
        });
        assert_eq!(r, Err(AbortKind::Explicit(3)));
        assert_eq!(cell.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_abort_on_write_set_overflow() {
        let h = Htm::new(HtmConfig {
            max_write_entries: 4,
            ..HtmConfig::test()
        });
        let mut th = HtmThread::new(&h, 0);
        let cells: Vec<AtomicU64> = (0..8).map(AtomicU64::new).collect();
        let r: Result<(), AbortKind> = h.execute(&mut th, |tx| {
            for c in &cells {
                tx.write(c, 0)?;
            }
            Ok(())
        });
        assert_eq!(r, Err(AbortKind::Capacity));
    }

    #[test]
    fn capacity_abort_on_read_set_overflow() {
        let h = Htm::new(HtmConfig {
            max_read_entries: 4,
            ..HtmConfig::test()
        });
        let mut th = HtmThread::new(&h, 0);
        // Tracking is line-granular: only reads of distinct lines occupy
        // entries, so the cells must live on separate lines.
        let cells: Vec<crossbeam::utils::CachePadded<AtomicU64>> = (0..8)
            .map(|i| crossbeam::utils::CachePadded::new(AtomicU64::new(i)))
            .collect();
        let r: Result<(), AbortKind> = h.execute(&mut th, |tx| {
            for c in &cells {
                tx.read(c)?;
            }
            Ok(())
        });
        assert_eq!(r, Err(AbortKind::Capacity));
    }

    #[test]
    fn same_line_reads_share_one_tracking_entry() {
        let h = Htm::new(HtmConfig {
            max_read_entries: 2,
            ..HtmConfig::test()
        });
        let mut th = HtmThread::new(&h, 0);
        // 16 words on (at most) two lines: must fit in two entries.
        #[repr(align(64))]
        struct Lines([AtomicU64; 16]);
        let lines = Lines(std::array::from_fn(|i| AtomicU64::new(i as u64)));
        let r = h.execute(&mut th, |tx| {
            let mut s = 0;
            for c in &lines.0 {
                s += tx.read(c)?;
            }
            Ok(s)
        });
        assert_eq!(r, Ok(120));
    }

    #[test]
    fn nt_store_aborts_reader() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        let cell = AtomicU64::new(1);
        let r: Result<u64, AbortKind> = h.execute(&mut th, |tx| {
            let v = tx.read(&cell)?;
            // A concurrent non-transactional write lands mid-transaction.
            h.nt_store(&cell, 99);
            Ok(v)
        });
        assert_eq!(r, Err(AbortKind::Conflict));
    }

    #[test]
    fn spurious_aborts_fire_with_config() {
        let h = Htm::new(HtmConfig {
            spurious_log2: 2,
            ..HtmConfig::test()
        });
        let mut th = HtmThread::new(&h, 0);
        let cell = AtomicU64::new(0);
        let mut spurious = 0;
        for _ in 0..200 {
            if h.execute(&mut th, |tx| tx.read(&cell)) == Err(AbortKind::Spurious) {
                spurious += 1;
            }
        }
        assert!(spurious > 10, "got {spurious}");
    }

    #[test]
    fn zombie_panic_becomes_conflict_abort() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        let r: Result<(), AbortKind> = h.execute(&mut th, |_tx| {
            let v: Vec<u32> = vec![];
            let _ = v[1]; // out-of-bounds: the zombie safety net
            Ok(())
        });
        assert_eq!(r, Err(AbortKind::Conflict));
    }

    #[test]
    fn crash_signal_propagates_out() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        let r = tm::crash::run_crashable(|| {
            h.execute(&mut th, |_tx| -> Result<(), Xabort> {
                tm::crash::crash_unwind()
            })
        });
        assert!(r.is_none());
    }

    #[test]
    fn conflicting_writers_one_aborts_counter_stays_exact() {
        let h = Arc::new(htm());
        let counter = Arc::new(AtomicU64::new(0));
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = h.clone();
            let counter = counter.clone();
            let total = total.clone();
            handles.push(std::thread::spawn(move || {
                let mut th = HtmThread::new(&h, t);
                let mut committed = 0u64;
                for _ in 0..20_000 {
                    let r = h.execute(&mut th, |tx| {
                        let v = tx.read(&counter)?;
                        tx.write(&counter, v + 1)?;
                        Ok(())
                    });
                    if r.is_ok() {
                        committed += 1;
                    }
                }
                total.fetch_add(committed, Ordering::SeqCst);
            }));
        }
        for hdl in handles {
            hdl.join().unwrap();
        }
        assert_eq!(
            counter.load(Ordering::SeqCst),
            total.load(Ordering::SeqCst),
            "each committed increment is reflected exactly once"
        );
    }

    #[test]
    fn transactions_are_atomic_to_transactional_readers() {
        // Writer txns keep x == y; reader txns must never observe x != y.
        let h = Arc::new(htm());
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let violated = Arc::new(AtomicBool::new(false));

        let writer = {
            let (h, x, y, stop) = (h.clone(), x.clone(), y.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut th = HtmThread::new(&h, 0);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let _ = h.execute(&mut th, |tx| {
                        tx.write(&x, i)?;
                        tx.write(&y, i)?;
                        Ok(())
                    });
                }
            })
        };
        let reader = {
            let (h, x, y, stop, violated) = (
                h.clone(),
                x.clone(),
                y.clone(),
                stop.clone(),
                violated.clone(),
            );
            std::thread::spawn(move || {
                let mut th = HtmThread::new(&h, 1);
                for _ in 0..30_000 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let r = h.execute(&mut th, |tx| {
                        let a = tx.read(&x)?;
                        let b = tx.read(&y)?;
                        Ok((a, b))
                    });
                    if let Ok((a, b)) = r {
                        if a != b {
                            violated.store(true, Ordering::Relaxed);
                        }
                    }
                }
                stop.store(true, Ordering::Relaxed);
            })
        };
        reader.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert!(!violated.load(Ordering::Relaxed), "opacity violated");
    }

    #[test]
    fn write_set_len_reports_entries() {
        let h = htm();
        let mut th = HtmThread::new(&h, 0);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let r = h.execute(&mut th, |tx| {
            tx.write(&a, 1)?;
            tx.write(&a, 2)?; // dedup
            tx.write(&b, 3)?;
            Ok(tx.write_set_len())
        });
        assert_eq!(r, Ok(2));
    }
}
