//! History recording and consistency checking for TM executions.
//!
//! Records every *committed* transaction's read and write sets (with
//! values) plus real-time begin/end sequence numbers, then checks the
//! necessary conditions of opacity/serializability that are tractable
//! offline:
//!
//! * **No thin-air reads** — every read value was written by some
//!   committed transaction (or is the initial value).
//! * **Read-your-writes** — reads following a write inside one
//!   transaction observe it (enforced structurally by recording external
//!   reads only).
//! * **Acyclic reads-from ∪ real-time order** — the serialization graph
//!   over committed transactions, with an edge T1→T2 when T2 reads T1's
//!   write or T1 completed before T2 began, must be acyclic. Full
//!   serializability additionally needs anti-dependency edges (NP-hard to
//!   infer in general); workloads that write *unique values per (address,
//!   transaction)* make this check sharp in practice — it catches torn
//!   snapshots, lost updates and causality reversals.
//!
//! The recorder is deliberately TM-agnostic: tests wrap any [`crate::Tm`]
//! body and feed the recorder manually, so the instrumented run exercises
//! the TM's real code paths.

use crate::{Addr, Word};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One committed transaction's observable behaviour.
#[derive(Clone, Debug)]
pub struct TxnRecord {
    /// Executing thread.
    pub tid: usize,
    /// Global sequence number drawn at begin.
    pub begin: u64,
    /// Global sequence number drawn after commit.
    pub end: u64,
    /// External reads: address → value observed (first read per address).
    pub reads: Vec<(Addr, Word)>,
    /// Writes: address → final value written.
    pub writes: Vec<(Addr, Word)>,
}

/// Concurrent history recorder.
pub struct HistoryRecorder {
    seq: AtomicU64,
    records: Mutex<Vec<TxnRecord>>,
}

impl Default for HistoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        HistoryRecorder {
            seq: AtomicU64::new(1),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Draw a begin sequence number.
    pub fn begin(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Record a committed transaction (call after `Tm::txn` returns Ok).
    pub fn commit(
        &self,
        tid: usize,
        begin: u64,
        reads: Vec<(Addr, Word)>,
        writes: Vec<(Addr, Word)>,
    ) {
        let end = self.seq.fetch_add(1, Ordering::SeqCst);
        self.records.lock().unwrap().push(TxnRecord {
            tid,
            begin,
            end,
            reads,
            writes,
        });
    }

    /// Snapshot the history for checking.
    pub fn history(&self) -> Vec<TxnRecord> {
        self.records.lock().unwrap().clone()
    }
}

/// A violation found by [`check_history`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A read observed a value nobody wrote.
    ThinAirRead {
        /// Index of the reading transaction in the history.
        txn: usize,
        /// The address read.
        addr: Addr,
        /// The impossible value.
        value: Word,
    },
    /// The serialization graph has a cycle (torn snapshot / lost update /
    /// causality reversal).
    Cycle {
        /// Transaction indices forming the cycle.
        members: Vec<usize>,
    },
    /// Two transactions wrote the same value to the same address, so the
    /// reads-from relation is ambiguous and the check would be unsound.
    AmbiguousWrite {
        /// The doubly-written address.
        addr: Addr,
        /// The duplicated value.
        value: Word,
    },
}

/// Check a recorded history (see module docs). `initial` gives the value
/// of any address before the run (defaults to 0 for missing entries).
pub fn check_history(
    history: &[TxnRecord],
    initial: &HashMap<Addr, Word>,
) -> Result<(), Violation> {
    // writer_of[(addr, value)] = txn index.
    let mut writer_of: HashMap<(u64, Word), usize> = HashMap::new();
    for (i, t) in history.iter().enumerate() {
        for &(a, v) in &t.writes {
            if let Some(&prev) = writer_of.get(&(a.0, v)) {
                if prev != i {
                    return Err(Violation::AmbiguousWrite { addr: a, value: v });
                }
            }
            writer_of.insert((a.0, v), i);
        }
    }

    let n = history.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Reads-from edges + thin-air detection.
    for (i, t) in history.iter().enumerate() {
        for &(a, v) in &t.reads {
            match writer_of.get(&(a.0, v)) {
                Some(&w) => {
                    if w != i {
                        edges[w].push(i);
                    }
                }
                None => {
                    let init = initial.get(&a).copied().unwrap_or(0);
                    if v != init {
                        return Err(Violation::ThinAirRead {
                            txn: i,
                            addr: a,
                            value: v,
                        });
                    }
                }
            }
        }
    }

    // Real-time edges: end(T1) < begin(T2). A quadratic sweep is fine for
    // test-sized histories; dedupe via sorted order for cache friendliness.
    let mut by_begin: Vec<usize> = (0..n).collect();
    by_begin.sort_by_key(|&i| history[i].begin);
    for (i, t1) in history.iter().enumerate() {
        for &j in &by_begin {
            if history[j].begin > t1.end {
                edges[i].push(j);
            }
        }
    }

    // Cycle detection (iterative DFS, colours).
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; n];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut path: Vec<usize> = Vec::new();
    for start in 0..n {
        if colour[start] != Colour::White {
            continue;
        }
        stack.push((start, 0));
        colour[start] = Colour::Grey;
        path.push(start);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < edges[node].len() {
                let succ = edges[node][*next];
                *next += 1;
                match colour[succ] {
                    Colour::White => {
                        colour[succ] = Colour::Grey;
                        stack.push((succ, 0));
                        path.push(succ);
                    }
                    Colour::Grey => {
                        let pos = path.iter().position(|&p| p == succ).unwrap();
                        return Err(Violation::Cycle {
                            members: path[pos..].to_vec(),
                        });
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
                path.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(begin: u64, end: u64, reads: &[(u64, u64)], writes: &[(u64, u64)]) -> TxnRecord {
        TxnRecord {
            tid: 0,
            begin,
            end,
            reads: reads.iter().map(|&(a, v)| (Addr(a), v)).collect(),
            writes: writes.iter().map(|&(a, v)| (Addr(a), v)).collect(),
        }
    }

    #[test]
    fn empty_and_sequential_histories_pass() {
        assert_eq!(check_history(&[], &HashMap::new()), Ok(()));
        let h = vec![
            rec(1, 2, &[], &[(1, 10)]),
            rec(3, 4, &[(1, 10)], &[(1, 20)]),
            rec(5, 6, &[(1, 20)], &[]),
        ];
        assert_eq!(check_history(&h, &HashMap::new()), Ok(()));
    }

    #[test]
    fn initial_values_are_legitimate_reads() {
        let h = vec![rec(1, 2, &[(5, 99)], &[])];
        assert!(matches!(
            check_history(&h, &HashMap::new()),
            Err(Violation::ThinAirRead { .. })
        ));
        let init: HashMap<Addr, Word> = [(Addr(5), 99u64)].into_iter().collect();
        assert_eq!(check_history(&h, &init), Ok(()));
    }

    #[test]
    fn thin_air_read_detected() {
        let h = vec![rec(1, 2, &[], &[(1, 10)]), rec(3, 4, &[(1, 77)], &[])];
        assert_eq!(
            check_history(&h, &HashMap::new()),
            Err(Violation::ThinAirRead {
                txn: 1,
                addr: Addr(1),
                value: 77
            })
        );
    }

    #[test]
    fn causality_reversal_is_a_cycle() {
        // T1 reads T2's write but T1 finished before T2 began.
        let h = vec![rec(1, 2, &[(1, 5)], &[]), rec(3, 4, &[], &[(1, 5)])];
        assert!(matches!(
            check_history(&h, &HashMap::new()),
            Err(Violation::Cycle { .. })
        ));
    }

    #[test]
    fn torn_snapshot_is_a_cycle() {
        // Writer W1 {x=1,y=1} then W2 {x=2,y=2} sequentially; a concurrent
        // reader sees x from W2 but y from W1 — cycle via real-time W1<W2
        // and rf edges both ways around the reader.
        let h = vec![
            rec(1, 2, &[], &[(1, 1), (2, 1)]),
            rec(3, 4, &[], &[(1, 2), (2, 2)]),
            rec(1, 10, &[(1, 2), (2, 1)], &[]),
        ];
        // reader reads-from W2 (x) => W2 -> R; reader reads y=1 from W1.
        // For a cycle we need R -> W1 or W2 -> W1; real-time gives W1 -> W2
        // and rf gives W1 -> R, W2 -> R: no cycle from these alone — the
        // anti-dependency R -> W2 (R missed W2's y) is what a full checker
        // would add. Our necessary-condition checker accepts this one, so
        // assert just that it runs; the sharp case below uses values that
        // force the cycle through reads-from.
        let _ = check_history(&h, &HashMap::new());

        // Sharp torn snapshot: reader also WRITES, and a later txn reads
        // both the reader's write and W2's overwritten value.
        let h = vec![
            rec(1, 2, &[], &[(1, 1), (2, 1)]),        // W1
            rec(3, 4, &[(3, 9)], &[(1, 2), (2, 2)]),  // W2 reads R's write
            rec(1, 10, &[(1, 2), (2, 1)], &[(3, 9)]), // R: torn + writes 3
        ];
        // rf: W2 -> R (value x=2), R -> W2 (value 3=9): 2-cycle.
        assert!(matches!(
            check_history(&h, &HashMap::new()),
            Err(Violation::Cycle { .. })
        ));
    }

    #[test]
    fn ambiguous_writes_are_rejected() {
        let h = vec![rec(1, 2, &[], &[(1, 5)]), rec(3, 4, &[], &[(1, 5)])];
        assert_eq!(
            check_history(&h, &HashMap::new()),
            Err(Violation::AmbiguousWrite {
                addr: Addr(1),
                value: 5
            })
        );
    }

    #[test]
    fn recorder_round_trip() {
        let r = HistoryRecorder::new();
        let b1 = r.begin();
        r.commit(0, b1, vec![(Addr(1), 0)], vec![(Addr(1), 7)]);
        let b2 = r.begin();
        r.commit(1, b2, vec![(Addr(1), 7)], vec![]);
        let h = r.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].end < h[1].end);
        assert_eq!(check_history(&h, &HashMap::new()), Ok(()));
    }

    #[test]
    fn concurrent_interleavings_without_cycles_pass() {
        // Overlapping txns on disjoint data in any order.
        let h = vec![
            rec(1, 10, &[], &[(1, 100)]),
            rec(2, 9, &[], &[(2, 200)]),
            rec(3, 8, &[(1, 0), (2, 0)], &[]),
        ];
        assert_eq!(check_history(&h, &HashMap::new()), Ok(()));
    }
}
