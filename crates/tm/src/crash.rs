//! Crash signalling for full-system-crash simulation.
//!
//! The persistent-memory simulator models a power failure by poisoning the
//! pool: every subsequent operation on shared state panics with a
//! [`CrashSignal`] payload, which unwinds the worker thread at whatever
//! point of its transaction it had reached — exactly the "system can crash
//! at any time, all processes crash simultaneously" model of §2.
//!
//! Workers run their workload under [`run_crashable`], which converts the
//! crash unwind into `None` while letting every other panic (a genuine bug)
//! propagate.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Panic payload used to simulate a power failure tearing down a thread.
#[derive(Clone, Copy, Debug)]
pub struct CrashSignal;

/// Unwind the current thread as if the power failed now.
///
/// Never returns. Must only be called from code running under
/// [`run_crashable`] (or another handler that understands [`CrashSignal`]).
pub fn crash_unwind() -> ! {
    std::panic::panic_any(CrashSignal)
}

/// True if a caught panic payload is a [`CrashSignal`].
pub fn is_crash(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<CrashSignal>()
}

/// Run `f`; return `Some(result)` normally, `None` if it was torn down by a
/// simulated crash. Any other panic is propagated unchanged.
pub fn run_crashable<R>(f: impl FnOnce() -> R) -> Option<R> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Some(r),
        Err(payload) if is_crash(&*payload) => None,
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_completion_passes_through() {
        assert_eq!(run_crashable(|| 42), Some(42));
    }

    #[test]
    fn crash_unwind_is_caught() {
        assert_eq!(run_crashable(|| -> u32 { crash_unwind() }), None);
    }

    #[test]
    fn other_panics_propagate() {
        let r = catch_unwind(|| run_crashable(|| -> u32 { panic!("real bug") }));
        assert!(r.is_err());
    }

    #[test]
    fn is_crash_distinguishes_payloads() {
        let caught = catch_unwind(|| crash_unwind()).unwrap_err();
        assert!(is_crash(&*caught));
        let other = catch_unwind(|| panic!("x")).unwrap_err();
        assert!(!is_crash(&*other));
    }
}
