//! Hybrid retry policy: the paper's *C-abortable* progress notion, executable.
//!
//! §2 defines a TM as *C-abortable (weak/strong) progressive* if every
//! transaction can abort unconditionally at most `C` times, after which all
//! further aborts must be justified by conflicts. NV-HALT realises this by
//! attempting each transaction a fixed number of times on the hardware path
//! before falling back to a progressive software path. [`HybridPolicy`]
//! encodes that schedule, plus bounded randomized backoff to damp conflict
//! storms on the fallback path.

/// Which path the next attempt should run on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathChoice {
    /// Attempt on the hardware fast path.
    Hw,
    /// Attempt on the software fallback path.
    Sw,
}

/// Attempt schedule for a hybrid TM.
#[derive(Clone, Copy, Debug)]
pub struct HybridPolicy {
    /// Maximum attempts on the hardware path before falling back — the `C`
    /// of C-abortable progressiveness. `0` disables the hardware path.
    pub hw_attempts: usize,
    /// If true, a capacity abort falls back to software immediately (no
    /// point retrying an overflowing transaction in hardware).
    pub capacity_falls_back: bool,
    /// Upper bound (in spin iterations) for randomized backoff after a
    /// software-path conflict abort. `0` disables backoff.
    pub max_backoff_spins: u32,
}

impl Default for HybridPolicy {
    fn default() -> Self {
        HybridPolicy {
            hw_attempts: 10,
            capacity_falls_back: true,
            max_backoff_spins: 1 << 10,
        }
    }
}

impl HybridPolicy {
    /// A policy with no hardware path (pure STM execution).
    pub fn stm_only() -> Self {
        HybridPolicy {
            hw_attempts: 0,
            ..Default::default()
        }
    }

    /// Decide the path for attempt number `attempt` (0-based), given how
    /// many hardware attempts already ended in a capacity abort.
    #[inline]
    pub fn choose(&self, attempt: usize, capacity_aborts: usize) -> PathChoice {
        if attempt < self.hw_attempts && !(self.capacity_falls_back && capacity_aborts > 0) {
            PathChoice::Hw
        } else {
            PathChoice::Sw
        }
    }

    /// Spin for a bounded pseudo-random interval derived from `seed` and the
    /// attempt number. Called after software-path conflicts.
    #[inline]
    pub fn backoff(&self, seed: u64, attempt: usize) {
        if self.max_backoff_spins == 0 {
            return;
        }
        // xorshift over (seed, attempt); bounded exponential window.
        let mut x = seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let window = (1u64 << (attempt.min(10) as u32 + 4)).min(self.max_backoff_spins as u64);
        let spins = x % window;
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        if spins > 256 {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_c_abortable() {
        let p = HybridPolicy::default();
        for a in 0..p.hw_attempts {
            assert_eq!(p.choose(a, 0), PathChoice::Hw);
        }
        assert_eq!(p.choose(p.hw_attempts, 0), PathChoice::Sw);
        assert_eq!(p.choose(p.hw_attempts + 100, 0), PathChoice::Sw);
    }

    #[test]
    fn capacity_abort_falls_back_immediately() {
        let p = HybridPolicy::default();
        assert_eq!(p.choose(1, 1), PathChoice::Sw);
        let keep = HybridPolicy {
            capacity_falls_back: false,
            ..Default::default()
        };
        assert_eq!(keep.choose(1, 1), PathChoice::Hw);
    }

    #[test]
    fn stm_only_never_uses_hardware() {
        let p = HybridPolicy::stm_only();
        assert_eq!(p.choose(0, 0), PathChoice::Sw);
    }

    #[test]
    fn backoff_terminates() {
        let p = HybridPolicy::default();
        for a in 0..20 {
            p.backoff(0xdead_beef, a);
        }
        let none = HybridPolicy {
            max_backoff_spins: 0,
            ..Default::default()
        };
        none.backoff(1, 1);
    }
}
