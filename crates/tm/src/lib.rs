//! Common vocabulary for every transactional memory in this workspace.
//!
//! The crate defines the word-based transactional API ([`Tm`], [`Txn`]),
//! the abort taxonomy ([`AbortKind`]) used to classify why attempts fail,
//! the crash-signalling machinery shared by the persistent-memory and HTM
//! simulators ([`crash`]), the hybrid retry policy that implements the
//! paper's *C-abortable* progress notion ([`policy`]), and cache-padded
//! per-thread statistics ([`stats`]).
//!
//! Every TM in the workspace (the three NV-HALT variants, Trinity and SPHT)
//! implements [`Tm`], which lets the transactional data structures in
//! `txstructs` and the benchmark harness in `bench` stay generic.

pub mod check;
pub mod crash;
pub mod policy;
pub mod stats;

use std::fmt;

/// A transactional word. All TMs in this workspace are word-based, as the
/// paper's TMs are: user data is an array of 64-bit words and transactional
/// addresses are word indices.
pub type Word = u64;

/// A transactional address: an index of a [`Word`] in the TM-owned heap.
///
/// `Addr(0)` is never handed out by the allocator so it can serve as a null
/// pointer inside transactional data structures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address (never allocated).
    pub const NULL: Addr = Addr(0);

    /// True if this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Address `words` words past `self`.
    #[inline]
    pub fn offset(self, words: u64) -> Addr {
        Addr(self.0 + words)
    }

    /// The raw word index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Why a transaction attempt could not complete.
///
/// The taxonomy mirrors §2 of the paper: conflict aborts are the only aborts
/// a (strongly) progressive TM may incur, while capacity and spurious aborts
/// are the "unconditional" aborts that motivate *C-abortable* progress.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortKind {
    /// A data conflict with a concurrent transaction (lock held, validation
    /// failure, or HTM tracking-set conflict).
    Conflict,
    /// The hardware tracking set overflowed (bounded HTM read/write sets).
    Capacity,
    /// The hardware aborted for no observable reason (interrupts etc.).
    Spurious,
    /// The transaction itself requested an abort (`xabort`-style), carrying a
    /// user code. Used e.g. when a fast-path transaction observes a lock held
    /// by another thread.
    Explicit(u32),
}

impl AbortKind {
    /// True for aborts that count against the `C` bound of C-abortable
    /// progressiveness (i.e. aborts that are *not* justified by a conflict).
    pub fn is_unconditional(self) -> bool {
        matches!(self, AbortKind::Capacity | AbortKind::Spurious)
    }
}

/// Control-flow error produced inside a transaction body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Abort {
    /// The attempt must be abandoned and retried (possibly on the other
    /// path). Produced by the TM itself on conflicts, or by user code that
    /// detects an inconsistency (e.g. a traversal running out of fuel).
    Retry(AbortKind),
    /// The transaction is voluntarily abandoned: no retry, `Tm::txn` returns
    /// [`Cancelled`]. This is the "voluntary abort" operation of §2.
    Cancel,
}

impl Abort {
    /// Shorthand for a conflict-kind retry.
    pub const CONFLICT: Abort = Abort::Retry(AbortKind::Conflict);
}

/// Returned by [`Tm::txn`] when the body voluntarily cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cancelled;

/// Result of running a whole transaction (a sequence of attempts culminating
/// in a commit or a voluntary abort, per §2).
pub type TxResult<R> = Result<R, Cancelled>;

/// One transaction attempt. Handed to the transaction body by [`Tm::txn`].
///
/// All operations can fail with [`Abort::Retry`], which the body must
/// propagate (with `?`); `Tm::txn` then retries the body according to the
/// TM's retry policy.
pub trait Txn {
    /// Transactionally read the word at `a`.
    fn read(&mut self, a: Addr) -> Result<Word, Abort>;

    /// Transactionally write `v` to the word at `a`.
    fn write(&mut self, a: Addr, v: Word) -> Result<(), Abort>;

    /// Allocate `words` contiguous words. The allocation is rolled back if
    /// the transaction aborts (§4: allocation is tied to commit/abort).
    fn alloc(&mut self, words: usize) -> Result<Addr, Abort>;

    /// Free the block of `words` words at `a`. The free is deferred until
    /// the transaction commits (§4).
    fn free(&mut self, a: Addr, words: usize) -> Result<(), Abort>;

    /// True if this attempt executes on the hardware fast path.
    fn is_hw(&self) -> bool;

    /// Which attempt (0-based, across both paths) this is. Lets adversarial
    /// tests steer specific attempts.
    fn attempt(&self) -> usize;
}

/// A word-based transactional memory.
pub trait Tm: Sync {
    /// Run a transaction: retry `body` until it commits or cancels.
    ///
    /// `tid` identifies the calling thread and must be `< max_threads()`;
    /// each tid must be used by at most one OS thread at a time.
    fn txn<R>(
        &self,
        tid: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> TxResult<R>;

    /// Number of thread slots this TM was created with.
    fn max_threads(&self) -> usize;

    /// Read a word without any synchronization. Only valid while the TM is
    /// quiescent (no concurrent transactions); used for verification and
    /// recovery walks.
    fn read_raw(&self, a: Addr) -> Word;

    /// Aggregate statistics snapshot.
    fn stats(&self) -> stats::StatsSnapshot;

    /// A short human-readable name ("nv-halt", "trinity", ...).
    fn name(&self) -> &'static str;
}

/// A TM that can hold a transaction **prepared**: executed and durably
/// staged, but neither committed nor aborted, with its locks still held.
///
/// This is the participant half of two-phase commit. After a successful
/// [`TmPrepare::prepare`], thread `tid`'s transaction is in a limbo state
/// with three guarantees until the coordinator decides:
///
/// 1. **Invisible** — no other transaction can read or overwrite any
///    address the prepared transaction touched (its locks are held).
/// 2. **Crash-aborts** — if the process crashes before
///    [`TmPrepare::commit_prepared`], TM recovery rolls the prepared
///    writes back (they are staged below the thread's durable version).
/// 3. **Decidable** — [`TmPrepare::commit_prepared`] makes the writes
///    durable and visible; [`TmPrepare::abort_prepared`] durably restores
///    the pre-transaction values. Both release the locks.
///
/// While a tid has a prepared transaction outstanding it must not start
/// another transaction (prepared or not); implementations assert this.
pub trait TmPrepare: Tm {
    /// Run `body` and leave its transaction prepared instead of committed.
    ///
    /// Retries conflicting attempts like [`Tm::txn`]; returns
    /// `Err(Cancelled)` (with nothing held) if the body cancels.
    fn prepare<R>(
        &self,
        tid: usize,
        body: &mut dyn FnMut(&mut dyn Txn) -> Result<R, Abort>,
    ) -> TxResult<R>
    where
        Self: Sized;

    /// Make `tid`'s prepared transaction durable and visible.
    fn commit_prepared(&self, tid: usize);

    /// Durably roll `tid`'s prepared transaction back.
    fn abort_prepared(&self, tid: usize);

    /// True if `tid` has a prepared transaction outstanding.
    fn has_prepared(&self, tid: usize) -> bool;
}

/// Convenience: run a closure-based transaction against any `Tm`.
///
/// This is the ergonomic entry point used by data structures and examples;
/// it adapts a generic closure to the `&mut dyn FnMut` the trait needs.
pub fn txn<T: Tm + ?Sized, R>(
    tm: &T,
    tid: usize,
    mut body: impl FnMut(&mut dyn Txn) -> Result<R, Abort>,
) -> TxResult<R> {
    tm.txn(tid, &mut body)
}

/// Convenience: run a closure-based *prepared* transaction (see
/// [`TmPrepare::prepare`]).
pub fn prepare<T: TmPrepare, R>(
    tm: &T,
    tid: usize,
    mut body: impl FnMut(&mut dyn Txn) -> Result<R, Abort>,
) -> TxResult<R> {
    tm.prepare(tid, &mut body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_null_and_offset() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(1).is_null());
        assert_eq!(Addr(5).offset(3), Addr(8));
        assert_eq!(Addr(5).index(), 5);
        assert_eq!(format!("{}", Addr(7)), "@7");
    }

    #[test]
    fn abort_kind_classification() {
        assert!(AbortKind::Capacity.is_unconditional());
        assert!(AbortKind::Spurious.is_unconditional());
        assert!(!AbortKind::Conflict.is_unconditional());
        assert!(!AbortKind::Explicit(3).is_unconditional());
    }

    #[test]
    fn abort_shorthand() {
        assert_eq!(Abort::CONFLICT, Abort::Retry(AbortKind::Conflict));
    }
}
