//! Cache-padded per-thread statistics for transactional memories.
//!
//! Counters are sharded per thread (each shard on its own cache line) so
//! that statistics collection never introduces inter-thread coherence
//! traffic that would distort the benchmarks. Snapshots sum the shards.

use crossbeam::utils::CachePadded;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Everything a TM counts, one slot per variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Counter {
    /// Committed hardware-path attempts.
    HwCommit = 0,
    /// Hardware attempts aborted by a data conflict.
    HwConflict,
    /// Hardware attempts aborted by tracking-set capacity.
    HwCapacity,
    /// Hardware attempts aborted spuriously.
    HwSpurious,
    /// Hardware attempts aborted explicitly (xabort).
    HwExplicit,
    /// Committed software-path attempts.
    SwCommit,
    /// Software attempts aborted (always conflict-justified).
    SwAbort,
    /// Transactions that ended in a voluntary cancel.
    Cancelled,
    /// Cache-line flushes issued.
    Flush,
    /// Flushes of lines with no store since their last flush (wasted
    /// flush latency; reported by the persist-order sanitizer).
    RedundantFlush,
    /// Persist fences issued.
    Fence,
    /// Words written back to persistent memory.
    PmWords,
    /// Time (ns) spent blocked in commit-ordering waits (SPHT).
    OrderWaitNs,
    /// Redo-log entries replayed (SPHT).
    Replayed,
    /// Stripe-lock CAS acquisitions that lost to another owner (the
    /// sw fallback's fine-grained lock contention).
    StripeContended,
}

impl Counter {
    /// Number of counter slots.
    pub const COUNT: usize = Counter::StripeContended as usize + 1;

    /// All counters in slot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::HwCommit,
        Counter::HwConflict,
        Counter::HwCapacity,
        Counter::HwSpurious,
        Counter::HwExplicit,
        Counter::SwCommit,
        Counter::SwAbort,
        Counter::Cancelled,
        Counter::Flush,
        Counter::RedundantFlush,
        Counter::Fence,
        Counter::PmWords,
        Counter::OrderWaitNs,
        Counter::Replayed,
        Counter::StripeContended,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Counter::HwCommit => "hw_commit",
            Counter::HwConflict => "hw_conflict",
            Counter::HwCapacity => "hw_capacity",
            Counter::HwSpurious => "hw_spurious",
            Counter::HwExplicit => "hw_explicit",
            Counter::SwCommit => "sw_commit",
            Counter::SwAbort => "sw_abort",
            Counter::Cancelled => "cancelled",
            Counter::Flush => "flush",
            Counter::RedundantFlush => "flush_redundant",
            Counter::Fence => "fence",
            Counter::PmWords => "pm_words",
            Counter::OrderWaitNs => "order_wait_ns",
            Counter::Replayed => "replayed",
            Counter::StripeContended => "stripe_contended",
        }
    }
}

struct Shard {
    slots: [AtomicU64; Counter::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Per-thread sharded statistics.
pub struct TmStats {
    shards: Vec<CachePadded<Shard>>,
}

impl TmStats {
    /// Create statistics with one shard per thread slot.
    pub fn new(max_threads: usize) -> Self {
        TmStats {
            shards: (0..max_threads)
                .map(|_| CachePadded::new(Shard::new()))
                .collect(),
        }
    }

    /// Bump `c` by one for thread `tid`.
    #[inline]
    pub fn bump(&self, tid: usize, c: Counter) {
        self.shards[tid].slots[c as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to `c` for thread `tid`.
    #[inline]
    pub fn add(&self, tid: usize, c: Counter, n: u64) {
        self.shards[tid].slots[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum all shards into a snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut totals = [0u64; Counter::COUNT];
        for shard in &self.shards {
            for (i, t) in totals.iter_mut().enumerate() {
                *t += shard.slots[i].load(Ordering::Relaxed);
            }
        }
        StatsSnapshot { totals }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for shard in &self.shards {
            for slot in &shard.slots {
                slot.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// A point-in-time sum of all shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StatsSnapshot {
    totals: [u64; Counter::COUNT],
}

impl StatsSnapshot {
    /// Value of one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.totals[c as usize]
    }

    /// Total committed transactions (both paths).
    pub fn commits(&self) -> u64 {
        self.get(Counter::HwCommit) + self.get(Counter::SwCommit)
    }

    /// Total aborted attempts (both paths).
    pub fn aborts(&self) -> u64 {
        self.get(Counter::HwConflict)
            + self.get(Counter::HwCapacity)
            + self.get(Counter::HwSpurious)
            + self.get(Counter::HwExplicit)
            + self.get(Counter::SwAbort)
    }

    /// The abort counters in slot order (the breakdown behind
    /// [`StatsSnapshot::aborts`]). Observability layers iterate this to
    /// report abort *causes* without hard-coding the taxonomy.
    pub const ABORT_COUNTERS: [Counter; 5] = [
        Counter::HwConflict,
        Counter::HwCapacity,
        Counter::HwSpurious,
        Counter::HwExplicit,
        Counter::SwAbort,
    ];

    /// Per-cause abort counts, in [`StatsSnapshot::ABORT_COUNTERS`] order.
    pub fn abort_breakdown(&self) -> [(Counter, u64); 5] {
        Self::ABORT_COUNTERS.map(|c| (c, self.get(c)))
    }

    /// Every `(counter, value)` pair, including zeros, in slot order.
    pub fn counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    /// Fraction of commits that happened on the hardware path.
    pub fn hw_commit_ratio(&self) -> f64 {
        let c = self.commits();
        if c == 0 {
            0.0
        } else {
            self.get(Counter::HwCommit) as f64 / c as f64
        }
    }

    /// Difference against an earlier snapshot (for measurement windows).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut totals = [0u64; Counter::COUNT];
        for (i, t) in totals.iter_mut().enumerate() {
            *t = self.totals[i].wrapping_sub(earlier.totals[i]);
        }
        StatsSnapshot { totals }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in Counter::ALL {
            let v = self.get(c);
            if v != 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={}", c.label(), v)?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = TmStats::new(2);
        s.bump(0, Counter::HwCommit);
        s.bump(1, Counter::HwCommit);
        s.add(1, Counter::Flush, 10);
        let snap = s.snapshot();
        assert_eq!(snap.get(Counter::HwCommit), 2);
        assert_eq!(snap.get(Counter::Flush), 10);
        assert_eq!(snap.commits(), 2);
    }

    #[test]
    fn ratios_and_aborts() {
        let s = TmStats::new(1);
        s.bump(0, Counter::HwCommit);
        s.bump(0, Counter::SwCommit);
        s.bump(0, Counter::SwAbort);
        s.bump(0, Counter::HwSpurious);
        let snap = s.snapshot();
        assert_eq!(snap.commits(), 2);
        assert_eq!(snap.aborts(), 2);
        assert!((snap.hw_commit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts() {
        let s = TmStats::new(1);
        s.bump(0, Counter::SwCommit);
        let a = s.snapshot();
        s.bump(0, Counter::SwCommit);
        s.bump(0, Counter::SwCommit);
        let b = s.snapshot();
        assert_eq!(b.since(&a).get(Counter::SwCommit), 2);
    }

    #[test]
    fn reset_zeroes() {
        let s = TmStats::new(1);
        s.bump(0, Counter::Fence);
        s.reset();
        assert_eq!(s.snapshot().get(Counter::Fence), 0);
    }

    #[test]
    fn display_lists_nonzero() {
        let s = TmStats::new(1);
        assert_eq!(format!("{}", s.snapshot()), "(empty)");
        s.bump(0, Counter::HwCommit);
        assert!(format!("{}", s.snapshot()).contains("hw_commit=1"));
    }

    #[test]
    fn all_labels_distinct() {
        let labels: std::collections::HashSet<_> = Counter::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), Counter::COUNT);
    }

    #[test]
    fn hw_ratio_empty_is_zero() {
        let s = TmStats::new(1);
        assert_eq!(s.snapshot().hw_commit_ratio(), 0.0);
    }

    #[test]
    fn abort_breakdown_matches_aborts() {
        let s = TmStats::new(1);
        s.bump(0, Counter::HwConflict);
        s.bump(0, Counter::HwCapacity);
        s.add(0, Counter::SwAbort, 3);
        let snap = s.snapshot();
        let breakdown = snap.abort_breakdown();
        assert_eq!(breakdown.iter().map(|(_, v)| v).sum::<u64>(), snap.aborts());
        assert!(breakdown.contains(&(Counter::SwAbort, 3)));
        assert!(breakdown.contains(&(Counter::HwSpurious, 0)));
    }

    #[test]
    fn counters_iterates_every_slot() {
        let s = TmStats::new(1);
        s.bump(0, Counter::Fence);
        let snap = s.snapshot();
        let all: Vec<_> = snap.counters().collect();
        assert_eq!(all.len(), Counter::COUNT);
        assert!(all.contains(&(Counter::Fence, 1)));
        assert!(all.contains(&(Counter::HwCommit, 0)));
    }
}
