//! A transactional word allocator in the style of mimalloc (§4 of the
//! paper, "Memory Allocation in Transactions").
//!
//! The paper's allocator requirements, all implemented here:
//!
//! * **Commit/abort hooks.** Memory allocated during a transaction is
//!   returned if the transaction aborts; frees are deferred until it
//!   commits — otherwise an aborting transaction could leak memory or free
//!   memory still in use. Each transaction carries a [`TxnLog`];
//!   [`TxAlloc::commit`] and [`TxAlloc::abort`] apply it.
//! * **No growth of transaction write sets.** Allocator metadata (free
//!   lists, bump pointers) is *volatile* and outside the transactional
//!   heap, so allocation inside a hardware transaction does not add
//!   entries to the HTM tracking set — the whole point of not implementing
//!   the allocator on top of the TM (unlike Trinity's original design).
//! * **Contiguous address range.** Allocations come from one contiguous
//!   word range handed out to per-thread segments on demand, preserving
//!   the direct volatile→persistent address mapping.
//! * **Recovery by iteration.** Because allocator state is volatile, it is
//!   rebuilt from scratch after a crash: the user supplies an iterator
//!   over the blocks still in use (a reachability walk of their data
//!   structure) and [`TxAlloc::rebuild`] reconstructs free lists from the
//!   gaps.
//!
//! Free-list sharding follows mimalloc: each thread owns per-size-class
//! free lists; a block freed by a different thread simply migrates to the
//! freeing thread's lists (a simplification of mimalloc's local/remote
//! split that preserves the no-shared-metadata fast path).
//!
//! Word addresses below [`AllocConfig::reserve_words`] are never handed
//! out, so `Addr(0)` can act as a null pointer.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Size classes in words. Allocations round up to the nearest class;
/// larger requests fall back to exact-size bump allocation.
pub const CLASSES: [usize; 13] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 40, 48, 64];

/// Largest class-managed size.
pub const MAX_CLASS_WORDS: usize = CLASSES[CLASSES.len() - 1];

fn class_of(words: usize) -> Option<usize> {
    CLASSES.iter().position(|&c| c >= words)
}

/// Allocator configuration.
#[derive(Clone, Copy, Debug)]
pub struct AllocConfig {
    /// Total heap size in words.
    pub heap_words: usize,
    /// Number of thread slots.
    pub max_threads: usize,
    /// Words fetched from the global range per thread-segment refill.
    pub segment_words: usize,
    /// Low addresses never handed out (null-pointer guard).
    pub reserve_words: usize,
}

impl AllocConfig {
    /// Defaults for a heap of `heap_words` words.
    pub fn new(heap_words: usize, max_threads: usize) -> Self {
        AllocConfig {
            heap_words,
            max_threads,
            segment_words: 1 << 13,
            reserve_words: 8,
        }
    }
}

/// Per-transaction allocation log (the commit/abort hook state).
#[derive(Default, Debug)]
pub struct TxnLog {
    allocs: Vec<(u64, usize)>,
    frees: Vec<(u64, usize)>,
}

impl TxnLog {
    /// An empty log.
    pub fn new() -> Self {
        TxnLog::default()
    }

    /// True if the log records nothing.
    pub fn is_empty(&self) -> bool {
        self.allocs.is_empty() && self.frees.is_empty()
    }

    /// Forget everything (used when a fresh attempt starts).
    pub fn clear(&mut self) {
        self.allocs.clear();
        self.frees.clear();
    }
}

struct Arena {
    free: [Vec<u64>; CLASSES.len()],
    seg_cur: u64,
    seg_end: u64,
}

impl Arena {
    fn new() -> Self {
        Arena {
            free: std::array::from_fn(|_| Vec::new()),
            seg_cur: 0,
            seg_end: 0,
        }
    }
}

/// The transactional allocator. See module docs.
pub struct TxAlloc {
    bump: AtomicU64,
    cfg: AllocConfig,
    arenas: Vec<CachePadded<Mutex<Arena>>>,
}

impl TxAlloc {
    /// Create an allocator over `[reserve_words, heap_words)`.
    pub fn new(cfg: AllocConfig) -> Self {
        assert!(cfg.reserve_words < cfg.heap_words);
        let alloc = TxAlloc {
            bump: AtomicU64::new(cfg.reserve_words as u64),
            cfg,
            arenas: (0..cfg.max_threads.max(1))
                .map(|_| CachePadded::new(Mutex::new(Arena::new())))
                .collect(),
        };
        for a in &alloc.arenas {
            a.locksan_label("txalloc::arena", false);
        }
        alloc
    }

    /// The configuration.
    pub fn config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Words handed out from the global range so far (high-water mark).
    pub fn high_water(&self) -> u64 {
        self.bump.load(Ordering::Relaxed)
    }

    fn bump_take(&self, words: usize) -> Option<u64> {
        let got = self.bump.fetch_add(words as u64, Ordering::Relaxed);
        if got as usize + words <= self.cfg.heap_words {
            Some(got)
        } else {
            // Roll back our reservation so later smaller requests can fit.
            self.bump.fetch_sub(words as u64, Ordering::Relaxed);
            None
        }
    }

    /// Allocate `words` words for the transaction carrying `log`.
    /// Returns the word address, or `None` if the heap is exhausted.
    pub fn alloc(&self, tid: usize, words: usize, log: &mut TxnLog) -> Option<u64> {
        debug_assert!(words > 0);
        let addr = match class_of(words) {
            Some(class) => {
                let cwords = CLASSES[class];
                let mut arena = self.arenas[tid].lock();
                if let Some(a) = arena.free[class].pop() {
                    a
                } else if arena.seg_end - arena.seg_cur >= cwords as u64 {
                    let a = arena.seg_cur;
                    arena.seg_cur += cwords as u64;
                    a
                } else {
                    // Refill the thread segment, then carve. Near
                    // exhaustion fall back to an exact-size request.
                    let take = self.cfg.segment_words.max(cwords);
                    let (base, got) = match self.bump_take(take) {
                        Some(b) => (b, take),
                        None => (self.bump_take(cwords)?, cwords),
                    };
                    arena.seg_cur = base + cwords as u64;
                    arena.seg_end = base + got as u64;
                    base
                }
            }
            None => self.bump_take(words)?,
        };
        log.allocs.push((addr, words));
        Some(addr)
    }

    /// Record a free of the block at `addr` (allocated with the same
    /// `words`); takes effect only when the transaction commits.
    pub fn free(&self, addr: u64, words: usize, log: &mut TxnLog) {
        log.frees.push((addr, words));
    }

    fn push_free(&self, tid: usize, addr: u64, words: usize) {
        if let Some(class) = class_of(words) {
            self.arenas[tid].lock().free[class].push(addr);
        }
        // Oversized blocks are not recycled (bump-only); the paper's
        // structures never free blocks above MAX_CLASS_WORDS.
    }

    /// Commit hook: apply deferred frees, keep allocations.
    pub fn commit(&self, tid: usize, log: &mut TxnLog) {
        if log.frees.is_empty() {
            log.allocs.clear();
            return;
        }
        for &(addr, words) in &log.frees {
            self.push_free(tid, addr, words);
        }
        log.clear();
    }

    /// Abort hook: return allocations, forget deferred frees.
    pub fn abort(&self, tid: usize, log: &mut TxnLog) {
        if log.allocs.is_empty() {
            log.frees.clear();
            return;
        }
        for &(addr, words) in &log.allocs {
            self.push_free(tid, addr, words);
        }
        log.clear();
    }

    /// Rebuild allocator state after recovery from the user-supplied
    /// iterator of in-use blocks `(addr, words)`. Free lists are carved
    /// from the gaps between used blocks and distributed round-robin over
    /// the thread arenas. Must be called while quiescent.
    pub fn rebuild(&self, used: impl IntoIterator<Item = (u64, usize)>) {
        let mut blocks: Vec<(u64, usize)> = used
            .into_iter()
            .map(|(a, w)| {
                // In-use blocks occupy their rounded class size.
                let span = class_of(w).map(|c| CLASSES[c]).unwrap_or(w);
                (a, span)
            })
            .collect();
        blocks.sort_unstable();
        for w in blocks.windows(2) {
            assert!(
                w[0].0 + w[0].1 as u64 <= w[1].0,
                "used blocks overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        for arena in &self.arenas {
            let mut a = arena.lock();
            *a = Arena::new();
        }
        let mut cursor = self.cfg.reserve_words as u64;
        let mut target = 0usize;
        let nthreads = self.arenas.len();
        let carve = |from: u64, to: u64, target: &mut usize| {
            let mut at = from;
            while at < to {
                let remaining = (to - at) as usize;
                let class = CLASSES
                    .iter()
                    .rposition(|&c| c <= remaining)
                    .expect("remaining >= 1 word always matches class 0");
                self.arenas[*target].lock().free[class].push(at);
                *target = (*target + 1) % nthreads;
                at += CLASSES[class] as u64;
            }
        };
        let mut high = cursor;
        for &(addr, span) in &blocks {
            if addr > cursor {
                carve(cursor, addr, &mut target);
            }
            cursor = cursor.max(addr + span as u64);
            high = cursor;
        }
        self.bump.store(high, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(words: usize) -> TxAlloc {
        TxAlloc::new(AllocConfig::new(words, 2))
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(5), Some(4)); // rounds to 6
        assert_eq!(class_of(64), Some(12));
        assert_eq!(class_of(65), None);
    }

    #[test]
    fn never_allocates_null() {
        let a = alloc(1 << 16);
        let mut log = TxnLog::new();
        let addr = a.alloc(0, 4, &mut log).unwrap();
        assert!(addr >= 8);
    }

    #[test]
    fn distinct_live_allocations_do_not_overlap() {
        let a = alloc(1 << 16);
        let mut log = TxnLog::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for words in [1usize, 3, 7, 16, 33, 64, 100] {
            let addr = a.alloc(0, words, &mut log).unwrap();
            let span = class_of(words).map(|c| CLASSES[c]).unwrap_or(words) as u64;
            for &(s, e) in &spans {
                assert!(addr + span <= s || addr >= e, "overlap");
            }
            spans.push((addr, addr + span));
        }
    }

    #[test]
    fn abort_returns_allocations_for_reuse() {
        let a = alloc(1 << 16);
        let mut log = TxnLog::new();
        let first = a.alloc(0, 16, &mut log).unwrap();
        a.abort(0, &mut log);
        let second = a.alloc(0, 16, &mut log).unwrap();
        assert_eq!(first, second, "aborted allocation is recycled");
    }

    #[test]
    fn free_is_deferred_until_commit() {
        let a = alloc(1 << 16);
        let mut log = TxnLog::new();
        let block = a.alloc(0, 8, &mut log).unwrap();
        a.commit(0, &mut log);

        // Free inside a transaction that aborts: block must NOT be reused.
        a.free(block, 8, &mut log);
        a.abort(0, &mut log);
        let other = a.alloc(0, 8, &mut log).unwrap();
        assert_ne!(other, block);
        a.commit(0, &mut log);

        // Free inside a committed transaction: now it can be reused.
        a.free(block, 8, &mut log);
        a.commit(0, &mut log);
        let reused = a.alloc(0, 8, &mut log).unwrap();
        assert_eq!(reused, block);
    }

    #[test]
    fn cross_thread_free_migrates() {
        let a = alloc(1 << 16);
        let mut log0 = TxnLog::new();
        let mut log1 = TxnLog::new();
        let block = a.alloc(0, 4, &mut log0).unwrap();
        a.commit(0, &mut log0);
        a.free(block, 4, &mut log1);
        a.commit(1, &mut log1);
        // Thread 1 now owns the block.
        assert_eq!(a.alloc(1, 4, &mut log1), Some(block));
    }

    #[test]
    fn oversized_allocations_bump() {
        let a = alloc(1 << 16);
        let mut log = TxnLog::new();
        let big = a.alloc(0, 1000, &mut log).unwrap();
        let big2 = a.alloc(0, 1000, &mut log).unwrap();
        assert!(big2 >= big + 1000);
    }

    #[test]
    fn heap_exhaustion_returns_none() {
        let a = TxAlloc::new(AllocConfig {
            segment_words: 16,
            ..AllocConfig::new(64, 1)
        });
        let mut log = TxnLog::new();
        let mut got = 0;
        while a.alloc(0, 16, &mut log).is_some() {
            got += 1;
            assert!(got < 100, "should exhaust");
        }
        assert!(got >= 2, "got {got}");
    }

    #[test]
    fn rebuild_reconstructs_free_space() {
        let a = alloc(1 << 12);
        let mut log = TxnLog::new();
        let keep1 = a.alloc(0, 16, &mut log).unwrap();
        let _drop1 = a.alloc(0, 16, &mut log).unwrap();
        let keep2 = a.alloc(0, 16, &mut log).unwrap();
        a.commit(0, &mut log);

        // Simulate crash: rebuild with only keep1/keep2 reachable.
        let b = alloc(1 << 12);
        b.rebuild([(keep1, 16), (keep2, 16)]);
        // New allocations must avoid the kept blocks.
        for _ in 0..50 {
            let addr = b.alloc(0, 16, &mut log).expect("space available");
            for &k in &[keep1, keep2] {
                assert!(addr + 16 <= k || addr >= k + 16, "clobbered live block");
            }
        }
    }

    #[test]
    fn rebuild_reuses_the_dropped_gap() {
        let a = alloc(1 << 12);
        let mut log = TxnLog::new();
        let keep1 = a.alloc(0, 16, &mut log).unwrap();
        let dropped = a.alloc(0, 16, &mut log).unwrap();
        let keep2 = a.alloc(0, 16, &mut log).unwrap();
        a.commit(0, &mut log);

        let b = alloc(1 << 12);
        b.rebuild([(keep1, 16), (keep2, 16)]);
        let mut seen_gap = false;
        for _ in 0..50 {
            if let Some(addr) = b.alloc(0, 16, &mut log) {
                if addr == dropped {
                    seen_gap = true;
                }
            }
        }
        assert!(seen_gap, "gap at {dropped} never reused");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rebuild_rejects_overlapping_blocks() {
        let a = alloc(1 << 12);
        a.rebuild([(16, 16), (20, 16)]);
    }

    #[test]
    fn concurrent_allocation_yields_disjoint_blocks() {
        use std::sync::Arc;
        let a = Arc::new(alloc(1 << 20));
        let mut handles = Vec::new();
        for t in 0..2 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                let mut log = TxnLog::new();
                let mut got = Vec::new();
                for _ in 0..5_000 {
                    got.push(a.alloc(t, 4, &mut log).unwrap());
                }
                a.commit(t, &mut log);
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate address handed out");
    }
}
