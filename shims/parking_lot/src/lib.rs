//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! Provides `Mutex`, `RwLock`, and `Condvar` with parking_lot's
//! signatures (no lock poisoning: `lock()` returns the guard directly)
//! implemented over the std primitives. A poisoned std lock means a thread panicked while
//! holding the guard; this workspace's crash simulation unwinds worker
//! threads deliberately (see `tm::crash`), so the shim — like parking_lot
//! itself — treats that as a normal release and hands the lock out again.
//!
//! With the `locksan` feature, every lock carries a [`locksan::LockTag`]
//! and reports acquisitions, releases (including panic unwinds — the
//! guards' `Drop` impls fire the hook unconditionally), condvar waits,
//! and contended blocking acquisitions to the lock-discipline sanitizer.
//! Owners name their locks with [`Mutex::locksan_label`] /
//! [`RwLock::locksan_label`] (a no-op without the feature) so reports
//! speak in service terms rather than raw addresses.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion lock without poisoning, like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "locksan")]
    tag: locksan::LockTag,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The guard is held in an `Option` only so [`Condvar::wait`] can move
/// it through std's consuming `wait`; it is `Some` at all other times —
/// including after a panic inside the wait, which re-acquires the lock
/// on unwind (see [`Condvar::wait`]).
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "locksan")]
            tag: locksan::LockTag::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "locksan")]
        locksan::on_acquire(&self.tag, "mutex");
        // Contention probe: a failed try first, so the sanitizer can
        // count acquisitions that actually blocked.
        #[cfg(feature = "locksan")]
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                locksan::on_contended();
                match self.inner.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }
            }
        };
        #[cfg(not(feature = "locksan"))]
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "locksan")]
        locksan::on_try_acquire(&self.tag, "mutex");
        Some(MutexGuard {
            lock: self,
            inner: Some(inner),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }

    /// Names this lock's class for the lock-discipline sanitizer.
    /// Instances sharing a label share a class; `allow_persist` exempts
    /// the class from the lock-across-persist rule (for locks whose job
    /// is to guard a persist, like the TM thread-state cells). No-op
    /// without the `locksan` feature.
    #[cfg(feature = "locksan")]
    pub fn locksan_label(&self, name: &'static str, allow_persist: bool) {
        locksan::label(&self.tag, name, allow_persist);
    }

    /// Names this lock's class for the lock-discipline sanitizer
    /// (no-op: the `locksan` feature is disabled).
    #[cfg(not(feature = "locksan"))]
    pub fn locksan_label(&self, _name: &'static str, _allow_persist: bool) {}
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

#[cfg(feature = "locksan")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Fires on every release path, panic unwinds included, so the
        // sanitizer's held-lock stack never leaks a stale entry.
        if self.inner.is_some() {
            locksan::on_release(&self.lock.tag);
        }
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout
/// elapsed, like `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed (a
    /// notification may still have raced in — re-check the predicate).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Re-acquires the mutex and restores the guard's slot if a condvar
/// wait unwinds. std's `wait` consumes the guard, so a panic inside it
/// (e.g. waiting on one condvar with two different mutexes) would
/// otherwise leave the outer [`MutexGuard`] empty: later derefs would
/// panic and its `Drop` would fire a release for a lock no longer held.
struct RestoreOnUnwind<'a, 'b, T: ?Sized> {
    slot: &'a mut Option<sync::MutexGuard<'b, T>>,
    lock: &'b Mutex<T>,
}

impl<T: ?Sized> Drop for RestoreOnUnwind<'_, '_, T> {
    fn drop(&mut self) {
        let g = match self.lock.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *self.slot = Some(g);
    }
}

/// A condition variable with `parking_lot::Condvar`'s signatures:
/// `wait` re-borrows the guard instead of consuming it, and there is no
/// poison plumbing.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar, atomically
    /// releasing (and on wake re-acquiring) the mutex behind `guard`.
    /// Spurious wake-ups are possible, as with any condvar.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "locksan")]
        locksan::on_condvar_wait(&guard.lock.tag);
        let lock = guard.lock;
        let g = guard.inner.take().expect("guard holds the lock");
        let restore = RestoreOnUnwind {
            slot: &mut guard.inner,
            lock,
        };
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        std::mem::forget(restore);
        guard.inner = Some(g);
    }

    /// Blocks like [`wait`](Condvar::wait), but gives up once `timeout`
    /// has elapsed. The guard is re-acquired either way; check
    /// [`WaitTimeoutResult::timed_out`] and the predicate on return.
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "locksan")]
        locksan::on_condvar_wait(&guard.lock.tag);
        let lock = guard.lock;
        let g = guard.inner.take().expect("guard holds the lock");
        let restore = RestoreOnUnwind {
            slot: &mut guard.inner,
            lock,
        };
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res.timed_out())
            }
        };
        std::mem::forget(restore);
        guard.inner = Some(g);
        WaitTimeoutResult(res)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock without poisoning, like `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "locksan")]
    tag: locksan::LockTag,
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "locksan")]
    lock: &'a RwLock<T>,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "locksan")]
    lock: &'a RwLock<T>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "locksan")]
            tag: locksan::LockTag::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "locksan")]
        locksan::on_acquire(&self.tag, "rwlock");
        #[cfg(feature = "locksan")]
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                locksan::on_contended();
                match self.inner.read() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }
            }
        };
        #[cfg(not(feature = "locksan"))]
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            #[cfg(feature = "locksan")]
            lock: self,
            inner,
        }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "locksan")]
        locksan::on_acquire(&self.tag, "rwlock");
        #[cfg(feature = "locksan")]
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                locksan::on_contended();
                match self.inner.write() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }
            }
        };
        #[cfg(not(feature = "locksan"))]
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            #[cfg(feature = "locksan")]
            lock: self,
            inner,
        }
    }

    /// Attempts shared read access without blocking.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "locksan")]
        locksan::on_try_acquire(&self.tag, "rwlock");
        Some(RwLockReadGuard {
            #[cfg(feature = "locksan")]
            lock: self,
            inner,
        })
    }

    /// Attempts exclusive write access without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "locksan")]
        locksan::on_try_acquire(&self.tag, "rwlock");
        Some(RwLockWriteGuard {
            #[cfg(feature = "locksan")]
            lock: self,
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }

    /// Names this lock's class for the lock-discipline sanitizer; see
    /// [`Mutex::locksan_label`].
    #[cfg(feature = "locksan")]
    pub fn locksan_label(&self, name: &'static str, allow_persist: bool) {
        locksan::label(&self.tag, name, allow_persist);
    }

    /// Names this lock's class for the lock-discipline sanitizer
    /// (no-op: the `locksan` feature is disabled).
    #[cfg(not(feature = "locksan"))]
    pub fn locksan_label(&self, _name: &'static str, _allow_persist: bool) {}
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "locksan")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        locksan::on_release(&self.lock.tag);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "locksan")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        locksan::on_release(&self.lock.tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot semantics: no poisoning, the value is still there.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(3);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 6);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_try_read_try_write() {
        let l = RwLock::new(7);
        {
            let r = l.try_read().expect("uncontended read");
            assert_eq!(*r, 7);
            // A reader excludes writers but admits more readers.
            assert!(l.try_write().is_none());
            assert!(l.try_read().is_some());
        }
        {
            let mut w = l.try_write().expect("uncontended write");
            *w = 8;
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
        }
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard is re-acquired and fully usable after the timeout.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_for_sees_notification() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = state.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*state;
        let mut g = m.lock();
        let mut timed_out = false;
        while !*g {
            timed_out = cv.wait_for(&mut g, Duration::from_secs(5)).timed_out();
            if timed_out {
                break;
            }
        }
        t.join().unwrap();
        assert!(*g, "predicate must be set (timed_out={timed_out})");
    }

    #[test]
    fn wait_on_poisoned_mutex_keeps_the_guard() {
        // Regression: `wait` takes the inner guard out of the Option;
        // when the inner std mutex is poisoned (a holder panicked), the
        // wait comes back through the PoisonError arm and must still
        // restore the guard — an early version left it `None` and later
        // derefs panicked "guard holds the lock".
        let m = Arc::new(Mutex::new(1));
        let cv = Condvar::new();
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the inner lock");
        })
        .join();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert_eq!(*g, 1);
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn restore_on_unwind_reacquires_the_lock() {
        // Direct exercise of the unwind path: std's wait consumes the
        // inner guard, so if it panics the outer guard's slot is empty.
        // `RestoreOnUnwind` must re-acquire and refill the slot so the
        // outer guard derefs and releases normally afterwards.
        let m = Mutex::new(3);
        let mut g = m.lock();
        let taken = g.inner.take().expect("guard holds the lock");
        {
            let _restore = RestoreOnUnwind {
                slot: &mut g.inner,
                lock: &m,
            };
            // Simulate std's wait dropping the guard mid-panic.
            drop(taken);
        }
        assert_eq!(*g, 3);
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

#[cfg(all(test, feature = "locksan"))]
mod locksan_tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// locksan state is global; run these serially and reset around.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn guard_drop_fires_release_on_panic_unwind() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        locksan::reset();
        locksan::set_mode(locksan::LocksanMode::Record);
        let m = Mutex::new(0u32);
        m.locksan_label("shim-test::unwind", false);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("unwind while holding");
        }));
        // The unwind released the lock from the sanitizer's held stack:
        // a persist now runs lock-free and must not report.
        locksan::on_persist("fence");
        let reports = locksan::take_reports();
        assert!(reports.is_empty(), "{reports:?}");
        locksan::set_mode(locksan::LocksanMode::Off);
        locksan::reset();
    }

    #[test]
    fn contended_blocking_lock_is_counted() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        locksan::reset();
        locksan::set_mode(locksan::LocksanMode::Record);
        let m = std::sync::Arc::new(Mutex::new(0u32));
        m.locksan_label("shim-test::contended", false);
        let g = m.lock();
        let m2 = m.clone();
        let t = std::thread::spawn(move || {
            let _g = m2.lock();
        });
        // Wait until the other thread is blocked on the lock.
        while locksan::contended_acquires() == 0 {
            std::thread::yield_now();
        }
        drop(g);
        t.join().unwrap();
        assert!(locksan::contended_acquires() >= 1);
        assert!(locksan::take_reports().is_empty());
        locksan::set_mode(locksan::LocksanMode::Off);
        locksan::reset();
    }
}
