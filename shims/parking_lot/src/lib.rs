//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! Provides `Mutex`, `RwLock`, and `Condvar` with parking_lot's
//! signatures (no lock poisoning: `lock()` returns the guard directly)
//! implemented over the std primitives. A poisoned std lock means a thread panicked while
//! holding the guard; this workspace's crash simulation unwinds worker
//! threads deliberately (see `tm::crash`), so the shim — like parking_lot
//! itself — treats that as a normal release and hands the lock out again.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock without poisoning, like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The guard is held in an `Option` only so [`Condvar::wait`] can move
/// it through std's consuming `wait`; it is `Some` at all other times.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

/// A condition variable with `parking_lot::Condvar`'s signatures:
/// `wait` re-borrows the guard instead of consuming it, and there is no
/// poison plumbing.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar, atomically
    /// releasing (and on wake re-acquiring) the mutex behind `guard`.
    /// Spurious wake-ups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard holds the lock");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock without poisoning, like `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot semantics: no poisoning, the value is still there.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(3);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 6);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
