//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal property-testing engine with proptest's *names and shapes*:
//! the [`Strategy`] trait with `prop_map`, range/tuple/`Just` strategies,
//! [`collection::vec`], [`option::of`], `prop_oneof!`, and the
//! `proptest! { #[test] fn f(x in strat) { .. } }` macro with
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim (cases are deterministic per test name + case index, so a
//!   failure reproduces exactly on re-run).
//! * **No persistence files.** Regressions are re-found by the fixed seed
//!   schedule rather than recorded.
//!
//! Each test runs [`ProptestConfig::cases`] generated cases (default 256,
//! like proptest).

use std::fmt;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Deterministic split-mix RNG driving generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a test name: the per-test base seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property within a test body (`prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Constructs a failure from any displayable message. Usable as a
    /// function value, e.g. `.map_err(TestCaseError::fail)?`.
    pub fn fail<M: fmt::Display>(message: M) -> TestCaseError {
        TestCaseError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Arbitrary values (`proptest::prelude::any`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy for [`Arbitrary`] types.
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn prop(xs in proptest::collection::vec(any::<u64>(), 1..9)) {
///         prop_assert!(xs.len() < 9);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base = $crate::fnv1a(stringify!($name));
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::new(
                    base ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name), case, cfg.cases, e, inputs
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest {} panicked at case {}/{}\ninputs:\n{}",
                            stringify!($name), case, cfg.cases, inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full domain: just must not panic
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_and_option_shapes() {
        let mut rng = crate::TestRng::new(9);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u64>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            match crate::option::of(any::<u64>()).generate(&mut rng) {
                None => saw_none = true,
                Some(_) => saw_some = true,
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::new(11);
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_checks(
            xs in crate::collection::vec((0u64..100).prop_map(|v| v * 2), 1..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            for x in &xs {
                prop_assert_eq!(x % 2, 0, "mapped strategy must double: {}", x);
            }
            let _ = flag;
        }
    }
}
